//! Umbrella package for the MicroLib reproduction repository.
//!
//! The actual library lives in the [`microlib`] crate (and the substrate
//! crates it re-exports). This package only hosts the repository-level
//! `examples/` and `tests/` directories; it re-exports the flagship crate so
//! examples can simply `use microlib_suite as microlib` if they wish.

pub use microlib::*;
