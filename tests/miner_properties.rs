//! Property tests for the inconsistency miner's sampler and greedy
//! minimizer, driven by seeded synthetic oracles — no simulation, so
//! hundreds of cases run in milliseconds — plus a small end-to-end
//! thread-count determinism pin on the real mining loop.

use microlib::{ArtifactStore, SimOptions};
use microlib_miner::{mine, minimize, sample_cell, ConfigDelta, MineConfig, MINE_BENCHMARKS};
use microlib_trace::TraceWindow;

fn base_opts() -> SimOptions {
    SimOptions {
        window: TraceWindow::new(1_000, 2_000),
        ..SimOptions::default()
    }
}

#[test]
fn sampled_cells_are_valid_deterministic_and_round_trip() {
    let base = base_opts();
    for index in 0..200u64 {
        let (bench, delta) = sample_cell(0xC0FFEE, index, &base);
        let (bench2, delta2) = sample_cell(0xC0FFEE, index, &base);
        assert_eq!((bench, delta.key()), (bench2, delta2.key()));
        assert!(
            MINE_BENCHMARKS.contains(&bench),
            "unknown benchmark {bench}"
        );
        assert!(
            delta.is_valid(&base),
            "sampler produced invalid {}",
            delta.key()
        );
        let parsed = ConfigDelta::parse(&delta.key()).expect("key must parse");
        assert_eq!(parsed.key(), delta.key(), "key must round-trip");
    }
}

#[test]
fn minimizer_strips_everything_but_the_planted_core() {
    // Plant a "core" inside each sampled delta: the oracle reports the
    // inconsistency iff the candidate still contains the whole core — a
    // monotone oracle, like a real knob-interaction cliff. The greedy
    // minimizer must recover exactly the core.
    let base = base_opts();
    let mut nonempty = 0u32;
    for index in 0..200u64 {
        let (_, delta) = sample_cell(0xFEED, index, &base);
        if delta.is_empty() {
            continue;
        }
        nonempty += 1;
        let core = ConfigDelta::new(delta.entries().iter().copied().step_by(2).collect());
        let oracle = |c: &ConfigDelta| core.is_subset_of(c);
        let minimal = minimize(&delta, oracle);
        assert!(minimal.is_subset_of(&delta), "result must be a sub-delta");
        assert!(oracle(&minimal), "minimizer lost the inconsistency");
        assert_eq!(
            minimal.key(),
            core.key(),
            "greedy must strip every non-core knob of {}",
            delta.key()
        );
        assert_eq!(
            minimize(&minimal, oracle).key(),
            minimal.key(),
            "re-minimizing must be a fixed point"
        );
    }
    assert!(
        nonempty > 50,
        "sampler yielded only {nonempty} non-baseline cells"
    );
}

#[test]
fn minimizer_invariants_hold_for_arbitrary_oracles() {
    // Even against a non-monotone (pseudo-random) oracle, the output is
    // a sub-delta, still exhibits the inconsistency, and re-minimizing
    // is a fixed point — the three properties the golden corpus leans on.
    let base = base_opts();
    for index in 0..200u64 {
        let (_, delta) = sample_cell(0xBEEF, index, &base);
        if delta.is_empty() {
            continue;
        }
        let oracle = |c: &ConfigDelta| {
            let h = c.key().bytes().fold(0xcbf29ce484222325u64, |a, b| {
                (a ^ b as u64).wrapping_mul(0x100000001b3)
            });
            // The original delta must count as inconsistent for the
            // minimizer's contract to apply.
            h % 3 != 0 || c.key() == delta.key()
        };
        let minimal = minimize(&delta, oracle);
        assert!(minimal.is_subset_of(&delta));
        assert!(oracle(&minimal));
        assert_eq!(minimize(&minimal, oracle).key(), minimal.key());
    }
}

#[test]
fn empty_delta_is_already_minimal() {
    let minimal = minimize(&ConfigDelta::default(), |_| true);
    assert!(minimal.is_empty());
}

#[test]
fn mining_report_is_independent_of_thread_count() {
    // End-to-end pin: the full mine loop (sampling, probing both tiers,
    // minimizing) must produce identical outcomes however its cells are
    // scheduled over workers.
    let store = ArtifactStore::new();
    let mut cfg = MineConfig::standard(base_opts());
    cfg.budget = 3;
    cfg.threads = 1;
    let serial = mine(&store, &cfg);
    cfg.threads = 3;
    let parallel = mine(&store, &cfg);
    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.delta.key(), b.delta.key());
        assert_eq!(
            a.outcome, b.outcome,
            "cell {} diverged across thread counts",
            a.index
        );
    }
}
