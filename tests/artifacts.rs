//! The acceptance property behind the shared-artifact stack: sharing
//! trace buffers, warm-state checkpoints and memoized cells must never
//! change a single result byte. Every study mechanism — the ten that
//! replay their warmup from the recorded event log and the three sidecar
//! mechanisms that keep the exact full warm path — is compared cold vs
//! shared, field for field.

use microlib::report::text_table;
use microlib::{
    run_custom, run_custom_with, run_one, run_one_with, ArtifactStore, Campaign, CampaignReport,
    ExperimentConfig, RunResult, SamplingMode, SimOptions,
};
use microlib_mech::{MechanismKind, TagCorrelatingPrefetcher};
use microlib_model::SystemConfig;
use microlib_trace::TraceWindow;
use std::sync::Arc;

fn opts(skip: u64, simulate: u64) -> SimOptions {
    SimOptions {
        window: TraceWindow::new(skip, simulate),
        ..SimOptions::default()
    }
}

/// Every observable field of a run, rendered exhaustively: `RunResult`'s
/// `Debug` output covers perf, all cache/memory/core counters, mechanism
/// and queue stats, and the hardware inventory.
fn fingerprint(r: &RunResult) -> String {
    format!("{r:?}")
}

#[test]
fn shared_artifacts_match_cold_runs_for_every_mechanism() {
    let config = SystemConfig::baseline_constant_memory();
    let shared_config = Arc::new(config.clone());
    let store = ArtifactStore::new();
    let opts = opts(3_000, 2_000);
    let mut kinds = MechanismKind::study_set().to_vec();
    kinds.push(MechanismKind::DbcpInitial);
    for bench in ["swim", "mcf"] {
        for kind in &kinds {
            let cold = run_one(&config, *kind, bench, &opts).unwrap();
            let shared = run_one_with(&store, &shared_config, *kind, bench, &opts).unwrap();
            assert_eq!(
                fingerprint(&cold),
                fingerprint(&shared),
                "{bench} × {kind:?}: shared artifacts changed the result"
            );
        }
    }
    let stats = store.stats();
    assert!(stats.trace_hits > 0, "cells must share the trace buffer");
    assert!(stats.warm_hits > 0, "cells must share the warm checkpoint");
}

#[test]
fn memo_cache_serves_identical_results() {
    let store = ArtifactStore::new();
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let opts = opts(1_000, 1_000);
    let first = run_one_with(&store, &config, MechanismKind::Sp, "gzip", &opts).unwrap();
    let misses = store.stats().memo_misses;
    let second = run_one_with(&store, &config, MechanismKind::Sp, "gzip", &opts).unwrap();
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(
        store.stats().memo_misses,
        misses,
        "second run must not simulate"
    );
    assert_eq!(store.stats().memo_hits, 1);
}

#[test]
fn custom_mechanisms_share_artifacts_without_memo() {
    let store = ArtifactStore::new();
    let config = SystemConfig::baseline_constant_memory();
    let shared_config = Arc::new(config.clone());
    let opts = opts(2_000, 1_500);
    let cold = run_custom(
        &config,
        Box::new(TagCorrelatingPrefetcher::with_queue_capacity(1)),
        MechanismKind::Tcp,
        "swim",
        &opts,
    )
    .unwrap();
    let shared = run_custom_with(
        &store,
        &shared_config,
        Box::new(TagCorrelatingPrefetcher::with_queue_capacity(1)),
        MechanismKind::Tcp,
        "swim",
        &opts,
    )
    .unwrap();
    assert_eq!(fingerprint(&cold), fingerprint(&shared));
    assert_eq!(store.stats().memo_hits + store.stats().memo_misses, 0);
}

fn campaign_config() -> ExperimentConfig {
    ExperimentConfig {
        system: SystemConfig::baseline_constant_memory(),
        benchmarks: vec!["swim".into(), "gzip".into(), "mcf".into()],
        mechanisms: vec![
            MechanismKind::Base,
            MechanismKind::Ghb,
            MechanismKind::Vc, // sidecar: exercises the exact-warm fallback
            MechanismKind::Tk, // eviction observer: exercises event replay
        ],
        window: TraceWindow::new(2_000, 1_500),
        seed: 0xC0FFEE,
        threads: 2,
        sampling: SamplingMode::Full,
    }
}

/// Renders a report the way the experiment harnesses do, covering every
/// counter that reaches a result table.
fn result_table(report: CampaignReport) -> String {
    let matrix = report.into_matrix().expect("all cells clean");
    let mut rows = Vec::new();
    for b in matrix.benchmarks() {
        let mut row = vec![b.clone()];
        for k in matrix.mechanisms() {
            let r = matrix.result(b, *k);
            row.push(format!(
                "{:.9}/{}/{}/{}/{}",
                matrix.speedup(b, *k),
                r.perf.cycles,
                r.l1d.misses,
                r.l2.misses,
                r.mechanism_stats().prefetches_requested,
            ));
        }
        rows.push(row);
    }
    text_table(&["benchmark", "Base", "GHB", "VC", "TK"], &rows)
}

#[test]
fn campaign_tables_match_with_sharing_on_off_and_memoized() {
    let cfg = campaign_config();
    let cold = result_table(
        Campaign::new(cfg.clone())
            .without_artifacts()
            .run()
            .unwrap(),
    );
    let store = Arc::new(ArtifactStore::new());
    let shared = result_table(
        Campaign::new(cfg.clone())
            .with_store(Arc::clone(&store))
            .run()
            .unwrap(),
    );
    assert_eq!(
        cold.as_bytes(),
        shared.as_bytes(),
        "artifact sharing changed the table:\n--- cold\n{cold}\n--- shared\n{shared}"
    );
    // Re-sweeping over the same store is served entirely from the memo.
    let before = store.stats().memo_misses;
    let memoized = result_table(Campaign::new(cfg).with_store(store.clone()).run().unwrap());
    assert_eq!(cold.as_bytes(), memoized.as_bytes());
    assert_eq!(
        store.stats().memo_misses,
        before,
        "re-sweep must not simulate any cell"
    );
}

#[test]
fn disabled_store_routes_to_cold_path() {
    let store = ArtifactStore::disabled();
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(500, 500);
    run_one_with(&store, &config, MechanismKind::Tp, "swim", &o).unwrap();
    run_one_with(&store, &config, MechanismKind::Tp, "swim", &o).unwrap();
    let stats = store.stats();
    assert_eq!(stats.trace_hits + stats.trace_misses, 0);
    assert_eq!(stats.memo_hits + stats.memo_misses, 0);
}

/// Diagnostic (run with `--ignored --nocapture`): where warm time goes.
#[test]
#[ignore = "timing probe, not an assertion"]
fn warm_path_cost_breakdown() {
    use microlib_trace::{benchmarks, TraceBuffer, Workload};
    use std::time::Instant;
    let skip = 150_000u64;
    let config = Arc::new(SystemConfig::baseline());
    for bench in ["swim", "mcf", "gzip"] {
        let w = Arc::new(Workload::new(benchmarks::by_name(bench).unwrap(), 0xC0FFEE));
        let t = Instant::now();
        let buf = Arc::new(TraceBuffer::capture(&w, skip + 100_000));
        let t_capture_trace = t.elapsed();

        // Cold warm (replay cursor, full warm path, Base mech).
        let t = Instant::now();
        let mut mem = microlib::mem::MemorySystem::new(
            Arc::clone(&config),
            vec![MechanismKind::Base.build()],
        )
        .unwrap();
        w.initialize(mem.functional_mut());
        let mut s = TraceBuffer::replay(&buf);
        for _ in 0..skip {
            let inst = s.next().unwrap();
            let mr = inst.mem.map(|m| {
                (
                    m.addr,
                    if m.is_store {
                        microlib::model::AccessKind::Store
                    } else {
                        microlib::model::AccessKind::Load
                    },
                    m.value,
                )
            });
            mem.warm_inst(inst.pc, mr);
        }
        let t_cold_warm = t.elapsed();

        // Capture warm state (recorder run + log).
        let store = ArtifactStore::new();
        store.trace(bench, 0xC0FFEE, skip + 100_000).unwrap();
        assert!(store
            .warm_state(bench, 0xC0FFEE, skip, 0, &config)
            .unwrap()
            .is_none());
        let t = Instant::now();
        let ws = store
            .warm_state(bench, 0xC0FFEE, skip, 0, &config)
            .unwrap()
            .expect("second request captures");
        let t_capture_warm = t.elapsed();
        eprintln!("{bench}: log events = {}", ws.log.len());

        // Restore + replay.
        let t = Instant::now();
        let mut mem2 =
            microlib::mem::MemorySystem::new(Arc::clone(&config), vec![MechanismKind::Ghb.build()])
                .unwrap();
        mem2.restore_warm(&ws.checkpoint);
        mem2.replay_warm_events(&ws.log);
        let t_restore = t.elapsed();

        eprintln!(
            "{bench}: trace-capture {t_capture_trace:?}, cold-warm {t_cold_warm:?}, \
             warm-capture {t_capture_warm:?}, restore+replay {t_restore:?}"
        );
    }
}
