//! End-to-end tests of the persistent artifact cache: cross-process
//! reuse (simulated with fresh stores over one directory), crash-safe
//! resume, incremental invalidation, and the corruption fallbacks — a
//! truncated entry, a flipped bit, a wrong-version header and a cell
//! killed mid-journal must all recompute cleanly with bit-identical
//! output.

use microlib::{
    run_one_with, ArtifactStore, Campaign, ExperimentConfig, RunResult, SamplingMode, SimOptions,
};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::TraceWindow;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("microlib-cache-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(window: TraceWindow) -> SimOptions {
    SimOptions {
        window,
        ..SimOptions::default()
    }
}

/// A store with a disk tier at `dir` — each call simulates a fresh
/// process attaching to the same cache directory.
fn store_at(dir: &PathBuf) -> ArtifactStore {
    ArtifactStore::new().with_disk_cache(dir)
}

fn assert_same_result(a: &RunResult, b: &RunResult) {
    assert_eq!(a.benchmark, b.benchmark);
    assert_eq!(a.mechanism, b.mechanism);
    assert_eq!(a.perf, b.perf);
    assert_eq!(a.core, b.core);
    assert_eq!(a.l1d, b.l1d);
    assert_eq!(a.l1i, b.l1i);
    assert_eq!(a.l2, b.l2);
    assert_eq!(a.memory, b.memory);
    assert_eq!(a.mech_l1, b.mech_l1);
    assert_eq!(a.mech_l2, b.mech_l2);
    assert_eq!(a.queue_l1, b.queue_l1);
    assert_eq!(a.queue_l2, b.queue_l2);
    assert_eq!(a.sampling, b.sampling);
}

#[test]
fn memo_survives_across_stores() {
    let dir = tmp_dir("memo");
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(TraceWindow::new(1_000, 2_000));

    let first = store_at(&dir);
    let cold = run_one_with(&first, &config, MechanismKind::Ghb, "swim", &o).unwrap();
    assert_eq!(first.stats().memo_disk_hits, 0);

    // A fresh store (≈ a new process) serves the cell from disk without
    // simulating, bit-identically.
    let second = store_at(&dir);
    let warm = run_one_with(&second, &config, MechanismKind::Ghb, "swim", &o).unwrap();
    let stats = second.stats();
    assert_eq!(stats.memo_disk_hits, 1, "served from disk");
    assert_eq!(stats.cells_recomputed(), 0, "nothing simulated");
    assert_same_result(&cold, &warm);

    // And matches a completely cold, cache-free run.
    let reference = run_one_with(
        &ArtifactStore::new(),
        &config,
        MechanismKind::Ghb,
        "swim",
        &o,
    )
    .unwrap();
    assert_same_result(&reference, &warm);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_campaign_resumes_only_missing_cells() {
    let dir = tmp_dir("resume");
    let window = TraceWindow::new(1_000, 2_000);
    let full = ExperimentConfig {
        system: SystemConfig::baseline_constant_memory(),
        benchmarks: vec!["swim".into(), "gzip".into(), "mcf".into()],
        mechanisms: vec![MechanismKind::Base, MechanismKind::Tp],
        window,
        seed: 7,
        threads: 2,
        sampling: SamplingMode::Full,
    };
    // "Crash" after a partial run: only two of three benchmarks finished.
    let partial = ExperimentConfig {
        benchmarks: vec!["swim".into(), "gzip".into()],
        ..full.clone()
    };
    Campaign::new(partial)
        .with_store(Arc::new(store_at(&dir)))
        .run()
        .unwrap();

    // Restart (fresh store over the same journal): the four finished
    // cells come from disk, only mcf's two cells simulate.
    let resumed_store = Arc::new(store_at(&dir));
    let resumed = Campaign::new(full.clone())
        .with_store(Arc::clone(&resumed_store))
        .run()
        .unwrap();
    let stats = resumed_store.stats();
    assert_eq!(stats.memo_disk_hits, 4, "journaled cells served from disk");
    assert_eq!(stats.cells_recomputed(), 2, "only the missing cells ran");

    // Byte-identical to a never-interrupted, cache-free campaign.
    let reference = Campaign::new(full).without_artifacts().run().unwrap();
    for (a, b) in reference.cells().iter().zip(resumed.cells()) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.mechanism, b.mechanism);
        assert_same_result(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn config_tweak_invalidates_only_the_cells_it_touches() {
    let dir = tmp_dir("incremental");
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(TraceWindow::new(500, 1_500));
    let first = store_at(&dir);
    run_one_with(&first, &config, MechanismKind::Tp, "gzip", &o).unwrap();

    let mut tweaked = SystemConfig::baseline_constant_memory();
    tweaked.l1d.mshr_entries = 4;
    let tweaked = Arc::new(tweaked);

    let second = store_at(&dir);
    // Unchanged config: disk hit. Tweaked config: a different content
    // key, so the cell recomputes — no stale entry can ever be served.
    let unchanged = run_one_with(&second, &config, MechanismKind::Tp, "gzip", &o).unwrap();
    let changed = run_one_with(&second, &tweaked, MechanismKind::Tp, "gzip", &o).unwrap();
    let stats = second.stats();
    assert_eq!(stats.memo_disk_hits, 1);
    assert_eq!(stats.cells_recomputed(), 1);
    assert_ne!(
        unchanged.perf, changed.perf,
        "fewer MSHRs must change timing (and hence prove a real recompute)"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Corrupts every cached entry with `mutate`, then asserts a fresh store
/// falls back to recomputation and still produces the reference result.
fn corruption_recovers(tag: &str, mutate: impl Fn(&PathBuf)) {
    let dir = tmp_dir(tag);
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(TraceWindow::new(1_000, 2_000));
    let reference =
        run_one_with(&store_at(&dir), &config, MechanismKind::Markov, "mcf", &o).unwrap();

    let mut corrupted = 0usize;
    for entry in walk(&dir) {
        mutate(&entry);
        corrupted += 1;
    }
    assert!(corrupted > 0, "the run must have written cache entries");

    let recovering = store_at(&dir);
    let recomputed = run_one_with(&recovering, &config, MechanismKind::Markov, "mcf", &o).unwrap();
    let stats = recovering.stats();
    assert_eq!(stats.memo_disk_hits, 0, "corrupt entries are never trusted");
    assert_eq!(stats.cells_recomputed(), 1);
    assert_same_result(&reference, &recomputed);

    // The recompute repaired the cache: a third store hits again.
    let repaired = store_at(&dir);
    let again = run_one_with(&repaired, &config, MechanismKind::Markov, "mcf", &o).unwrap();
    assert_eq!(repaired.stats().memo_disk_hits, 1);
    assert_same_result(&reference, &again);
    let _ = fs::remove_dir_all(&dir);
}

fn walk(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files
}

#[test]
fn truncated_entries_recompute_bit_identically() {
    // A cell killed mid-journal: the file holds a valid prefix but stops
    // short (rename makes this near-impossible, but disks lie).
    corruption_recovers("truncated", |path| {
        let bytes = fs::read(path).unwrap();
        fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
    });
}

#[test]
fn bit_flipped_entries_recompute_bit_identically() {
    corruption_recovers("bitflip", |path| {
        let mut bytes = fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(path, &bytes).unwrap();
    });
}

#[test]
fn stale_version_headers_recompute_bit_identically() {
    // The format version is the u32 right after the 4-byte magic;
    // rewriting it simulates a cache left behind by a newer build. (The
    // checksum covers the header too, so this also exercises the
    // earlier-in-the-chain version check path via DiskCache unit tests;
    // here the point is end-to-end recovery.)
    corruption_recovers("version", |path| {
        let mut bytes = fs::read(path).unwrap();
        bytes[4] = bytes[4].wrapping_add(1);
        fs::write(path, &bytes).unwrap();
    });
}

#[test]
fn sampled_cells_and_plans_persist() {
    let dir = tmp_dir("sampled");
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let window = TraceWindow::new(2_000, 40_000);
    let o = SimOptions {
        window,
        sampling: SamplingMode::SimPoints {
            interval: 10_000,
            max_clusters: 3,
            warmup: 0,
        },
        ..SimOptions::default()
    };

    let first = store_at(&dir);
    let cold = run_one_with(&first, &config, MechanismKind::Ghb, "gcc", &o).unwrap();
    assert!(
        cold.sampling.is_some(),
        "a sampled run carries its estimate"
    );

    let second = store_at(&dir);
    let warm = run_one_with(&second, &config, MechanismKind::Ghb, "gcc", &o).unwrap();
    let stats = second.stats();
    assert_eq!(stats.memo_disk_hits, 1);
    assert_same_result(&cold, &warm);

    // A different mechanism in the same (benchmark, window) reuses the
    // persisted sampling plan instead of re-profiling.
    let third = store_at(&dir);
    run_one_with(&third, &config, MechanismKind::Tp, "gcc", &o).unwrap();
    let stats = third.stats();
    assert_eq!(stats.plan_disk_hits, 1, "plan served from disk");
    assert_eq!(stats.plan_misses, 0, "no re-profiling");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn warm_states_persist_across_stores() {
    let dir = tmp_dir("warm");
    let window = TraceWindow::new(4_000, 1_000);
    let cfg = ExperimentConfig {
        system: SystemConfig::baseline_constant_memory(),
        benchmarks: vec!["swim".into()],
        // Three event-replayable mechanisms over one benchmark: the
        // second requester earns the warm capture, which then persists.
        mechanisms: vec![MechanismKind::Base, MechanismKind::Tp, MechanismKind::Ghb],
        window,
        seed: 3,
        threads: 1,
        sampling: SamplingMode::Full,
    };
    let first_store = Arc::new(store_at(&dir));
    let reference = Campaign::new(cfg.clone())
        .with_store(Arc::clone(&first_store))
        .run()
        .unwrap();
    assert!(
        first_store.stats().warm_misses > 0,
        "the sweep must have captured a warm state to persist"
    );

    // Fresh store, fresh process: even the FIRST warm request hits disk
    // (no two-requester gate), and every cell comes from the memo anyway.
    // Drop the memo files to force re-simulation through the warm path.
    for f in walk(&dir.join("memo")) {
        fs::remove_file(f).unwrap();
    }
    let second_store = Arc::new(store_at(&dir));
    let resumed = Campaign::new(cfg)
        .with_store(Arc::clone(&second_store))
        .run()
        .unwrap();
    let stats = second_store.stats();
    assert!(stats.warm_disk_hits >= 1, "warm state served from disk");
    assert_eq!(stats.warm_misses, 0, "no warm phase re-recorded");
    for (a, b) in reference.cells().iter().zip(resumed.cells()) {
        assert_same_result(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn disabled_and_memory_only_stores_touch_no_disk() {
    let dir = tmp_dir("untouched");
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(TraceWindow::new(0, 1_000));
    // Memory-only store: no directory may appear.
    run_one_with(
        &ArtifactStore::new(),
        &config,
        MechanismKind::Base,
        "swim",
        &o,
    )
    .unwrap();
    // A disabled store ignores with_disk_cache entirely.
    let disabled = ArtifactStore::disabled().with_disk_cache(&dir);
    assert!(disabled.disk_cache().is_none());
    run_one_with(&disabled, &config, MechanismKind::Base, "swim", &o).unwrap();
    assert!(!dir.exists(), "no cache directory was created");
}
