//! Golden stat fingerprints for the detailed core: every study mechanism
//! on several seeds, pinned down to the full counter vectors — cycles,
//! committed/fetched, every core stall counter, cache and mechanism
//! counters — not just final CPI. The flattened SoA core (arena window,
//! bitset wakeup, batched loads) must reproduce these digests exactly;
//! any scheduling or accounting drift shows up as a readable field diff.
//!
//! To re-record after an *intentional* behaviour change, run
//! `cargo test --test bit_exactness -- --nocapture` with
//! `MICROLIB_RECORD_FINGERPRINTS=1` and paste the printed table.

use microlib::{run_one, RunResult, SimOptions};
use microlib_mech::MechanismKind;
use microlib_mem::{capture_warm_state, FunctionalMemory, MemorySystem, WarmLog, WarmState};
use microlib_model::{Encoder, SystemConfig};
use microlib_trace::{benchmarks, TraceWindow, Workload};

const SEEDS: [u64; 3] = [1, 2, 0xC0FFEE];

/// Compact, field-labelled digest of every scheduling-sensitive counter.
fn digest(r: &RunResult) -> String {
    let c = &r.core;
    let d = &r.l1d;
    let i = &r.l1i;
    let l2 = &r.l2;
    let m = &r.memory;
    let mech = r.mech_l1.or(r.mech_l2).unwrap_or_default();
    format!(
        "cyc={} com={} fet={} stalls=[{},{},{},{},{},{},{}] \
         l1d=[{},{},{},{},{},{},{},{},{},{},{},{},{}] l1i=[{},{}] \
         l2=[{},{},{},{}] mem=[{},{}] mech=[{},{},{},{},{},{},{}]",
        c.cycles,
        c.committed,
        c.fetched,
        c.mispredict_stall_cycles,
        c.icache_stall_cycles,
        c.loads_forwarded,
        c.cache_reject_stalls,
        c.window_full_stalls,
        c.lsq_full_stalls,
        c.store_commit_stalls,
        d.loads,
        d.stores,
        d.misses,
        d.sidecar_hits,
        d.mshr_merges,
        d.mshr_full_stalls,
        d.pipeline_stalls,
        d.port_stalls,
        d.demand_fills,
        d.prefetch_fills,
        d.useful_prefetches,
        d.writebacks,
        d.useless_prefetch_evictions,
        i.loads,
        i.misses,
        l2.loads,
        l2.stores,
        l2.misses,
        l2.writebacks,
        m.requests,
        m.total_latency,
        mech.table_reads,
        mech.table_writes,
        mech.prefetches_requested,
        mech.prefetches_useful,
        mech.sidecar_hits,
        mech.sidecar_misses,
        mech.victims_captured,
    )
}

fn run(kind: MechanismKind, seed: u64) -> RunResult {
    let opts = SimOptions {
        seed,
        window: TraceWindow::new(500, 800),
        ..SimOptions::default()
    };
    run_one(&SystemConfig::baseline(), kind, "swim", &opts).expect("run succeeds")
}

/// Recorded digests: (mechanism, seed, digest). Every study mechanism ×
/// every seed in [`SEEDS`].
const GOLDEN: &[(&str, u64, &str)] = &[
    ("Base", 1, "cyc=1744 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,69,0,0,36,0] l1i=[125,24] l2=[82,11,43,36] mem=[45,4341] mech=[0,0,0,0,0,0,0]"),
    ("Base", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,76,529,0,3] l1d=[222,120,97,0,70,52,26,1,97,0,0,44,0] l1i=[121,12] l2=[87,22,30,44] mem=[30,2450] mech=[0,0,0,0,0,0,0]"),
    ("Base", 12648430, "cyc=1720 com=800 fet=800 stalls=[0,1284,5,28,150,0,0] l1d=[224,113,52,0,59,10,15,3,51,0,0,28,0] l1i=[123,21] l2=[67,5,40,28] mem=[40,3317] mech=[0,0,0,0,0,0,0]"),
    ("Tp", 1, "cyc=1916 com=800 fet=800 stalls=[0,1173,16,58,554,0,25] l1d=[225,124,69,0,64,65,15,3,68,0,0,35,0] l1i=[125,25] l2=[84,10,32,35] mem=[76,8468] mech=[0,0,102,4,0,0,0]"),
    ("Tp", 2, "cyc=1292 com=800 fet=800 stalls=[0,523,7,73,588,0,3] l1d=[223,120,102,0,71,45,28,3,100,0,0,44,0] l1i=[121,12] l2=[85,28,24,44] mem=[50,4218] mech=[0,0,101,5,0,0,0]"),
    ("Tp", 12648430, "cyc=1636 com=800 fet=800 stalls=[0,1221,5,20,131,0,0] l1d=[224,113,52,0,57,3,15,2,51,0,0,28,0] l1i=[123,21] l2=[67,5,26,28] mem=[64,5920] mech=[0,0,98,6,0,0,0]"),
    ("Vc", 1, "cyc=1734 com=800 fet=800 stalls=[0,1038,16,11,498,0,0] l1d=[225,124,47,28,47,2,8,1,47,0,0,0,0] l1i=[125,24] l2=[68,3,43,21] mem=[45,4301] mech=[180,84,0,0,40,140,84]"),
    ("Vc", 2, "cyc=1303 com=800 fet=800 stalls=[0,495,7,16,501,0,0] l1d=[223,120,42,69,30,1,12,3,42,0,0,0,0] l1i=[121,12] l2=[52,2,30,24] mem=[30,2668] mech=[203,129,0,0,80,123,129]"),
    ("Vc", 12648430, "cyc=1710 com=800 fet=800 stalls=[0,1274,5,16,150,0,0] l1d=[224,113,43,11,51,1,12,3,42,0,0,0,0] l1i=[123,21] l2=[60,3,40,22] mem=[40,3362] mech=[153,54,0,0,15,138,54]"),
    ("Sp", 1, "cyc=1678 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,68,0,0,35,0] l1i=[125,24] l2=[82,11,42,35] mem=[45,4280] mech=[188,188,4,1,0,0,0]"),
    ("Sp", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,76,529,0,3] l1d=[222,120,97,0,70,52,26,1,97,0,0,44,0] l1i=[121,12] l2=[87,22,30,44] mem=[31,2540] mech=[220,220,2,0,0,0,0]"),
    ("Sp", 12648430, "cyc=1602 com=800 fet=800 stalls=[0,1189,5,22,187,0,0] l1d=[224,113,52,0,59,4,16,2,51,0,0,28,0] l1i=[123,21] l2=[67,5,38,28] mem=[40,3218] mech=[156,156,2,2,0,0,0]"),
    ("Markov", 1, "cyc=1734 com=800 fet=800 stalls=[0,1062,16,46,468,0,10] l1d=[225,124,63,6,59,41,14,1,63,19,0,36,0] l1i=[125,24] l2=[98,9,43,36] mem=[45,4354] mech=[628,124,137,6,6,219,0]"),
    ("Markov", 2, "cyc=1378 com=800 fet=800 stalls=[0,577,7,48,490,0,0] l1d=[223,120,79,22,60,28,18,2,79,45,0,47,0] l1i=[121,12] l2=[124,16,30,47] mem=[30,2377] mech=[885,161,266,22,22,228,0]"),
    ("Markov", 12648430, "cyc=1721 com=800 fet=800 stalls=[0,1285,5,27,150,0,0] l1d=[224,113,52,0,59,10,15,2,51,4,0,28,0] l1i=[123,21] l2=[71,5,40,28] mem=[40,3307] mech=[429,98,49,0,0,168,0]"),
    ("Fvc", 1, "cyc=1744 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,69,0,0,35,0] l1i=[125,24] l2=[82,11,43,35] mem=[45,4341] mech=[236,1,0,0,0,236,1]"),
    ("Fvc", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,75,529,0,3] l1d=[222,120,96,2,70,51,26,1,96,0,0,44,0] l1i=[121,12] l2=[86,22,30,44] mem=[30,2450] mech=[280,4,0,0,2,278,4]"),
    ("Fvc", 12648430, "cyc=1720 com=800 fet=800 stalls=[0,1284,5,26,150,0,0] l1d=[224,113,51,3,57,9,14,3,50,0,0,29,0] l1i=[123,21] l2=[65,6,40,29] mem=[40,3317] mech=[167,3,0,0,3,164,3]"),
    ("Dbcp", 1, "cyc=1744 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,69,0,0,36,0] l1i=[125,24] l2=[82,11,43,36] mem=[45,4341] mech=[376,79,1,0,0,0,0]"),
    ("Dbcp", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,76,529,0,3] l1d=[222,120,97,0,70,52,26,1,97,0,0,44,0] l1i=[121,12] l2=[87,22,30,44] mem=[30,2450] mech=[337,115,0,0,0,0,0]"),
    ("Dbcp", 12648430, "cyc=1720 com=800 fet=800 stalls=[0,1284,5,28,150,0,0] l1d=[224,113,52,0,59,10,15,3,51,0,0,28,0] l1i=[123,21] l2=[67,5,40,28] mem=[40,3317] mech=[408,52,0,0,0,0,0]"),
    ("Tkvc", 1, "cyc=1721 com=800 fet=800 stalls=[0,1056,16,15,462,0,0] l1d=[225,124,60,11,55,3,11,1,59,0,0,18,0] l1i=[125,24] l2=[78,6,43,18] mem=[45,4228] mech=[265,24,0,0,15,170,31]"),
    ("Tkvc", 2, "cyc=1311 com=800 fet=800 stalls=[0,520,7,26,485,0,1] l1d=[223,120,61,48,44,5,20,2,61,0,0,6,0] l1i=[121,12] l2=[68,5,30,16] mem=[30,2655] mech=[346,29,0,0,54,165,80]"),
    ("Tkvc", 12648430, "cyc=1710 com=800 fet=800 stalls=[0,1274,5,28,150,0,0] l1d=[224,113,50,2,57,10,15,3,49,0,0,19,0] l1i=[123,21] l2=[66,4,40,19] mem=[40,3358] mech=[218,11,0,0,2,164,12]"),
    ("Tk", 1, "cyc=1744 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,69,0,0,36,0] l1i=[125,24] l2=[82,11,43,36] mem=[45,4341] mech=[15,79,0,0,0,0,0]"),
    ("Tk", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,76,529,0,3] l1d=[222,120,97,0,70,52,26,1,97,0,0,44,0] l1i=[121,12] l2=[87,22,30,44] mem=[30,2450] mech=[14,115,0,0,0,0,0]"),
    ("Tk", 12648430, "cyc=1720 com=800 fet=800 stalls=[0,1284,5,28,150,0,0] l1d=[224,113,52,0,59,10,15,3,51,0,0,28,0] l1i=[123,21] l2=[67,5,40,28] mem=[40,3317] mech=[14,52,0,0,0,0,0]"),
    ("Cdp", 1, "cyc=1744 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,69,0,0,36,0] l1i=[125,24] l2=[82,11,43,36] mem=[45,4341] mech=[97,0,0,0,0,0,0]"),
    ("Cdp", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,76,529,0,3] l1d=[222,120,97,0,70,52,26,1,97,0,0,44,0] l1i=[121,12] l2=[87,22,30,44] mem=[30,2450] mech=[97,0,0,0,0,0,0]"),
    ("Cdp", 12648430, "cyc=1720 com=800 fet=800 stalls=[0,1284,5,28,150,0,0] l1d=[224,113,52,0,59,10,15,3,51,0,0,28,0] l1i=[123,21] l2=[67,5,40,28] mem=[40,3317] mech=[93,0,0,0,0,0,0]"),
    ("CdpSp", 1, "cyc=1678 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,68,0,0,35,0] l1i=[125,24] l2=[82,11,42,35] mem=[45,4280] mech=[285,188,4,2,0,0,0]"),
    ("CdpSp", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,76,529,0,3] l1d=[222,120,97,0,70,52,26,1,97,0,0,44,0] l1i=[121,12] l2=[87,22,30,44] mem=[31,2540] mech=[318,220,2,0,0,0,0]"),
    ("CdpSp", 12648430, "cyc=1602 com=800 fet=800 stalls=[0,1189,5,22,187,0,0] l1d=[224,113,52,0,59,4,16,2,51,0,0,28,0] l1i=[123,21] l2=[67,5,38,28] mem=[40,3218] mech=[249,156,2,4,0,0,0]"),
    ("Tcp", 1, "cyc=1744 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,69,0,0,36,0] l1i=[125,24] l2=[82,11,43,36] mem=[45,4341] mech=[102,31,0,0,0,0,0]"),
    ("Tcp", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,76,529,0,3] l1d=[222,120,97,0,70,52,26,1,97,0,0,44,0] l1i=[121,12] l2=[87,22,30,44] mem=[30,2450] mech=[103,33,0,0,0,0,0]"),
    ("Tcp", 12648430, "cyc=1720 com=800 fet=800 stalls=[0,1284,5,28,150,0,0] l1d=[224,113,52,0,59,10,15,3,51,0,0,28,0] l1i=[123,21] l2=[67,5,40,28] mem=[40,3317] mech=[99,29,0,0,0,0,0]"),
    ("Ghb", 1, "cyc=1918 com=800 fet=800 stalls=[0,1060,17,49,475,0,10] l1d=[224,124,69,0,66,45,13,1,68,0,0,35,0] l1i=[125,24] l2=[82,11,42,35] mem=[53,5444] mech=[336,376,16,1,0,0,0]"),
    ("Ghb", 2, "cyc=1388 com=800 fet=800 stalls=[0,563,8,77,529,0,3] l1d=[222,120,97,0,70,53,26,1,97,0,0,44,0] l1i=[121,12] l2=[87,22,30,44] mem=[37,3105] mech=[395,440,8,0,0,0,0]"),
    ("Ghb", 12648430, "cyc=1684 com=800 fet=800 stalls=[0,1180,7,29,214,0,0] l1d=[222,113,55,0,59,11,15,3,53,0,0,28,0] l1i=[123,21] l2=[67,8,35,28] mem=[44,4212] mech=[271,318,12,4,0,0,0]"),
];

/// Memory-side digest: the counters the SoA cache/MSHR/SDRAM arenas are
/// responsible for, down to row-buffer behaviour. A layout change that
/// perturbs MSHR slot reuse, bank scheduling order or writeback timing
/// shows up here even when the core-side digest above stays green.
fn mem_digest(r: &RunResult) -> String {
    let d = &r.l1d;
    let i = &r.l1i;
    let l2 = &r.l2;
    let m = &r.memory;
    format!(
        "l1d=[{},{},{},{},{},{}] l1i=[{},{}] l2=[{},{},{},{},{},{}] \
         sdram=[{},{},{},{},{},{}]",
        d.loads,
        d.stores,
        d.misses,
        d.mshr_merges,
        d.mshr_full_stalls,
        d.writebacks,
        i.loads,
        i.misses,
        l2.loads,
        l2.stores,
        l2.misses,
        l2.writebacks,
        l2.demand_fills,
        l2.prefetch_fills,
        m.requests,
        m.total_latency,
        m.row_hits,
        m.precharges,
        m.bus_busy_cycles,
        m.queue_wait_cycles,
    )
}

/// Recorded memory-hierarchy digests: (mechanism, seed, digest) over a
/// window long enough to exercise SDRAM bank scheduling and writebacks.
const MEM_GOLDEN: &[(&str, u64, &str)] = &[
    ("Base", 1, "l1d=[531,294,131,124,177,87] l1i=[309,8] l2=[118,17,42,87,42,0] sdram=[43,4449,13,26,425,910]"),
    ("Base", 2, "l1d=[554,289,156,135,252,79] l1i=[304,7] l2=[131,31,43,79,42,0] sdram=[42,4422,13,25,425,1028]"),
    ("Base", 12648430, "l1d=[561,290,131,151,144,80] l1i=[302,13] l2=[134,10,59,80,59,0] sdram=[60,5770,18,38,595,968]"),
    ("Ghb", 1, "l1d=[531,294,132,125,132,88] l1i=[309,8] l2=[115,21,33,88,34,24] sdram=[59,6136,32,24,590,1318]"),
    ("Ghb", 2, "l1d=[555,289,156,129,217,81] l1i=[304,7] l2=[130,32,30,81,32,30] sdram=[62,8215,37,21,620,1520]"),
    ("Ghb", 12648430, "l1d=[564,290,131,148,67,80] l1i=[302,13] l2=[134,10,50,80,51,23] sdram=[75,8634,34,37,745,1645]"),
];

#[test]
fn memory_hierarchy_stats_match_recorded_golden() {
    let record = std::env::var("MICROLIB_RECORD_FINGERPRINTS").is_ok();
    let mut missing = Vec::new();
    for kind in [MechanismKind::Base, MechanismKind::Ghb] {
        for seed in SEEDS {
            let opts = SimOptions {
                seed,
                window: TraceWindow::new(1_000, 2_000),
                ..SimOptions::default()
            };
            let r = run_one(&SystemConfig::baseline(), kind, "swim", &opts).expect("run succeeds");
            let got = mem_digest(&r);
            let name = format!("{kind:?}");
            if record {
                println!("    (\"{name}\", {seed}, \"{got}\"),");
                continue;
            }
            match MEM_GOLDEN
                .iter()
                .find(|(k, s, _)| *k == name && *s == seed)
                .map(|(_, _, want)| *want)
            {
                Some(want) => assert_eq!(got, want, "{name} seed {seed} drifted"),
                None => missing.push(format!("{name}/{seed}")),
            }
        }
    }
    assert!(
        record || missing.is_empty(),
        "no recorded digest for: {missing:?}"
    );
}

/// Splitting a warm phase at an arbitrary point — capture a [`WarmState`]
/// mid-warm, restore it into a fresh system, warm the rest — must land on
/// a byte-identical checkpoint to warming straight through. This pins the
/// warm fast path (same-line short-circuit) across the restore boundary:
/// the restored system starts with a cold fast-path slot, the uninterrupted
/// one doesn't, and any divergence in array state, functional images,
/// stats or the warm clock shows up in the encoded bytes.
#[test]
fn warm_capture_restore_is_bit_identical() {
    const WARM: usize = 3_000;
    const SPLIT: u64 = 1_500;
    for (bench, seed) in [("swim", 1u64), ("mcf", 2), ("gzip", 0xC0FFEE)] {
        let cfg = SystemConfig::baseline();
        let workload = Workload::new(benchmarks::by_name(bench).unwrap(), seed);

        // Uninterrupted: one system warms the whole prefix.
        let mut direct = MemorySystem::new(cfg.clone(), Vec::new()).unwrap();
        workload.initialize(direct.functional_mut());
        for inst in workload.stream().take(WARM) {
            direct.warm_inst(inst.pc, inst.warm_mem_ref());
        }
        let direct_ckpt = direct.snapshot_warm();

        // Split: capture at SPLIT, restore into a fresh system, finish.
        let state = capture_warm_state(
            cfg.clone(),
            |f| workload.initialize(f),
            workload
                .stream()
                .take(SPLIT as usize)
                .map(|i| (i.pc, i.warm_mem_ref())),
        )
        .unwrap();
        let mut resumed = MemorySystem::new(cfg, Vec::new()).unwrap();
        resumed.restore_warm(&state.checkpoint);
        resumed.replay_warm_events(&state.log);
        let mut stream = workload.stream();
        stream.advance_to(SPLIT);
        for inst in stream.take(WARM - SPLIT as usize) {
            resumed.warm_inst(inst.pc, inst.warm_mem_ref());
        }
        let resumed_ckpt = resumed.snapshot_warm();

        // Byte-level equality via the checkpoint codec (delta against the
        // same freshly initialized image).
        let mut base = FunctionalMemory::new();
        workload.initialize(&mut base);
        let encode = |ckpt| {
            let mut e = Encoder::new();
            WarmState {
                checkpoint: ckpt,
                log: WarmLog::default(),
            }
            .encode(&base, &mut e);
            e.into_bytes()
        };
        assert_eq!(
            encode(direct_ckpt),
            encode(resumed_ckpt),
            "{bench} seed {seed}: split warm diverged from uninterrupted warm"
        );
    }
}

#[test]
fn study_set_stats_match_recorded_golden() {
    let record = std::env::var("MICROLIB_RECORD_FINGERPRINTS").is_ok();
    let mut missing = Vec::new();
    for kind in MechanismKind::study_set() {
        for seed in SEEDS {
            let got = digest(&run(kind, seed));
            let name = format!("{kind:?}");
            if record {
                println!("    (\"{name}\", {seed}, \"{got}\"),");
                continue;
            }
            match GOLDEN
                .iter()
                .find(|(k, s, _)| *k == name && *s == seed)
                .map(|(_, _, want)| *want)
            {
                Some(want) => assert_eq!(got, want, "{name} seed {seed} drifted"),
                None => missing.push(format!("{name}/{seed}")),
            }
        }
    }
    assert!(
        record || missing.is_empty(),
        "no recorded digest for: {missing:?}"
    );
}
