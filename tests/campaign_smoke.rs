//! Campaign-engine smoke test: a small 2-benchmark × 2-mechanism sweep
//! must produce deterministically ordered cells and **byte-identical**
//! result tables whether it runs on one worker thread or many — the
//! acceptance property behind `MICROLIB_THREADS` (parallelism must never
//! perturb science output).

use microlib::report::text_table;
use microlib::{Campaign, CampaignReport, ExperimentConfig, SamplingMode};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::TraceWindow;

fn smoke_config(threads: usize) -> ExperimentConfig {
    ExperimentConfig {
        system: SystemConfig::baseline_constant_memory(),
        benchmarks: vec!["swim".into(), "gzip".into()],
        mechanisms: vec![MechanismKind::Base, MechanismKind::Ghb],
        window: TraceWindow::new(1_000, 2_000),
        seed: 0xC0FFEE,
        threads,
        sampling: SamplingMode::Full,
    }
}

/// Renders a report the way the experiment harnesses do: a formatted
/// speedup table in deterministic row-major order.
fn result_table(report: CampaignReport) -> String {
    let matrix = report.into_matrix().expect("all cells clean");
    let mut rows = Vec::new();
    for b in matrix.benchmarks() {
        let mut row = vec![b.clone()];
        for k in matrix.mechanisms() {
            let r = matrix.result(b, *k);
            row.push(format!(
                "{:.6}/{}/{}",
                matrix.speedup(b, *k),
                r.perf.cycles,
                r.l1d.misses
            ));
        }
        rows.push(row);
    }
    text_table(&["benchmark", "Base", "GHB"], &rows)
}

#[test]
fn campaign_cells_are_deterministically_ordered() {
    let report = Campaign::new(smoke_config(4)).run().unwrap();
    let coords: Vec<(&str, MechanismKind)> = report
        .cells()
        .iter()
        .map(|c| (c.benchmark.as_str(), c.mechanism))
        .collect();
    assert_eq!(
        coords,
        vec![
            ("swim", MechanismKind::Base),
            ("swim", MechanismKind::Ghb),
            ("gzip", MechanismKind::Base),
            ("gzip", MechanismKind::Ghb),
        ],
        "cells must come back row-major regardless of scheduling"
    );
}

#[test]
fn single_and_multi_threaded_tables_are_byte_identical() {
    let serial = result_table(Campaign::new(smoke_config(1)).run().unwrap());
    let parallel = result_table(Campaign::new(smoke_config(4)).run().unwrap());
    assert!(!serial.is_empty());
    assert_eq!(
        serial.as_bytes(),
        parallel.as_bytes(),
        "thread count changed the result table:\n--- threads=1\n{serial}\n--- threads=4\n{parallel}"
    );
}

#[test]
fn repeated_runs_are_byte_identical() {
    let first = result_table(Campaign::new(smoke_config(0)).run().unwrap());
    let second = result_table(Campaign::new(smoke_config(0)).run().unwrap());
    assert_eq!(first, second, "same config must reproduce exactly");
}
