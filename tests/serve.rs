//! End-to-end tests of the campaign service: the daemon must answer
//! byte-for-byte what the library computes, coalesce identical
//! in-flight cells to one compute, turn away overload deterministically
//! with a retry hint, keep its metrics consistent with the requests it
//! served, and hold resident warm state under the configured byte cap.

use microlib::{run_one_with, ArtifactStore, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_serve::{
    metric_value, render_result, run_cell, CampaignOutcome, CampaignSpec, Client, Server,
    ServerConfig,
};
use microlib_trace::TraceWindow;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Boots an in-process daemon on an ephemeral port (memory-only store
/// unless the config says otherwise) and a client pointed at it.
fn boot(config: ServerConfig) -> (Server, Client) {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind ephemeral port");
    let client = Client::new(server.addr().to_string());
    assert!(
        client.wait_ready(Duration::from_secs(5)),
        "daemon not ready"
    );
    (server, client)
}

fn completed(client: &Client, spec: &str) -> Vec<String> {
    match client.campaign(spec).expect("campaign request") {
        CampaignOutcome::Completed(lines) => lines,
        CampaignOutcome::Rejected(response) => {
            panic!(
                "unexpected rejection {}: {}",
                response.status, response.body
            )
        }
    }
}

/// The daemon's streamed NDJSON, restored to grid order, must be
/// byte-identical to a local (no daemon, no HTTP) run of the same spec
/// through `run_cell`, and to `run_one_with` + `render_result` directly.
#[test]
fn daemon_streams_byte_identical_to_local() {
    let spec_json = r#"{"benchmarks":["swim","gzip"],"mechanisms":["Base","GHB"],
                        "window":{"skip":1000,"simulate":1500}}"#;
    let (server, client) = boot(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let daemon_lines = completed(&client, spec_json);
    drop(server);

    let spec = CampaignSpec::parse(spec_json).expect("spec parses");
    let local_store = ArtifactStore::new();
    let local_lines: Vec<String> = spec
        .cells()
        .iter()
        .map(|cell| run_cell(&local_store, cell))
        .collect();
    assert_eq!(daemon_lines, local_lines, "daemon differs from local run");

    // And against the raw library call, bypassing CellSpec entirely.
    let direct = run_one_with(
        &ArtifactStore::new(),
        &spec.config,
        spec.mechanisms[0],
        spec.benchmarks[0],
        &spec.opts,
    )
    .expect("direct run");
    assert_eq!(daemon_lines[0], render_result(0, &direct));
}

/// N identical concurrent campaigns over one daemon compute each
/// distinct cell exactly once: every request past the first resolves by
/// memo hit or by waiting on the in-flight leader (single-flight).
#[test]
fn identical_concurrent_campaigns_compute_each_cell_once() {
    let spec_json = r#"{"benchmarks":["swim"],"mechanisms":["Base","GHB"],
                        "window":{"skip":1000,"simulate":2000}}"#;
    const SUBMITTERS: usize = 6;
    let (server, client) = boot(ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    });
    let outputs: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|_| scope.spawn(|| completed(&client, spec_json)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for output in &outputs[1..] {
        assert_eq!(output, &outputs[0], "concurrent submitters disagree");
    }
    let stats = server.store().stats();
    assert_eq!(stats.memo_misses, 2, "one compute per distinct cell");
    // Every request past the two computes resolves as a memo hit — a
    // coalesced follower re-probes (and so also counts a hit) once its
    // leader publishes.
    assert_eq!(stats.memo_hits, (SUBMITTERS as u64) * 2 - 2);
    assert!(stats.memo_coalesced <= stats.memo_hits);
}

/// Store-level single-flight: threads released by a barrier into the
/// same cell must produce one compute, with at least one follower
/// parked on the in-flight leader rather than re-running it.
#[test]
fn store_coalesces_simultaneous_identical_cells() {
    const THREADS: usize = 6;
    let store = ArtifactStore::new();
    let config = Arc::new(SystemConfig::baseline());
    let opts = SimOptions {
        window: TraceWindow::new(2_000, 20_000),
        ..SimOptions::default()
    };
    let barrier = Barrier::new(THREADS);
    let ipcs: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    run_one_with(&store, &config, MechanismKind::Base, "swim", &opts)
                        .expect("cell runs")
                        .perf
                        .ipc()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(ipcs.iter().all(|&ipc| ipc == ipcs[0]), "results diverge");
    let stats = store.stats();
    assert_eq!(stats.memo_misses, 1, "exactly one compute");
    assert_eq!(stats.memo_hits, THREADS as u64 - 1);
    assert!(
        stats.memo_coalesced >= 1,
        "barrier-released duplicates should coalesce on the leader \
         (hits={} coalesced={})",
        stats.memo_hits,
        stats.memo_coalesced
    );
}

/// A campaign that cannot fit under the queue bound is rejected whole
/// with 429 + `Retry-After` — deterministically, because admission is
/// checked against the bound before any cell is enqueued.
#[test]
fn overload_rejects_with_retry_after() {
    let (server, client) = boot(ServerConfig {
        threads: 1,
        queue_cap: 2,
        ..ServerConfig::default()
    });
    let big = r#"{"benchmarks":["swim","gzip","mcf"],"mechanisms":["Base"],
                  "window":{"skip":500,"simulate":500}}"#;
    match client.campaign(big).expect("campaign request") {
        CampaignOutcome::Rejected(response) => {
            assert_eq!(response.status, 429);
            assert_eq!(response.header("Retry-After"), Some("1"));
        }
        CampaignOutcome::Completed(_) => panic!("3 cells admitted past a 2-cell queue bound"),
    }
    let metrics = client.metrics().expect("metrics scrape");
    assert_eq!(metric_value(&metrics, "serve_rejected_total"), Some(1));
    // A campaign that fits the bound still goes through afterwards.
    let small = r#"{"benchmarks":["swim"],"mechanisms":["Base"],
                    "window":{"skip":500,"simulate":500}}"#;
    assert_eq!(completed(&client, small).len(), 1);
    drop(server);
}

/// `/metrics` counters move exactly with the requests served, the
/// gauges settle to zero when the daemon is idle, and the store's
/// counters agree with what the campaign actually computed.
#[test]
fn metrics_track_requests_and_settle_idle() {
    let (server, client) = boot(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let before = client.metrics().expect("metrics scrape");
    assert!(client.healthz().expect("healthz"));
    assert!(client.healthz().expect("healthz"));
    let spec = r#"{"benchmarks":["swim"],"mechanisms":["Base","GHB"],
                   "window":{"skip":500,"simulate":1000}}"#;
    let lines = completed(&client, spec);
    assert_eq!(lines.len(), 2);
    let after = client.metrics().expect("metrics scrape");

    let delta = |name: &str| {
        metric_value(&after, name).expect(name) - metric_value(&before, name).expect(name)
    };
    assert_eq!(delta("serve_healthz_requests_total"), 2);
    assert_eq!(delta("serve_campaign_requests_total"), 1);
    assert_eq!(delta("serve_cells_streamed_total"), 2);
    assert_eq!(delta("serve_cells_failed_total"), 0);
    assert_eq!(delta("serve_metrics_requests_total"), 1);
    assert_eq!(metric_value(&after, "serve_queue_depth"), Some(0));
    assert_eq!(metric_value(&after, "serve_inflight_cells"), Some(0));
    assert!(metric_value(&after, "process_rss_bytes").expect("rss") > 0);
    assert_eq!(metric_value(&after, "store_memo_misses"), Some(2));
    assert_eq!(
        metric_value(&after, "store_memo_misses"),
        Some(server.store().stats().memo_misses)
    );
}

/// The resident warm-state LRU: lowering the byte cap evicts the
/// least-recently-used state (not the most recently touched one), the
/// resident estimate stays under the cap, and an evicted key re-captures
/// on its next request because the capture gate stays armed.
#[test]
fn warm_lru_respects_byte_cap_and_recaptures() {
    let store = ArtifactStore::new();
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let warm = |bench: &str| store.warm_state(bench, 7, 2_000, 0, &config).expect("warm");
    for bench in ["swim", "gzip", "mcf"] {
        assert!(warm(bench).is_none(), "first {bench} request is declined");
        assert!(warm(bench).is_some(), "second {bench} request captures");
    }
    let resident = store.warm_resident_bytes();
    assert!(resident > 0, "three captured states have a footprint");
    // Touch swim so gzip becomes the LRU victim.
    assert!(warm("swim").is_some(), "resident swim state is a hit");
    let hits_before = store.stats().warm_hits;

    let cap = resident - 1;
    store.set_warm_resident_cap(cap);
    let stats = store.stats();
    assert_eq!(stats.warm_evictions, 1, "one eviction restores the cap");
    assert!(store.warm_resident_bytes() <= cap, "estimate fits the cap");

    // swim was recently touched, so it must still be resident ...
    assert!(warm("swim").is_some());
    assert_eq!(store.stats().warm_hits, hits_before + 1, "swim survived");
    // ... and the evicted gzip re-captures immediately (its gate stays
    // armed), re-entering the LRU under the cap.
    assert!(warm("gzip").is_some(), "evicted key re-captures");
    assert!(
        store.warm_resident_bytes() <= cap,
        "cap holds after re-entry"
    );
}
