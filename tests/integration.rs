//! Cross-crate integration tests: the full simulator (workload → OoO core →
//! hierarchy → mechanism → SDRAM) exercised end-to-end.
//!
//! Windows are kept small so the suite stays debug-build friendly; the
//! experiment binaries in `crates/bench` are the full-scale runs.

use microlib::{
    run_custom, run_matrix, run_one, ExperimentConfig, SamplingMode, SimError, SimOptions,
};
use microlib_mech::{DbcpVariant, DeadBlockPrefetcher, MechanismKind};
use microlib_model::{FidelityConfig, SystemConfig};
use microlib_trace::{benchmarks, TraceWindow};

fn quick(skip: u64, simulate: u64) -> SimOptions {
    SimOptions {
        window: TraceWindow::new(skip, simulate),
        ..SimOptions::default()
    }
}

#[test]
fn every_mechanism_runs_clean_on_sdram() {
    // Value integrity is checked on every load inside run_one; an Err here
    // means the hierarchy corrupted or lost data.
    for kind in MechanismKind::study_set() {
        let r = run_one(
            &SystemConfig::baseline(),
            kind,
            "gzip",
            &quick(8_000, 4_000),
        )
        .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(
            r.perf.instructions, 4_000,
            "{kind:?} must commit the window"
        );
        assert!(r.perf.ipc() > 0.01, "{kind:?} IPC collapsed");
    }
}

#[test]
fn pointer_chasing_benchmark_runs_clean_with_value_consumers() {
    // mcf exercises the value-carrying paths hardest (pointer loads, CDP
    // scans, decoys).
    for kind in [
        MechanismKind::Cdp,
        MechanismKind::CdpSp,
        MechanismKind::Markov,
    ] {
        let r = run_one(&SystemConfig::baseline(), kind, "mcf", &quick(8_000, 4_000))
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(r.perf.instructions, 4_000);
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run_one(
        &SystemConfig::baseline(),
        MechanismKind::Ghb,
        "swim",
        &quick(5_000, 4_000),
    )
    .unwrap();
    let b = run_one(
        &SystemConfig::baseline(),
        MechanismKind::Ghb,
        "swim",
        &quick(5_000, 4_000),
    )
    .unwrap();
    assert_eq!(a.perf, b.perf);
    assert_eq!(a.l1d, b.l1d);
    assert_eq!(a.l2, b.l2);
    assert_eq!(a.memory, b.memory);
}

#[test]
fn different_seeds_change_the_trace() {
    let mut opts = quick(5_000, 4_000);
    let a = run_one(
        &SystemConfig::baseline(),
        MechanismKind::Base,
        "swim",
        &opts,
    )
    .unwrap();
    opts.seed ^= 0xDEAD;
    let b = run_one(
        &SystemConfig::baseline(),
        MechanismKind::Base,
        "swim",
        &opts,
    )
    .unwrap();
    assert_ne!(a.perf.cycles, b.perf.cycles, "seed must matter");
}

#[test]
fn writeback_fault_injection_is_caught() {
    // The paper's §2.2 anecdote: a forgotten dirty bit silently corrupts
    // data unless values are checked. Reproduce via fault injection at the
    // lowest level (no public simulator path drops writebacks).
    use microlib_cpu::OoOCore;
    use microlib_mem::MemorySystem;
    use microlib_model::{CoreConfig, Cycle};
    use microlib_trace::Workload;

    let workload = Workload::new(benchmarks::by_name("gzip").unwrap(), 7);
    let mut mem = MemorySystem::new(SystemConfig::baseline_constant_memory(), Vec::new()).unwrap();
    workload.initialize(mem.functional_mut());
    mem.inject_writeback_drop_fault(true);
    let mut core = OoOCore::new(CoreConfig::baseline());
    let mut trace = workload.stream().take(30_000);
    let mut now = Cycle::ZERO;
    let mut violated = false;
    while !core.drained() && now.raw() < 3_000_000 {
        let completions = mem.begin_cycle(now);
        core.cycle(now, &completions, &mut mem, &mut trace);
        if mem.integrity_error().is_some() {
            violated = true;
            break;
        }
        now += 1;
    }
    assert!(
        violated,
        "dropped writebacks must be detected by the value checker"
    );
}

#[test]
fn idealized_fidelity_is_at_least_as_fast() {
    let mut detailed_cfg = SystemConfig::baseline_constant_memory();
    detailed_cfg.fidelity = FidelityConfig::microlib();
    let mut ideal_cfg = detailed_cfg.clone();
    ideal_cfg.fidelity = FidelityConfig::simplescalar_like();
    let opts = quick(5_000, 5_000);
    let detailed = run_one(&detailed_cfg, MechanismKind::Base, "mgrid", &opts).unwrap();
    let ideal = run_one(&ideal_cfg, MechanismKind::Base, "mgrid", &opts).unwrap();
    assert!(
        ideal.perf.ipc() >= detailed.perf.ipc() * 0.99,
        "removing hazards must not hurt: ideal {} vs detailed {}",
        ideal.perf.ipc(),
        detailed.perf.ipc()
    );
}

#[test]
fn warmup_removes_cold_misses() {
    let cold = run_one(
        &SystemConfig::baseline_constant_memory(),
        MechanismKind::Base,
        "crafty",
        &quick(0, 4_000),
    )
    .unwrap();
    let warm = run_one(
        &SystemConfig::baseline_constant_memory(),
        MechanismKind::Base,
        "crafty",
        &quick(30_000, 4_000),
    )
    .unwrap();
    assert!(
        warm.l1d.miss_ratio().unwrap() < cold.l1d.miss_ratio().unwrap(),
        "functional warmup must reduce the miss ratio: warm {:?} vs cold {:?}",
        warm.l1d.miss_ratio(),
        cold.l1d.miss_ratio()
    );
}

#[test]
fn matrix_base_column_is_unity() {
    let cfg = ExperimentConfig {
        system: SystemConfig::baseline_constant_memory(),
        benchmarks: vec!["swim".into(), "gzip".into()],
        mechanisms: vec![MechanismKind::Base, MechanismKind::Tp, MechanismKind::Sp],
        window: TraceWindow::new(5_000, 3_000),
        seed: 3,
        threads: 0,
        sampling: SamplingMode::Full,
    };
    let m = run_matrix(&cfg).unwrap();
    for b in ["swim", "gzip"] {
        assert!((m.speedup(b, MechanismKind::Base) - 1.0).abs() < 1e-12);
        for k in [MechanismKind::Tp, MechanismKind::Sp] {
            let s = m.speedup(b, k);
            assert!(
                s > 0.5 && s < 3.0,
                "{b}/{k:?} speedup {s} out of plausible range"
            );
        }
    }
}

#[test]
fn ghb_beats_base_on_streaming_workload() {
    // The paper's headline winner must at least win its home turf.
    let opts = quick(40_000, 10_000);
    let base = run_one(
        &SystemConfig::baseline(),
        MechanismKind::Base,
        "swim",
        &opts,
    )
    .unwrap();
    let ghb = run_one(&SystemConfig::baseline(), MechanismKind::Ghb, "swim", &opts).unwrap();
    assert!(
        ghb.perf.speedup_over(&base.perf) > 1.05,
        "GHB speedup on swim too small: {:.3}",
        ghb.perf.speedup_over(&base.perf)
    );
}

#[test]
fn cdp_degrades_mcf() {
    // Fig 4 anecdote: "CDP also does degrade the performance of
    // pointer-intensive benchmarks like mcf (0.75 speedup)".
    let opts = quick(40_000, 15_000);
    let base = run_one(&SystemConfig::baseline(), MechanismKind::Base, "mcf", &opts).unwrap();
    let cdp = run_one(&SystemConfig::baseline(), MechanismKind::Cdp, "mcf", &opts).unwrap();
    assert!(
        cdp.perf.speedup_over(&base.perf) < 1.0,
        "CDP must hurt mcf: {:.3}",
        cdp.perf.speedup_over(&base.perf)
    );
}

#[test]
fn dbcp_variants_differ() {
    let opts = quick(30_000, 10_000);
    let cfg = SystemConfig::baseline_constant_memory();
    let base = run_one(&cfg, MechanismKind::Base, "facerec", &opts).unwrap();
    let fixed = run_one(&cfg, MechanismKind::Dbcp, "facerec", &opts).unwrap();
    let initial = run_custom(
        &cfg,
        Box::new(DeadBlockPrefetcher::new(DbcpVariant::Initial)),
        MechanismKind::DbcpInitial,
        "facerec",
        &opts,
    )
    .unwrap();
    // Both run clean; the fixed variant must not be worse than the buggy
    // one (Fig 3's direction).
    let sf = fixed.perf.speedup_over(&base.perf);
    let si = initial.perf.speedup_over(&base.perf);
    assert!(sf >= si - 0.02, "fixed {sf:.3} vs initial {si:.3}");
}

#[test]
fn unknown_benchmark_error_reports_name() {
    let e = run_one(
        &SystemConfig::baseline(),
        MechanismKind::Base,
        "doom3",
        &quick(0, 100),
    )
    .unwrap_err();
    match e {
        SimError::UnknownBenchmark(n) => assert_eq!(n, "doom3"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn all_26_benchmarks_run_clean_on_base() {
    for bench in benchmarks::NAMES {
        let r = run_one(
            &SystemConfig::baseline_constant_memory(),
            MechanismKind::Base,
            bench,
            &quick(4_000, 2_000),
        )
        .unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert_eq!(r.perf.instructions, 2_000, "{bench}");
    }
}
