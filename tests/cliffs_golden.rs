//! The cliffs-golden regression gate: every committed cliff record in
//! `cliffs-golden/` is re-probed through **both** model tiers and the
//! re-rendered record must match the committed bytes exactly.
//!
//! The corpus pins the two tiers *against each other*: a change to the
//! detailed simulator, the analytic CPI stack, the warm counters, the
//! ranking, or the record format itself shows up as a byte diff here.
//! The CI golden job also runs this test with `MICROLIB_MINE_PERTURB`
//! set and asserts it FAILS — proving the gate actually watches the
//! numbers.
//!
//! Regenerate the corpus (after an intentional model change) with:
//!
//! ```text
//! rm -rf cliffs-golden && \
//!   cargo run --release --bin run_all -- --mine --mine-export cliffs-golden
//! ```

use microlib::{ArtifactStore, SimOptions};
use microlib_miner::{perturb_from_env, probe, CliffRecord, ConfigDelta};
use microlib_trace::TraceWindow;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cliffs-golden")
}

fn corpus() -> Vec<(PathBuf, String)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("cliffs-golden/ exists (regenerate with run_all --mine --mine-export)")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("cliff-") && n.ends_with(".txt"))
        })
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("readable record");
            (p, text)
        })
        .collect()
}

#[test]
fn corpus_is_nonempty_and_well_formed() {
    let records = corpus();
    assert!(
        records.len() >= 5,
        "cliffs-golden/ holds {} records, expected at least 5",
        records.len()
    );
    for (path, text) in &records {
        let record = CliffRecord::parse(text)
            .unwrap_or_else(|| panic!("{} is malformed or its id is stale", path.display()));
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some(format!("cliff-{:016x}.txt", record.id()).as_str()),
            "file name must carry the record's content id"
        );
        assert!(
            text.lines().any(|l| l.starts_with("repro: ")),
            "{} lacks a repro line",
            path.display()
        );
    }
}

/// Re-probes every committed cliff and byte-compares the re-rendered
/// record. One shared store keeps each benchmark's baseline probe (and
/// its detailed runs) memoized across records.
#[test]
fn every_committed_cliff_reproduces_byte_identically() {
    let store = ArtifactStore::new();
    let mut checked = 0usize;
    for (path, text) in corpus() {
        let golden =
            CliffRecord::parse(&text).unwrap_or_else(|| panic!("{} is malformed", path.display()));
        let opts = SimOptions {
            seed: golden.seed,
            window: TraceWindow::new(golden.skip, golden.simulate),
            ..SimOptions::default()
        };
        let minimal = ConfigDelta::parse(&golden.minimal)
            .unwrap_or_else(|| panic!("{}: bad minimal delta", path.display()));
        let baseline = probe(
            &store,
            &ConfigDelta::default(),
            &golden.benchmark,
            &golden.mechanisms,
            &opts,
        )
        .unwrap_or_else(|e| panic!("{}: baseline probe failed: {e}", path.display()));
        let cell = probe(
            &store,
            &minimal,
            &golden.benchmark,
            &golden.mechanisms,
            &opts,
        )
        .unwrap_or_else(|e| panic!("{}: cell probe failed: {e}", path.display()));
        let kind = cell.cliff_kind(&baseline, golden.bound).unwrap_or_else(|| {
            panic!("{}: the minimal delta is no longer a cliff", path.display())
        });
        let rebuilt = CliffRecord::from_probe(
            &golden.benchmark,
            kind,
            &golden.original,
            &golden.minimal,
            golden.seed,
            golden.skip,
            golden.simulate,
            golden.bound,
            perturb_from_env(),
            baseline.max_rel_err,
            cell.divergence_shift(&baseline),
            &cell,
        );
        assert_eq!(
            rebuilt.render(),
            text,
            "{}: re-probed record drifted from the committed bytes \
             (a tier's numbers changed; regenerate the corpus if intentional)",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 5, "gate re-checked only {checked} records");
}
