//! In-process tests of the fault-tolerance substrate: lease claiming and
//! stale-lease reclaim, attempt counting and poison-cell quarantine,
//! single-flight deduplication across stores sharing one cache dir, and
//! the fault-injection harness's torn-write / panic kinds recovering to
//! identical results. (Process-level kinds — abort, stall, worker
//! respawn — are exercised end-to-end in
//! `crates/bench/tests/sharded_run_all.rs`.)

use microlib::model::codec::fnv1a;
use microlib::{
    fault, run_one_with, ArtifactStore, Claim, LeaseManager, RunResult, SimError, SimOptions,
};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::TraceWindow;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, SystemTime};

/// Serializes tests that arm the (process-global) fault harness.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> std::sync::MutexGuard<'static, ()> {
    // A panicking armed test must not poison the rest of the suite.
    FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("microlib-fault-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(window: TraceWindow) -> SimOptions {
    SimOptions {
        window,
        ..SimOptions::default()
    }
}

fn lease_path(root: &Path, key: &str) -> PathBuf {
    root.join("lease")
        .join(format!("{:016x}.lease", fnv1a(key.as_bytes())))
}

/// Hand-crafts a lease file as a *foreign* process would leave it (no
/// heartbeat runs for it), aged by `age`.
fn plant_lease(root: &Path, key: &str, body: &str, age: Duration) {
    let path = lease_path(root, key);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(&path, body).unwrap();
    let f = fs::OpenOptions::new().append(true).open(&path).unwrap();
    f.set_modified(SystemTime::now() - age).unwrap();
}

fn assert_same_result(a: &RunResult, b: &RunResult) {
    assert_eq!(a.benchmark, b.benchmark);
    assert_eq!(a.mechanism, b.mechanism);
    assert_eq!(a.perf, b.perf);
    assert_eq!(a.l1d, b.l1d);
    assert_eq!(a.memory, b.memory);
}

#[test]
fn fresh_lease_is_busy_and_stale_lease_is_reclaimed() {
    let dir = tmp_dir("stale-reclaim");
    let mgr = LeaseManager::with_params(&dir, Duration::from_millis(500), 3);
    let key = "swim|Ghb|some-cell-key";
    let body = "microlib-lease v1\npid 999999\nworker 7\nattempts 1\nkey swim\n";

    // A lease touched moments ago belongs to a live worker: back off.
    plant_lease(&dir, key, body, Duration::ZERO);
    assert!(matches!(mgr.claim(key, "swim x GHB", "repro"), Claim::Busy));

    // The same lease long past the timeout is a dead worker's: steal it
    // and claim the cell.
    plant_lease(&dir, key, body, Duration::from_secs(3600));
    match mgr.claim(key, "swim x GHB", "repro") {
        Claim::Acquired(guard) => {
            assert!(
                lease_path(&dir, key).exists(),
                "reclaimed under a new lease"
            );
            let text = fs::read_to_string(lease_path(&dir, key)).unwrap();
            assert!(
                text.contains(&format!("pid {}", std::process::id())),
                "the new lease is ours: {text}"
            );
            guard.complete();
            assert!(!lease_path(&dir, key).exists(), "completion releases");
        }
        other => panic!("expected to reclaim the stale lease, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_lease_body_is_governed_by_mtime() {
    let dir = tmp_dir("torn-lease");
    let mgr = LeaseManager::with_params(&dir, Duration::from_millis(500), 3);
    let key = "gcc|Tcp|torn-lease-key";
    // Garbage content — a torn lease-file write. Fresh mtime must still
    // read as Busy (mtime is the liveness authority, not the body)…
    plant_lease(&dir, key, "gar", Duration::ZERO);
    assert!(matches!(mgr.claim(key, "gcc x TCP", "repro"), Claim::Busy));
    // …and a stale mtime must be stolen like any dead worker's lease.
    plant_lease(&dir, key, "gar", Duration::from_secs(3600));
    assert!(matches!(
        mgr.claim(key, "gcc x TCP", "repro"),
        Claim::Acquired(_)
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn clean_exit_sweep_releases_held_leases() {
    let dir = tmp_dir("release-owned");
    let mgr = LeaseManager::with_params(&dir, Duration::from_secs(10), 3);
    let key = "swim|Base|sweep-key";
    let guard = match mgr.claim(key, "swim x Base", "repro") {
        Claim::Acquired(g) => g,
        other => panic!("expected to claim, got {other:?}"),
    };
    // Simulate an exit path that never resolved the guard (leaked cell).
    std::mem::forget(guard);
    assert!(lease_path(&dir, key).exists());
    assert_eq!(
        mgr.release_owned(),
        1,
        "the sweep releases the leaked lease"
    );
    assert!(!lease_path(&dir, key).exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn abandoned_claims_count_toward_quarantine() {
    let dir = tmp_dir("quarantine");
    let mgr = LeaseManager::with_params(&dir, Duration::from_secs(10), 2);
    let key = "mcf|Markov|poison-key";

    // Two claims that end crash-like (abandon keeps the attempt counter
    // and expires the lease immediately)…
    for attempt in 1..=2u32 {
        match mgr.claim(key, "mcf x Markov", "MICROLIB_SEED=0x7 run_all --no-cache") {
            Claim::Acquired(guard) => {
                assert_eq!(guard.attempts, attempt);
                guard.abandon();
            }
            other => panic!("attempt {attempt}: expected claim, got {other:?}"),
        }
    }
    // …and the third claimer refuses the cell and writes the marker.
    match mgr.claim(key, "mcf x Markov", "MICROLIB_SEED=0x7 run_all --no-cache") {
        Claim::Quarantined { attempts } => assert_eq!(attempts, 2),
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(mgr.quarantined(key), Some(2), "marker persists");

    let reports = LeaseManager::quarantine_reports(&dir);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].cell, "mcf x Markov");
    assert_eq!(reports[0].attempts, 2);
    assert!(reports[0].repro.contains("run_all --no-cache"));
    assert_eq!(reports[0].key, key);

    // A *completed* claim, by contrast, clears the attempt history.
    let key2 = "mcf|Markov|healthy-key";
    match mgr.claim(key2, "cell", "repro") {
        Claim::Acquired(g) => g.abandon(),
        other => panic!("{other:?}"),
    }
    match mgr.claim(key2, "cell", "repro") {
        Claim::Acquired(g) => {
            assert_eq!(g.attempts, 2, "abandoned attempt was counted");
            g.complete();
        }
        other => panic!("{other:?}"),
    }
    match mgr.claim(key2, "cell", "repro") {
        Claim::Acquired(g) => assert_eq!(g.attempts, 1, "completion reset the counter"),
        other => panic!("{other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn single_flight_across_stores_computes_each_cell_once() {
    let dir = tmp_dir("single-flight");
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(TraceWindow::new(500, 1_500));
    let store = |_: u32| {
        ArtifactStore::new()
            .with_disk_cache(&dir)
            .with_lease_manager(LeaseManager::with_params(&dir, Duration::from_secs(10), 3))
    };
    let (a, b) = (store(0), store(1));
    let (ra, rb) = std::thread::scope(|s| {
        let ta = s.spawn(|| run_one_with(&a, &config, MechanismKind::Ghb, "swim", &o).unwrap());
        let tb = s.spawn(|| run_one_with(&b, &config, MechanismKind::Ghb, "swim", &o).unwrap());
        (ta.join().unwrap(), tb.join().unwrap())
    });
    assert_same_result(&ra, &rb);
    let (sa, sb) = (a.stats(), b.stats());
    assert_eq!(
        sa.memo_misses + sb.memo_misses,
        1,
        "exactly one store computed the cell (a: {sa:?}, b: {sb:?})"
    );
    assert_eq!(sa.lease_claims + sb.lease_claims, 1);
    assert!(
        !dir.join("lease")
            .read_dir()
            .map(|mut d| d.next().is_some())
            .unwrap_or(false),
        "no lease survives two clean completions"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_memo_write_recovers_byte_identical() {
    let _guard = fault_guard();
    let dir = tmp_dir("torn-memo");
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(TraceWindow::new(1_000, 1_500));

    fault::arm("disk-write@memo:1:torn").unwrap();
    let first = ArtifactStore::new().with_disk_cache(&dir);
    let torn = run_one_with(&first, &config, MechanismKind::Tcp, "gcc", &o).unwrap();
    fault::disarm();
    // The journal write was torn (half the framed entry at the final
    // path); the in-RAM result is still whole.
    let memo_files: Vec<PathBuf> = dir
        .join("memo")
        .read_dir()
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(memo_files.len(), 1, "the torn entry is on disk");

    // A fresh process must reject the torn entry, recompute the identical
    // result, and heal the journal.
    let second = ArtifactStore::new().with_disk_cache(&dir);
    let healed = run_one_with(&second, &config, MechanismKind::Tcp, "gcc", &o).unwrap();
    assert_same_result(&torn, &healed);
    assert_eq!(second.stats().memo_disk_hits, 0, "torn entry never served");
    assert_eq!(second.stats().memo_misses, 1, "recomputed once");

    let third = ArtifactStore::new().with_disk_cache(&dir);
    let served = run_one_with(&third, &config, MechanismKind::Tcp, "gcc", &o).unwrap();
    assert_same_result(&torn, &served);
    assert_eq!(third.stats().memo_disk_hits, 1, "healed entry serves");
    assert_eq!(third.stats().memo_misses, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_lease_write_still_coordinates() {
    let _guard = fault_guard();
    let dir = tmp_dir("torn-lease-write");
    let mgr = LeaseManager::with_params(&dir, Duration::from_secs(10), 3);
    let key = "swim|Base|torn-write-key";
    fault::arm("lease-write:1:torn").unwrap();
    let guard = match mgr.claim(key, "cell", "repro") {
        Claim::Acquired(g) => g,
        other => panic!("{other:?}"),
    };
    fault::disarm();
    // The torn lease body is half-written, but the file exists with a
    // fresh mtime: another claimer still reads Busy.
    let other = LeaseManager::with_params(&dir, Duration::from_secs(10), 3);
    assert!(matches!(other.claim(key, "cell", "repro"), Claim::Busy));
    guard.complete();
    assert!(matches!(
        other.claim(key, "cell", "repro"),
        Claim::Acquired(_)
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn panic_fault_abandons_the_lease_then_recovery_completes_the_cell() {
    let _guard = fault_guard();
    let dir = tmp_dir("panic-cell");
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(TraceWindow::new(2_000, 1_000));
    let store = || {
        ArtifactStore::new()
            .with_disk_cache(&dir)
            .with_lease_manager(LeaseManager::with_params(&dir, Duration::from_secs(10), 3))
    };

    fault::arm("cell@swim+Base:1:panic").unwrap();
    let crashing = store();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_one_with(&crashing, &config, MechanismKind::Base, "swim", &o)
    }));
    fault::disarm();
    assert!(outcome.is_err(), "the injected panic unwinds to the caller");
    let lease_dir = dir.join("lease");
    let attempts: Vec<PathBuf> = lease_dir
        .read_dir()
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("attempts"))
        .collect();
    assert_eq!(attempts.len(), 1, "the crashed attempt stays on record");
    assert_eq!(fs::read_to_string(&attempts[0]).unwrap().trim(), "1");

    // Recovery: a fresh store reclaims the abandoned (epoch-dated) lease
    // immediately, computes the cell, and clears the attempt history.
    let recovered = run_one_with(&store(), &config, MechanismKind::Base, "swim", &o).unwrap();
    assert_eq!(recovered.perf.instructions, 1_000);
    assert!(!attempts[0].exists(), "completion cleared the counter");

    // And the journaled memo now serves without recomputing.
    let warm = store();
    let served = run_one_with(&warm, &config, MechanismKind::Base, "swim", &o).unwrap();
    assert_same_result(&recovered, &served);
    assert_eq!(warm.stats().memo_misses, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn poison_cell_is_quarantined_and_the_rest_completes() {
    let _guard = fault_guard();
    let dir = tmp_dir("poison");
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let o = opts(TraceWindow::new(3_000, 1_000));
    let store = || {
        ArtifactStore::new()
            .with_disk_cache(&dir)
            .with_lease_manager(LeaseManager::with_params(&dir, Duration::from_secs(10), 2))
    };

    // A poison cell: every claim of swim x Base panics ('*' = no one-shot
    // sentinel). Two crashed attempts exhaust the budget of 2.
    fault::arm("cell@swim+Base:*:panic").unwrap();
    let s = store();
    for _ in 0..2 {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one_with(&s, &config, MechanismKind::Base, "swim", &o)
        }));
        assert!(outcome.is_err());
    }
    // The third attempt quarantines instead of crashing — even with the
    // fault still armed, the cell is never executed again.
    let verdict = run_one_with(&s, &config, MechanismKind::Base, "swim", &o);
    fault::disarm();
    match verdict {
        Err(SimError::Quarantined {
            benchmark,
            attempts,
        }) => {
            assert_eq!(benchmark, "swim");
            assert_eq!(attempts, 2);
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert_eq!(s.stats().cells_quarantined, 1);

    // Graceful degradation: every *other* cell still computes on the
    // same store, and the verdict is reportable with a repro command.
    let healthy = run_one_with(&s, &config, MechanismKind::Ghb, "swim", &o).unwrap();
    assert_eq!(healthy.perf.instructions, 1_000);
    let reports = LeaseManager::quarantine_reports(&dir);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].cell, "swim x Base");
    assert!(
        reports[0]
            .repro
            .contains("MICROLIB_SKIP=3000 MICROLIB_SIM=1000"),
        "repro pins the window: {}",
        reports[0].repro
    );
    let _ = fs::remove_dir_all(&dir);
}
