//! End-to-end checks of SimPoint-sampled simulation: the weighted
//! whole-window reconstruction must agree with full simulation within the
//! reported error bound, for every study mechanism, on a strongly-phased
//! workload — and sampled campaigns must keep the engine's determinism
//! guarantees (thread count, artifact store on/off).

use microlib::{
    run_one, run_one_with, ArtifactStore, Campaign, ExperimentConfig, SamplingMode, SimOptions,
};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::TraceWindow;
use std::sync::Arc;

/// The shared scenario: a phased synthetic benchmark over a window wide
/// enough for six 5 000-instruction intervals.
const BENCH: &str = "pulse";

fn window() -> TraceWindow {
    TraceWindow::new(5_000, 30_000)
}

fn sampled_opts() -> SimOptions {
    SimOptions {
        seed: 0xC0FFEE,
        window: window(),
        sampling: SamplingMode::SimPoints {
            interval: 5_000,
            max_clusters: 3,
            warmup: 0,
        },
        ..SimOptions::default()
    }
}

fn full_opts() -> SimOptions {
    SimOptions {
        sampling: SamplingMode::Full,
        ..sampled_opts()
    }
}

fn cpi(r: &microlib::RunResult) -> f64 {
    r.perf.cycles as f64 / r.perf.instructions as f64
}

/// Every mechanism's sampled CPI lands within the estimate's own reported
/// error bound of the full-simulation CPI, and the reconstruction
/// bookkeeping holds (window-length instruction count, weights sum to 1).
#[test]
fn sampled_cpi_within_reported_bound_for_every_mechanism() {
    let config = Arc::new(SystemConfig::baseline_constant_memory());
    let store = ArtifactStore::new();
    for kind in MechanismKind::study_set() {
        let full = run_one_with(&store, &config, kind, BENCH, &full_opts())
            .unwrap_or_else(|e| panic!("{kind:?} full: {e}"));
        let sampled = run_one_with(&store, &config, kind, BENCH, &sampled_opts())
            .unwrap_or_else(|e| panic!("{kind:?} sampled: {e}"));

        assert_eq!(sampled.perf.instructions, window().simulate, "{kind:?}");
        assert!(
            full.sampling.is_none(),
            "{kind:?}: full runs carry no estimate"
        );
        let est = sampled
            .sampling
            .as_ref()
            .unwrap_or_else(|| panic!("{kind:?}: sampled result lacks its estimate"));
        let weights: f64 = est.points.iter().map(|p| p.weight).sum();
        assert!(
            (weights - 1.0).abs() < 1e-9,
            "{kind:?}: weights sum {weights}"
        );
        assert!(
            (est.cpi - cpi(&sampled)).abs() < 1e-3,
            "{kind:?}: estimate and result disagree"
        );

        let err = (cpi(&sampled) - cpi(&full)).abs();
        assert!(
            err <= est.cpi_error_bound,
            "{kind:?}: |sampled-full| CPI error {err:.4} exceeds reported bound {:.4} \
             (full {:.4}, sampled {:.4})",
            est.cpi_error_bound,
            cpi(&full),
            cpi(&sampled)
        );
    }
}

/// The phased benchmark actually phases: the plan keeps more than one
/// representative interval with genuinely different CPIs.
#[test]
fn phased_benchmark_yields_multiple_weighted_slices() {
    let r = run_one(
        &SystemConfig::baseline_constant_memory(),
        MechanismKind::Base,
        BENCH,
        &sampled_opts(),
    )
    .unwrap();
    let est = r.sampling.as_ref().expect("sampled estimate");
    assert!(
        est.points.len() >= 2,
        "pulse alternates phases, got {} slice(s)",
        est.points.len()
    );
    let cpis: Vec<f64> = est.points.iter().map(|p| p.cpi).collect();
    let max = cpis.iter().cloned().fold(f64::MIN, f64::max);
    let min = cpis.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max > min * 1.2, "phases should differ in CPI: {cpis:?}");
}

/// A sampled campaign returns bit-identical results for any thread count
/// and with the artifact store on or off (plan from replay vs generation,
/// warm from checkpoints vs cold — all the same numbers).
#[test]
fn sampled_campaign_deterministic_across_threads_and_store() {
    let cfg = |threads: usize| ExperimentConfig {
        system: SystemConfig::baseline_constant_memory(),
        benchmarks: vec!["pulse".into(), "drift".into()],
        mechanisms: vec![MechanismKind::Base, MechanismKind::Ghb],
        window: TraceWindow::new(2_000, 12_000),
        seed: 7,
        threads,
        sampling: SamplingMode::SimPoints {
            interval: 3_000,
            max_clusters: 3,
            warmup: 0,
        },
    };
    let serial = Campaign::new(cfg(1)).run().unwrap();
    let parallel = Campaign::new(cfg(4)).run().unwrap();
    let cold = Campaign::new(cfg(2)).without_artifacts().run().unwrap();
    for ((a, b), c) in serial
        .cells()
        .iter()
        .zip(parallel.cells())
        .zip(cold.cells())
    {
        let ra = a.outcome.as_ref().unwrap();
        let rb = b.outcome.as_ref().unwrap();
        let rc = c.outcome.as_ref().unwrap();
        assert_eq!(
            ra.perf, rb.perf,
            "{}/{:?}: thread count",
            a.benchmark, a.mechanism
        );
        assert_eq!(ra.l1d, rb.l1d);
        assert_eq!(
            ra.perf, rc.perf,
            "{}/{:?}: store on vs off",
            a.benchmark, a.mechanism
        );
        assert_eq!(ra.l1d, rc.l1d);
        assert_eq!(ra.sampling, rc.sampling);
    }
}

/// A window too short to cluster degrades to one full-weight slice whose
/// measurements equal full simulation exactly.
#[test]
fn degenerate_sampled_window_equals_full_run() {
    let config = SystemConfig::baseline_constant_memory();
    let opts = SimOptions {
        seed: 3,
        window: TraceWindow::new(1_000, 4_000),
        sampling: SamplingMode::SimPoints {
            interval: 10_000, // longer than the window: nothing to cluster
            max_clusters: 4,
            warmup: 0,
        },
        ..SimOptions::default()
    };
    let sampled = run_one(&config, MechanismKind::Ghb, "swim", &opts).unwrap();
    let full = run_one(
        &config,
        MechanismKind::Ghb,
        "swim",
        &SimOptions {
            sampling: SamplingMode::Full,
            ..opts
        },
    )
    .unwrap();
    assert_eq!(sampled.perf, full.perf);
    assert_eq!(sampled.l1d, full.l1d);
    assert_eq!(sampled.l2, full.l2);
    assert_eq!(sampled.sampling.as_ref().unwrap().points.len(), 1);
}

/// Truncated warm-up (`warmup > 0`) still simulates and commits the whole
/// window; the warm state is approximate by design, so only liveness and
/// bookkeeping are asserted.
#[test]
fn truncated_warmup_runs_and_commits() {
    let opts = SimOptions {
        sampling: SamplingMode::SimPoints {
            interval: 5_000,
            max_clusters: 3,
            warmup: 2_000,
        },
        ..sampled_opts()
    };
    let r = run_one(
        &SystemConfig::baseline_constant_memory(),
        MechanismKind::Sp,
        BENCH,
        &opts,
    )
    .unwrap();
    assert_eq!(r.perf.instructions, window().simulate);
    assert!(r.perf.cycles > 0);
}
