//! Satellite tests for the analytic tier the miner compares against:
//! bitwise determinism of `run_analytic`, the CPI breakdown's
//! accounting identity, the cost (area/energy) models over real
//! mechanism hardware budgets, and ranking determinism — including the
//! NaN regression the miner's total-order sort fixed.

use microlib::{rank_by_speedup, run_analytic, ArtifactStore, SimOptions};
use microlib_cost::{AreaModel, CpiModel, EnergyModel};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::TraceWindow;
use std::sync::Arc;

fn opts(seed: u64) -> SimOptions {
    SimOptions {
        seed,
        window: TraceWindow::new(1_000, 3_000),
        ..SimOptions::default()
    }
}

fn baseline() -> Arc<SystemConfig> {
    Arc::new(SystemConfig::baseline())
}

#[test]
fn analytic_tier_is_bitwise_deterministic() {
    // Two independent stores, same inputs: the analytic CPI must agree
    // to the last bit — any hidden iteration-order or float-accumulation
    // nondeterminism here would poison every mined cliff record.
    let config = baseline();
    for mech in [MechanismKind::Base, MechanismKind::Sp, MechanismKind::Ghb] {
        let a = run_analytic(
            &ArtifactStore::new(),
            &config,
            mech,
            "swim",
            &opts(0xC0FFEE),
        )
        .unwrap();
        let b = run_analytic(
            &ArtifactStore::new(),
            &config,
            mech,
            "swim",
            &opts(0xC0FFEE),
        )
        .unwrap();
        assert_eq!(a.cpi().to_bits(), b.cpi().to_bits(), "{mech} CPI drifted");
        assert_eq!(a.counters, b.counters, "{mech} counters drifted");
        assert_eq!(a.breakdown, b.breakdown, "{mech} breakdown drifted");
    }
}

#[test]
fn different_seeds_produce_different_workloads() {
    let config = baseline();
    let store = ArtifactStore::new();
    let a = run_analytic(&store, &config, MechanismKind::Base, "mcf", &opts(1)).unwrap();
    let b = run_analytic(&store, &config, MechanismKind::Base, "mcf", &opts(2)).unwrap();
    assert_ne!(
        (a.counters, a.cpi().to_bits()),
        (b.counters, b.cpi().to_bits()),
        "the seed must reach the synthesized workload"
    );
}

#[test]
fn breakdown_terms_sum_to_the_cpi() {
    let config = baseline();
    let store = ArtifactStore::new();
    let r = run_analytic(&store, &config, MechanismKind::Base, "gcc", &opts(0xC0FFEE)).unwrap();
    let b = r.breakdown;
    assert!(b.base > 0.0, "issue-width term must be positive");
    for (name, term) in [
        ("l1d_extra", b.l1d_extra),
        ("l2", b.l2),
        ("memory", b.memory),
        ("icache", b.icache),
    ] {
        assert!(term >= 0.0, "{name} term is negative: {term}");
    }
    assert!(
        (b.total() - r.cpi()).abs() < 1e-12,
        "cpi() must be the breakdown sum"
    );
}

#[test]
fn slower_memory_raises_the_predicted_cpi() {
    let store = ArtifactStore::new();
    let fast = baseline();
    let mut slow_cfg = SystemConfig::baseline();
    slow_cfg.l2.latency *= 4;
    let slow = Arc::new(slow_cfg);
    let f = run_analytic(&store, &fast, MechanismKind::Base, "swim", &opts(7)).unwrap();
    let s = run_analytic(&store, &slow, MechanismKind::Base, "swim", &opts(7)).unwrap();
    // Same workload, same counters — only the configured latency moved.
    assert_eq!(f.counters, s.counters);
    assert!(s.cpi() > f.cpi(), "a 4x L2 latency must cost CPI");
    // The shift is attributable: the model itself predicts it from the
    // identical counters.
    let refit = CpiModel::for_config(&slow).predict(&f.counters);
    assert_eq!(refit.total().to_bits(), s.cpi().to_bits());
}

#[test]
fn cost_models_separate_big_and_small_mechanism_tables() {
    // Fig 5's qualitative ordering, straight from the mechanisms' own
    // hardware budgets: correlation-table monsters (Markov, DBCP) cost
    // real estate; SP's stride table is cheap.
    let area = AreaModel::default();
    let energy = EnergyModel::default();
    let mm2 = |k: MechanismKind| area.budget_area_mm2(&k.build().hardware());
    let ratio = |k: MechanismKind| area.cost_ratio(&k.build().hardware());
    assert!(mm2(MechanismKind::Markov) > 10.0 * mm2(MechanismKind::Sp));
    assert!(mm2(MechanismKind::Dbcp) > 10.0 * mm2(MechanismKind::Sp));
    assert!(ratio(MechanismKind::Sp) < 0.10, "SP must stay cheap");
    assert!(ratio(MechanismKind::Markov) > ratio(MechanismKind::Ghb));
    // Per-access energy follows table size for the dominant table.
    let per_access = |k: MechanismKind| {
        k.build()
            .hardware()
            .tables
            .iter()
            .map(|t| energy.access_energy_nj(t))
            .fold(0.0, f64::max)
    };
    assert!(per_access(MechanismKind::Markov) > per_access(MechanismKind::Sp));
}

#[test]
fn analytic_ranking_is_deterministic_across_seeds() {
    let config = baseline();
    let mechs = [MechanismKind::Tp, MechanismKind::Sp, MechanismKind::Ghb];
    for seed in [0xC0FFEE_u64, 1, 42, 0xDEAD_BEEF] {
        let rank_once = || {
            let store = ArtifactStore::new();
            let base = run_analytic(&store, &config, MechanismKind::Base, "swim", &opts(seed))
                .unwrap()
                .cpi();
            let rows: Vec<(MechanismKind, f64)> = mechs
                .iter()
                .map(|&m| {
                    let cpi = run_analytic(&store, &config, m, "swim", &opts(seed))
                        .unwrap()
                        .cpi();
                    (m, base / cpi)
                })
                .collect();
            rank_by_speedup(&rows)
                .into_iter()
                .map(|r| r.mechanism)
                .collect::<Vec<_>>()
        };
        let first = rank_once();
        assert_eq!(first.len(), mechs.len(), "ranking must be a total order");
        assert_eq!(first, rank_once(), "seed {seed:#x} ranks unstably");
    }
}

#[test]
fn ranking_sinks_nan_speedups_below_every_real_value() {
    // Regression: `total_cmp` orders positive NaN *above* +inf, so a
    // descending sort once put a NaN (zero-cycle degenerate cell) at
    // rank 1 and made the order depend on which tier produced it.
    let rows = [
        (MechanismKind::Sp, f64::NAN),
        (MechanismKind::Tp, 1.05),
        (MechanismKind::Ghb, f64::INFINITY),
    ];
    let ranked: Vec<MechanismKind> = rank_by_speedup(&rows)
        .into_iter()
        .map(|r| r.mechanism)
        .collect();
    assert_eq!(
        ranked,
        vec![MechanismKind::Ghb, MechanismKind::Tp, MechanismKind::Sp]
    );
}
