//! Property-based tests (proptest) over the core data structures and the
//! end-to-end simulator invariants.

use microlib_mech::{AssocTable, MechanismKind};
use microlib_mem::{CacheArray, MemToken, MshrFile, MshrTarget, Sdram, SparseMemory};
use microlib_model::{
    Addr, CacheConfig, Cycle, LineData, PrefetchDestination, PrefetchQueue, PrefetchRequest,
    SdramConfig, SystemConfig,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn small_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 1024,
        assoc: 2,
        ..CacheConfig::baseline_l1d()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache never holds more lines than its capacity, never holds the
    /// same line twice, and a just-filled line is always found.
    #[test]
    fn cache_array_capacity_and_uniqueness(addrs in prop::collection::vec(0u64..1u64 << 20, 1..200)) {
        let mut cache = CacheArray::new(small_cache()).unwrap();
        for a in &addrs {
            let addr = Addr::new(a & !7);
            if !cache.contains(addr) {
                cache.fill(addr, LineData::zeroed(4), false, false);
            }
            prop_assert!(cache.contains(addr));
        }
        prop_assert!(cache.occupancy() <= 32); // 1 KB / 32 B
        let mut lines: Vec<u64> = cache.resident_lines().map(Addr::raw).collect();
        let total = lines.len();
        lines.sort_unstable();
        lines.dedup();
        prop_assert_eq!(lines.len(), total, "duplicate resident line");
    }

    /// Set/tag decomposition round-trips for arbitrary addresses.
    #[test]
    fn cache_index_round_trip(addr in 0u64..u64::MAX / 2) {
        let cache = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
        let a = Addr::new(addr);
        let (set, tag) = cache.index_of(a);
        prop_assert_eq!(cache.address_of(set, tag), a.line(32));
    }

    /// Written words read back; unwritten words read zero.
    #[test]
    fn sparse_memory_read_your_writes(writes in prop::collection::vec((0u64..1u64 << 30, any::<u64>()), 1..100)) {
        let mut mem = SparseMemory::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (addr, value) in &writes {
            let aligned = addr & !7;
            mem.write_word(Addr::new(aligned), *value);
            model.insert(aligned, *value);
        }
        for (addr, value) in &model {
            prop_assert_eq!(mem.read_word(Addr::new(*addr)), *value);
        }
        prop_assert_eq!(mem.read_word(Addr::new((1u64 << 40) + 8)), 0);
    }

    /// The MSHR file never exceeds its entry capacity and all accepted
    /// targets come back exactly once at completion.
    #[test]
    fn mshr_occupancy_and_target_conservation(lines in prop::collection::vec(0u64..64, 1..100)) {
        let mut mshr = MshrFile::new(4, 2);
        mshr.set_model_busy_cycle(false);
        let mut accepted = 0u64;
        for (i, l) in lines.iter().enumerate() {
            let line = Addr::new(l * 64);
            let t = MshrTarget { req: None, addr: line, is_store: false, value: 0 };
            if mshr.try_insert(line, t, false, false, Cycle::new(i as u64)).accepted() {
                accepted += 1;
            }
            prop_assert!(mshr.len() <= 4);
        }
        // Drain and count targets.
        let mut drained = 0u64;
        for l in 0u64..64 {
            if let Some(entry) = mshr.complete(Addr::new(l * 64)) {
                drained += entry.targets.len() as u64;
            }
        }
        prop_assert_eq!(drained, accepted, "targets lost or duplicated");
    }

    /// Prefetch queues never exceed capacity and FIFO order is preserved
    /// among accepted requests.
    #[test]
    fn prefetch_queue_bounded_fifo(lines in prop::collection::vec(0u64..128, 1..200), cap in 1usize..32) {
        let mut q = PrefetchQueue::new(cap);
        let mut accepted = Vec::new();
        for l in &lines {
            let req = PrefetchRequest { line: Addr::new(l * 64), destination: PrefetchDestination::Cache };
            if q.push(req) {
                accepted.push(l * 64);
            }
            prop_assert!(q.len() <= cap);
        }
        let mut popped = Vec::new();
        while let Some(r) = q.pop() {
            popped.push(r.line.raw());
        }
        prop_assert_eq!(&popped[..], &accepted[..popped.len()], "FIFO violated");
    }

    /// Every transaction submitted to the SDRAM completes, and a row hit is
    /// never slower than the same access after a conflict.
    #[test]
    fn sdram_completes_all_traffic(lines in prop::collection::vec(0u64..1u64 << 22, 1..40)) {
        let mut mem = Sdram::new(SdramConfig::baseline());
        let mut submitted = 0u64;
        let mut done = 0u64;
        let mut queue: Vec<u64> = lines.clone();
        let mut now = 0u64;
        while done < lines.len() as u64 && now < 1_000_000 {
            if let Some(l) = queue.last().copied() {
                if mem.try_push(MemToken(submitted), Addr::new(l * 64), false, Cycle::new(now)) {
                    queue.pop();
                    submitted += 1;
                }
            }
            done += mem.tick(Cycle::new(now)).len() as u64;
            now += 1;
        }
        prop_assert_eq!(done, lines.len() as u64, "SDRAM lost transactions");
        prop_assert_eq!(mem.in_service_len(), 0);
    }

    /// The associative table's LRU keeps the most recently touched entry.
    #[test]
    fn assoc_table_keeps_mru(keys in prop::collection::vec(0u64..1000, 2..50)) {
        let mut t: AssocTable<u64> = AssocTable::new(4, 0); // 4-entry fully assoc
        for k in &keys {
            t.insert(*k, *k);
        }
        let last = *keys.last().unwrap();
        prop_assert!(t.contains(&last), "most recent insert must survive");
    }

    /// Workload streams are reproducible and causally well-formed for
    /// arbitrary seeds.
    #[test]
    fn workload_streams_well_formed(seed in any::<u64>(), bench_idx in 0usize..26) {
        use microlib_trace::{benchmarks, Workload};
        let name = benchmarks::NAMES[bench_idx];
        let w = Workload::new(benchmarks::by_name(name).unwrap(), seed);
        let a: Vec<_> = w.stream().take(300).collect();
        let b: Vec<_> = w.stream().take(300).collect();
        prop_assert_eq!(&a, &b, "stream not reproducible");
        for (i, inst) in a.iter().enumerate() {
            for d in inst.src_deps.into_iter().flatten() {
                prop_assert!(d >= 1 && d as usize <= i.max(1), "dep not causal at {i}");
            }
            if let Some(m) = inst.mem {
                prop_assert_eq!(m.addr.raw() % 8, 0, "unaligned access");
            }
        }
    }
}

proptest! {
    // End-to-end cases are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary seeds and mechanisms, a short end-to-end run commits
    /// every instruction and never violates value integrity (run_one
    /// returns Err on violation).
    #[test]
    fn end_to_end_integrity(seed in 0u64..1000, mech_idx in 0usize..13, bench_idx in 0usize..26) {
        use microlib::{run_one, SimOptions};
        use microlib_trace::{benchmarks, TraceWindow};
        let kind = MechanismKind::study_set()[mech_idx];
        let bench = benchmarks::NAMES[bench_idx];
        let opts = SimOptions {
            seed,
            window: TraceWindow::new(2_000, 1_500),
            ..SimOptions::default()
        };
        let r = run_one(&SystemConfig::baseline(), kind, bench, &opts);
        match r {
            Ok(result) => prop_assert_eq!(result.perf.instructions, 1_500),
            Err(e) => return Err(TestCaseError::fail(format!("{bench}/{kind:?}/{seed}: {e}"))),
        }
    }
}
