//! Property-based tests over the core data structures and the end-to-end
//! simulator invariants.
//!
//! crates.io is not reachable from the build environment, so instead of
//! proptest these run hand-rolled generate-and-check loops over the
//! vendored deterministic RNG: every case is derived from a fixed master
//! seed plus the case index, and each assertion message carries that case
//! seed so a failure reproduces exactly.

use microlib_mech::{AssocTable, MechanismKind};
use microlib_mem::{CacheArray, MemToken, MshrFile, MshrTarget, Sdram, SparseMemory};
use microlib_model::{
    Addr, CacheConfig, Cycle, LineData, PrefetchDestination, PrefetchQueue, PrefetchRequest,
    SdramConfig, SystemConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const MASTER_SEED: u64 = 0x5EED_CAFE;
const CASES: u64 = 64;

/// One deterministic RNG per (property, case) pair.
fn case_rng(property: &str, case: u64) -> SmallRng {
    let tag = property.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    SmallRng::seed_from_u64(MASTER_SEED ^ tag ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

fn u64_vec(rng: &mut SmallRng, len_range: std::ops::Range<usize>, max: u64) -> Vec<u64> {
    let len = rng.gen_range(len_range);
    (0..len).map(|_| rng.gen_range(0..max)).collect()
}

fn small_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 1024,
        assoc: 2,
        ..CacheConfig::baseline_l1d()
    }
}

/// The cache never holds more lines than its capacity, never holds the
/// same line twice, and a just-filled line is always found.
#[test]
fn cache_array_capacity_and_uniqueness() {
    for case in 0..CASES {
        let mut rng = case_rng("cache_array", case);
        let addrs = u64_vec(&mut rng, 1..200, 1 << 20);
        let mut cache = CacheArray::new(small_cache()).unwrap();
        for a in &addrs {
            let addr = Addr::new(a & !7);
            if !cache.contains(addr) {
                cache.fill(addr, LineData::zeroed(4), false, false);
            }
            assert!(cache.contains(addr), "case {case}: just-filled line lost");
        }
        assert!(cache.occupancy() <= 32, "case {case}"); // 1 KB / 32 B
        let mut lines: Vec<u64> = cache.resident_lines().map(Addr::raw).collect();
        let total = lines.len();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), total, "case {case}: duplicate resident line");
    }
}

/// Set/tag decomposition round-trips for arbitrary addresses.
#[test]
fn cache_index_round_trip() {
    let cache = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
    for case in 0..CASES {
        let mut rng = case_rng("index_round_trip", case);
        let addr = rng.gen_range(0..u64::MAX / 2);
        let a = Addr::new(addr);
        let (set, tag) = cache.index_of(a);
        assert_eq!(
            cache.address_of(set, tag),
            a.line(32),
            "case {case}: addr {addr:#x}"
        );
    }
}

/// Written words read back; unwritten words read zero.
#[test]
fn sparse_memory_read_your_writes() {
    for case in 0..CASES {
        let mut rng = case_rng("sparse_memory", case);
        let count = rng.gen_range(1usize..100);
        let mut mem = SparseMemory::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..count {
            let addr = rng.gen_range(0u64..1 << 30) & !7;
            let value = rng.gen::<u64>();
            mem.write_word(Addr::new(addr), value);
            model.insert(addr, value);
        }
        for (addr, value) in &model {
            assert_eq!(
                mem.read_word(Addr::new(*addr)),
                *value,
                "case {case}: addr {addr:#x}"
            );
        }
        assert_eq!(mem.read_word(Addr::new((1u64 << 40) + 8)), 0, "case {case}");
    }
}

/// The MSHR file never exceeds its entry capacity and all accepted
/// targets come back exactly once at completion.
#[test]
fn mshr_occupancy_and_target_conservation() {
    for case in 0..CASES {
        let mut rng = case_rng("mshr", case);
        let lines = u64_vec(&mut rng, 1..100, 64);
        let mut mshr = MshrFile::new(4, 2);
        mshr.set_model_busy_cycle(false);
        let mut accepted = 0u64;
        for (i, l) in lines.iter().enumerate() {
            let line = Addr::new(l * 64);
            let t = MshrTarget {
                req: None,
                addr: line,
                is_store: false,
                value: 0,
            };
            if mshr
                .try_insert(line, t, false, false, Cycle::new(i as u64))
                .accepted()
            {
                accepted += 1;
            }
            assert!(mshr.len() <= 4, "case {case}: MSHR overflow");
        }
        let mut drained = 0u64;
        for l in 0u64..64 {
            if let Some(entry) = mshr.complete(Addr::new(l * 64)) {
                drained += entry.targets.len() as u64;
            }
        }
        assert_eq!(drained, accepted, "case {case}: targets lost or duplicated");
    }
}

/// Prefetch queues never exceed capacity and FIFO order is preserved
/// among accepted requests.
#[test]
fn prefetch_queue_bounded_fifo() {
    for case in 0..CASES {
        let mut rng = case_rng("prefetch_queue", case);
        let lines = u64_vec(&mut rng, 1..200, 128);
        let cap = rng.gen_range(1usize..32);
        let mut q = PrefetchQueue::new(cap);
        let mut accepted = Vec::new();
        for l in &lines {
            let req = PrefetchRequest {
                line: Addr::new(l * 64),
                destination: PrefetchDestination::Cache,
            };
            if q.push(req) {
                accepted.push(l * 64);
            }
            assert!(q.len() <= cap, "case {case}: queue over capacity {cap}");
        }
        let mut popped = Vec::new();
        while let Some(r) = q.pop() {
            popped.push(r.line.raw());
        }
        assert_eq!(
            &popped[..],
            &accepted[..popped.len()],
            "case {case}: FIFO violated"
        );
    }
}

/// Every transaction submitted to the SDRAM completes.
#[test]
fn sdram_completes_all_traffic() {
    for case in 0..CASES {
        let mut rng = case_rng("sdram", case);
        let lines = u64_vec(&mut rng, 1..40, 1 << 22);
        let mut mem = Sdram::new(SdramConfig::baseline());
        let mut submitted = 0u64;
        let mut done = 0u64;
        let mut queue: Vec<u64> = lines.clone();
        let mut now = 0u64;
        while done < lines.len() as u64 && now < 1_000_000 {
            if let Some(l) = queue.last().copied() {
                if mem.try_push(
                    MemToken(submitted),
                    Addr::new(l * 64),
                    false,
                    Cycle::new(now),
                ) {
                    queue.pop();
                    submitted += 1;
                }
            }
            done += mem.tick(Cycle::new(now)).len() as u64;
            now += 1;
        }
        assert_eq!(
            done,
            lines.len() as u64,
            "case {case}: SDRAM lost transactions"
        );
        assert_eq!(mem.in_service_len(), 0, "case {case}");
    }
}

/// The associative table's LRU keeps the most recently touched entry.
#[test]
fn assoc_table_keeps_mru() {
    for case in 0..CASES {
        let mut rng = case_rng("assoc_table", case);
        let len = rng.gen_range(2usize..50);
        let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
        let mut t: AssocTable<u64> = AssocTable::new(4, 0); // 4-entry fully assoc
        for k in &keys {
            t.insert(*k, *k);
        }
        let last = *keys.last().unwrap();
        assert!(
            t.contains(&last),
            "case {case}: most recent insert must survive"
        );
    }
}

/// Workload streams are reproducible and causally well-formed for
/// arbitrary seeds.
#[test]
fn workload_streams_well_formed() {
    use microlib_trace::{benchmarks, Workload};
    for case in 0..CASES {
        let mut rng = case_rng("workload", case);
        let seed = rng.gen::<u64>();
        let name = benchmarks::NAMES[rng.gen_range(0usize..26)];
        let w = Workload::new(benchmarks::by_name(name).unwrap(), seed);
        let a: Vec<_> = w.stream().take(300).collect();
        let b: Vec<_> = w.stream().take(300).collect();
        assert_eq!(
            a, b,
            "case {case}: {name}/{seed:#x} stream not reproducible"
        );
        for (i, inst) in a.iter().enumerate() {
            for d in inst.src_deps.into_iter().flatten() {
                assert!(
                    d >= 1 && d as usize <= i.max(1),
                    "case {case}: {name}/{seed:#x} dep not causal at {i}"
                );
            }
            if let Some(m) = inst.mem {
                assert_eq!(
                    m.addr.raw() % 8,
                    0,
                    "case {case}: {name}/{seed:#x} unaligned access"
                );
            }
        }
    }
}

/// Replaying a captured [`TraceBuffer`] is instruction-for-instruction
/// identical to streaming generation, for random (benchmark, seed,
/// window) triples — including replay cursors that start mid-buffer the
/// way a restored warm checkpoint does.
#[test]
fn trace_buffer_replay_equals_streaming_generation() {
    use microlib_trace::{benchmarks, TraceBuffer, Workload};
    use std::sync::Arc;
    for case in 0..24 {
        let mut rng = case_rng("trace_buffer_replay", case);
        let seed = rng.gen::<u64>();
        let bench = benchmarks::NAMES[rng.gen_range(0usize..26)];
        let skip = rng.gen_range(0u64..4_000);
        let simulate = rng.gen_range(1u64..4_000);
        let len = skip + simulate;
        let workload = Workload::new(benchmarks::by_name(bench).unwrap(), seed);
        let buffer = Arc::new(TraceBuffer::capture(&workload, len));
        assert_eq!(buffer.len(), len, "case {case}: {bench}/{seed:#x}");

        let generated: Vec<_> = workload.stream().take(len as usize).collect();
        let replayed: Vec<_> = TraceBuffer::replay(&buffer).collect();
        assert_eq!(
            generated, replayed,
            "case {case}: {bench}/{seed:#x}/{skip}+{simulate}: full replay diverged"
        );

        // A cursor advanced to the window start yields the window exactly.
        let mut cursor = TraceBuffer::replay(&buffer);
        cursor.advance_to(skip);
        assert_eq!(cursor.stream_position(), skip);
        let window: Vec<_> = cursor.collect();
        assert_eq!(
            &generated[skip as usize..],
            window.as_slice(),
            "case {case}: {bench}/{seed:#x}/{skip}+{simulate}: windowed replay diverged"
        );
    }
}

/// For arbitrary seeds and mechanisms, a short end-to-end run commits
/// every instruction and never violates value integrity (`run_one`
/// returns `Err` on violation). End-to-end cases are expensive; the case
/// count stays low.
#[test]
fn end_to_end_integrity() {
    use microlib::{run_one, SimOptions};
    use microlib_trace::{benchmarks, TraceWindow};
    for case in 0..8 {
        let mut rng = case_rng("end_to_end", case);
        let seed = rng.gen_range(0u64..1000);
        let kind = MechanismKind::study_set()[rng.gen_range(0usize..13)];
        let bench = benchmarks::NAMES[rng.gen_range(0usize..26)];
        let opts = SimOptions {
            seed,
            window: TraceWindow::new(2_000, 1_500),
            ..SimOptions::default()
        };
        match run_one(&SystemConfig::baseline(), kind, bench, &opts) {
            Ok(result) => assert_eq!(
                result.perf.instructions, 1_500,
                "case {case}: {bench}/{kind:?}/{seed}"
            ),
            Err(e) => panic!("case {case}: {bench}/{kind:?}/{seed}: {e}"),
        }
    }
}

/// For arbitrary (benchmark, seed, region, interval, cluster cap), a
/// sampling plan's weights always sum to 1, its windows stay inside the
/// region, and re-planning with the same inputs is bit-identical
/// (clustering is seed-deterministic).
#[test]
fn sampling_plan_weights_sum_to_one_and_deterministic() {
    use microlib_trace::{benchmarks, SamplingPlan, TraceWindow, Workload};
    let names_with_synthetics: Vec<&str> = benchmarks::NAMES
        .iter()
        .chain(benchmarks::PHASED_SYNTHETICS.iter())
        .copied()
        .collect();
    for case in 0..24 {
        let mut rng = case_rng("sampling_plan", case);
        let seed = rng.gen::<u64>();
        let bench = names_with_synthetics[rng.gen_range(0usize..names_with_synthetics.len())];
        let region = TraceWindow::new(rng.gen_range(0u64..30_000), rng.gen_range(1u64..60_000));
        let interval = rng.gen_range(500u64..20_000);
        let max_clusters = rng.gen_range(1usize..6);
        let workload = Workload::new(benchmarks::by_name(bench).unwrap(), seed);
        let tag = format!("case {case}: {bench}/{seed:#x}/{region}/{interval}/{max_clusters}");

        let plan = SamplingPlan::profile(workload.stream(), region, interval, max_clusters, seed);
        assert!(!plan.points().is_empty(), "{tag}: empty plan");
        // At most a representative + probe per cluster.
        assert!(plan.points().len() <= 2 * max_clusters.max(1), "{tag}");
        let total: f64 = plan.points().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "{tag}: weights sum to {total}");
        let mut last_start = 0;
        for (window, weight) in plan.windows() {
            assert!(weight > 0.0, "{tag}: non-positive weight");
            assert!(window.skip >= region.skip, "{tag}: window before region");
            assert!(window.end() <= region.end(), "{tag}: window past region");
            assert!(window.skip >= last_start, "{tag}: windows out of order");
            last_start = window.skip;
        }
        assert!(plan.detailed_instructions() <= region.simulate, "{tag}");

        let again = SamplingPlan::profile(workload.stream(), region, interval, max_clusters, seed);
        assert_eq!(plan, again, "{tag}: plan not seed-deterministic");
    }
}
