//! MicroLib's whole point: *anyone* can implement the `Mechanism` trait and
//! compare their idea against the published ones under identical
//! conditions. This example writes a new mechanism from scratch — a
//! next-N-line prefetcher with a direction predictor — plugs it into the
//! hierarchy, and ranks it against the study set.
//!
//! ```sh
//! cargo run --release --example custom_mechanism
//! ```

use microlib::{run_custom, run_one, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::{
    AccessEvent, AccessOutcome, AttachPoint, HardwareBudget, Mechanism, MechanismStats,
    PrefetchDestination, PrefetchQueue, PrefetchRequest, SramTable, SystemConfig,
};
use microlib_trace::TraceWindow;

/// A toy contribution: next-N-line prefetching with a per-region direction
/// predictor (forward/backward saturating counters).
struct DirectionalNextLine {
    degree: i64,
    /// 2-bit direction counters per 4 KB region (0..=3, >=2 means forward).
    direction: Vec<u8>,
    last_line_in_region: Vec<u64>,
    stats: MechanismStats,
}

impl DirectionalNextLine {
    fn new(degree: i64) -> Self {
        DirectionalNextLine {
            degree,
            direction: vec![2; 4096],
            last_line_in_region: vec![0; 4096],
            stats: MechanismStats::default(),
        }
    }

    fn region(line: u64) -> usize {
        ((line >> 12) as usize) & 4095
    }
}

impl Mechanism for DirectionalNextLine {
    fn name(&self) -> &str {
        "NextN-dir"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L2Unified
    }

    fn request_queue_capacity(&self) -> usize {
        16
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        if event.first_touch_of_prefetch {
            self.stats.prefetches_useful += 1;
        }
        if event.outcome == AccessOutcome::Hit && !event.first_touch_of_prefetch {
            return;
        }
        let line = event.line.raw();
        let r = Self::region(line);
        self.stats.table_reads += 1;
        // Train the direction counter on the observed movement.
        let last = self.last_line_in_region[r];
        if last != 0 && line != last {
            let fwd = line > last;
            let c = &mut self.direction[r];
            if fwd {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
            self.stats.table_writes += 1;
        }
        self.last_line_in_region[r] = line;
        let step: i64 = if self.direction[r] >= 2 { 64 } else { -64 };
        for k in 1..=self.degree {
            self.stats.prefetches_requested += 1;
            prefetch.push(PrefetchRequest {
                line: event.line.offset(step * k),
                destination: PrefetchDestination::Cache,
            });
        }
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::with_tables(
            "NextN-dir",
            vec![SramTable::new("direction counters", 4096, 2 + 20, 1)],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }
}

fn main() -> Result<(), microlib::SimError> {
    let config = SystemConfig::baseline();
    let opts = SimOptions {
        window: TraceWindow::new(80_000, 50_000),
        ..SimOptions::default()
    };

    println!("comparing the custom mechanism against three published ones on swim + apsi:\n");
    for bench in ["swim", "apsi"] {
        let base = run_one(&config, MechanismKind::Base, bench, &opts)?;
        let mine = run_custom(
            &config,
            Box::new(DirectionalNextLine::new(2)),
            MechanismKind::Base, // label slot: custom mechanisms reuse a label
            bench,
            &opts,
        )?;
        println!("{bench}:");
        println!(
            "  NextN-dir (custom)  speedup {:.3}",
            mine.perf.speedup_over(&base.perf)
        );
        for kind in [MechanismKind::Tp, MechanismKind::Sp, MechanismKind::Ghb] {
            let r = run_one(&config, kind, bench, &opts)?;
            println!(
                "  {:18} speedup {:.3}",
                kind.to_string(),
                r.perf.speedup_over(&base.perf)
            );
        }
        println!();
    }
    println!("that is the MicroLib workflow: implement `Mechanism`, run the same");
    println!("benchmarks and configuration, and the comparison is apples-to-apples.");
    Ok(())
}
