//! A miniature of the paper's Fig 8 methodology study: how much does the
//! main-memory model change a mechanism's apparent benefit?
//!
//! ```sh
//! cargo run --release --example memory_model_study
//! ```

use microlib::{run_one, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::{MemoryModel, SdramConfig, SystemConfig};
use microlib_trace::TraceWindow;

fn main() -> Result<(), microlib::SimError> {
    let opts = SimOptions {
        window: TraceWindow::new(80_000, 50_000),
        ..SimOptions::default()
    };
    let models = [
        (
            "constant-70 (SimpleScalar-like)",
            MemoryModel::simplescalar_70(),
        ),
        (
            "SDRAM-170 (Table 1)",
            MemoryModel::Sdram(SdramConfig::baseline()),
        ),
        (
            "SDRAM-70 (scaled)",
            MemoryModel::Sdram(SdramConfig::scaled_to_70_cycles()),
        ),
    ];

    println!("GHB speedup on swim under three memory models (Fig 8 in miniature):\n");
    for (label, memory) in models {
        let config = SystemConfig {
            memory,
            ..SystemConfig::baseline()
        };
        let base = run_one(&config, MechanismKind::Base, "swim", &opts)?;
        let ghb = run_one(&config, MechanismKind::Ghb, "swim", &opts)?;
        let lat = base.memory.average_latency().unwrap_or(0.0);
        println!(
            "{label:32} base IPC {:.3}  GHB speedup {:.3}  avg mem latency {lat:6.1} cycles",
            base.perf.ipc(),
            ghb.perf.speedup_over(&base.perf),
        );
    }
    println!("\nthe paper: \"the memory model can significantly affect the absolute");
    println!("performance as well as the ranking of the different mechanisms\".");
    Ok(())
}
