//! Trace selection with SimPoint, on the first-class sampling API: build a
//! [`SamplingPlan`], run one sampled simulation, and compare the weighted
//! estimate against an arbitrary window and the full simulation — the
//! paper's Fig 11 methodology point in miniature.
//!
//! ```sh
//! cargo run --release --example simpoint_demo
//! ```

use microlib::{run_one, SamplingMode, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::{benchmarks, SamplingPlan, TraceWindow, Workload};

fn main() -> Result<(), microlib::SimError> {
    let bench = "gcc"; // strongly phased (pattern [0,1,2,1])
    let seed = 0xC0FFEE;
    let interval = 25_000u64;
    let window = TraceWindow::new(0, 12 * interval);

    // 1. The plan: BBV profiling, clustering and interval selection in one
    //    call (run_one does this internally; shown here for the numbers).
    let workload = Workload::new(benchmarks::by_name(bench).unwrap(), seed);
    let plan = SamplingPlan::profile(workload.stream(), window, interval, 6, seed);
    println!(
        "SimPoint plan for {bench} over {window}: {} weighted slice(s), {:.1}x less detailed work",
        plan.points().len(),
        plan.work_reduction()
    );
    for (win, weight) in plan.windows() {
        println!("  {win}  (weight {weight:.3})");
    }

    // 2. One sampled run: the simulator consumes the same kind of plan,
    //    simulates each slice in steady state and recombines by weight.
    let config = SystemConfig::baseline();
    let sampled = run_one(
        &config,
        MechanismKind::Base,
        bench,
        &SimOptions {
            seed,
            window,
            sampling: SamplingMode::SimPoints {
                interval,
                max_clusters: 6,
                warmup: 0,
            },
            ..SimOptions::default()
        },
    )?;
    let estimate = sampled.sampling.as_ref().expect("sampled run");

    // 3. The two things SimPoint protects against: an arbitrary early
    //    window (what most articles used), and the full-window truth.
    let arbitrary = run_one(
        &config,
        MechanismKind::Base,
        bench,
        &SimOptions {
            seed,
            window: TraceWindow::new(0, interval),
            ..SimOptions::default()
        },
    )?;
    let full = run_one(
        &config,
        MechanismKind::Base,
        bench,
        &SimOptions {
            seed,
            window,
            ..SimOptions::default()
        },
    )?;

    println!();
    println!(
        "weighted SimPoint IPC estimate: {:.3}  (reported CPI error bound ±{:.1}%)",
        sampled.perf.ipc(),
        estimate.relative_error_bound() * 100.0
    );
    println!("full-window IPC (ground truth): {:.3}", full.perf.ipc());
    println!(
        "arbitrary first-window IPC:     {:.3}",
        arbitrary.perf.ipc()
    );
    println!();
    println!("the gap is the paper's Fig 11 point: \"trace selection can have a");
    println!("considerable effect on research decisions\" — and the sampled run");
    println!("reaches the full-window answer at a fraction of the detailed work.");
    Ok(())
}
