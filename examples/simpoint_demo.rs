//! Trace selection with SimPoint: profile basic-block vectors, cluster
//! them, and see how the chosen interval differs from an arbitrary window —
//! the paper's Fig 11 methodology point in miniature.
//!
//! ```sh
//! cargo run --release --example simpoint_demo
//! ```

use microlib::{run_one, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::{benchmarks, choose_simpoints, BbvProfiler, TraceWindow, Workload};

fn main() -> Result<(), microlib::SimError> {
    let bench = "gcc"; // strongly phased (pattern [0,1,2,1])
    let interval = 25_000u64;
    let profile_len = 12 * interval;

    // 1. Profile basic-block vectors.
    let workload = Workload::new(benchmarks::by_name(bench).unwrap(), 0xC0FFEE);
    let mut profiler = BbvProfiler::new(interval);
    for inst in workload.stream().take(profile_len as usize) {
        profiler.observe(&inst);
    }
    let vectors = BbvProfiler::to_matrix(profiler.intervals());
    println!(
        "profiled {} intervals of {} instructions of {bench}",
        vectors.len(),
        interval
    );

    // 2. Cluster and pick simulation points.
    let points = choose_simpoints(&vectors, 6, 0xC0FFEE);
    println!(
        "SimPoint chose {} representative interval(s):",
        points.len()
    );
    for p in &points {
        println!("  interval {:2} (weight {:.2})", p.interval, p.weight);
    }

    // 3. Compare: weighted SimPoint estimate vs an arbitrary early window.
    let config = SystemConfig::baseline();
    let mut weighted_ipc = 0.0;
    for p in &points {
        let w = TraceWindow::simpoint_interval(p.interval, interval);
        let r = run_one(
            &config,
            MechanismKind::Base,
            bench,
            &SimOptions {
                window: w,
                ..SimOptions::default()
            },
        )?;
        weighted_ipc += p.weight * r.perf.ipc();
    }
    let arbitrary = run_one(
        &config,
        MechanismKind::Base,
        bench,
        &SimOptions {
            window: TraceWindow::new(0, interval),
            ..SimOptions::default()
        },
    )?;

    println!();
    println!("weighted SimPoint IPC estimate: {weighted_ipc:.3}");
    println!(
        "arbitrary first-window IPC:     {:.3}",
        arbitrary.perf.ipc()
    );
    println!();
    println!("the gap is the paper's Fig 11 point: \"trace selection can have a");
    println!("considerable effect on research decisions\".");
    Ok(())
}
