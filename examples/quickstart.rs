//! Quickstart: simulate one benchmark on the Table 1 baseline, attach the
//! best mechanism of the study (GHB), and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use microlib::{run_one, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::TraceWindow;

fn main() -> Result<(), microlib::SimError> {
    // The paper's baseline processor + memory hierarchy (Table 1).
    let config = SystemConfig::baseline();

    // Warm 50k instructions functionally, simulate 30k in detail.
    let opts = SimOptions {
        window: TraceWindow::new(50_000, 30_000),
        ..SimOptions::default()
    };

    let base = run_one(&config, MechanismKind::Base, "swim", &opts)?;
    let ghb = run_one(&config, MechanismKind::Ghb, "swim", &opts)?;

    println!("benchmark: swim (synthetic SPEC CPU2000 profile)");
    println!("baseline : {}", base.perf);
    println!("with GHB : {}", ghb.perf);
    println!("speedup  : {:.3}", ghb.perf.speedup_over(&base.perf));
    println!();
    println!(
        "L2 misses: {} -> {} (prefetch fills {}, {:.0}% useful)",
        base.l2.misses,
        ghb.l2.misses,
        ghb.l2.prefetch_fills,
        ghb.l2.prefetch_accuracy().unwrap_or(0.0) * 100.0
    );
    println!(
        "GHB adds {} bytes of table state",
        ghb.hardware.total_bytes()
    );
    Ok(())
}
