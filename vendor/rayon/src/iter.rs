//! The parallel-iterator subset: `par_iter().map(..).collect::<Vec<_>>()`.

use crate::{current_num_threads, run_indexed};

/// Conversion into a parallel iterator over `&T`, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The `&'data T` item type.
    type Item: Send + 'data;

    /// Creates the parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParIter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParIter<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// An indexed parallel computation: `len` items, each produced
/// independently by index. Implementations must be safe to call from many
/// threads at once (`Sync`), which is what lets the executor fan out.
pub trait ParallelIterator: Sized + Sync {
    /// The item type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces item `index` (called at most once per index).
    fn produce(&self, index: usize) -> Self::Item;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the computation across the installed thread count and
    /// collects the results **in input order**.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T: Send> {
    /// Gathers the items of `iter`, preserving input order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        run_indexed(iter.len(), current_num_threads(), |i| iter.produce(i))
    }
}

/// Parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync + 'data> ParallelIterator for ParIter<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

/// A mapped parallel iterator (the result of [`ParallelIterator::map`]).
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn produce(&self, index: usize) -> R {
        (self.f)(self.base.produce(index))
    }
}
