//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! This workspace builds in environments without crates.io access, so the
//! `rayon` dependency is satisfied by this path crate: a std-only
//! work-stealing executor exposing the (small) API subset MicroLib uses —
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`] and
//! `slice.par_iter().map(..).collect::<Vec<_>>()`. Swapping in the real
//! rayon is a one-line change in the workspace manifest; nothing in the
//! call sites needs to move.
//!
//! Execution model: each `collect` distributes item indices round-robin
//! over per-worker deques; workers pop from the front of their own deque
//! and steal from the back of a victim's when empty (the classic
//! work-stealing discipline, here with mutex-guarded deques rather than
//! lock-free Chase-Lev ones). Results carry their item index, so the
//! collected `Vec` is always in input order no matter which worker ran
//! which item — parallelism never perturbs output ordering.

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

pub mod iter;

pub mod prelude {
    //! Traits that make `.par_iter()` available, mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Thread count "installed" by the enclosing [`ThreadPool::install`],
    /// if any. Parallel iterators started on this thread use it.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel iterators on this thread will use.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_num_threads)
}

fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Builder for a [`ThreadPool`], mirroring rayon's.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means one per available core.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible here, but kept `Result`-shaped so call
    /// sites match the real rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Error building a [`ThreadPool`]; never produced by this stand-in.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A logical pool: parallel iterators run inside [`install`](Self::install)
/// use its thread count. Workers are scoped threads spawned per operation
/// (coarse-grained work amortizes the spawn cost; the real rayon keeps
/// threads resident).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it starts.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let previous = INSTALLED_THREADS.with(|c| c.replace(Some(self.threads)));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(previous));
        result
    }
}

/// Runs `producer(i)` for every `i in 0..len` across `threads` workers with
/// work stealing, returning results in index order.
pub(crate) fn run_indexed<T, F>(len: usize, threads: usize, producer: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.clamp(1, len.max(1));
    if workers <= 1 || len <= 1 {
        return (0..len).map(producer).collect();
    }

    // Round-robin pre-distribution over per-worker deques.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..len).step_by(workers).collect()))
        .collect();

    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let deques = &deques;
                let producer = &producer;
                scope.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own queue first (front), then steal (back).
                        let job = deques[me].lock().expect("own deque").pop_front();
                        let job = job.or_else(|| {
                            (1..workers).find_map(|d| {
                                deques[(me + d) % workers]
                                    .lock()
                                    .expect("victim deque")
                                    .pop_back()
                            })
                        });
                        match job {
                            Some(i) => out.push((i, producer(i))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    tagged.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), len);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let doubled: Vec<u64> = pool.install(|| input.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_many_threads() {
        let input: Vec<u64> = (0..257).collect();
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let a: Vec<u64> = one.install(|| input.par_iter().map(|x| x * x).collect());
        let b: Vec<u64> = many.install(|| input.par_iter().map(|x| x * x).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathological item 100x heavier than the rest; with stealing,
        // the remaining items must still all complete (correctness check —
        // timing is not asserted).
        let input: Vec<u64> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<u64> = pool.install(|| {
            input
                .par_iter()
                .map(|&x| {
                    let spins = if x == 0 { 100_000 } else { 1_000 };
                    (0..spins).fold(x, |acc, _| std::hint::black_box(acc))
                })
                .collect()
        });
        assert_eq!(out, input);
    }
}
