//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! This workspace builds without crates.io access, so the two bench files
//! under `crates/bench/benches/` link against this path crate instead: the
//! API subset they use ([`Criterion`], [`BenchmarkGroup`], [`Throughput`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`]) over a plain
//! wall-clock measurement loop.
//!
//! Methodology (simplified from the real criterion): each bench function
//! is warmed up, an iteration count is calibrated so one sample takes
//! roughly `CRITERION_SAMPLE_MS` (default 100 ms), `CRITERION_SAMPLES`
//! (default 10) samples are taken, and the **median** time per iteration
//! is reported together with throughput when declared. No plots, no
//! statistical regression — numbers print to stdout, one line per bench,
//! so baselines can be recorded by redirecting output to a file.
//!
//! Passing `--test` (what `cargo test --benches` does) runs every bench
//! closure exactly once, as a smoke test.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark iteration, used to derive
/// elements- or bytes-per-second figures.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement configuration plus the output sink.
#[derive(Debug)]
pub struct Criterion {
    sample_ms: u64,
    samples: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let env_u64 = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Criterion {
            sample_ms: env_u64("CRITERION_SAMPLE_MS", 100),
            samples: env_u64("CRITERION_SAMPLES", 10) as usize,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks `f` under `id` (ungrouped).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.samples;
        run_benchmark(self, &id, None, samples, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.samples);
        run_benchmark(self.criterion, &id, self.throughput, samples, f);
        self
    }

    /// Ends the group (no-op; exists to mirror criterion).
    pub fn finish(self) {}
}

/// Timing callback handed to each bench function.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    criterion: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    if criterion.test_mode {
        f(&mut b);
        println!("{id}: ok (test mode)");
        return;
    }

    // Calibrate: grow the iteration count until one sample fills the
    // target time (or a single iteration already exceeds it).
    let target = Duration::from_millis(criterion.sample_ms);
    loop {
        f(&mut b);
        if b.elapsed >= target || b.iters >= 1 << 24 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (target.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
        };
        b.iters = (b.iters * grow.max(2)).min(1 << 24);
    }

    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            f(&mut b);
            b.elapsed.as_nanos() as f64 / b.iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}/s", si(n as f64 / (median * 1e-9))),
        Throughput::Bytes(n) => format!("  thrpt: {}B/s", si(n as f64 / (median * 1e-9))),
    });
    println!(
        "{id:<40} time: {:>12}/iter  [{} samples x {} iters]{}",
        nanos(median),
        per_iter.len(),
        b.iters,
        rate.unwrap_or_default()
    );
}

fn nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Bundles bench functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this `criterion_group!`'s bench functions in order.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
