//! Offline stand-in for [rand](https://crates.io/crates/rand) 0.8.
//!
//! This workspace builds without crates.io access, so the `rand`
//! dependency resolves to this path crate: the exact API subset the
//! workload/SimPoint generators use — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] —
//! over a xoshiro256** core (the same family the real `SmallRng` uses on
//! 64-bit targets) seeded through SplitMix64.
//!
//! The streams are *not* bit-compatible with the real crate; they are,
//! however, deterministic, platform-independent and of comparable
//! statistical quality, which is all the synthetic-trace substitution
//! requires (every result in the repo is produced under a recorded seed).

#![warn(missing_docs)]

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A small, fast, deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng::from_u64_seed(state)
        }
    }
}

/// The raw-output interface every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over the full range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `[0, span)` via the widening-multiply method (no modulo bias to
/// speak of at these span sizes, and branch-free).
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u64, usize, u32);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            seen_lo |= y == 0;
            seen_hi |= y == 3;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never sampled");
    }
}
