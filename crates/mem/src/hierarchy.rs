//! The full memory hierarchy: L1I + L1D + unified L2 + buses + main memory,
//! with one mechanism slot at the L1 data cache and one at the L2.
//!
//! # Protocol
//!
//! The hierarchy is *inclusive*: L1 fills also install in L2, and an L2
//! eviction back-invalidates L1 copies (merging dirty L1 data into the L2
//! victim before it is written back). Dirty data therefore lives in exactly
//! one of: L1D, a mechanism sidecar, L2, or DRAM — and lookups proceed in
//! that order, so a load can never observe stale data. The value-integrity
//! checker (see [`crate::functional`]) verifies this on every load.
//!
//! # Timing
//!
//! Data moves eagerly (coherence is exact) while *timing* is modelled by
//! explicit resources: cache ports per cycle, finite MSHR files, bus
//! reservations and the SDRAM bank machinery. The four fidelity toggles of
//! [`FidelityConfig`] selectively disable the hazards SimpleScalar does not
//! model, which is how Fig 1's model-precision experiment is produced.

use crate::bus::Bus;
use crate::cache::{CacheArray, Victim};
use crate::functional::{FunctionalMemory, IntegrityError};
use crate::mshr::{MshrFile, MshrOutcome, MshrTarget};
use crate::sdram::{MainMemory, MemDone, MemToken};
use crate::warmup::{WarmCheckpoint, WarmEvent, WarmLog};
use microlib_model::{
    AccessEvent, AccessKind, AccessOutcome, Addr, AttachPoint, CacheStats, ConfigError, Cycle,
    EvictEvent, FidelityConfig, LineData, Mechanism, MechanismStats, MemoryStats,
    PrefetchDestination, PrefetchQueue, PrefetchQueueStats, RefillCause, RefillEvent, SystemConfig,
    VictimAction,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Identifies an outstanding CPU-visible request (load, store or ifetch).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ReqId(u64);

impl ReqId {
    /// Creates a request id from a raw value (tests only need this).
    pub fn new(raw: u64) -> Self {
        ReqId(raw)
    }

    /// The raw id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A finished CPU-visible request.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The request that finished.
    pub req: ReqId,
    /// When it finished.
    pub at: Cycle,
    /// Loaded value (zero for stores and instruction fetches).
    pub value: u64,
}

/// Why the hierarchy refused to accept a request this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IssueRejection {
    /// No cache port left this cycle.
    PortBusy,
    /// The cache pipeline is stalled by a hazard.
    CacheStalled,
    /// The MSHR file is full, busy, or out of merge slots.
    MshrUnavailable,
}

/// Outcome of a successfully accepted access.
#[derive(Clone, Copy, Debug)]
pub enum IssueResult {
    /// Satisfied locally; done at `at` with `value`.
    Done {
        /// Completion time.
        at: Cycle,
        /// Loaded value (stores echo the stored value).
        value: u64,
    },
    /// A miss is in flight; a [`Completion`] with this id will be returned
    /// by a future [`MemorySystem::begin_cycle`].
    Pending(ReqId),
}

#[derive(Clone, Copy, Debug)]
enum Origin {
    L1D,
    L1I,
    /// Cache-destined L1 prefetch (holds an L1 MSHR entry).
    L1Prefetch,
    /// Buffer-destined L1 prefetch (dedicated path, no L1 MSHR entry).
    L1BufferPrefetch {
        l1_line: Addr,
    },
    L2Prefetch,
}

#[derive(Debug)]
enum L2Req {
    Demand {
        l2_line: Addr,
        pc: Addr,
        kind: AccessKind,
        origin: Origin,
        arrival: Cycle,
    },
    Writeback {
        /// Kept for tracing/debug formatting of queued writebacks.
        #[allow(dead_code)]
        l2_line: Addr,
        arrival: Cycle,
    },
}

#[derive(Clone, Copy, Debug)]
struct L1Fill {
    l1_line: Addr,
    instruction: bool,
    prefetched: bool,
    to_buffer: bool,
    arrive: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct L2Refill {
    l2_line: Addr,
    arrive: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct MemReq {
    l2_line: Addr,
    is_write: bool,
    ready_at: Cycle,
}

struct CacheUnit {
    array: CacheArray,
    mshr: MshrFile,
    ports: u32,
    ports_used: u32,
    stalled_until: Cycle,
    miss_lines_this_cycle: Vec<u64>,
    stats: CacheStats,
}

impl CacheUnit {
    fn new(array: CacheArray, fidelity: &FidelityConfig) -> Self {
        let cfg = array.config().clone();
        let mut mshr = if fidelity.finite_mshr {
            MshrFile::new(cfg.mshr_entries, cfg.mshr_reads_per_entry)
        } else {
            MshrFile::unlimited()
        };
        mshr.set_model_busy_cycle(fidelity.pipeline_stalls);
        CacheUnit {
            array,
            mshr,
            ports: cfg.ports,
            ports_used: 0,
            stalled_until: Cycle::ZERO,
            miss_lines_this_cycle: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    fn begin_cycle(&mut self) {
        self.ports_used = 0;
        self.miss_lines_this_cycle.clear();
    }

    fn port_available(&self) -> bool {
        self.ports_used < self.ports
    }

    fn take_port(&mut self) {
        debug_assert!(self.port_available());
        self.ports_used += 1;
    }
}

struct MechSlot {
    mech: Box<dyn Mechanism>,
    queue: PrefetchQueue,
    dropped_resident: u64,
    drain_ok: u64,
    drain_blocked: u64,
}

impl MechSlot {
    fn new(mech: Box<dyn Mechanism>) -> Self {
        let queue = PrefetchQueue::new(mech.request_queue_capacity());
        MechSlot {
            mech,
            queue,
            dropped_resident: 0,
            drain_ok: 0,
            drain_blocked: 0,
        }
    }
}

/// The complete memory system the CPU talks to.
///
/// # Examples
///
/// ```
/// use microlib_mem::{IssueResult, MemorySystem};
/// use microlib_model::{Addr, Cycle, SystemConfig};
///
/// let mut mem = MemorySystem::new(SystemConfig::baseline_constant_memory(), Vec::new())?;
/// mem.functional_mut().initialize_word(Addr::new(0x1000), 42);
///
/// let mut now = Cycle::ZERO;
/// mem.begin_cycle(now);
/// let pending = match mem.try_load(Addr::new(0x400000), Addr::new(0x1000), now) {
///     Ok(IssueResult::Pending(id)) => id,
///     other => panic!("cold load must miss: {other:?}"),
/// };
/// let mut value = None;
/// while value.is_none() {
///     now += 1;
///     for done in mem.begin_cycle(now) {
///         if done.req == pending {
///             value = Some(done.value);
///         }
///     }
/// }
/// assert_eq!(value, Some(42));
/// # Ok::<(), microlib_model::ConfigError>(())
/// ```
pub struct MemorySystem {
    config: Arc<SystemConfig>,
    functional: FunctionalMemory,
    l1d: CacheUnit,
    l1i: CacheUnit,
    l2: CacheUnit,
    l1_l2_bus: Bus,
    mem_bus: Bus,
    memory: MainMemory,
    l1_mech: Option<MechSlot>,
    l2_mech: Option<MechSlot>,
    l2_queue: VecDeque<L2Req>,
    l1_fills: Vec<L1Fill>,
    l2_refills: Vec<L2Refill>,
    mem_pending: VecDeque<MemReq>,
    /// Outstanding SDRAM reads, `(token, l2_line)`. A handful at most
    /// (bounded by the controller queue), so a linear scan beats hashing.
    mem_inflight: Vec<(u64, Addr)>,
    /// L1-side requesters waiting on an in-flight L2 miss, `(l2_line,
    /// origin)` in arrival order. Flat so the per-refill drain is one
    /// `retain` pass instead of a `HashMap` remove + `Vec` free.
    l2_waiters: Vec<(u64, Origin)>,
    /// 32-byte lines with an in-flight buffer-destination prefetch.
    buffer_inflight: Vec<u64>,
    /// Reusable scratch: drained waiters for the refill in progress.
    waiter_scratch: Vec<Origin>,
    /// Reusable scratch for [`MshrFile::complete_into`] target lists.
    mshr_targets: Vec<MshrTarget>,
    /// Reusable scratch for [`MainMemory::tick_into`] completions.
    mem_done: Vec<MemDone>,
    next_req: u64,
    next_token: u64,
    now: Cycle,
    completions: Vec<Completion>,
    integrity: Option<IntegrityError>,
    check_values: bool,
    fault_drop_writebacks: bool,
    trace_line: Option<Addr>,
    warming: bool,
    warm_prefetch_fill: bool,
    /// `(line, slot)` of the last warm instruction fetch that hit the
    /// L1I. Warm instruction fetches are sequential within a basic block,
    /// so the repeat lookup can skip the set scan and go straight to the
    /// touch (the slot is re-validated with `warm_slot_hit`, so L2
    /// back-invalidations are caught); the array update is byte-identical
    /// to the full-lookup path. Cleared whenever the L1I can change
    /// outside `warm_inst`.
    warm_last_iline: Option<(u64, usize)>,
    /// `(line, slot)` of the last warm data access that hit (or installed
    /// and touched) an L1D line. While it stands, a repeated same-line
    /// warm access can skip the set scan and go straight to the touch
    /// (after re-validating the slot with `warm_slot_hit`), leaving the
    /// array byte-identical to the full-lookup path. Cleared whenever the
    /// L1D can change under it: any warm fill or back-invalidation, and
    /// on leaving / re-entering warm mode.
    warm_last_dline: Option<(u64, usize)>,
    warm_clock: u64,
    l1d_stats_base: CacheStats,
    l1i_stats_base: CacheStats,
    l2_stats_base: CacheStats,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("now", &self.now)
            .field("l1d_stats", &self.l1d.stats)
            .field("l2_stats", &self.l2.stats)
            .field(
                "l1_mech",
                &self.l1_mech.as_ref().map(|m| m.mech.name().to_owned()),
            )
            .field(
                "l2_mech",
                &self.l2_mech.as_ref().map(|m| m.mech.name().to_owned()),
            )
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Builds the hierarchy for `config` with the given mechanisms attached
    /// (at most one per attach point). `config` is taken as (or into) an
    /// [`Arc`], so sweeps that run thousands of cells against one
    /// configuration share it instead of deep-cloning it per run.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `config` is inconsistent or two
    /// mechanisms request the same attach point.
    pub fn new(
        config: impl Into<Arc<SystemConfig>>,
        mechanisms: Vec<Box<dyn Mechanism>>,
    ) -> Result<Self, ConfigError> {
        let config: Arc<SystemConfig> = config.into();
        config.validate()?;
        let mut l1_mech = None;
        let mut l2_mech = None;
        for mech in mechanisms {
            let slot = match mech.attach_point() {
                AttachPoint::L1Data => &mut l1_mech,
                AttachPoint::L2Unified => &mut l2_mech,
            };
            if slot.is_some() {
                return Err(ConfigError::new(format!(
                    "two mechanisms attached at {}",
                    mech.attach_point()
                )));
            }
            *slot = Some(MechSlot::new(mech));
        }
        let fidelity = config.fidelity;
        Ok(MemorySystem {
            l1d: CacheUnit::new(CacheArray::new(config.l1d.clone())?, &fidelity),
            l1i: CacheUnit::new(CacheArray::new(config.l1i.clone())?, &fidelity),
            l2: CacheUnit::new(CacheArray::new(config.l2.clone())?, &fidelity),
            l1_l2_bus: Bus::new(config.l1_l2_bus),
            mem_bus: Bus::new(config.memory_bus),
            memory: MainMemory::from_model(&config.memory),
            functional: FunctionalMemory::new(),
            l1_mech,
            l2_mech,
            l2_queue: VecDeque::new(),
            l1_fills: Vec::new(),
            l2_refills: Vec::new(),
            mem_pending: VecDeque::new(),
            mem_inflight: Vec::new(),
            l2_waiters: Vec::new(),
            buffer_inflight: Vec::new(),
            waiter_scratch: Vec::new(),
            mshr_targets: Vec::new(),
            mem_done: Vec::new(),
            next_req: 0,
            next_token: 0,
            now: Cycle::ZERO,
            completions: Vec::new(),
            integrity: None,
            check_values: true,
            fault_drop_writebacks: false,
            warming: false,
            warm_prefetch_fill: false,
            warm_last_iline: None,
            warm_last_dline: None,
            warm_clock: 0,
            l1d_stats_base: CacheStats::default(),
            l1i_stats_base: CacheStats::default(),
            l2_stats_base: CacheStats::default(),
            trace_line: std::env::var("MICROLIB_TRACE_LINE")
                .ok()
                .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
                .map(Addr::new),
            config,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Access to the functional memory for workload setup.
    pub fn functional_mut(&mut self) -> &mut FunctionalMemory {
        &mut self.functional
    }

    /// Read access to the functional memory.
    pub fn functional(&self) -> &FunctionalMemory {
        &self.functional
    }

    /// Enables/disables the per-load value-integrity check (on by default).
    pub fn set_check_values(&mut self, on: bool) {
        self.check_values = on;
    }

    /// Failure injection: silently drop writeback data (the paper's §2.2
    /// forgotten-dirty-bit bug). Only useful to demonstrate that the
    /// integrity checker catches hierarchy bugs.
    pub fn inject_writeback_drop_fault(&mut self, on: bool) {
        self.fault_drop_writebacks = on;
    }

    /// The first value-integrity violation observed, if any.
    pub fn integrity_error(&self) -> Option<IntegrityError> {
        self.integrity
    }

    /// Debug aid: log every protocol action touching the 32-byte line that
    /// contains `addr` to stderr (also settable via the
    /// `MICROLIB_TRACE_LINE` environment variable, hex).
    pub fn set_trace_line(&mut self, addr: Option<Addr>) {
        self.trace_line = addr.map(|a| a.line(self.config.l1d.line_bytes));
    }

    #[inline]
    fn traced(&self, line: Addr) -> bool {
        self.trace_line
            .map(|t| {
                t.line(self.config.l1d.line_bytes) == line.line(self.config.l1d.line_bytes)
                    || t.line(self.config.l2.line_bytes) == line.line(self.config.l2.line_bytes)
            })
            .unwrap_or(false)
    }

    /// The message is built lazily: call sites run on the hit path, and
    /// formatting must cost nothing when line tracing is off.
    fn trace_event(&self, line: Addr, what: impl FnOnce() -> String) {
        if self.traced(line) {
            eprintln!("[{}] {:#x}: {}", self.now.raw(), line.raw(), what());
        }
    }

    #[allow(dead_code)] // symmetry with fresh_token; used by extensions
    fn fresh_req(&mut self) -> ReqId {
        self.next_req += 1;
        ReqId(self.next_req)
    }

    fn fresh_token(&mut self) -> MemToken {
        self.next_token += 1;
        MemToken(self.next_token)
    }

    // ------------------------------------------------------------------
    // Data-coherent helpers (eager data, lazy timing).
    // ------------------------------------------------------------------

    /// Reads the current 64-byte line value as seen below L1 (L2 if
    /// present, else DRAM image).
    #[allow(dead_code)] // useful for invariant checks and extensions
    fn l2_or_dram_line(&self, l2_line: Addr) -> LineData {
        self.l2
            .array
            .read_line(l2_line)
            .unwrap_or_else(|| self.functional.dram().read_line(l2_line, 64))
    }

    /// Applies a 32-byte writeback from L1 (or a sidecar spill) into the L2
    /// array, allocating on write if the line is absent (Table 1 policy).
    fn apply_writeback_to_l2(&mut self, l1_line: Addr, data: &LineData) {
        self.trace_event(l1_line, || {
            format!("writeback to L2 word0={:#x}", data.word(0))
        });
        if self.fault_drop_writebacks {
            return;
        }
        let l2_line = l1_line.line(self.config.l2.line_bytes);
        let offset_words = (l1_line.offset_in_line(self.config.l2.line_bytes) / 8) as usize;
        if !self
            .l2
            .array
            .write_line(l2_line, offset_words, data.words(), true)
        {
            // Allocate on write: build the full L2 line around the payload.
            let mut full = self.functional.dram().read_line(l2_line, 64);
            for (i, w) in data.words().iter().enumerate() {
                full.set_word(offset_words + i, *w);
            }
            let victim = self.l2.array.fill(l2_line, full, true, false);
            if let Some(v) = victim {
                self.handle_l2_victim(v);
            }
        }
        self.l2.stats.writebacks += 1;
        if !self.warming {
            // Timing: the writeback occupies the L1<->L2 bus.
            self.l1_l2_bus.reserve(self.now, data.byte_len());
            self.l2_queue.push_back(L2Req::Writeback {
                l2_line,
                arrival: self.l1_l2_bus.busy_until(),
            });
        }
    }

    /// Handles an L2 victim: back-invalidate L1 copies (merging dirty L1
    /// data), then write dirty data to the DRAM image and occupy the
    /// memory path.
    fn handle_l2_victim(&mut self, mut victim: Victim) {
        self.trace_event(victim.line, || format!("L2 evict dirty={}", victim.dirty));
        // Back-invalidation can remove the warm fast paths' cached lines.
        self.warm_last_dline = None;
        self.warm_last_iline = None;
        let l1_bytes = self.config.l1d.line_bytes;
        let halves = (self.config.l2.line_bytes / l1_bytes) as usize;
        for h in 0..halves {
            let l1_line = victim.line.offset((h as i64) * l1_bytes as i64);
            if let Some(l1_victim) = self.l1d.array.invalidate(l1_line) {
                if l1_victim.dirty {
                    let off = (h * l1_bytes as usize) / 8;
                    for (i, w) in l1_victim.data.words().iter().enumerate() {
                        victim.data.set_word(off + i, *w);
                    }
                    victim.dirty = true;
                }
            }
            self.l1i.array.invalidate(l1_line);
        }
        if victim.dirty && !self.fault_drop_writebacks {
            self.functional
                .dram_mut()
                .write_line(victim.line, &victim.data);
            if !self.warming {
                // Timing: memory-bus transfer + SDRAM write.
                self.mem_bus.reserve(self.now, victim.data.byte_len());
                let ready_at = self.mem_bus.busy_until();
                self.mem_pending.push_back(MemReq {
                    l2_line: victim.line,
                    is_write: true,
                    ready_at,
                });
            }
        }
        if victim.untouched_prefetch {
            self.l2.stats.useless_prefetch_evictions += 1;
        }
    }

    /// Handles an L1D victim: offer to the mechanism, else write back.
    fn handle_l1_victim(&mut self, victim: Victim) {
        self.trace_event(victim.line, || {
            format!(
                "L1 evict dirty={} word0={:#x}",
                victim.dirty,
                victim.data.word(0)
            )
        });
        if victim.untouched_prefetch {
            self.l1d.stats.useless_prefetch_evictions += 1;
        }
        let ev = EvictEvent {
            now: self.now,
            line: victim.line,
            dirty: victim.dirty,
            data: victim.data,
            untouched_prefetch: victim.untouched_prefetch,
        };
        if let Some(slot) = &mut self.l1_mech {
            if slot.mech.on_evict(&ev) == VictimAction::Captured {
                if self.traced(ev.line) {
                    eprintln!(
                        "[{}] {:#x}: victim CAPTURED by mechanism",
                        self.now.raw(),
                        ev.line.raw()
                    );
                }
                return; // mechanism owns the line (and its dirty data) now
            }
        }
        if victim.dirty {
            self.l1d.stats.writebacks += 1;
            self.apply_writeback_to_l2(victim.line, &victim.data);
        }
    }

    // ------------------------------------------------------------------
    // CPU-facing issue API.
    // ------------------------------------------------------------------

    /// Issues a data load.
    ///
    /// # Errors
    ///
    /// Returns an [`IssueRejection`] when structural hazards refuse the
    /// access this cycle; the caller retries later.
    pub fn try_load(
        &mut self,
        pc: Addr,
        addr: Addr,
        now: Cycle,
    ) -> Result<IssueResult, IssueRejection> {
        self.data_access(pc, addr, AccessKind::Load, 0, now)
    }

    /// Issues a data store of `value` (the architectural effect is applied
    /// immediately; timing follows the writeback hierarchy).
    ///
    /// # Errors
    ///
    /// Returns an [`IssueRejection`] when structural hazards refuse the
    /// access this cycle.
    pub fn try_store(
        &mut self,
        pc: Addr,
        addr: Addr,
        value: u64,
        now: Cycle,
    ) -> Result<IssueResult, IssueRejection> {
        self.data_access(pc, addr, AccessKind::Store, value, now)
    }

    /// Issues a run of independent loads back to back, exactly as a
    /// per-instruction issue loop would: each entry takes the full
    /// [`MemorySystem::try_load`] path in order, stopping once
    /// `allowed_successes` loads have been accepted or after a rejection
    /// that blocks the memory path for the rest of the cycle (LSQ
    /// backpressure fidelity, or a port rejection — with the L1D ports
    /// exhausted no later access can succeed this cycle). Returns the
    /// number of entries processed; their results are pushed to `results`
    /// (cleared first) in order, and unprocessed entries were never
    /// presented to the cache.
    pub fn try_load_batch(
        &mut self,
        reqs: &[(Addr, Addr)],
        now: Cycle,
        allowed_successes: u32,
        results: &mut Vec<Result<IssueResult, IssueRejection>>,
    ) -> usize {
        results.clear();
        let stop_on_reject = self.config.fidelity.lsq_backpressure;
        let mut successes = 0u32;
        for &(pc, addr) in reqs {
            if successes == allowed_successes {
                break;
            }
            let res = self.data_access(pc, addr, AccessKind::Load, 0, now);
            let blocked = match &res {
                Ok(_) => {
                    successes += 1;
                    false
                }
                Err(e) => stop_on_reject || matches!(e, IssueRejection::PortBusy),
            };
            results.push(res);
            if blocked {
                break;
            }
        }
        results.len()
    }

    fn data_access(
        &mut self,
        pc: Addr,
        addr: Addr,
        kind: AccessKind,
        store_value: u64,
        now: Cycle,
    ) -> Result<IssueResult, IssueRejection> {
        debug_assert_eq!(now, self.now, "issue must follow begin_cycle(now)");
        let fidelity = self.config.fidelity;
        if fidelity.pipeline_stalls && self.l1d.stalled_until > now {
            self.l1d.stats.pipeline_stalls += 1;
            return Err(IssueRejection::CacheStalled);
        }
        if !self.l1d.port_available() {
            self.l1d.stats.port_stalls += 1;
            return Err(IssueRejection::PortBusy);
        }
        let line = addr.line(self.config.l1d.line_bytes);

        // One set search decides hit/miss and, on a hit, applies the access
        // to the array in the same pass (the fused lookup performs exactly
        // the LRU/touch updates plus word read/write the historical
        // lookup-then-read/write pair did). A miss mutates nothing, so the
        // rejections below never perturb replacement state.
        let hit_result = match kind {
            AccessKind::Load => self.l1d.array.lookup_load(addr),
            AccessKind::Store => self
                .l1d
                .array
                .lookup_store(addr, store_value)
                .map(|hit| (hit, store_value)),
        };
        if hit_result.is_none() {
            // Same-line, different-address miss pair in one cycle stalls
            // the pipelined cache (paper §2.2).
            if fidelity.pipeline_stalls && self.l1d.miss_lines_this_cycle.contains(&line.raw()) {
                self.l1d.stalled_until = now + 1;
                self.l1d.stats.pipeline_stalls += 1;
                return Err(IssueRejection::CacheStalled);
            }
        }

        if let Some((hit, value)) = hit_result {
            self.l1d.take_port();
            self.trace_event(line, || format!("L1 {kind} hit at {:#x}", addr.raw()));
            match kind {
                AccessKind::Load => {
                    self.l1d.stats.loads += 1;
                    if hit.first_touch_of_prefetch {
                        self.l1d.stats.useful_prefetches += 1;
                    }
                    self.check_value(addr, value);
                }
                AccessKind::Store => {
                    self.functional.store_architectural(addr, store_value);
                    self.l1d.stats.stores += 1;
                    if hit.first_touch_of_prefetch {
                        self.l1d.stats.useful_prefetches += 1;
                    }
                }
            }
            self.fire_l1_access(
                pc,
                addr,
                line,
                kind,
                AccessOutcome::Hit,
                hit.first_touch_of_prefetch,
                value,
            );
            Ok(IssueResult::Done {
                at: now + self.config.l1d.latency,
                value,
            })
        } else {
            // Miss path: sidecar probe first.
            let probe = self
                .l1_mech
                .as_mut()
                .and_then(|slot| slot.mech.probe(line, now));
            if let Some(hit) = probe {
                self.l1d.take_port();
                self.trace_event(line, || {
                    format!(
                        "sidecar probe HIT ({kind}), dirty={} word0={:#x}",
                        hit.dirty,
                        hit.data.word(0)
                    )
                });
                self.l1d.stats.sidecar_hits += 1;
                match kind {
                    AccessKind::Load => self.l1d.stats.loads += 1,
                    AccessKind::Store => self.l1d.stats.stores += 1,
                }
                // Install the sidecar line into L1 (swap semantics), apply
                // the access, and only then process the displaced victim —
                // its writeback can cascade into an L2 eviction that
                // back-invalidates the line we just installed.
                let victim = self.l1d.array.fill(line, hit.data, hit.dirty, false);
                let value = match kind {
                    AccessKind::Load => {
                        self.l1d.array.lookup(addr);
                        let v = self.l1d.array.read_word(addr).expect("just filled");
                        self.check_value(addr, v);
                        v
                    }
                    AccessKind::Store => {
                        self.functional.store_architectural(addr, store_value);
                        self.l1d.array.lookup(addr);
                        self.l1d.array.write_word(addr, store_value);
                        store_value
                    }
                };
                if let Some(v) = victim {
                    self.handle_l1_victim(v);
                }
                self.fire_l1_access(
                    pc,
                    addr,
                    line,
                    kind,
                    AccessOutcome::SidecarHit,
                    false,
                    value,
                );
                return Ok(IssueResult::Done {
                    at: now + self.config.l1d.latency + hit.extra_latency,
                    value,
                });
            }

            // Real miss: goes through the MSHR.
            let req = ReqId(self.next_req + 1);
            let target = MshrTarget {
                req: Some(req),
                addr,
                is_store: kind.is_store(),
                value: store_value,
            };
            let had_entry = self.l1d.mshr.contains(line);
            let was_prefetch = self.l1d.mshr.is_prefetch_inflight(line);
            match self.l1d.mshr.try_insert(line, target, false, false, now) {
                MshrOutcome::Allocated => {
                    self.next_req += 1;
                    self.l1d.take_port();
                    self.trace_event(line, || {
                        format!("L1 {kind} miss allocated at {:#x}", addr.raw())
                    });
                    self.l1d.miss_lines_this_cycle.push(line.raw());
                    self.l1d.stats.misses += 1;
                    match kind {
                        AccessKind::Load => self.l1d.stats.loads += 1,
                        AccessKind::Store => {
                            self.functional.store_architectural(addr, store_value);
                            self.l1d.stats.stores += 1;
                        }
                    }
                    self.fire_l1_access(
                        pc,
                        addr,
                        line,
                        kind,
                        AccessOutcome::Miss,
                        false,
                        if kind.is_store() {
                            store_value
                        } else {
                            self.functional.architectural(addr)
                        },
                    );
                    // Cancel any queued prefetch for this line (demand wins).
                    if let Some(slot) = &mut self.l1_mech {
                        slot.queue.cancel(line);
                    }
                    self.send_miss_to_l2(line, pc, kind, Origin::L1D);
                    Ok(IssueResult::Pending(req))
                }
                MshrOutcome::Merged => {
                    self.next_req += 1;
                    self.l1d.take_port();
                    self.trace_event(line, || format!("L1 {kind} merged at {:#x}", addr.raw()));
                    self.l1d.stats.mshr_merges += 1;
                    if was_prefetch {
                        // A demand merged into an in-flight prefetch: the
                        // prefetch was late but useful.
                        self.l1d.stats.useful_prefetches += 1;
                    }
                    let _ = had_entry;
                    match kind {
                        AccessKind::Load => self.l1d.stats.loads += 1,
                        AccessKind::Store => {
                            self.functional.store_architectural(addr, store_value);
                            self.l1d.stats.stores += 1;
                        }
                    }
                    Ok(IssueResult::Pending(req))
                }
                MshrOutcome::FullStall | MshrOutcome::BusyStall => {
                    self.l1d.stats.mshr_full_stalls += 1;
                    Err(IssueRejection::MshrUnavailable)
                }
                MshrOutcome::TargetStall => {
                    self.l1d.stats.mshr_full_stalls += 1;
                    if fidelity.pipeline_stalls {
                        self.l1d.stalled_until = now + 1;
                    }
                    Err(IssueRejection::MshrUnavailable)
                }
            }
        }
    }

    /// Issues an instruction fetch for the line containing `pc`.
    ///
    /// # Errors
    ///
    /// Returns an [`IssueRejection`] when the L1I port or MSHR refuses the
    /// access this cycle.
    pub fn try_ifetch(&mut self, pc: Addr, now: Cycle) -> Result<IssueResult, IssueRejection> {
        debug_assert_eq!(now, self.now, "issue must follow begin_cycle(now)");
        if !self.l1i.port_available() {
            self.l1i.stats.port_stalls += 1;
            return Err(IssueRejection::PortBusy);
        }
        let line = pc.line(self.config.l1i.line_bytes);
        if self.l1i.array.lookup(pc).is_some() {
            self.l1i.take_port();
            self.l1i.stats.loads += 1;
            return Ok(IssueResult::Done {
                at: now + self.config.l1i.latency,
                value: 0,
            });
        }
        let req = ReqId(self.next_req + 1);
        let target = MshrTarget {
            req: Some(req),
            addr: pc,
            is_store: false,
            value: 0,
        };
        match self.l1i.mshr.try_insert(line, target, false, false, now) {
            MshrOutcome::Allocated => {
                self.next_req += 1;
                self.l1i.take_port();
                self.l1i.stats.loads += 1;
                self.l1i.stats.misses += 1;
                self.send_miss_to_l2(line, pc, AccessKind::Load, Origin::L1I);
                Ok(IssueResult::Pending(req))
            }
            MshrOutcome::Merged => {
                self.next_req += 1;
                self.l1i.take_port();
                self.l1i.stats.loads += 1;
                self.l1i.stats.mshr_merges += 1;
                Ok(IssueResult::Pending(req))
            }
            _ => {
                self.l1i.stats.mshr_full_stalls += 1;
                Err(IssueRejection::MshrUnavailable)
            }
        }
    }

    fn send_miss_to_l2(&mut self, l1_line: Addr, pc: Addr, kind: AccessKind, origin: Origin) {
        // The request command occupies one L1<->L2 bus beat.
        self.l1_l2_bus.reserve(self.now, 8);
        let arrival = self.l1_l2_bus.busy_until();
        let l2_line = l1_line.line(self.config.l2.line_bytes);
        self.l2_queue.push_back(L2Req::Demand {
            l2_line,
            pc,
            kind,
            origin,
            arrival,
        });
    }

    #[allow(clippy::too_many_arguments)] // the flattened fields of one AccessEvent
    fn fire_l1_access(
        &mut self,
        pc: Addr,
        addr: Addr,
        line: Addr,
        kind: AccessKind,
        outcome: AccessOutcome,
        first_touch: bool,
        value: u64,
    ) {
        if let Some(slot) = &mut self.l1_mech {
            let ev = AccessEvent {
                now: self.now,
                pc,
                addr,
                line,
                kind,
                outcome,
                first_touch_of_prefetch: first_touch,
                value: Some(value),
            };
            slot.mech.on_access(&ev, &mut slot.queue);
        }
    }

    fn check_value(&mut self, addr: Addr, observed: u64) {
        if self.check_values && self.integrity.is_none() {
            if let Err(e) = self.functional.check_load(addr, observed) {
                self.integrity = Some(e);
            }
        }
    }

    // ------------------------------------------------------------------
    // Functional warmup (the skip phase of a trace window).
    //
    // The paper's 500M-instruction SimPoint traces run with caches and
    // mechanism tables in steady state; replaying the skipped instructions
    // through the *storage* model (no timing) reproduces that steady state
    // at a fraction of the detailed-simulation cost.
    // ------------------------------------------------------------------

    /// Functionally warms one instruction: instruction fetch plus an
    /// optional data access. No timing state is touched; caches, mechanism
    /// tables and the functional memory are updated exactly as a detailed
    /// run would leave them.
    pub fn warm_inst(&mut self, pc: Addr, mem_ref: Option<(Addr, AccessKind, u64)>) {
        self.warming = true;
        self.warm_clock += 2; // synthetic ~IPC-0.5 clock for decay counters
        self.now = Cycle::new(self.warm_clock);
        // Instruction side. Consecutive fetches from the line that is
        // already MRU skip the tag scan (the touch itself still runs, so
        // the array stays byte-identical to the full-lookup path); the slot
        // re-validation catches L2 back-invalidations.
        let iline = pc.line(self.config.l1i.line_bytes);
        let fast_slot = self.warm_last_iline.and_then(|(l, slot)| {
            (l == iline.raw() && self.l1i.array.warm_slot_hit(slot, pc)).then_some(slot)
        });
        if let Some(slot) = fast_slot {
            self.l1i.array.warm_touch(slot, pc);
        } else if let Some((_, slot)) = self.l1i.array.lookup_slot(pc) {
            self.warm_last_iline = Some((iline.raw(), slot));
        } else {
            self.l1i.stats.misses += 1;
            self.warm_l2_fetch(iline.line(self.config.l2.line_bytes), pc, AccessKind::Load);
            let words = (self.config.l1i.line_bytes / 8) as usize;
            if !self.l1i.array.contains(iline) {
                self.l1i
                    .array
                    .fill(iline, LineData::zeroed(words), false, false);
            }
            // The freshly filled line is not yet demand-touched; the next
            // fetch primes the fast path through a full lookup.
            self.warm_last_iline = None;
        }
        self.l1i.stats.loads += 1;
        // Data side.
        if let Some((addr, kind, store_value)) = mem_ref {
            self.warm_data_access(pc, addr, kind, store_value);
        }
        // Mechanism time-based state (decay counters etc.).
        if let Some(slot) = &mut self.l1_mech {
            slot.mech.tick(Cycle::new(self.warm_clock));
            if !self.warm_prefetch_fill {
                slot.queue.clear(); // prefetch issue is a timing behaviour
            }
            for spill in slot.mech.drain_spills() {
                self.apply_writeback_to_l2(spill.line, &spill.data);
            }
        }
        if let Some(slot) = &mut self.l2_mech {
            slot.mech.tick(Cycle::new(self.warm_clock));
            if !self.warm_prefetch_fill {
                slot.queue.clear();
            }
            let spills = slot.mech.drain_spills();
            for spill in spills {
                self.functional
                    .dram_mut()
                    .write_line(spill.line, &spill.data);
            }
        }
        if self.warm_prefetch_fill {
            self.apply_warm_prefetches();
        }
        self.warming = false;
    }

    /// Applies a bounded number of queued prefetch requests functionally
    /// (no timing): lines are fetched through the warm L2 path and filled
    /// into their destination, firing the same refill events a detailed
    /// drain would. The per-instruction caps mirror the detailed drain
    /// rates (and bound content-directed prefetch cascades).
    ///
    /// Only active in [`warm_prefetch_fill`](MemorySystem::set_warm_prefetch_fill)
    /// mode — sampled simulation's gap fast-forward, where dropping
    /// prefetches (the plain warm behaviour) would systematically starve
    /// prefetchers of the cache state a continuous detailed run gives
    /// them.
    fn apply_warm_prefetches(&mut self) {
        for _ in 0..4 {
            let Some(req) = self.l1_mech.as_mut().and_then(|s| s.queue.pop()) else {
                break;
            };
            if self.l1d.array.peek(req.line)
                || self
                    .l1_mech
                    .as_ref()
                    .is_some_and(|s| s.mech.holds(req.line))
            {
                continue;
            }
            let l2_line = req.line.line(self.config.l2.line_bytes);
            self.warm_l2_fetch(l2_line, Addr::NULL, AccessKind::Load);
            let data = self
                .l2
                .array
                .read_line(l2_line)
                .map(|l2data| {
                    let off = (req.line.offset_in_line(self.config.l2.line_bytes) / 8) as usize;
                    let words = (self.config.l1d.line_bytes / 8) as usize;
                    LineData::from_words(&l2data.words()[off..off + words])
                })
                .unwrap_or_else(|| {
                    self.functional
                        .dram()
                        .read_line(req.line, self.config.l1d.line_bytes)
                });
            self.l1d.stats.prefetch_fills += 1;
            if req.destination == PrefetchDestination::Cache {
                self.warm_last_dline = None;
                let victim = self.l1d.array.fill(req.line, data, false, true);
                if let Some(v) = victim {
                    self.handle_l1_victim(v);
                }
            }
            if let Some(slot) = &mut self.l1_mech {
                let ev = RefillEvent {
                    now: Cycle::new(self.warm_clock),
                    line: req.line,
                    data,
                    cause: RefillCause::Prefetch,
                };
                slot.mech.on_refill(&ev, &mut slot.queue);
            }
        }
        for _ in 0..2 {
            let Some(req) = self.l2_mech.as_mut().and_then(|s| s.queue.pop()) else {
                break;
            };
            if self.l2.array.peek(req.line) {
                continue;
            }
            let data = self.functional.dram().read_line(req.line, 64);
            self.l2.stats.prefetch_fills += 1;
            let victim = self.l2.array.fill(req.line, data, false, true);
            if let Some(v) = victim {
                self.handle_l2_victim(v);
            }
            if let Some(slot) = &mut self.l2_mech {
                let ev = RefillEvent {
                    now: Cycle::new(self.warm_clock),
                    line: req.line,
                    data,
                    cause: RefillCause::Prefetch,
                };
                slot.mech.on_refill(&ev, &mut slot.queue);
            }
        }
    }

    /// Switches functional warm-up between dropping queued prefetches (the
    /// default — prefetch issue is a timing behaviour, and the shared warm
    /// checkpoints are captured this way) and applying them functionally
    /// (sampled simulation's gap fast-forward, which would otherwise
    /// systematically starve prefetchers of the cache state a continuous
    /// detailed run gives them).
    pub fn set_warm_prefetch_fill(&mut self, on: bool) {
        self.warm_prefetch_fill = on;
    }

    fn warm_data_access(&mut self, pc: Addr, addr: Addr, kind: AccessKind, store_value: u64) {
        let line = addr.line(self.config.l1d.line_bytes);
        match kind {
            AccessKind::Load => self.l1d.stats.loads += 1,
            AccessKind::Store => self.l1d.stats.stores += 1,
        }
        // Fast path: the previous warm data access left this same line MRU
        // and TOUCHED (see `warm_last_dline`), so the set scan can be
        // skipped; the touch itself still runs, leaving the array
        // byte-identical to the full-lookup path.
        if let Some((cached_line, slot)) = self.warm_last_dline {
            if cached_line == line.raw() && self.l1d.array.warm_slot_hit(slot, addr) {
                self.l1d.array.warm_touch(slot, addr);
                if kind.is_store() {
                    self.functional.store_architectural(addr, store_value);
                    self.l1d.array.warm_slot_store(slot, addr, store_value);
                }
                if self.l1_mech.is_some() {
                    let value = if kind.is_store() {
                        store_value
                    } else {
                        self.functional.architectural(addr)
                    };
                    self.fire_l1_access(pc, addr, line, kind, AccessOutcome::Hit, false, value);
                }
                return;
            }
        }
        if let Some((_, slot)) = self.l1d.array.lookup_slot(addr) {
            if kind.is_store() {
                self.functional.store_architectural(addr, store_value);
                self.l1d.array.write_word(addr, store_value);
            }
            self.warm_last_dline = Some((line.raw(), slot));
            if self.l1_mech.is_some() {
                let value = if kind.is_store() {
                    store_value
                } else {
                    self.functional.architectural(addr)
                };
                self.fire_l1_access(pc, addr, line, kind, AccessOutcome::Hit, false, value);
            }
            return;
        }
        // Miss: sidecar first (swap semantics), else fetch through the L2.
        let probe = self
            .l1_mech
            .as_mut()
            .and_then(|slot| slot.mech.probe(line, Cycle::new(self.warm_clock)));
        let (data, outcome, dirty) = match probe {
            Some(hit) => {
                self.l1d.stats.sidecar_hits += 1;
                (hit.data, AccessOutcome::SidecarHit, hit.dirty)
            }
            None => {
                self.l1d.stats.misses += 1;
                let l2_line = line.line(self.config.l2.line_bytes);
                self.warm_l2_fetch(l2_line, pc, kind);
                let data = self
                    .l2
                    .array
                    .read_line(l2_line)
                    .map(|l2data| {
                        let off = (line.offset_in_line(self.config.l2.line_bytes) / 8) as usize;
                        let words = (self.config.l1d.line_bytes / 8) as usize;
                        LineData::from_words(&l2data.words()[off..off + words])
                    })
                    .unwrap_or_else(|| {
                        self.functional
                            .dram()
                            .read_line(line, self.config.l1d.line_bytes)
                    });
                (data, AccessOutcome::Miss, false)
            }
        };
        if self.l1_mech.is_some() {
            let value = if kind.is_store() {
                store_value
            } else {
                self.functional.architectural(addr)
            };
            self.fire_l1_access(pc, addr, line, kind, outcome, false, value);
        }
        self.warm_last_dline = None;
        let victim = self.l1d.array.fill(line, data, dirty, false);
        if kind.is_store() {
            self.functional.store_architectural(addr, store_value);
            self.l1d.array.lookup(addr);
            self.l1d.array.write_word(addr, store_value);
        }
        if let Some(v) = victim {
            self.handle_l1_victim(v);
        }
        if outcome == AccessOutcome::Miss {
            if let Some(slot) = &mut self.l1_mech {
                let ev = RefillEvent {
                    now: Cycle::new(self.warm_clock),
                    line,
                    data,
                    cause: RefillCause::Demand,
                };
                slot.mech.on_refill(&ev, &mut slot.queue);
            }
        }
    }

    /// Ensures `l2_line` is present in the L2 (fetching from the DRAM image
    /// on a miss), firing the L2 mechanism events along the way.
    fn warm_l2_fetch(&mut self, l2_line: Addr, pc: Addr, kind: AccessKind) {
        if self.l2.array.lookup(l2_line).is_some() {
            match kind {
                AccessKind::Load => self.l2.stats.loads += 1,
                AccessKind::Store => self.l2.stats.stores += 1,
            }
            self.fire_l2_access(pc, l2_line, kind, AccessOutcome::Hit, false);
            return;
        }
        match kind {
            AccessKind::Load => self.l2.stats.loads += 1,
            AccessKind::Store => self.l2.stats.stores += 1,
        }
        self.l2.stats.misses += 1;
        self.fire_l2_access(pc, l2_line, kind, AccessOutcome::Miss, false);
        let data = self.functional.dram().read_line(l2_line, 64);
        let victim = self.l2.array.fill(l2_line, data, false, false);
        if let Some(v) = victim {
            self.handle_l2_victim(v);
        }
        if let Some(slot) = &mut self.l2_mech {
            let ev = RefillEvent {
                now: Cycle::new(self.warm_clock),
                line: l2_line,
                data,
                cause: RefillCause::Demand,
            };
            slot.mech.on_refill(&ev, &mut slot.queue);
        }
    }

    /// Re-enters functional warm mode after a detailed phase — sampled
    /// simulation's fast-forward between representative intervals. The
    /// synthetic warm clock resumes from `now` (the detailed clock), so
    /// mechanism decay state never sees time move backwards; call
    /// [`finish_warmup`](MemorySystem::finish_warmup) again before the
    /// next detailed phase.
    pub fn resume_warmup(&mut self, now: Cycle) {
        self.warm_clock = self.warm_clock.max(now.raw());
        // Detailed simulation moved the caches; the warm fast-path filters
        // must re-observe.
        self.warm_last_iline = None;
        self.warm_last_dline = None;
    }

    /// Ends the warmup phase: statistics gathered so far are excluded from
    /// the counters the accessors report, and the detailed simulation can
    /// start at the returned cycle.
    pub fn finish_warmup(&mut self) -> Cycle {
        self.l1d_stats_base = self.l1d.stats;
        self.l1i_stats_base = self.l1i.stats;
        self.l2_stats_base = self.l2.stats;
        if let Some(slot) = &mut self.l1_mech {
            slot.queue.clear();
        }
        if let Some(slot) = &mut self.l2_mech {
            slot.queue.clear();
        }
        Cycle::new(self.warm_clock)
    }

    // ------------------------------------------------------------------
    // Warm-state checkpointing (see `crate::warmup`): snapshot the
    // mechanism-independent warm state once, restore it per run, replay
    // only the mechanism-visible events.
    // ------------------------------------------------------------------

    /// Snapshots everything the warm phase mutates outside the mechanism
    /// slots: functional memory, cache arrays, raw cache counters and the
    /// warm clock. Call at the end of a warm phase, before
    /// [`finish_warmup`](MemorySystem::finish_warmup).
    pub fn snapshot_warm(&self) -> WarmCheckpoint {
        WarmCheckpoint {
            functional: self.functional.clone(),
            l1d: self.l1d.array.clone(),
            l1i: self.l1i.array.clone(),
            l2: self.l2.array.clone(),
            l1d_stats: self.l1d.stats,
            l1i_stats: self.l1i.stats,
            l2_stats: self.l2.stats,
            warm_clock: self.warm_clock,
        }
    }

    /// Restores a [`WarmCheckpoint`] into this (freshly built) system, as
    /// if every warm instruction had just been replayed through
    /// [`warm_inst`](MemorySystem::warm_inst) with a mechanism that never
    /// touches cache contents. Mechanism tables are *not* part of the
    /// checkpoint; warm them with
    /// [`replay_warm_events`](MemorySystem::replay_warm_events).
    pub fn restore_warm(&mut self, checkpoint: &WarmCheckpoint) {
        self.functional = checkpoint.functional.clone();
        self.l1d.array = checkpoint.l1d.clone();
        self.l1i.array = checkpoint.l1i.clone();
        self.l2.array = checkpoint.l2.clone();
        self.l1d.stats = checkpoint.l1d_stats;
        self.l1i.stats = checkpoint.l1i_stats;
        self.l2.stats = checkpoint.l2_stats;
        self.warm_clock = checkpoint.warm_clock;
        self.now = Cycle::new(self.warm_clock);
        self.warm_last_iline = None;
        self.warm_last_dline = None;
    }

    /// Replays a recorded warm event stream into the attached mechanisms,
    /// reproducing exactly the hook sequence a full warm phase would have
    /// fired at their slots. Only valid for mechanisms that opt in via
    /// [`warm_events_only`](microlib_model::Mechanism::warm_events_only)
    /// — the replay assumes probes miss, victims are dropped and no
    /// spills occur, which is those mechanisms' contract.
    pub fn replay_warm_events(&mut self, log: &WarmLog) {
        self.warming = true;
        // Tick boundaries are synthesized, not stored: warm instruction
        // `i` (1-based) runs at clock `2 * i`, fires its events, then each
        // slot ticks and has its prefetch queue cleared — exactly
        // `warm_inst`'s order.
        let mut events = log.events().iter().peekable();
        for i in 1..=log.insts() {
            let now = Cycle::new(2 * i);
            while let Some(ev) = events.peek() {
                if self.warm_event_clock(ev) > now {
                    break;
                }
                self.replay_one_warm_event(ev);
                events.next();
            }
            self.replay_warm_tick(AttachPoint::L1Data, now);
            self.replay_warm_tick(AttachPoint::L2Unified, now);
        }
        debug_assert!(events.peek().is_none(), "warm events beyond the last tick");
        self.warming = false;
    }

    fn warm_event_clock(&self, ev: &WarmEvent) -> Cycle {
        match ev {
            WarmEvent::Probe { now, .. } => *now,
            WarmEvent::Access { event, .. } => event.now,
            WarmEvent::Evict { event } => event.now,
            WarmEvent::Refill { event, .. } => event.now,
        }
    }

    fn replay_one_warm_event(&mut self, ev: &WarmEvent) {
        match ev {
            WarmEvent::Probe { line, now } => {
                if let Some(slot) = &mut self.l1_mech {
                    let hit = slot.mech.probe(*line, *now);
                    debug_assert!(
                        hit.is_none(),
                        "{}: probe serviced during warm replay, but the mechanism \
                         claims warm_events_only",
                        slot.mech.name()
                    );
                }
            }
            WarmEvent::Access { at, event } => {
                if let Some(slot) = self.slot_mut(*at) {
                    slot.mech.on_access(event, &mut slot.queue);
                }
            }
            WarmEvent::Evict { event } => {
                if let Some(slot) = &mut self.l1_mech {
                    let action = slot.mech.on_evict(event);
                    debug_assert_eq!(
                        action,
                        VictimAction::Dropped,
                        "{}: victim captured during warm replay, but the mechanism \
                         claims warm_events_only",
                        slot.mech.name()
                    );
                }
            }
            WarmEvent::Refill { at, event } => {
                if let Some(slot) = self.slot_mut(*at) {
                    slot.mech.on_refill(event, &mut slot.queue);
                }
            }
        }
    }

    fn replay_warm_tick(&mut self, at: AttachPoint, now: Cycle) {
        if let Some(slot) = self.slot_mut(at) {
            slot.mech.tick(now);
            slot.queue.clear();
            // `warm_events_only` mechanisms never spill; a violation is a
            // contract bug (asserted here), and in release the dropped
            // dirty data trips the value-integrity checker downstream
            // rather than being silently applied at synthesized clocks.
            debug_assert!(
                slot.mech.drain_spills().is_empty(),
                "spills during warm replay contradict warm_events_only"
            );
        }
    }

    fn slot_mut(&mut self, at: AttachPoint) -> Option<&mut MechSlot> {
        match at {
            AttachPoint::L1Data => self.l1_mech.as_mut(),
            AttachPoint::L2Unified => self.l2_mech.as_mut(),
        }
    }

    // ------------------------------------------------------------------
    // Per-cycle engine.
    // ------------------------------------------------------------------

    /// Advances the hierarchy to `now` (one call per CPU cycle, before any
    /// issue) and returns the requests that completed.
    pub fn begin_cycle(&mut self, now: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        self.begin_cycle_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`MemorySystem::begin_cycle`]: completions
    /// land in `out` (cleared first), so a driver loop can reuse one buffer
    /// for the whole run instead of allocating a `Vec` per cycle.
    pub fn begin_cycle_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        out.clear();
        self.now = now;
        self.l1d.begin_cycle();
        self.l1i.begin_cycle();
        self.l2.begin_cycle();
        self.completions.clear();

        self.pump_memory();
        self.pump_l2_refills();
        self.pump_l2_queue();
        self.pump_l1_fills();
        self.drain_prefetch_queues();
        self.tick_mechanisms();

        std::mem::swap(&mut self.completions, out);
    }

    fn pump_memory(&mut self) {
        // Feed the controller from the pending queue.
        while let Some(head) = self.mem_pending.front().copied() {
            if head.ready_at > self.now {
                break;
            }
            let token = self.fresh_token();
            if !self
                .memory
                .try_push(token, head.l2_line, head.is_write, self.now)
            {
                self.next_token -= 1;
                break; // controller queue full; retry next cycle
            }
            if !head.is_write {
                self.mem_inflight.push((token.0, head.l2_line));
            }
            self.mem_pending.pop_front();
        }
        // Collect finished transactions (into the reusable scratch — the
        // common idle tick must not allocate).
        let mut done = std::mem::take(&mut self.mem_done);
        self.memory.tick_into(self.now, &mut done);
        for d in done.drain(..) {
            if d.is_write {
                continue;
            }
            let Some(pos) = self.mem_inflight.iter().position(|&(t, _)| t == d.token.0) else {
                continue;
            };
            let (_, l2_line) = self.mem_inflight.swap_remove(pos);
            // Data returns over the memory bus.
            self.mem_bus.reserve(self.now, self.config.l2.line_bytes);
            self.l2_refills.push(L2Refill {
                l2_line,
                arrive: self.mem_bus.busy_until(),
            });
        }
        self.mem_done = done;
    }

    fn pump_l2_refills(&mut self) {
        let mut i = 0;
        while i < self.l2_refills.len() {
            if self.l2_refills[i].arrive > self.now {
                i += 1;
                continue;
            }
            if self.config.fidelity.refill_uses_port && !self.l2.port_available() {
                self.l2.stats.port_stalls += 1;
                i += 1;
                continue;
            }
            let refill = self.l2_refills.swap_remove(i);
            if self.config.fidelity.refill_uses_port {
                self.l2.take_port();
            }
            self.finish_l2_refill(refill.l2_line);
        }
    }

    fn finish_l2_refill(&mut self, l2_line: Addr) {
        let mut targets = std::mem::take(&mut self.mshr_targets);
        let entry = self.l2.mshr.complete_into(l2_line, &mut targets);
        self.mshr_targets = targets;
        // Drain this line's waiters in arrival order; `retain` keeps the
        // relative order of everyone else.
        let mut waiters = std::mem::take(&mut self.waiter_scratch);
        waiters.clear();
        self.l2_waiters.retain(|&(line, origin)| {
            if line == l2_line.raw() {
                waiters.push(origin);
                false
            } else {
                true
            }
        });
        let was_prefetch = entry.map(|e| e.is_prefetch).unwrap_or(false);
        let data = self.functional.dram().read_line(l2_line, 64);
        self.trace_event(l2_line, || {
            format!(
                "L2 refill word0={:#x} prefetch={}",
                data.word(0),
                was_prefetch
            )
        });
        if !self.l2.array.contains(l2_line) {
            let victim = self.l2.array.fill(l2_line, data, false, was_prefetch);
            if was_prefetch {
                self.l2.stats.prefetch_fills += 1;
            } else {
                self.l2.stats.demand_fills += 1;
            }
            if let Some(v) = victim {
                self.handle_l2_victim(v);
            }
        }
        if let Some(slot) = &mut self.l2_mech {
            let ev = RefillEvent {
                now: self.now,
                line: l2_line,
                data,
                cause: if was_prefetch {
                    RefillCause::Prefetch
                } else {
                    RefillCause::Demand
                },
            };
            slot.mech.on_refill(&ev, &mut slot.queue);
        }
        // Forward to the L1 requesters.
        for &waiter in &waiters {
            self.schedule_l1_fill_from_l2_delayed(l2_line, waiter, 0);
        }
        self.waiter_scratch = waiters;
    }

    fn pump_l2_queue(&mut self) {
        while let Some(front) = self.l2_queue.front() {
            let arrival = match front {
                L2Req::Demand { arrival, .. } => *arrival,
                L2Req::Writeback { arrival, .. } => *arrival,
            };
            if arrival > self.now || !self.l2.port_available() {
                break;
            }
            let req = self.l2_queue.pop_front().expect("front exists");
            match req {
                L2Req::Writeback { .. } => {
                    // Data already merged eagerly; the request only consumes
                    // the port.
                    self.l2.take_port();
                }
                L2Req::Demand {
                    l2_line,
                    pc,
                    kind,
                    origin,
                    arrival: _,
                } => {
                    self.l2.take_port();
                    self.process_l2_demand(l2_line, pc, kind, origin);
                }
            }
        }
    }

    fn process_l2_demand(&mut self, l2_line: Addr, pc: Addr, kind: AccessKind, origin: Origin) {
        let is_prefetch_origin = matches!(origin, Origin::L1Prefetch | Origin::L2Prefetch);
        if let Some(hit) = self.l2.array.lookup(l2_line) {
            if !is_prefetch_origin {
                match kind {
                    AccessKind::Load => self.l2.stats.loads += 1,
                    AccessKind::Store => self.l2.stats.stores += 1,
                }
                if hit.first_touch_of_prefetch {
                    self.l2.stats.useful_prefetches += 1;
                }
                self.fire_l2_access(
                    pc,
                    l2_line,
                    kind,
                    AccessOutcome::Hit,
                    hit.first_touch_of_prefetch,
                );
            }
            // Respond after the L2 hit latency.
            self.schedule_l1_fill_from_l2_delayed(l2_line, origin, self.config.l2.latency);
            return;
        }
        // L2 miss. Sidecar probe (unused by the stock L2 mechanisms but part
        // of the generic protocol).
        let probe = self
            .l2_mech
            .as_mut()
            .and_then(|slot| slot.mech.probe(l2_line, self.now));
        if let Some(hit) = probe {
            self.l2.stats.sidecar_hits += 1;
            if !is_prefetch_origin {
                match kind {
                    AccessKind::Load => self.l2.stats.loads += 1,
                    AccessKind::Store => self.l2.stats.stores += 1,
                }
                self.fire_l2_access(pc, l2_line, kind, AccessOutcome::SidecarHit, false);
            }
            let victim = self.l2.array.fill(l2_line, hit.data, hit.dirty, false);
            if let Some(v) = victim {
                self.handle_l2_victim(v);
            }
            self.schedule_l1_fill_from_l2_delayed(
                l2_line,
                origin,
                self.config.l2.latency + hit.extra_latency,
            );
            return;
        }

        let target = MshrTarget {
            req: None,
            addr: l2_line,
            is_store: false,
            value: 0,
        };
        match self
            .l2
            .mshr
            .try_insert(l2_line, target, is_prefetch_origin, false, self.now)
        {
            MshrOutcome::Allocated => {
                if !is_prefetch_origin {
                    match kind {
                        AccessKind::Load => self.l2.stats.loads += 1,
                        AccessKind::Store => self.l2.stats.stores += 1,
                    }
                    self.l2.stats.misses += 1;
                    self.fire_l2_access(pc, l2_line, kind, AccessOutcome::Miss, false);
                    if let Some(slot) = &mut self.l2_mech {
                        slot.queue.cancel(l2_line);
                    }
                }
                self.l2_waiters.push((l2_line.raw(), origin));
                // Request command to memory.
                self.mem_bus.reserve(self.now, 8);
                self.mem_pending.push_back(MemReq {
                    l2_line,
                    is_write: false,
                    ready_at: self.mem_bus.busy_until(),
                });
            }
            MshrOutcome::Merged => {
                if !is_prefetch_origin {
                    match kind {
                        AccessKind::Load => self.l2.stats.loads += 1,
                        AccessKind::Store => self.l2.stats.stores += 1,
                    }
                    self.l2.stats.mshr_merges += 1;
                    if self.l2.mshr.is_prefetch_inflight(l2_line) {
                        self.l2.stats.useful_prefetches += 1;
                    }
                    self.fire_l2_access(pc, l2_line, kind, AccessOutcome::Miss, false);
                }
                self.l2_waiters.push((l2_line.raw(), origin));
            }
            MshrOutcome::FullStall | MshrOutcome::BusyStall | MshrOutcome::TargetStall => {
                // Head-of-line blocking: requeue at the front and retry next
                // cycle.
                self.l2.stats.mshr_full_stalls += 1;
                self.l2.ports_used -= 1; // the port was not really consumed
                self.l2_queue.push_front(L2Req::Demand {
                    l2_line,
                    pc,
                    kind,
                    origin,
                    arrival: self.now + 1,
                });
            }
        }
    }

    fn schedule_l1_fill_from_l2_delayed(&mut self, l2_line: Addr, origin: Origin, delay: u64) {
        if let Origin::L1BufferPrefetch { l1_line } = origin {
            // Buffer fills bypass the MSHR bookkeeping entirely.
            self.l1_l2_bus
                .reserve(self.now + delay, self.config.l1d.line_bytes);
            self.l1_fills.push(L1Fill {
                l1_line,
                instruction: false,
                prefetched: true,
                to_buffer: true,
                arrive: self.l1_l2_bus.busy_until(),
            });
            return;
        }
        let (instruction, prefetched, to_buffer) = match origin {
            Origin::L1D => (false, false, false),
            Origin::L1I => (true, false, false),
            Origin::L1Prefetch => (false, true, false),
            Origin::L1BufferPrefetch { .. } | Origin::L2Prefetch => return,
        };
        let l1_bytes = if instruction {
            self.config.l1i.line_bytes
        } else {
            self.config.l1d.line_bytes
        };
        let halves = (self.config.l2.line_bytes / l1_bytes) as usize;
        for h in 0..halves {
            let cand = l2_line.offset((h as i64) * l1_bytes as i64);
            let unit = if instruction { &self.l1i } else { &self.l1d };
            if unit.mshr.contains(cand)
                && !self
                    .l1_fills
                    .iter()
                    .any(|f| f.l1_line == cand && f.instruction == instruction && !f.to_buffer)
            {
                self.l1_l2_bus.reserve(self.now + delay, l1_bytes);
                self.l1_fills.push(L1Fill {
                    l1_line: cand,
                    instruction,
                    prefetched,
                    to_buffer,
                    arrive: self.l1_l2_bus.busy_until(),
                });
            }
        }
    }

    fn pump_l1_fills(&mut self) {
        let mut i = 0;
        while i < self.l1_fills.len() {
            if self.l1_fills[i].arrive > self.now {
                i += 1;
                continue;
            }
            let unit_is_inst = self.l1_fills[i].instruction;
            {
                let unit = if unit_is_inst {
                    &mut self.l1i
                } else {
                    &mut self.l1d
                };
                if self.config.fidelity.refill_uses_port && !unit.port_available() {
                    unit.stats.port_stalls += 1;
                    i += 1;
                    continue;
                }
                if self.config.fidelity.refill_uses_port {
                    unit.take_port();
                }
            }
            let fill = self.l1_fills.swap_remove(i);
            if fill.instruction {
                self.finish_l1i_fill(fill);
            } else {
                self.finish_l1d_fill(fill);
            }
        }
    }

    fn finish_l1i_fill(&mut self, fill: L1Fill) {
        let mut targets = std::mem::take(&mut self.mshr_targets);
        if self
            .l1i
            .mshr
            .complete_into(fill.l1_line, &mut targets)
            .is_some()
        {
            if !self.l1i.array.contains(fill.l1_line) {
                let words = (self.config.l1i.line_bytes / 8) as usize;
                self.l1i
                    .array
                    .fill(fill.l1_line, LineData::zeroed(words), false, false);
                self.l1i.stats.demand_fills += 1;
            }
            for t in &targets {
                if let Some(req) = t.req {
                    self.completions.push(Completion {
                        req,
                        at: self.now,
                        value: 0,
                    });
                }
            }
        }
        self.mshr_targets = targets;
    }

    fn finish_l1d_fill(&mut self, fill: L1Fill) {
        if fill.to_buffer {
            self.finish_buffer_fill(fill);
            return;
        }
        let mut targets = std::mem::take(&mut self.mshr_targets);
        if let Some(entry) = self.l1d.mshr.complete_into(fill.l1_line, &mut targets) {
            self.finish_l1d_fill_inner(fill, entry, &targets);
        }
        self.mshr_targets = targets;
    }

    fn finish_l1d_fill_inner(
        &mut self,
        fill: L1Fill,
        entry: crate::mshr::MshrCompletion,
        targets: &[MshrTarget],
    ) {
        let mut data = self
            .l2
            .array
            .read_line(fill.l1_line.line(self.config.l2.line_bytes))
            .map(|l2data| {
                let off = (fill.l1_line.offset_in_line(self.config.l2.line_bytes) / 8) as usize;
                let words = (self.config.l1d.line_bytes / 8) as usize;
                LineData::from_words(&l2data.words()[off..off + words])
            })
            .unwrap_or_else(|| {
                self.functional
                    .dram()
                    .read_line(fill.l1_line, self.config.l1d.line_bytes)
            });

        if entry.to_buffer {
            // Buffer-destination prefetch: hand the line to the mechanism
            // only — unless the line entered the L1 while the fill was in
            // flight (probe-hit swap), in which case the buffer copy would
            // go stale the moment the cached copy is written. Discard it.
            if self.l1d.array.contains(fill.l1_line) {
                self.trace_event(fill.l1_line, || {
                    "buffer fill discarded (line now L1-resident)".to_owned()
                });
                return;
            }
            self.trace_event(fill.l1_line, || {
                format!("fill -> mech buffer word0={:#x}", data.word(0))
            });
            self.l1d.stats.prefetch_fills += 1;
            if let Some(slot) = &mut self.l1_mech {
                let ev = RefillEvent {
                    now: self.now,
                    line: fill.l1_line,
                    data,
                    cause: RefillCause::Prefetch,
                };
                slot.mech.on_refill(&ev, &mut slot.queue);
            }
            return;
        }

        // Apply merged targets in arrival order; stores update the fill
        // data, loads observe the current value.
        let mut dirty = false;
        for t in targets {
            let off = (t.addr.offset_in_line(self.config.l1d.line_bytes) / 8) as usize;
            if t.is_store {
                data.set_word(off, t.value);
                dirty = true;
            } else if let Some(req) = t.req {
                let value = data.word(off);
                self.check_value(t.addr, value);
                self.completions.push(Completion {
                    req,
                    at: self.now,
                    value,
                });
                continue;
            }
            if t.is_store {
                if let Some(req) = t.req {
                    self.completions.push(Completion {
                        req,
                        at: self.now,
                        value: t.value,
                    });
                }
            }
        }

        self.trace_event(fill.l1_line, || {
            format!(
                "L1 fill install word0={:#x} targets={}",
                data.word(0),
                targets.len()
            )
        });
        if !self.l1d.array.contains(fill.l1_line) {
            let prefetched = fill.prefetched && entry.is_prefetch;
            if prefetched {
                self.l1d.stats.prefetch_fills += 1;
            } else {
                self.l1d.stats.demand_fills += 1;
            }
            let victim = self.l1d.array.fill(fill.l1_line, data, dirty, prefetched);
            if let Some(v) = victim {
                self.handle_l1_victim(v);
            }
        } else if dirty {
            // Extremely rare: line got installed by a sidecar swap while the
            // miss was in flight; merge the stores.
            for t in targets {
                if t.is_store {
                    self.l1d.array.write_word(t.addr, t.value);
                }
            }
        }

        if let Some(slot) = &mut self.l1_mech {
            // Cause is `Prefetch` only for buffer-destined fills (handled
            // above): a cache-installed line must not be mirrored into a
            // mechanism's buffer, or the buffer copy would go stale when
            // the cached copy is written (value-integrity hazard).
            let ev = RefillEvent {
                now: self.now,
                line: fill.l1_line,
                data,
                cause: RefillCause::Demand,
            };
            slot.mech.on_refill(&ev, &mut slot.queue);
        }
    }

    /// Delivers a buffer-destination prefetch to the L1 mechanism — unless
    /// the line became L1-resident (or a demand miss is in flight) while
    /// the prefetch travelled, in which case the copy would go stale and is
    /// discarded.
    fn finish_buffer_fill(&mut self, fill: L1Fill) {
        if let Some(pos) = self
            .buffer_inflight
            .iter()
            .position(|&l| l == fill.l1_line.raw())
        {
            self.buffer_inflight.swap_remove(pos);
        }
        if self.l1d.array.contains(fill.l1_line) || self.l1d.mshr.contains(fill.l1_line) {
            self.trace_event(fill.l1_line, || {
                "buffer fill discarded (resident/in-flight demand)".to_owned()
            });
            return;
        }
        let data = self
            .l2
            .array
            .read_line(fill.l1_line.line(self.config.l2.line_bytes))
            .map(|l2data| {
                let off = (fill.l1_line.offset_in_line(self.config.l2.line_bytes) / 8) as usize;
                let words = (self.config.l1d.line_bytes / 8) as usize;
                LineData::from_words(&l2data.words()[off..off + words])
            })
            .unwrap_or_else(|| {
                self.functional
                    .dram()
                    .read_line(fill.l1_line, self.config.l1d.line_bytes)
            });
        self.trace_event(fill.l1_line, || {
            format!("fill -> mech buffer word0={:#x}", data.word(0))
        });
        self.l1d.stats.prefetch_fills += 1;
        if let Some(slot) = &mut self.l1_mech {
            let ev = RefillEvent {
                now: self.now,
                line: fill.l1_line,
                data,
                cause: RefillCause::Prefetch,
            };
            slot.mech.on_refill(&ev, &mut slot.queue);
        }
    }

    fn fire_l2_access(
        &mut self,
        pc: Addr,
        l2_line: Addr,
        kind: AccessKind,
        outcome: AccessOutcome,
        first_touch: bool,
    ) {
        if let Some(slot) = &mut self.l2_mech {
            let value = self.functional.architectural(l2_line);
            let ev = AccessEvent {
                now: self.now,
                pc,
                addr: l2_line,
                line: l2_line,
                kind,
                outcome,
                first_touch_of_prefetch: first_touch,
                value: Some(value),
            };
            slot.mech.on_access(&ev, &mut slot.queue);
        }
    }

    fn drain_prefetch_queues(&mut self) {
        // L1-attached mechanism: up to two prefetches per cycle when the
        // L1<->L2 bus is idle and the MSHR can take them. (Buffer-destined
        // prefetches bypass the demand ports but compete for MSHRs and the
        // L2 path.)
        for _ in 0..4 {
            let Some(slot) = &mut self.l1_mech else { break };
            // Buffer-destined prefetches have their own path beside the L1
            // and do not need an MSHR entry; cache-destined ones do.
            let bus_nearly_idle = self.l1_l2_bus.busy_until() <= self.now + 2;
            if !(bus_nearly_idle && self.l1d.stalled_until <= self.now) {
                if !slot.queue.is_empty() {
                    slot.drain_blocked += 1;
                }
                break;
            }
            slot.drain_ok += 1;
            let Some(req) = slot.queue.peek().copied() else {
                break;
            };
            if self.l1d.array.peek(req.line)
                || self.l1d.mshr.contains(req.line)
                || slot.mech.holds(req.line)
                || self.buffer_inflight.contains(&req.line.raw())
            {
                slot.queue.pop();
                slot.dropped_resident += 1;
                continue;
            }
            if req.destination == PrefetchDestination::Buffer {
                // Dedicated prefetch-buffer path: no L1 MSHR entry; the
                // request competes for the L2 path only.
                slot.queue.pop();
                self.buffer_inflight.push(req.line.raw());
                self.send_miss_to_l2(
                    req.line,
                    Addr::NULL,
                    AccessKind::Load,
                    Origin::L1BufferPrefetch { l1_line: req.line },
                );
                continue;
            }
            if self.l1d.mshr.is_full() {
                slot.drain_blocked += 1;
                break;
            }
            let target = MshrTarget {
                req: None,
                addr: req.line,
                is_store: false,
                value: 0,
            };
            if self
                .l1d
                .mshr
                .try_insert(req.line, target, true, false, self.now)
                .accepted()
            {
                slot.queue.pop();
                self.send_miss_to_l2(req.line, Addr::NULL, AccessKind::Load, Origin::L1Prefetch);
            } else {
                break;
            }
        }
        // L2-attached mechanism: one prefetch per cycle when the memory bus
        // is idle and the MSHR can take it. (The prefetch engine has its
        // own path into the miss machinery, so it does not compete for the
        // demand ports; it *does* compete for MSHRs, the memory bus and the
        // SDRAM queue — the contention effects of Figs 8/9.)
        if let Some(slot) = &mut self.l2_mech {
            let bus_nearly_idle = self.mem_bus.busy_until() <= self.now + 5;
            if bus_nearly_idle && !self.l2.mshr.is_full() {
                if let Some(req) = slot.queue.peek().copied() {
                    if self.l2.array.peek(req.line) || self.l2.mshr.contains(req.line) {
                        slot.queue.pop();
                        slot.dropped_resident += 1;
                    } else {
                        let target = MshrTarget {
                            req: None,
                            addr: req.line,
                            is_store: false,
                            value: 0,
                        };
                        if self
                            .l2
                            .mshr
                            .try_insert(req.line, target, true, false, self.now)
                            .accepted()
                        {
                            slot.queue.pop();
                            self.l2_waiters.push((req.line.raw(), Origin::L2Prefetch));
                            self.mem_bus.reserve(self.now, 8);
                            self.mem_pending.push_back(MemReq {
                                l2_line: req.line,
                                is_write: false,
                                ready_at: self.mem_bus.busy_until(),
                            });
                        }
                    }
                }
            }
        }
    }

    fn tick_mechanisms(&mut self) {
        let mut spills = Vec::new();
        if let Some(slot) = &mut self.l1_mech {
            slot.mech.tick(self.now);
            spills.extend(slot.mech.drain_spills().into_iter().map(|s| (true, s)));
        }
        if let Some(slot) = &mut self.l2_mech {
            slot.mech.tick(self.now);
            spills.extend(slot.mech.drain_spills().into_iter().map(|s| (false, s)));
        }
        for (from_l1, spill) in spills {
            if from_l1 {
                self.apply_writeback_to_l2(spill.line, &spill.data);
            } else {
                self.functional
                    .dram_mut()
                    .write_line(spill.line, &spill.data);
                self.mem_bus.reserve(self.now, spill.data.byte_len());
                self.mem_pending.push_back(MemReq {
                    l2_line: spill.line,
                    is_write: true,
                    ready_at: self.mem_bus.busy_until(),
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Statistics and introspection.
    // ------------------------------------------------------------------

    /// L1 data cache counters (excluding the warmup phase).
    pub fn l1d_stats(&self) -> CacheStats {
        delta_stats(&self.l1d.stats, &self.l1d_stats_base)
    }

    /// L1 instruction cache counters (excluding the warmup phase).
    pub fn l1i_stats(&self) -> CacheStats {
        delta_stats(&self.l1i.stats, &self.l1i_stats_base)
    }

    /// L2 counters (excluding the warmup phase).
    pub fn l2_stats(&self) -> CacheStats {
        delta_stats(&self.l2.stats, &self.l2_stats_base)
    }

    /// Main-memory counters (plus bus busy time folded in).
    pub fn memory_stats(&self) -> MemoryStats {
        let mut stats = self.memory.stats();
        stats.bus_busy_cycles = self.mem_bus.stats().busy_cycles;
        stats
    }

    /// The attached L1 mechanism's own counters, if one is attached.
    pub fn l1_mechanism_stats(&self) -> Option<MechanismStats> {
        self.l1_mech.as_ref().map(|s| s.mech.stats())
    }

    /// The attached L2 mechanism's own counters, if one is attached.
    pub fn l2_mechanism_stats(&self) -> Option<MechanismStats> {
        self.l2_mech.as_ref().map(|s| s.mech.stats())
    }

    /// Debug: (drain_ok, drain_blocked, dropped_resident) for the L1 slot.
    pub fn l1_drain_counters(&self) -> Option<(u64, u64, u64)> {
        self.l1_mech
            .as_ref()
            .map(|s| (s.drain_ok, s.drain_blocked, s.dropped_resident))
    }

    /// Prefetch-queue counters for the L1 and L2 mechanism slots.
    pub fn prefetch_queue_stats(&self) -> (Option<PrefetchQueueStats>, Option<PrefetchQueueStats>) {
        (
            self.l1_mech.as_ref().map(|s| s.queue.stats()),
            self.l2_mech.as_ref().map(|s| s.queue.stats()),
        )
    }

    /// Whether any request (CPU-visible or internal) is still in flight.
    pub fn quiescent(&self) -> bool {
        self.l1d.mshr.is_empty()
            && self.l1i.mshr.is_empty()
            && self.l2.mshr.is_empty()
            && self.l2_queue.is_empty()
            && self.l1_fills.is_empty()
            && self.l2_refills.is_empty()
            && self.mem_pending.is_empty()
            && self.mem_inflight.is_empty()
            && self.buffer_inflight.is_empty()
    }
}

fn delta_stats(now: &CacheStats, base: &CacheStats) -> CacheStats {
    CacheStats {
        loads: now.loads - base.loads,
        stores: now.stores - base.stores,
        misses: now.misses - base.misses,
        sidecar_hits: now.sidecar_hits - base.sidecar_hits,
        mshr_merges: now.mshr_merges - base.mshr_merges,
        mshr_full_stalls: now.mshr_full_stalls - base.mshr_full_stalls,
        pipeline_stalls: now.pipeline_stalls - base.pipeline_stalls,
        port_stalls: now.port_stalls - base.port_stalls,
        demand_fills: now.demand_fills - base.demand_fills,
        prefetch_fills: now.prefetch_fills - base.prefetch_fills,
        useful_prefetches: now.useful_prefetches - base.useful_prefetches,
        writebacks: now.writebacks - base.writebacks,
        useless_prefetch_evictions: now.useless_prefetch_evictions
            - base.useless_prefetch_evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::SystemConfig;

    fn system(cfg: SystemConfig) -> MemorySystem {
        MemorySystem::new(cfg, Vec::new()).unwrap()
    }

    fn run_to_completion(
        mem: &mut MemorySystem,
        req: ReqId,
        start: Cycle,
        limit: u64,
    ) -> Completion {
        let mut now = start;
        for _ in 0..limit {
            now += 1;
            for done in mem.begin_cycle(now) {
                if done.req == req {
                    return done;
                }
            }
        }
        panic!("request {req:?} did not complete within {limit} cycles");
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut mem = system(SystemConfig::baseline_constant_memory());
        mem.functional_mut()
            .initialize_word(Addr::new(0x1000), 0xAA);
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let pending = match mem
            .try_load(Addr::new(0x40_0000), Addr::new(0x1000), now)
            .unwrap()
        {
            IssueResult::Pending(id) => id,
            other => panic!("expected miss, got {other:?}"),
        };
        let done = run_to_completion(&mut mem, pending, now, 500);
        assert_eq!(done.value, 0xAA);
        // Second access hits with L1 latency.
        let now = done.at + 1;
        mem.begin_cycle(now);
        match mem
            .try_load(Addr::new(0x40_0000), Addr::new(0x1008), now)
            .unwrap()
        {
            IssueResult::Done { at, value } => {
                assert_eq!(at, now + 1);
                assert_eq!(value, 0);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(mem.l1d_stats().misses, 1);
        assert_eq!(mem.l1d_stats().loads, 2);
        assert!(mem.integrity_error().is_none());
    }

    #[test]
    fn store_then_load_round_trip() {
        let mut mem = system(SystemConfig::baseline_constant_memory());
        let addr = Addr::new(0x2000);
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let st = match mem
            .try_store(Addr::new(0x40_0000), addr, 0x77, now)
            .unwrap()
        {
            IssueResult::Pending(id) => id,
            other => panic!("cold store must miss: {other:?}"),
        };
        let done = run_to_completion(&mut mem, st, now, 500);
        let now = done.at + 1;
        mem.begin_cycle(now);
        match mem.try_load(Addr::new(0x40_0004), addr, now).unwrap() {
            IssueResult::Done { value, .. } => assert_eq!(value, 0x77),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(mem.integrity_error().is_none());
    }

    #[test]
    fn same_line_accesses_merge_in_mshr() {
        let mut mem = system(SystemConfig::baseline_constant_memory());
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let a = match mem.try_load(Addr::NULL, Addr::new(0x3000), now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        // Next cycle (same line, different word) merges.
        let now = Cycle::new(1);
        mem.begin_cycle(now);
        let b = match mem.try_load(Addr::NULL, Addr::new(0x3008), now).unwrap() {
            IssueResult::Pending(id) => id,
            other => panic!("expected merge-pending, got {other:?}"),
        };
        assert_eq!(mem.l1d_stats().mshr_merges, 1);
        assert_eq!(mem.l1d_stats().misses, 1, "merged access is not a new miss");
        let d1 = run_to_completion(&mut mem, a, now, 500);
        // b completes at the same fill.
        assert!(d1.at.raw() > 0);
        let _ = b;
    }

    #[test]
    fn ports_are_enforced() {
        let mut mem = system(SystemConfig::baseline_constant_memory());
        // Warm one line, then hammer it with hits in a single cycle.
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let p = match mem.try_load(Addr::NULL, Addr::new(0x1000), now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        let d = run_to_completion(&mut mem, p, now, 500);
        let now = d.at + 1;
        mem.begin_cycle(now);
        // L1D has 4 ports; the 5th access in one cycle must be refused.
        let mut oks = 0;
        for _ in 0..5 {
            match mem.try_load(Addr::NULL, Addr::new(0x1008), now) {
                Ok(IssueResult::Done { .. }) => oks += 1,
                Ok(other) => panic!("expected hit, got {other:?}"),
                Err(IssueRejection::PortBusy) => {}
                Err(e) => panic!("unexpected rejection {e:?}"),
            }
        }
        assert_eq!(oks, 4);
        assert_eq!(mem.l1d_stats().port_stalls, 1);
    }

    #[test]
    fn mshr_busy_cycle_limits_allocations_per_cycle() {
        let mut mem = system(SystemConfig::baseline_constant_memory());
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        assert!(mem.try_load(Addr::NULL, Addr::new(0x1000), now).is_ok());
        // Second distinct-line miss in the same cycle hits the MSHR busy
        // window ("the MSHR is not available for one cycle").
        assert_eq!(
            mem.try_load(Addr::NULL, Addr::new(0x2000), now)
                .unwrap_err(),
            IssueRejection::MshrUnavailable
        );
    }

    #[test]
    fn mshr_capacity_limits_outstanding_misses() {
        let mut cfg = SystemConfig::baseline_constant_memory();
        cfg.l1d.mshr_entries = 2;
        let mut mem = system(cfg);
        let mut rejected = false;
        // Issue 3 distinct-line misses over several cycles (ports allow 4
        // per cycle but the MSHR busy-cycle limits allocations to 1/cycle).
        let mut issued = 0;
        for c in 0..10 {
            let now = Cycle::new(c);
            mem.begin_cycle(now);
            let addr = Addr::new(0x10_000 + issued * 0x1000);
            match mem.try_load(Addr::NULL, addr, now) {
                Ok(_) => issued += 1,
                Err(IssueRejection::MshrUnavailable) => {
                    if issued >= 2 {
                        rejected = true;
                        break;
                    }
                }
                Err(_) => {}
            }
            if issued == 3 {
                break;
            }
        }
        assert!(rejected, "third miss must be refused with 2 MSHRs");
    }

    #[test]
    fn infinite_mshr_mode_never_rejects_for_capacity() {
        let mut cfg = SystemConfig::baseline_constant_memory();
        cfg.fidelity = microlib_model::FidelityConfig::simplescalar_like();
        let mut mem = system(cfg);
        let mut issued = 0;
        for c in 0..40 {
            let now = Cycle::new(c);
            mem.begin_cycle(now);
            for p in 0..4 {
                let addr = Addr::new(0x100_000 + (issued * 4 + p) * 0x1000);
                if mem.try_load(Addr::NULL, addr, now).is_ok() {
                    issued += 1;
                }
            }
        }
        assert!(
            issued > 20,
            "idealized model should accept many misses, got {issued}"
        );
    }

    #[test]
    fn dirty_eviction_writes_back_and_preserves_value() {
        let mut cfg = SystemConfig::baseline_constant_memory();
        // Tiny L1 so evictions happen fast: 2 lines direct-mapped.
        cfg.l1d.size_bytes = 64;
        cfg.l1d.mshr_entries = 8;
        let mut mem = system(cfg);
        let addr_a = Addr::new(0x1_0000);
        let addr_b = Addr::new(0x1_0040); // same L1 set (2 sets, stride 64)

        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let st = match mem.try_store(Addr::NULL, addr_a, 0xBEEF, now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        let d = run_to_completion(&mut mem, st, now, 500);
        // Evict line A by loading B (same set).
        let now = d.at + 1;
        mem.begin_cycle(now);
        let ld = match mem.try_load(Addr::NULL, addr_b, now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        let d2 = run_to_completion(&mut mem, ld, now, 500);
        // Reload A: value must survive the round trip.
        let now = d2.at + 1;
        mem.begin_cycle(now);
        match mem.try_load(Addr::NULL, addr_a, now) {
            Ok(IssueResult::Pending(id)) => {
                let d3 = run_to_completion(&mut mem, id, now, 500);
                assert_eq!(d3.value, 0xBEEF);
            }
            Ok(IssueResult::Done { value, .. }) => assert_eq!(value, 0xBEEF),
            Err(e) => panic!("rejected: {e:?}"),
        }
        assert!(mem.l1d_stats().writebacks >= 1);
        assert!(mem.integrity_error().is_none());
    }

    #[test]
    fn writeback_drop_fault_is_caught_by_integrity_checker() {
        let mut cfg = SystemConfig::baseline_constant_memory();
        cfg.l1d.size_bytes = 64;
        let mut mem = system(cfg);
        mem.inject_writeback_drop_fault(true);
        let addr_a = Addr::new(0x1_0000);
        let addr_b = Addr::new(0x1_0040);

        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let st = match mem.try_store(Addr::NULL, addr_a, 0xBEEF, now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        let d = run_to_completion(&mut mem, st, now, 500);
        let now = d.at + 1;
        mem.begin_cycle(now);
        let ld = match mem.try_load(Addr::NULL, addr_b, now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        let d2 = run_to_completion(&mut mem, ld, now, 500);
        let now = d2.at + 1;
        mem.begin_cycle(now);
        match mem.try_load(Addr::NULL, addr_a, now) {
            Ok(IssueResult::Pending(id)) => {
                let _ = run_to_completion(&mut mem, id, now, 500);
            }
            Ok(IssueResult::Done { .. }) => {}
            Err(e) => panic!("rejected: {e:?}"),
        }
        let err = mem.integrity_error().expect("fault must be detected");
        assert_eq!(err.expected, 0xBEEF);
    }

    #[test]
    fn ifetch_hits_after_first_miss() {
        let mut mem = system(SystemConfig::baseline_constant_memory());
        let pc = Addr::new(0x40_0000);
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let pending = match mem.try_ifetch(pc, now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        let d = run_to_completion(&mut mem, pending, now, 500);
        let now = d.at + 1;
        mem.begin_cycle(now);
        match mem.try_ifetch(Addr::new(0x40_0008), now).unwrap() {
            IssueResult::Done { .. } => {}
            other => panic!("expected I-hit, got {other:?}"),
        }
        assert_eq!(mem.l1i_stats().misses, 1);
    }

    #[test]
    fn sdram_memory_end_to_end() {
        let mut mem = system(SystemConfig::baseline());
        mem.functional_mut().initialize_word(Addr::new(0x8000), 123);
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let pending = match mem.try_load(Addr::NULL, Addr::new(0x8000), now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        let done = run_to_completion(&mut mem, pending, now, 2000);
        assert_eq!(done.value, 123);
        // SDRAM latency: at least tRCD + CAS + L2 latency.
        assert!(done.at.raw() > 70, "SDRAM round trip too fast: {}", done.at);
        assert_eq!(mem.memory_stats().requests, 1);
        assert!(mem.quiescent());
    }

    #[test]
    fn duplicate_mechanism_attach_rejected() {
        use microlib_model::BaseMechanism;
        let r = MemorySystem::new(
            SystemConfig::baseline(),
            vec![
                Box::new(BaseMechanism::new()),
                Box::new(BaseMechanism::new()),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn l2_observes_l1_misses_only() {
        let mut mem = system(SystemConfig::baseline_constant_memory());
        let now = Cycle::ZERO;
        mem.begin_cycle(now);
        let p = match mem.try_load(Addr::NULL, Addr::new(0x9000), now).unwrap() {
            IssueResult::Pending(id) => id,
            _ => unreachable!(),
        };
        let d = run_to_completion(&mut mem, p, now, 500);
        // L1 hit afterwards must not touch L2.
        let l2_loads_before = mem.l2_stats().loads;
        let now = d.at + 1;
        mem.begin_cycle(now);
        mem.try_load(Addr::NULL, Addr::new(0x9008), now).unwrap();
        assert_eq!(mem.l2_stats().loads, l2_loads_before);
    }
}
