//! A shared split-transaction bus modelled as a single busy-until resource.
//!
//! Both the L1↔L2 bus (32 bytes at 2 GHz) and the memory bus (64 bytes at
//! 400 MHz) use this model: a transfer reserves the bus from
//! `max(now, busy_until)` for `cycles_for(bytes)` CPU cycles, and the caller
//! learns when its payload arrives at the other end. Contention between
//! demand traffic, refills, writebacks and prefetches therefore emerges
//! naturally — the effect behind Fig 8's "bus stalls more often" anecdote.

use microlib_model::{BusConfig, Cycle};

/// A time-multiplexed bus.
///
/// # Examples
///
/// ```
/// use microlib_mem::Bus;
/// use microlib_model::{BusConfig, Cycle};
///
/// let mut bus = Bus::new(BusConfig::baseline_memory()); // 64 B per 5 cycles
/// let t0 = Cycle::new(100);
/// assert_eq!(bus.reserve(t0, 64).raw(), 105);
/// // A second transfer queues behind the first.
/// assert_eq!(bus.reserve(t0, 64).raw(), 110);
/// ```
#[derive(Clone, Debug)]
pub struct Bus {
    config: BusConfig,
    busy_until: Cycle,
    stats: BusStats,
}

/// Utilization counters for a [`Bus`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct BusStats {
    /// Transfers carried.
    pub transfers: u64,
    /// Total cycles the bus was occupied.
    pub busy_cycles: u64,
    /// Total cycles transfers waited for the bus.
    pub wait_cycles: u64,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(config: BusConfig) -> Self {
        Bus {
            config,
            busy_until: Cycle::ZERO,
            stats: BusStats::default(),
        }
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Whether the bus is free at `now`.
    pub fn is_idle(&self, now: Cycle) -> bool {
        self.busy_until <= now
    }

    /// Reserves the bus for a transfer of `bytes` starting no earlier than
    /// `now`; returns the cycle at which the payload arrives.
    pub fn reserve(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let duration = self.config.cycles_for(bytes);
        self.stats.transfers += 1;
        self.stats.busy_cycles += duration;
        self.stats.wait_cycles += start.since(now);
        self.busy_until = start + duration;
        self.busy_until
    }

    /// When the current transfer (if any) finishes.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Utilization counters.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Clears occupancy and counters.
    pub fn reset(&mut self) {
        self.busy_until = Cycle::ZERO;
        self.stats = BusStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_bus() -> Bus {
        Bus::new(BusConfig::baseline_memory())
    }

    #[test]
    fn idle_bus_transfers_immediately() {
        let mut bus = mem_bus();
        assert!(bus.is_idle(Cycle::new(0)));
        let done = bus.reserve(Cycle::new(10), 64);
        assert_eq!(done.raw(), 15);
        assert!(!bus.is_idle(Cycle::new(12)));
        assert!(bus.is_idle(Cycle::new(15)));
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut bus = mem_bus();
        let a = bus.reserve(Cycle::new(0), 64);
        let b = bus.reserve(Cycle::new(0), 64);
        let c = bus.reserve(Cycle::new(0), 128);
        assert_eq!(a.raw(), 5);
        assert_eq!(b.raw(), 10);
        assert_eq!(c.raw(), 20, "128 bytes = two beats");
        assert_eq!(bus.stats().transfers, 3);
        assert_eq!(bus.stats().wait_cycles, 5 + 10);
    }

    #[test]
    fn bus_frees_up_over_time() {
        let mut bus = mem_bus();
        bus.reserve(Cycle::new(0), 64);
        let later = bus.reserve(Cycle::new(100), 64);
        assert_eq!(later.raw(), 105);
        assert_eq!(bus.stats().wait_cycles, 0);
    }

    #[test]
    fn l1_l2_bus_is_fast() {
        let mut bus = Bus::new(BusConfig::baseline_l1_l2());
        assert_eq!(bus.reserve(Cycle::new(0), 32).raw(), 1);
        assert_eq!(bus.reserve(Cycle::new(0), 64).raw(), 3);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = mem_bus();
        bus.reserve(Cycle::new(0), 64);
        bus.reset();
        assert!(bus.is_idle(Cycle::ZERO));
        assert_eq!(bus.stats(), BusStats::default());
    }
}
