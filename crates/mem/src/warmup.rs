//! Warm-state checkpointing: compute the mechanism-independent part of a
//! trace window's functional warmup once, then share it across runs.
//!
//! A simulation's skip phase replays the skipped instructions through the
//! *storage* model ([`MemorySystem::warm_inst`]) to put caches, the
//! functional memory and mechanism tables into steady state. For a
//! (benchmark × mechanism) sweep that work splits cleanly in two:
//!
//! - a **benchmark × configuration** part — the memory image, the cache
//!   arrays and their counters — which is identical for every mechanism
//!   that does not perturb cache contents during warmup, captured here as
//!   a [`WarmCheckpoint`]; and
//! - a **mechanism** part — table updates driven by the access / evict /
//!   refill event stream the warm phase fires — captured as a [`WarmLog`]
//!   and replayed per mechanism by
//!   [`MemorySystem::replay_warm_events`].
//!
//! A mechanism opts into the split by returning `true` from
//! [`Mechanism::warm_events_only`]; the contract is that during warmup it
//! never services a probe, captures a victim or spills dirty data (pure
//! prefetchers and eviction observers qualify; sidecar stores such as
//! victim caches do not and keep the exact full warm path).
//!
//! [`Mechanism::warm_events_only`]: microlib_model::Mechanism::warm_events_only

use crate::cache::CacheArray;
use crate::functional::FunctionalMemory;
use crate::hierarchy::MemorySystem;
use microlib_model::{
    AccessEvent, AccessKind, Addr, AttachPoint, BinCodec, CacheStats, CodecError, ConfigError,
    Cycle, Decoder, Encoder, EvictEvent, HardwareBudget, Mechanism, PrefetchQueue, ProbeResult,
    RefillEvent, SystemConfig, VictimAction,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Snapshot of everything [`MemorySystem::warm_inst`] mutates that does
/// not belong to a mechanism: the functional memory images, the three
/// cache arrays, their raw counters and the synthetic warm clock.
///
/// Captured by [`MemorySystem::snapshot_warm`] (or the
/// [`capture_warm_state`] convenience) and restored into a fresh system by
/// [`MemorySystem::restore_warm`].
#[derive(Clone, Debug)]
pub struct WarmCheckpoint {
    pub(crate) functional: FunctionalMemory,
    pub(crate) l1d: CacheArray,
    pub(crate) l1i: CacheArray,
    pub(crate) l2: CacheArray,
    pub(crate) l1d_stats: CacheStats,
    pub(crate) l1i_stats: CacheStats,
    pub(crate) l2_stats: CacheStats,
    pub(crate) warm_clock: u64,
}

impl WarmCheckpoint {
    /// The synthetic clock value at the end of the warm phase (the cycle
    /// detailed simulation starts at).
    pub fn warm_clock(&self) -> u64 {
        self.warm_clock
    }

    /// Approximate resident heap footprint in bytes: the functional
    /// images plus the three cache arrays. Used by the artifact store's
    /// byte-capped resident-warm-state budget.
    pub fn resident_bytes(&self) -> usize {
        self.functional.resident_bytes()
            + self.l1d.resident_bytes()
            + self.l1i.resident_bytes()
            + self.l2.resident_bytes()
    }
}

/// One mechanism-visible event recorded during the warm phase, tagged with
/// the attach point whose slot fired it.
#[derive(Clone, Debug)]
pub enum WarmEvent {
    /// A sidecar probe on an L1 miss (which found nothing — recorders hold
    /// no lines).
    Probe {
        /// Missing L1 line.
        line: Addr,
        /// Warm clock at the probe.
        now: Cycle,
    },
    /// A demand access event.
    Access {
        /// Slot that observed it.
        at: AttachPoint,
        /// The event as the mechanism would have seen it.
        event: AccessEvent,
    },
    /// An L1 victim offered to the mechanism.
    Evict {
        /// The eviction as the mechanism would have seen it.
        event: EvictEvent,
    },
    /// A line fill carrying data.
    Refill {
        /// Slot that observed it.
        at: AttachPoint,
        /// The event as the mechanism would have seen it.
        event: RefillEvent,
    },
}

/// The ordered mechanism-visible event stream of one warm phase.
///
/// Per-instruction tick boundaries are *not* recorded: the warm clock is
/// strictly `2 × instruction index`, so replay synthesizes the tick (and
/// queue-clear) sequence instead of paying to store ~2 events per warmed
/// instruction.
#[derive(Clone, Debug, Default)]
pub struct WarmLog {
    pub(crate) events: Vec<WarmEvent>,
    pub(crate) insts: u64,
}

impl WarmLog {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the warm phase fired no mechanism-visible events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events in firing order.
    pub fn events(&self) -> &[WarmEvent] {
        &self.events
    }

    /// Number of instructions the warm phase replayed.
    pub fn insts(&self) -> u64 {
        self.insts
    }
}

/// A reusable warm artifact: the shared checkpoint plus the event log that
/// warms a mechanism's tables on top of it.
#[derive(Clone, Debug)]
pub struct WarmState {
    /// Mechanism-independent warm state.
    pub checkpoint: WarmCheckpoint,
    /// Mechanism-visible event stream of the same warm phase.
    pub log: WarmLog,
}

impl WarmState {
    /// Approximate resident heap footprint in bytes: the checkpoint
    /// (images + cache arrays) plus the recorded event log. An estimate —
    /// copy-on-write pages shared with the workload image are priced as
    /// owned — sized for LRU byte budgeting, not exact accounting.
    pub fn resident_bytes(&self) -> usize {
        self.checkpoint.resident_bytes()
            + self.log.events.len() * std::mem::size_of::<WarmEvent>()
            + std::mem::size_of::<WarmLog>()
    }
}

impl BinCodec for WarmEvent {
    fn encode(&self, e: &mut Encoder) {
        match self {
            WarmEvent::Probe { line, now } => {
                e.put_u8(0);
                line.encode(e);
                now.encode(e);
            }
            WarmEvent::Access { at, event } => {
                e.put_u8(1);
                at.encode(e);
                event.encode(e);
            }
            WarmEvent::Evict { event } => {
                e.put_u8(2);
                event.encode(e);
            }
            WarmEvent::Refill { at, event } => {
                e.put_u8(3);
                at.encode(e);
                event.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match d.take_u8()? {
            0 => Ok(WarmEvent::Probe {
                line: Addr::decode(d)?,
                now: Cycle::decode(d)?,
            }),
            1 => Ok(WarmEvent::Access {
                at: AttachPoint::decode(d)?,
                event: AccessEvent::decode(d)?,
            }),
            2 => Ok(WarmEvent::Evict {
                event: EvictEvent::decode(d)?,
            }),
            3 => Ok(WarmEvent::Refill {
                at: AttachPoint::decode(d)?,
                event: RefillEvent::decode(d)?,
            }),
            _ => Err(CodecError::Invalid("warm event tag")),
        }
    }
}

impl BinCodec for WarmLog {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.insts);
        self.events.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(WarmLog {
            insts: d.take_u64()?,
            events: Vec::decode(d)?,
        })
    }
}

impl WarmState {
    /// Encodes the full artifact (checkpoint + event log) for the on-disk
    /// artifact cache. Neither the system configuration nor the
    /// workload's initial memory image is embedded — the cache key covers
    /// both, so [`WarmState::decode`] rebuilds the cache arrays from the
    /// caller's configuration and the functional memory as a **delta**
    /// against the caller-regenerated initial image (`base`; pass an
    /// empty [`FunctionalMemory`] for a standalone, base-free encoding).
    /// The delta keeps warm entries proportional to the pages the warm
    /// phase touched instead of the whole workload image.
    pub fn encode(&self, base: &FunctionalMemory, e: &mut Encoder) {
        e.put_u64(self.checkpoint.warm_clock);
        self.checkpoint.l1d_stats.encode(e);
        self.checkpoint.l1i_stats.encode(e);
        self.checkpoint.l2_stats.encode(e);
        self.checkpoint.functional.encode_state(base, e);
        self.checkpoint.l1d.encode_state(e);
        self.checkpoint.l1i.encode_state(e);
        self.checkpoint.l2.encode_state(e);
        self.log.encode(e);
    }

    /// Decodes a warm state captured under `config` with initial image
    /// `base` (the same pair the cache key was built from).
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on truncated or mismatched bytes — including a
    /// checkpoint whose cache geometry disagrees with `config` or whose
    /// page set diverges from `base`.
    pub fn decode(
        d: &mut Decoder<'_>,
        config: &SystemConfig,
        base: &FunctionalMemory,
    ) -> Result<Self, CodecError> {
        let warm_clock = d.take_u64()?;
        let l1d_stats = CacheStats::decode(d)?;
        let l1i_stats = CacheStats::decode(d)?;
        let l2_stats = CacheStats::decode(d)?;
        let functional = FunctionalMemory::decode_state(base, d)?;
        let l1d = CacheArray::decode_state(config.l1d.clone(), d)?;
        let l1i = CacheArray::decode_state(config.l1i.clone(), d)?;
        let l2 = CacheArray::decode_state(config.l2.clone(), d)?;
        let log = WarmLog::decode(d)?;
        Ok(WarmState {
            checkpoint: WarmCheckpoint {
                functional,
                l1d,
                l1i,
                l2,
                l1d_stats,
                l1i_stats,
                l2_stats,
                warm_clock,
            },
            log,
        })
    }
}

/// A passive [`Mechanism`] that records every hook invocation into a
/// shared log. Attached at both slots while capturing a warm state, it
/// observes exactly what a real passive mechanism would — and, because it
/// never probes successfully, captures or spills, leaves the cache state
/// identical to a run with no mechanism at all.
struct WarmRecorder {
    at: AttachPoint,
    log: Rc<RefCell<Vec<WarmEvent>>>,
}

impl Mechanism for WarmRecorder {
    fn name(&self) -> &str {
        "warm-recorder"
    }

    fn attach_point(&self) -> AttachPoint {
        self.at
    }

    fn on_access(&mut self, event: &AccessEvent, _prefetch: &mut PrefetchQueue) {
        self.log.borrow_mut().push(WarmEvent::Access {
            at: self.at,
            event: *event,
        });
    }

    fn on_evict(&mut self, event: &EvictEvent) -> VictimAction {
        debug_assert_eq!(self.at, AttachPoint::L1Data, "only L1 victims are offered");
        self.log
            .borrow_mut()
            .push(WarmEvent::Evict { event: *event });
        VictimAction::Dropped
    }

    fn on_refill(&mut self, event: &RefillEvent, _prefetch: &mut PrefetchQueue) {
        self.log.borrow_mut().push(WarmEvent::Refill {
            at: self.at,
            event: *event,
        });
    }

    fn probe(&mut self, line: Addr, now: Cycle) -> Option<ProbeResult> {
        debug_assert_eq!(self.at, AttachPoint::L1Data, "only the L1 slot is probed");
        self.log.borrow_mut().push(WarmEvent::Probe { line, now });
        None
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::none("warm-recorder")
    }
}

/// Runs a full warm phase with recorders attached and returns the
/// checkpoint + event log pair.
///
/// `init` seeds the functional memory (the workload's initial image);
/// `insts` supplies the warm instructions as `(pc, mem_ref)` pairs in the
/// shape [`MemorySystem::warm_inst`] consumes.
///
/// # Errors
///
/// Returns a [`ConfigError`] if `config` is invalid.
pub fn capture_warm_state(
    config: impl Into<Arc<SystemConfig>>,
    init: impl FnOnce(&mut FunctionalMemory),
    insts: impl Iterator<Item = (Addr, Option<(Addr, AccessKind, u64)>)>,
) -> Result<WarmState, ConfigError> {
    let log = Rc::new(RefCell::new(Vec::new()));
    let recorders: Vec<Box<dyn Mechanism>> = vec![
        Box::new(WarmRecorder {
            at: AttachPoint::L1Data,
            log: Rc::clone(&log),
        }),
        Box::new(WarmRecorder {
            at: AttachPoint::L2Unified,
            log: Rc::clone(&log),
        }),
    ];
    let mut mem = MemorySystem::new(config, recorders)?;
    init(mem.functional_mut());
    let mut count = 0u64;
    for (pc, mem_ref) in insts {
        mem.warm_inst(pc, mem_ref);
        count += 1;
    }
    let checkpoint = mem.snapshot_warm();
    drop(mem);
    let events = Rc::try_unwrap(log)
        .expect("recorders dropped with the memory system")
        .into_inner();
    Ok(WarmState {
        checkpoint,
        log: WarmLog {
            events,
            insts: count,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::BaseMechanism;

    fn warm_trace(n: u64) -> impl Iterator<Item = (Addr, Option<(Addr, AccessKind, u64)>)> {
        (0..n).map(|i| {
            let pc = Addr::new(0x40_0000 + (i % 64) * 4);
            let mem_ref = (i % 3 == 0).then(|| {
                let addr = Addr::new(0x1000 + (i % 512) * 8);
                if i % 6 == 0 {
                    (addr, AccessKind::Store, i)
                } else {
                    (addr, AccessKind::Load, 0)
                }
            });
            (pc, mem_ref)
        })
    }

    #[test]
    fn capture_matches_direct_warm() {
        let cfg = SystemConfig::baseline_constant_memory();
        let state = capture_warm_state(cfg.clone(), |_| {}, warm_trace(2_000)).unwrap();

        // A system warmed directly (no mechanism) must agree with the
        // checkpoint on stats and clock.
        let mut direct = MemorySystem::new(cfg, Vec::new()).unwrap();
        for (pc, mem_ref) in warm_trace(2_000) {
            direct.warm_inst(pc, mem_ref);
        }
        let direct_ckpt = direct.snapshot_warm();
        assert_eq!(state.checkpoint.l1d_stats, direct_ckpt.l1d_stats);
        assert_eq!(state.checkpoint.l1i_stats, direct_ckpt.l1i_stats);
        assert_eq!(state.checkpoint.l2_stats, direct_ckpt.l2_stats);
        assert_eq!(state.checkpoint.warm_clock(), direct_ckpt.warm_clock());
        assert!(!state.log.is_empty());
    }

    #[test]
    fn restore_reproduces_warm_state() {
        let cfg = SystemConfig::baseline_constant_memory();
        let state = capture_warm_state(cfg.clone(), |_| {}, warm_trace(1_500)).unwrap();

        let mech: Box<dyn Mechanism> = Box::new(BaseMechanism::new());
        let mut mem = MemorySystem::new(cfg, vec![mech]).unwrap();
        mem.restore_warm(&state.checkpoint);
        mem.replay_warm_events(&state.log);
        let roundtrip = mem.snapshot_warm();
        assert_eq!(roundtrip.l1d_stats, state.checkpoint.l1d_stats);
        assert_eq!(roundtrip.warm_clock(), state.checkpoint.warm_clock());
        let start = mem.finish_warmup();
        assert_eq!(start.raw(), state.checkpoint.warm_clock());
        // Post-warmup counters start clean.
        assert_eq!(mem.l1d_stats(), CacheStats::default());
    }

    #[test]
    fn warm_state_round_trips_through_codec() {
        let cfg = SystemConfig::baseline_constant_memory();
        let state = capture_warm_state(cfg.clone(), |_| {}, warm_trace(1_000)).unwrap();
        let base = FunctionalMemory::new();
        let mut e = Encoder::new();
        state.encode(&base, &mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = WarmState::decode(&mut d, &cfg, &base).unwrap();
        d.finish().unwrap();
        assert_eq!(back.checkpoint.l1d_stats, state.checkpoint.l1d_stats);
        assert_eq!(back.checkpoint.warm_clock(), state.checkpoint.warm_clock());
        assert_eq!(back.log.insts(), state.log.insts());
        assert_eq!(back.log.len(), state.log.len());
        // Canonical encoding: a decoded state re-encodes to the same
        // bytes (deep equality, including the memory images).
        let mut e2 = Encoder::new();
        back.encode(&base, &mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn warm_state_decode_rejects_mismatched_geometry() {
        let cfg = SystemConfig::baseline_constant_memory();
        let state = capture_warm_state(cfg.clone(), |_| {}, warm_trace(500)).unwrap();
        let base = FunctionalMemory::new();
        let mut e = Encoder::new();
        state.encode(&base, &mut e);
        let bytes = e.into_bytes();
        let mut other = cfg.clone();
        other.l1d.size_bytes /= 2;
        let mut d = Decoder::new(&bytes);
        assert!(WarmState::decode(&mut d, &other, &base).is_err());
    }

    #[test]
    fn log_counts_instructions_and_orders_events() {
        let cfg = SystemConfig::baseline_constant_memory();
        let state = capture_warm_state(cfg, |_| {}, warm_trace(500)).unwrap();
        assert_eq!(state.log.insts(), 500);
        assert_eq!(state.checkpoint.warm_clock(), 1_000, "2 cycles per inst");
        // Events carry strictly nondecreasing clocks (replay relies on it
        // to synthesize tick boundaries).
        let mut last = 0u64;
        for ev in state.log.events() {
            let now = match ev {
                WarmEvent::Probe { now, .. } => now.raw(),
                WarmEvent::Access { event, .. } => event.now.raw(),
                WarmEvent::Evict { event } => event.now.raw(),
                WarmEvent::Refill { event, .. } => event.now.raw(),
            };
            assert!(now >= last, "event clock went backwards");
            last = now;
        }
        assert!(!state.log.is_empty());
    }
}
