//! Main-memory models: the detailed SDRAM controller and the
//! SimpleScalar-like constant-latency memory.
//!
//! The SDRAM model implements Table 1's geometry and timings (4 banks ×
//! 8192 rows × 1024 columns; tRRD/tRAS/tRCD/CL/tRP/tRC in CPU cycles), a
//! bounded 32-entry controller queue, open-row tracking with bank
//! interleaving ("pipelining page opening and closing operations"), and two
//! of the scheduling schemes of Green (EDN 1998) — FCFS and open-row-first,
//! the latter being the one the paper "retained [because it] significantly
//! reduces conflicts in row buffers". Refresh is avoided, as in Table 1.

use microlib_model::{
    Addr, BankInterleave, Cycle, MemoryModel, MemoryStats, SdramConfig, SdramSchedule,
};
use std::collections::VecDeque;

/// Opaque token identifying a memory transaction to the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemToken(pub u64);

/// A completed memory transaction.
#[derive(Clone, Copy, Debug)]
pub struct MemDone {
    /// Token supplied at submission.
    pub token: MemToken,
    /// Whether the transaction was a write.
    pub is_write: bool,
    /// Cycle at which the data left (reads) or was absorbed (writes).
    pub finished_at: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    token: MemToken,
    line: Addr,
    is_write: bool,
    arrival: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct InService {
    token: MemToken,
    is_write: bool,
    arrival: Cycle,
    data_ready: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
    active_since: Cycle,
}

/// The detailed SDRAM controller + banks.
///
/// # Examples
///
/// ```
/// use microlib_mem::{MemToken, Sdram};
/// use microlib_model::{Addr, Cycle, SdramConfig};
///
/// let mut mem = Sdram::new(SdramConfig::baseline());
/// assert!(mem.try_push(MemToken(1), Addr::new(0x1000), false, Cycle::new(0)));
/// let mut done = Vec::new();
/// for c in 0..200 {
///     done.extend(mem.tick(Cycle::new(c)));
/// }
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Sdram {
    config: SdramConfig,
    queue: VecDeque<Pending>,
    in_service: Vec<InService>,
    banks: Vec<Bank>,
    last_activate: Cycle,
    stats: MemoryStats,
}

impl Sdram {
    /// Creates an idle SDRAM subsystem.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — construct via a validated
    /// [`SystemConfig`](microlib_model::SystemConfig) to avoid this.
    pub fn new(config: SdramConfig) -> Self {
        config.validate().expect("invalid SDRAM configuration");
        Sdram {
            queue: VecDeque::with_capacity(config.queue_entries as usize),
            in_service: Vec::new(),
            banks: vec![
                Bank {
                    open_row: None,
                    ready_at: Cycle::ZERO,
                    active_since: Cycle::ZERO,
                };
                config.banks as usize
            ],
            last_activate: Cycle::ZERO,
            config,
            stats: MemoryStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SdramConfig {
        &self.config
    }

    /// Maps a line address onto (bank, row) per the interleaving scheme.
    pub fn map(&self, line: Addr) -> (usize, u64) {
        let col_bits = 64 - (self.config.columns as u64).leading_zeros() - 1;
        let bank_bits = 64 - (self.config.banks as u64).leading_zeros() - 1;
        let lines = line.raw() >> 6; // 64-byte line-sized columns
        let col = lines & ((1 << col_bits) - 1);
        let mut bank = (lines >> col_bits) & ((1 << bank_bits) - 1);
        let row = (lines >> (col_bits + bank_bits)) % self.config.rows as u64;
        if self.config.interleave == BankInterleave::Permutation {
            bank ^= row & ((1 << bank_bits) - 1);
        }
        let _ = col;
        (bank as usize, row)
    }

    /// Whether the controller queue has room.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.config.queue_entries as usize
    }

    /// Submits a transaction; returns `false` if the queue is full.
    pub fn try_push(&mut self, token: MemToken, line: Addr, is_write: bool, now: Cycle) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.queue.push_back(Pending {
            token,
            line,
            is_write,
            arrival: now,
        });
        true
    }

    /// Number of queued (not yet scheduled) transactions.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of transactions being serviced by banks.
    pub fn in_service_len(&self) -> usize {
        self.in_service.len()
    }

    fn pick_next(&self, now: Cycle) -> Option<usize> {
        let startable = |p: &Pending| {
            let (bank, _) = self.map(p.line);
            self.banks[bank].ready_at <= now
        };
        match self.config.schedule {
            SdramSchedule::Fcfs => self.queue.iter().position(startable),
            SdramSchedule::OpenRowFirst => {
                let row_hit = |p: &Pending| {
                    let (bank, row) = self.map(p.line);
                    self.banks[bank].open_row == Some(row) && self.banks[bank].ready_at <= now
                };
                self.queue
                    .iter()
                    .position(row_hit)
                    .or_else(|| self.queue.iter().position(startable))
            }
        }
    }

    /// Advances one CPU cycle; returns transactions whose data became ready.
    pub fn tick(&mut self, now: Cycle) -> Vec<MemDone> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].data_ready <= now {
                let s = self.in_service.swap_remove(i);
                self.stats.requests += 1;
                self.stats.total_latency += s.data_ready.since(s.arrival);
                done.push(MemDone {
                    token: s.token,
                    is_write: s.is_write,
                    finished_at: s.data_ready,
                });
            } else {
                i += 1;
            }
        }

        if !self.queue.is_empty() {
            self.stats.queue_wait_cycles += 1;
        }

        // Start at most one command per cycle (shared command/address bus).
        if let Some(pos) = self.pick_next(now) {
            let p = self.queue.remove(pos).expect("position valid");
            let (bank_idx, row) = self.map(p.line);
            let cfg = self.config;
            let bank = &mut self.banks[bank_idx];
            let start = if bank.ready_at > now {
                bank.ready_at
            } else {
                now
            };
            let data_ready = match bank.open_row {
                Some(open) if open == row => {
                    self.stats.row_hits += 1;
                    start + cfg.cas
                }
                Some(_) => {
                    // Row conflict: precharge (respecting tRAS), activate
                    // (respecting tRC and tRRD), then CAS.
                    self.stats.precharges += 1;
                    let pre_start = start.max(bank.active_since + cfg.t_ras);
                    let mut act = pre_start + cfg.t_rp;
                    act = act.max(bank.active_since + cfg.t_rc);
                    act = act.max(self.last_activate + cfg.t_rrd);
                    bank.active_since = act;
                    self.last_activate = act;
                    bank.open_row = Some(row);
                    act + cfg.t_rcd + cfg.cas
                }
                None => {
                    let act = start.max(self.last_activate + cfg.t_rrd);
                    bank.active_since = act;
                    self.last_activate = act;
                    bank.open_row = Some(row);
                    act + cfg.t_rcd + cfg.cas
                }
            };
            bank.ready_at = data_ready;
            self.in_service.push(InService {
                token: p.token,
                is_write: p.is_write,
                arrival: p.arrival,
                data_ready,
            });
        }
        done
    }

    /// Accumulated controller statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Clears queues, bank state and counters.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.in_service.clear();
        for b in &mut self.banks {
            b.open_row = None;
            b.ready_at = Cycle::ZERO;
            b.active_since = Cycle::ZERO;
        }
        self.last_activate = Cycle::ZERO;
        self.stats = MemoryStats::default();
    }
}

/// SimpleScalar's memory: constant latency, unlimited bandwidth.
#[derive(Clone, Debug)]
pub struct ConstantMemory {
    latency: u64,
    in_flight: Vec<InService>,
    stats: MemoryStats,
}

impl ConstantMemory {
    /// Creates a constant-latency memory.
    pub fn new(latency: u64) -> Self {
        ConstantMemory {
            latency,
            in_flight: Vec::new(),
            stats: MemoryStats::default(),
        }
    }

    /// The flat latency in CPU cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Submits a transaction (never refuses).
    pub fn push(&mut self, token: MemToken, is_write: bool, now: Cycle) {
        self.in_flight.push(InService {
            token,
            is_write,
            arrival: now,
            data_ready: now + self.latency,
        });
    }

    /// Advances one cycle, returning finished transactions.
    pub fn tick(&mut self, now: Cycle) -> Vec<MemDone> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].data_ready <= now {
                let s = self.in_flight.swap_remove(i);
                self.stats.requests += 1;
                self.stats.total_latency += s.data_ready.since(s.arrival);
                done.push(MemDone {
                    token: s.token,
                    is_write: s.is_write,
                    finished_at: s.data_ready,
                });
            } else {
                i += 1;
            }
        }
        done
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Clears in-flight state and counters.
    pub fn reset(&mut self) {
        self.in_flight.clear();
        self.stats = MemoryStats::default();
    }
}

/// Either main-memory model behind one API.
#[derive(Clone, Debug)]
pub enum MainMemory {
    /// Constant-latency (SimpleScalar-like).
    Constant(ConstantMemory),
    /// Detailed SDRAM.
    Sdram(Sdram),
}

impl MainMemory {
    /// Builds the model described by `model`.
    pub fn from_model(model: &MemoryModel) -> Self {
        match model {
            MemoryModel::Constant { latency } => {
                MainMemory::Constant(ConstantMemory::new(*latency))
            }
            MemoryModel::Sdram(cfg) => MainMemory::Sdram(Sdram::new(*cfg)),
        }
    }

    /// Submits a transaction; returns `false` if the controller queue is
    /// full (constant memory never refuses).
    pub fn try_push(&mut self, token: MemToken, line: Addr, is_write: bool, now: Cycle) -> bool {
        match self {
            MainMemory::Constant(m) => {
                m.push(token, is_write, now);
                true
            }
            MainMemory::Sdram(m) => m.try_push(token, line, is_write, now),
        }
    }

    /// Advances one cycle, returning finished transactions.
    pub fn tick(&mut self, now: Cycle) -> Vec<MemDone> {
        match self {
            MainMemory::Constant(m) => m.tick(now),
            MainMemory::Sdram(m) => m.tick(now),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemoryStats {
        match self {
            MainMemory::Constant(m) => m.stats(),
            MainMemory::Sdram(m) => m.stats(),
        }
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        match self {
            MainMemory::Constant(m) => m.reset(),
            MainMemory::Sdram(m) => m.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(mem: &mut Sdram, upto: u64) -> Vec<MemDone> {
        let mut out = Vec::new();
        for c in 0..upto {
            out.extend(mem.tick(Cycle::new(c)));
        }
        out
    }

    #[test]
    fn cold_read_latency_is_rcd_plus_cas() {
        let mut mem = Sdram::new(SdramConfig::baseline());
        mem.try_push(MemToken(1), Addr::new(0x40), false, Cycle::new(0));
        let done = run_until_done(&mut mem, 200);
        assert_eq!(done.len(), 1);
        // idle bank: activate at 20 (tRRD after last_activate=0), +tRCD+CL = 80.
        assert_eq!(done[0].finished_at.raw(), 20 + 30 + 30);
        assert_eq!(mem.stats().row_hits, 0);
    }

    #[test]
    fn open_row_hit_is_cas_only() {
        let mut mem = Sdram::new(SdramConfig::baseline());
        mem.try_push(MemToken(1), Addr::new(0x40), false, Cycle::new(0));
        let first = run_until_done(&mut mem, 200);
        let t1 = first[0].finished_at;
        // Same line again: row already open.
        mem.try_push(MemToken(2), Addr::new(0x80), false, t1);
        let mut second = Vec::new();
        for c in t1.raw()..t1.raw() + 100 {
            second.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].finished_at - t1, SdramConfig::baseline().cas);
        assert_eq!(mem.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = SdramConfig {
            interleave: BankInterleave::Linear,
            ..SdramConfig::baseline()
        };
        let mut mem = Sdram::new(cfg);
        // Two addresses in the same bank, different rows. With linear
        // mapping: lines = addr>>6; col 10 bits, bank 2 bits, row above.
        // Same bank 0, rows 0 and 1: line numbers 0 and 4096<<0... row is
        // lines >> 12, so line 0 => row 0; line 4096 => row 1, bank (4096>>10)&3 = 0.
        let a = Addr::new(0);
        let b = Addr::new(4096 << 6);
        assert_eq!(mem.map(a).0, mem.map(b).0, "same bank");
        assert_ne!(mem.map(a).1, mem.map(b).1, "different rows");
        mem.try_push(MemToken(1), a, false, Cycle::new(0));
        let d1 = run_until_done(&mut mem, 200);
        let t1 = d1[0].finished_at;
        mem.try_push(MemToken(2), b, false, t1);
        let mut d2 = Vec::new();
        for c in t1.raw()..t1.raw() + 400 {
            d2.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(d2.len(), 1);
        let latency = d2[0].finished_at - t1;
        // Must pay at least tRP + tRCD + CL, plus tRAS/tRC slack.
        assert!(
            latency >= 30 + 30 + 30,
            "conflict latency {latency} too small"
        );
        assert_eq!(mem.stats().precharges, 1);
    }

    #[test]
    fn queue_is_bounded() {
        let cfg = SdramConfig {
            queue_entries: 2,
            ..SdramConfig::baseline()
        };
        let mut mem = Sdram::new(cfg);
        assert!(mem.try_push(MemToken(1), Addr::new(0x00), false, Cycle::ZERO));
        assert!(mem.try_push(MemToken(2), Addr::new(0x40), false, Cycle::ZERO));
        assert!(!mem.try_push(MemToken(3), Addr::new(0x80), false, Cycle::ZERO));
        assert!(!mem.can_accept());
    }

    #[test]
    fn open_row_first_reorders_past_conflicts() {
        let cfg = SdramConfig {
            interleave: BankInterleave::Linear,
            schedule: SdramSchedule::OpenRowFirst,
            ..SdramConfig::baseline()
        };
        let mut mem = Sdram::new(cfg);
        // Open row 0 of bank 0.
        mem.try_push(MemToken(1), Addr::new(0), false, Cycle::new(0));
        let d1 = run_until_done(&mut mem, 200);
        let t1 = d1[0].finished_at;
        // Queue a conflicting request (row 1) then a row-hit (row 0).
        mem.try_push(MemToken(2), Addr::new(4096 << 6), false, t1);
        mem.try_push(MemToken(3), Addr::new(0x40), false, t1);
        let mut out = Vec::new();
        for c in t1.raw()..t1.raw() + 600 {
            out.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].token, MemToken(3), "row hit scheduled first");
        assert_eq!(out[1].token, MemToken(2));
    }

    #[test]
    fn fcfs_preserves_order() {
        let cfg = SdramConfig {
            interleave: BankInterleave::Linear,
            schedule: SdramSchedule::Fcfs,
            ..SdramConfig::baseline()
        };
        let mut mem = Sdram::new(cfg);
        mem.try_push(MemToken(1), Addr::new(0), false, Cycle::new(0));
        let t1 = run_until_done(&mut mem, 200)[0].finished_at;
        mem.try_push(MemToken(2), Addr::new(4096 << 6), false, t1);
        mem.try_push(MemToken(3), Addr::new(0x40), false, t1);
        let mut out = Vec::new();
        for c in t1.raw()..t1.raw() + 600 {
            out.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(out[0].token, MemToken(1 + 1));
    }

    #[test]
    fn permutation_interleave_spreads_rows() {
        let linear = Sdram::new(SdramConfig {
            interleave: BankInterleave::Linear,
            ..SdramConfig::baseline()
        });
        let perm = Sdram::new(SdramConfig::baseline());
        // Two conflicting rows in the same bank under linear mapping...
        let a = Addr::new(0);
        let b = Addr::new(4096 << 6);
        assert_eq!(linear.map(a).0, linear.map(b).0);
        // ...land in different banks under permutation mapping.
        assert_ne!(perm.map(a).0, perm.map(b).0);
    }

    #[test]
    fn constant_memory_flat_latency() {
        let mut mem = ConstantMemory::new(70);
        mem.push(MemToken(1), false, Cycle::new(5));
        mem.push(MemToken(2), false, Cycle::new(5));
        let mut done = Vec::new();
        for c in 0..100 {
            done.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(done.len(), 2, "unlimited bandwidth");
        assert!(done.iter().all(|d| d.finished_at.raw() == 75));
        assert!((mem.stats().average_latency().unwrap() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn main_memory_dispatch() {
        let mut c = MainMemory::from_model(&MemoryModel::simplescalar_70());
        assert!(c.try_push(MemToken(9), Addr::new(0x40), false, Cycle::ZERO));
        let mut s = MainMemory::from_model(&MemoryModel::Sdram(SdramConfig::baseline()));
        assert!(s.try_push(MemToken(9), Addr::new(0x40), true, Cycle::ZERO));
        for mem in [&mut c, &mut s] {
            let mut done = Vec::new();
            for cyc in 0..300 {
                done.extend(mem.tick(Cycle::new(cyc)));
            }
            assert_eq!(done.len(), 1);
        }
    }

    #[test]
    fn writes_count_in_stats() {
        let mut mem = Sdram::new(SdramConfig::baseline());
        mem.try_push(MemToken(1), Addr::new(0x40), true, Cycle::new(0));
        let done = run_until_done(&mut mem, 300);
        assert!(done[0].is_write);
        assert_eq!(mem.stats().requests, 1);
    }
}
