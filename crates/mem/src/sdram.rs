//! Main-memory models: the detailed SDRAM controller and the
//! SimpleScalar-like constant-latency memory.
//!
//! The SDRAM model implements Table 1's geometry and timings (4 banks ×
//! 8192 rows × 1024 columns; tRRD/tRAS/tRCD/CL/tRP/tRC in CPU cycles), a
//! bounded 32-entry controller queue, open-row tracking with bank
//! interleaving ("pipelining page opening and closing operations"), and two
//! of the scheduling schemes of Green (EDN 1998) — FCFS and open-row-first,
//! the latter being the one the paper "retained [because it] significantly
//! reduces conflicts in row buffers". Refresh is avoided, as in Table 1.
//!
//! # Data layout
//!
//! Bank state is stored as three flat per-bank columns (`bank_open_row`,
//! `bank_ready`, `bank_active`) instead of a `Vec` of structs, and the
//! controller maintains `next_ready` — the minimum `data_ready` over the
//! in-service set — so the per-cycle [`Sdram::tick_into`] can prove in one
//! compare that an idle-queue cycle has nothing to do and return without
//! scanning anything. Debug builds cross-check every skipped cycle against
//! a full scan. [`Sdram::tick_into`]/[`MainMemory::tick_into`] append into
//! a caller-owned buffer so the hierarchy's cycle loop never allocates.

use microlib_model::{
    Addr, BankInterleave, Cycle, MemoryModel, MemoryStats, SdramConfig, SdramSchedule,
};
use std::collections::VecDeque;

/// Opaque token identifying a memory transaction to the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemToken(pub u64);

/// A completed memory transaction.
#[derive(Clone, Copy, Debug)]
pub struct MemDone {
    /// Token supplied at submission.
    pub token: MemToken,
    /// Whether the transaction was a write.
    pub is_write: bool,
    /// Cycle at which the data left (reads) or was absorbed (writes).
    pub finished_at: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    token: MemToken,
    line: Addr,
    is_write: bool,
    arrival: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct InService {
    token: MemToken,
    is_write: bool,
    arrival: Cycle,
    data_ready: Cycle,
}

/// Sentinel for "no row open" in the flat `bank_open_row` column (row
/// indices are bounded by the configured row count, far below this).
const NO_ROW: u64 = u64::MAX;

/// The detailed SDRAM controller + banks.
///
/// # Examples
///
/// ```
/// use microlib_mem::{MemToken, Sdram};
/// use microlib_model::{Addr, Cycle, SdramConfig};
///
/// let mut mem = Sdram::new(SdramConfig::baseline());
/// assert!(mem.try_push(MemToken(1), Addr::new(0x1000), false, Cycle::new(0)));
/// let mut done = Vec::new();
/// for c in 0..200 {
///     done.extend(mem.tick(Cycle::new(c)));
/// }
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Sdram {
    config: SdramConfig,
    queue: VecDeque<Pending>,
    in_service: Vec<InService>,
    /// Flat per-bank columns: open row ([`NO_ROW`] when closed), earliest
    /// next-command cycle, and the cycle of the last activate.
    bank_open_row: Vec<u64>,
    bank_ready: Vec<Cycle>,
    bank_active: Vec<Cycle>,
    last_activate: Cycle,
    /// Minimum `data_ready` over `in_service` ([`Cycle::NEVER`] when empty):
    /// lets an idle-queue tick return after one compare.
    next_ready: Cycle,
    /// Earliest cycle at which `pick_next` could succeed: once a tick finds
    /// every queued transaction's bank busy, no command can start before the
    /// soonest of those banks frees up (the schedule inputs — open rows, bank
    /// timings — only change when a command starts or a push arrives, and
    /// pushes reset this). Lets a congested-queue tick skip both scheduler
    /// scans.
    next_sched: Cycle,
    /// Address-mapping bit widths, derived once from the geometry.
    col_bits: u32,
    bank_bits: u32,
    stats: MemoryStats,
}

impl Sdram {
    /// Creates an idle SDRAM subsystem.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — construct via a validated
    /// [`SystemConfig`](microlib_model::SystemConfig) to avoid this.
    pub fn new(config: SdramConfig) -> Self {
        config.validate().expect("invalid SDRAM configuration");
        let banks = config.banks as usize;
        Sdram {
            queue: VecDeque::with_capacity(config.queue_entries as usize),
            in_service: Vec::new(),
            bank_open_row: vec![NO_ROW; banks],
            bank_ready: vec![Cycle::ZERO; banks],
            bank_active: vec![Cycle::ZERO; banks],
            last_activate: Cycle::ZERO,
            next_ready: Cycle::NEVER,
            next_sched: Cycle::ZERO,
            col_bits: 64 - (config.columns as u64).leading_zeros() - 1,
            bank_bits: 64 - (config.banks as u64).leading_zeros() - 1,
            config,
            stats: MemoryStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SdramConfig {
        &self.config
    }

    /// Maps a line address onto (bank, row) per the interleaving scheme.
    #[inline]
    pub fn map(&self, line: Addr) -> (usize, u64) {
        let lines = line.raw() >> 6; // 64-byte line-sized columns
        let mut bank = (lines >> self.col_bits) & ((1 << self.bank_bits) - 1);
        let row = (lines >> (self.col_bits + self.bank_bits)) % self.config.rows as u64;
        if self.config.interleave == BankInterleave::Permutation {
            bank ^= row & ((1 << self.bank_bits) - 1);
        }
        (bank as usize, row)
    }

    /// Whether the controller queue has room.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.config.queue_entries as usize
    }

    /// Submits a transaction; returns `false` if the queue is full.
    pub fn try_push(&mut self, token: MemToken, line: Addr, is_write: bool, now: Cycle) -> bool {
        if !self.can_accept() {
            return false;
        }
        self.queue.push_back(Pending {
            token,
            line,
            is_write,
            arrival: now,
        });
        // The new transaction's bank may be ready immediately.
        self.next_sched = Cycle::ZERO;
        true
    }

    /// Number of queued (not yet scheduled) transactions.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of transactions being serviced by banks.
    pub fn in_service_len(&self) -> usize {
        self.in_service.len()
    }

    fn pick_next(&self, now: Cycle) -> Option<usize> {
        let startable = |p: &Pending| {
            let (bank, _) = self.map(p.line);
            self.bank_ready[bank] <= now
        };
        match self.config.schedule {
            SdramSchedule::Fcfs => self.queue.iter().position(startable),
            SdramSchedule::OpenRowFirst => {
                let row_hit = |p: &Pending| {
                    let (bank, row) = self.map(p.line);
                    self.bank_open_row[bank] == row && self.bank_ready[bank] <= now
                };
                self.queue
                    .iter()
                    .position(row_hit)
                    .or_else(|| self.queue.iter().position(startable))
            }
        }
    }

    /// Advances one CPU cycle; returns transactions whose data became ready.
    /// Allocating convenience wrapper around [`Sdram::tick_into`].
    pub fn tick(&mut self, now: Cycle) -> Vec<MemDone> {
        let mut done = Vec::new();
        self.tick_into(now, &mut done);
        done
    }

    /// Advances one CPU cycle, appending transactions whose data became
    /// ready onto `done`. With an empty queue and no transaction due, this
    /// is a single compare — the hierarchy calls it every cycle, and most
    /// cycles the controller is idle.
    pub fn tick_into(&mut self, now: Cycle, done: &mut Vec<MemDone>) {
        if self.queue.is_empty() && self.next_ready > now {
            // Nothing due: no command can start, the queue-wait counter
            // only runs while requests are queued, and `next_ready` bounds
            // every in-service completion.
            debug_assert!(
                self.in_service.iter().all(|s| s.data_ready > now),
                "next_ready under-approximated the in-service set"
            );
            return;
        }

        if !self.queue.is_empty() {
            self.stats.queue_wait_cycles += 1;
        }

        // Drain completions only when one is provably due: `next_ready`
        // bounds the in-service set, so most congested-queue ticks skip
        // this scan too.
        if self.next_ready <= now {
            let mut next_ready = Cycle::NEVER;
            let mut i = 0;
            while i < self.in_service.len() {
                let ready = self.in_service[i].data_ready;
                if ready <= now {
                    let s = self.in_service.swap_remove(i);
                    self.stats.requests += 1;
                    self.stats.total_latency += s.data_ready.since(s.arrival);
                    done.push(MemDone {
                        token: s.token,
                        is_write: s.is_write,
                        finished_at: s.data_ready,
                    });
                } else {
                    next_ready = next_ready.min(ready);
                    i += 1;
                }
            }
            self.next_ready = next_ready;
        }

        // Start at most one command per cycle (shared command/address bus).
        // `next_sched` proves every queued transaction's bank is still busy
        // on most congested ticks, skipping both scheduler scans;
        // completions above cannot unblock scheduling (they never touch
        // `bank_ready` or the open rows).
        if self.next_sched > now {
            debug_assert!(
                self.pick_next(now).is_none(),
                "next_sched over-approximated the scheduler"
            );
            return;
        }
        if let Some(pos) = self.pick_next(now) {
            let p = self.queue.remove(pos).expect("position valid");
            let (bank, row) = self.map(p.line);
            let cfg = self.config;
            let start = self.bank_ready[bank].max(now);
            let data_ready = if self.bank_open_row[bank] == row {
                self.stats.row_hits += 1;
                start + cfg.cas
            } else if self.bank_open_row[bank] != NO_ROW {
                // Row conflict: precharge (respecting tRAS), activate
                // (respecting tRC and tRRD), then CAS.
                self.stats.precharges += 1;
                let pre_start = start.max(self.bank_active[bank] + cfg.t_ras);
                let mut act = pre_start + cfg.t_rp;
                act = act.max(self.bank_active[bank] + cfg.t_rc);
                act = act.max(self.last_activate + cfg.t_rrd);
                self.bank_active[bank] = act;
                self.last_activate = act;
                self.bank_open_row[bank] = row;
                act + cfg.t_rcd + cfg.cas
            } else {
                let act = start.max(self.last_activate + cfg.t_rrd);
                self.bank_active[bank] = act;
                self.last_activate = act;
                self.bank_open_row[bank] = row;
                act + cfg.t_rcd + cfg.cas
            };
            self.bank_ready[bank] = data_ready;
            self.next_ready = self.next_ready.min(data_ready);
            self.in_service.push(InService {
                token: p.token,
                is_write: p.is_write,
                arrival: p.arrival,
                data_ready,
            });
        } else {
            // Every queued transaction's bank is busy: no command can start
            // before the soonest of those banks frees up. (Pushes reset the
            // bound; nothing else changes the scheduler's inputs.)
            let mut soonest = Cycle::NEVER;
            for p in &self.queue {
                let (bank, _) = self.map(p.line);
                soonest = soonest.min(self.bank_ready[bank]);
            }
            self.next_sched = soonest;
        }
    }

    /// Accumulated controller statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Clears queues, bank state and counters.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.in_service.clear();
        for row in &mut self.bank_open_row {
            *row = NO_ROW;
        }
        for ready in &mut self.bank_ready {
            *ready = Cycle::ZERO;
        }
        for active in &mut self.bank_active {
            *active = Cycle::ZERO;
        }
        self.last_activate = Cycle::ZERO;
        self.next_ready = Cycle::NEVER;
        self.next_sched = Cycle::ZERO;
        self.stats = MemoryStats::default();
    }
}

/// SimpleScalar's memory: constant latency, unlimited bandwidth.
#[derive(Clone, Debug)]
pub struct ConstantMemory {
    latency: u64,
    in_flight: Vec<InService>,
    /// Minimum `data_ready` over `in_flight` ([`Cycle::NEVER`] when empty).
    next_ready: Cycle,
    stats: MemoryStats,
}

impl ConstantMemory {
    /// Creates a constant-latency memory.
    pub fn new(latency: u64) -> Self {
        ConstantMemory {
            latency,
            in_flight: Vec::new(),
            next_ready: Cycle::NEVER,
            stats: MemoryStats::default(),
        }
    }

    /// The flat latency in CPU cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Submits a transaction (never refuses).
    pub fn push(&mut self, token: MemToken, is_write: bool, now: Cycle) {
        let data_ready = now + self.latency;
        self.next_ready = self.next_ready.min(data_ready);
        self.in_flight.push(InService {
            token,
            is_write,
            arrival: now,
            data_ready,
        });
    }

    /// Advances one cycle, returning finished transactions. Allocating
    /// convenience wrapper around [`ConstantMemory::tick_into`].
    pub fn tick(&mut self, now: Cycle) -> Vec<MemDone> {
        let mut done = Vec::new();
        self.tick_into(now, &mut done);
        done
    }

    /// Advances one cycle, appending finished transactions onto `done`.
    pub fn tick_into(&mut self, now: Cycle, done: &mut Vec<MemDone>) {
        if self.next_ready > now {
            debug_assert!(self.in_flight.iter().all(|s| s.data_ready > now));
            return;
        }
        let mut next_ready = Cycle::NEVER;
        let mut i = 0;
        while i < self.in_flight.len() {
            let ready = self.in_flight[i].data_ready;
            if ready <= now {
                let s = self.in_flight.swap_remove(i);
                self.stats.requests += 1;
                self.stats.total_latency += s.data_ready.since(s.arrival);
                done.push(MemDone {
                    token: s.token,
                    is_write: s.is_write,
                    finished_at: s.data_ready,
                });
            } else {
                next_ready = next_ready.min(ready);
                i += 1;
            }
        }
        self.next_ready = next_ready;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Clears in-flight state and counters.
    pub fn reset(&mut self) {
        self.in_flight.clear();
        self.next_ready = Cycle::NEVER;
        self.stats = MemoryStats::default();
    }
}

/// Either main-memory model behind one API.
#[derive(Clone, Debug)]
pub enum MainMemory {
    /// Constant-latency (SimpleScalar-like).
    Constant(ConstantMemory),
    /// Detailed SDRAM.
    Sdram(Sdram),
}

impl MainMemory {
    /// Builds the model described by `model`.
    pub fn from_model(model: &MemoryModel) -> Self {
        match model {
            MemoryModel::Constant { latency } => {
                MainMemory::Constant(ConstantMemory::new(*latency))
            }
            MemoryModel::Sdram(cfg) => MainMemory::Sdram(Sdram::new(*cfg)),
        }
    }

    /// Submits a transaction; returns `false` if the controller queue is
    /// full (constant memory never refuses).
    pub fn try_push(&mut self, token: MemToken, line: Addr, is_write: bool, now: Cycle) -> bool {
        match self {
            MainMemory::Constant(m) => {
                m.push(token, is_write, now);
                true
            }
            MainMemory::Sdram(m) => m.try_push(token, line, is_write, now),
        }
    }

    /// Advances one cycle, returning finished transactions. Allocating
    /// convenience wrapper around [`MainMemory::tick_into`].
    pub fn tick(&mut self, now: Cycle) -> Vec<MemDone> {
        match self {
            MainMemory::Constant(m) => m.tick(now),
            MainMemory::Sdram(m) => m.tick(now),
        }
    }

    /// Advances one cycle, appending finished transactions onto `done`.
    pub fn tick_into(&mut self, now: Cycle, done: &mut Vec<MemDone>) {
        match self {
            MainMemory::Constant(m) => m.tick_into(now, done),
            MainMemory::Sdram(m) => m.tick_into(now, done),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemoryStats {
        match self {
            MainMemory::Constant(m) => m.stats(),
            MainMemory::Sdram(m) => m.stats(),
        }
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        match self {
            MainMemory::Constant(m) => m.reset(),
            MainMemory::Sdram(m) => m.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_done(mem: &mut Sdram, upto: u64) -> Vec<MemDone> {
        let mut out = Vec::new();
        for c in 0..upto {
            out.extend(mem.tick(Cycle::new(c)));
        }
        out
    }

    #[test]
    fn cold_read_latency_is_rcd_plus_cas() {
        let mut mem = Sdram::new(SdramConfig::baseline());
        mem.try_push(MemToken(1), Addr::new(0x40), false, Cycle::new(0));
        let done = run_until_done(&mut mem, 200);
        assert_eq!(done.len(), 1);
        // idle bank: activate at 20 (tRRD after last_activate=0), +tRCD+CL = 80.
        assert_eq!(done[0].finished_at.raw(), 20 + 30 + 30);
        assert_eq!(mem.stats().row_hits, 0);
    }

    #[test]
    fn open_row_hit_is_cas_only() {
        let mut mem = Sdram::new(SdramConfig::baseline());
        mem.try_push(MemToken(1), Addr::new(0x40), false, Cycle::new(0));
        let first = run_until_done(&mut mem, 200);
        let t1 = first[0].finished_at;
        // Same line again: row already open.
        mem.try_push(MemToken(2), Addr::new(0x80), false, t1);
        let mut second = Vec::new();
        for c in t1.raw()..t1.raw() + 100 {
            second.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].finished_at - t1, SdramConfig::baseline().cas);
        assert_eq!(mem.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = SdramConfig {
            interleave: BankInterleave::Linear,
            ..SdramConfig::baseline()
        };
        let mut mem = Sdram::new(cfg);
        // Two addresses in the same bank, different rows. With linear
        // mapping: lines = addr>>6; col 10 bits, bank 2 bits, row above.
        // Same bank 0, rows 0 and 1: line numbers 0 and 4096<<0... row is
        // lines >> 12, so line 0 => row 0; line 4096 => row 1, bank (4096>>10)&3 = 0.
        let a = Addr::new(0);
        let b = Addr::new(4096 << 6);
        assert_eq!(mem.map(a).0, mem.map(b).0, "same bank");
        assert_ne!(mem.map(a).1, mem.map(b).1, "different rows");
        mem.try_push(MemToken(1), a, false, Cycle::new(0));
        let d1 = run_until_done(&mut mem, 200);
        let t1 = d1[0].finished_at;
        mem.try_push(MemToken(2), b, false, t1);
        let mut d2 = Vec::new();
        for c in t1.raw()..t1.raw() + 400 {
            d2.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(d2.len(), 1);
        let latency = d2[0].finished_at - t1;
        // Must pay at least tRP + tRCD + CL, plus tRAS/tRC slack.
        assert!(
            latency >= 30 + 30 + 30,
            "conflict latency {latency} too small"
        );
        assert_eq!(mem.stats().precharges, 1);
    }

    #[test]
    fn queue_is_bounded() {
        let cfg = SdramConfig {
            queue_entries: 2,
            ..SdramConfig::baseline()
        };
        let mut mem = Sdram::new(cfg);
        assert!(mem.try_push(MemToken(1), Addr::new(0x00), false, Cycle::ZERO));
        assert!(mem.try_push(MemToken(2), Addr::new(0x40), false, Cycle::ZERO));
        assert!(!mem.try_push(MemToken(3), Addr::new(0x80), false, Cycle::ZERO));
        assert!(!mem.can_accept());
    }

    #[test]
    fn open_row_first_reorders_past_conflicts() {
        let cfg = SdramConfig {
            interleave: BankInterleave::Linear,
            schedule: SdramSchedule::OpenRowFirst,
            ..SdramConfig::baseline()
        };
        let mut mem = Sdram::new(cfg);
        // Open row 0 of bank 0.
        mem.try_push(MemToken(1), Addr::new(0), false, Cycle::new(0));
        let d1 = run_until_done(&mut mem, 200);
        let t1 = d1[0].finished_at;
        // Queue a conflicting request (row 1) then a row-hit (row 0).
        mem.try_push(MemToken(2), Addr::new(4096 << 6), false, t1);
        mem.try_push(MemToken(3), Addr::new(0x40), false, t1);
        let mut out = Vec::new();
        for c in t1.raw()..t1.raw() + 600 {
            out.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].token, MemToken(3), "row hit scheduled first");
        assert_eq!(out[1].token, MemToken(2));
    }

    #[test]
    fn fcfs_preserves_order() {
        let cfg = SdramConfig {
            interleave: BankInterleave::Linear,
            schedule: SdramSchedule::Fcfs,
            ..SdramConfig::baseline()
        };
        let mut mem = Sdram::new(cfg);
        mem.try_push(MemToken(1), Addr::new(0), false, Cycle::new(0));
        let t1 = run_until_done(&mut mem, 200)[0].finished_at;
        mem.try_push(MemToken(2), Addr::new(4096 << 6), false, t1);
        mem.try_push(MemToken(3), Addr::new(0x40), false, t1);
        let mut out = Vec::new();
        for c in t1.raw()..t1.raw() + 600 {
            out.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(out[0].token, MemToken(1 + 1));
    }

    #[test]
    fn permutation_interleave_spreads_rows() {
        let linear = Sdram::new(SdramConfig {
            interleave: BankInterleave::Linear,
            ..SdramConfig::baseline()
        });
        let perm = Sdram::new(SdramConfig::baseline());
        // Two conflicting rows in the same bank under linear mapping...
        let a = Addr::new(0);
        let b = Addr::new(4096 << 6);
        assert_eq!(linear.map(a).0, linear.map(b).0);
        // ...land in different banks under permutation mapping.
        assert_ne!(perm.map(a).0, perm.map(b).0);
    }

    #[test]
    fn constant_memory_flat_latency() {
        let mut mem = ConstantMemory::new(70);
        mem.push(MemToken(1), false, Cycle::new(5));
        mem.push(MemToken(2), false, Cycle::new(5));
        let mut done = Vec::new();
        for c in 0..100 {
            done.extend(mem.tick(Cycle::new(c)));
        }
        assert_eq!(done.len(), 2, "unlimited bandwidth");
        assert!(done.iter().all(|d| d.finished_at.raw() == 75));
        assert!((mem.stats().average_latency().unwrap() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn main_memory_dispatch() {
        let mut c = MainMemory::from_model(&MemoryModel::simplescalar_70());
        assert!(c.try_push(MemToken(9), Addr::new(0x40), false, Cycle::ZERO));
        let mut s = MainMemory::from_model(&MemoryModel::Sdram(SdramConfig::baseline()));
        assert!(s.try_push(MemToken(9), Addr::new(0x40), true, Cycle::ZERO));
        for mem in [&mut c, &mut s] {
            let mut done = Vec::new();
            for cyc in 0..300 {
                done.extend(mem.tick(Cycle::new(cyc)));
            }
            assert_eq!(done.len(), 1);
        }
    }

    #[test]
    fn writes_count_in_stats() {
        let mut mem = Sdram::new(SdramConfig::baseline());
        mem.try_push(MemToken(1), Addr::new(0x40), true, Cycle::new(0));
        let done = run_until_done(&mut mem, 300);
        assert!(done[0].is_write);
        assert_eq!(mem.stats().requests, 1);
    }

    /// The idle fast path must be invisible: ticking far past the last
    /// completion and then submitting again behaves identically to the
    /// always-scanning reference, including the queue-wait counter.
    #[test]
    fn idle_fast_path_is_invisible() {
        let mut mem = Sdram::new(SdramConfig::baseline());
        mem.try_push(MemToken(1), Addr::new(0x40), false, Cycle::new(0));
        let mut done = Vec::new();
        for c in 0..10_000u64 {
            mem.tick_into(Cycle::new(c), &mut done);
        }
        assert_eq!(done.len(), 1);
        let wait_after_first = mem.stats().queue_wait_cycles;
        // Long-idle controller accrues no queue-wait cycles.
        mem.try_push(MemToken(2), Addr::new(0x80), false, Cycle::new(10_000));
        for c in 10_000..10_200u64 {
            mem.tick_into(Cycle::new(c), &mut done);
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].token, MemToken(2));
        assert_eq!(
            mem.stats().queue_wait_cycles,
            wait_after_first + 1,
            "one wait cycle for the second request's submission cycle"
        );
        assert_eq!(mem.in_service_len(), 0);
    }
}
