//! Sparse, value-carrying memories.
//!
//! The paper validates cache models by plugging them into OoOSysC, a
//! processor model that "actually perform[s] all computations", so that "the
//! cache not only contains the addresses but the actual values of the data".
//! This module provides that capability: a [`SparseMemory`] is a sparse
//! 64-bit-word store, and a [`FunctionalMemory`] keeps *two* of them —
//!
//! - the **architectural** image, updated the moment a store executes
//!   (ground truth, what a correct machine would contain), and
//! - the **DRAM** image, updated only by cache writebacks (what the
//!   simulated memory chips contain).
//!
//! Cache fills read the DRAM image; an integrity checker compares every
//! loaded value against the architectural image. A model bug such as a
//! forgotten dirty bit (the paper's §2.2 anecdote) makes the two diverge and
//! is caught immediately.

use microlib_model::{Addr, BinCodec, CodecError, Decoder, Encoder, LineData};
use std::collections::HashMap;
use std::sync::Arc;

const PAGE_WORDS: usize = 512; // 4 KB pages
const PAGE_SHIFT: u64 = 12;

/// Cheap multiply-and-shift hasher for the page maps: page indices are
/// small, low-entropy integers, and every simulated load/store pays one
/// lookup, so the default SipHash is measurable overhead. Not an exposed
/// collection — HashDoS hardening buys nothing here.
#[derive(Clone, Copy, Debug, Default)]
struct PageIndexHasher(u64);

impl std::hash::Hasher for PageIndexHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); page keys take the `write_u64` path.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        // Fibonacci multiply + xor-shift spreads consecutive page indices
        // across the table.
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }
}

type PageMap = HashMap<u64, Arc<[u64; PAGE_WORDS]>, std::hash::BuildHasherDefault<PageIndexHasher>>;

/// A sparse 64-bit-word memory over the full address space.
///
/// Unwritten words read as zero. Addresses are byte addresses; word accesses
/// use the containing aligned 8-byte word.
///
/// Pages are shared **copy-on-write**: cloning a memory (restoring a warm
/// checkpoint, stamping a workload's pre-built image into a fresh system)
/// only bumps per-page reference counts, and a page is physically copied
/// the first time a clone writes to it. Sampled campaigns restore
/// checkpoints once per slice per mechanism, so cheap clones matter.
///
/// # Examples
///
/// ```
/// use microlib_mem::SparseMemory;
/// use microlib_model::Addr;
///
/// let mut mem = SparseMemory::new();
/// mem.write_word(Addr::new(0x1000), 42);
/// assert_eq!(mem.read_word(Addr::new(0x1000)), 42);
/// assert_eq!(mem.read_word(Addr::new(0x2000)), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SparseMemory {
    pages: PageMap,
}

impl SparseMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        SparseMemory {
            pages: PageMap::default(),
        }
    }

    #[inline]
    fn split(addr: Addr) -> (u64, usize) {
        let page = addr.raw() >> PAGE_SHIFT;
        let word = ((addr.raw() >> 3) as usize) & (PAGE_WORDS - 1);
        (page, word)
    }

    /// Reads the aligned 64-bit word containing `addr`.
    pub fn read_word(&self, addr: Addr) -> u64 {
        let (page, word) = Self::split(addr);
        self.pages.get(&page).map_or(0, |p| p[word])
    }

    /// Writes the aligned 64-bit word containing `addr`.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        let (page, word) = Self::split(addr);
        if value == 0 && !self.pages.contains_key(&page) {
            return; // writing zero to an untouched page is a no-op
        }
        let page = self
            .pages
            .entry(page)
            .or_insert_with(|| Arc::new([0; PAGE_WORDS]));
        // Copy-on-write: unshared pages mutate in place.
        Arc::make_mut(page)[word] = value;
    }

    /// Approximate resident heap footprint in bytes: materialized pages
    /// plus per-page map overhead. Copy-on-write pages shared with another
    /// image are counted here too — the estimate prices each map as if it
    /// owned its pages, which is the upper bound a cache-eviction policy
    /// wants.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * (PAGE_WORDS * 8 + 2 * std::mem::size_of::<u64>())
    }

    /// Reads a whole line of `line_bytes` starting at the line containing
    /// `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes / 8` exceeds [`LineData::MAX_WORDS`].
    pub fn read_line(&self, addr: Addr, line_bytes: u64) -> LineData {
        let base = addr.line(line_bytes);
        let words = (line_bytes / 8) as usize;
        let mut line = LineData::zeroed(words);
        let (page, word0) = Self::split(base);
        if word0 + words <= PAGE_WORDS {
            // A line within one page (every aligned line whose size divides
            // the page size): one map lookup covers all its words; an
            // absent page reads as zeros.
            if let Some(p) = self.pages.get(&page) {
                for i in 0..words {
                    line.set_word(i, p[word0 + i]);
                }
            }
            return line;
        }
        for i in 0..words {
            line.set_word(i, self.read_word(base.offset((i * 8) as i64)));
        }
        line
    }

    /// Writes a whole line at the line-aligned address containing `addr`.
    pub fn write_line(&mut self, addr: Addr, data: &LineData) {
        let base = addr.line(data.byte_len());
        let words = data.words();
        let (page, word0) = Self::split(base);
        if word0 + words.len() <= PAGE_WORDS {
            // Single-page fast path (one lookup, not one per word). An
            // all-zero line onto an untouched page stays a no-op, matching
            // the per-word semantics.
            if !self.pages.contains_key(&page) && words.iter().all(|&w| w == 0) {
                return;
            }
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Arc::new([0; PAGE_WORDS]));
            let p = Arc::make_mut(p);
            p[word0..word0 + words.len()].copy_from_slice(words);
            return;
        }
        for (i, w) in words.iter().enumerate() {
            self.write_word(base.offset((i * 8) as i64), *w);
        }
    }

    /// Number of 4 KB pages materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

impl SparseMemory {
    /// Encodes this memory as a **delta against `base`**: only pages
    /// absent from (or differing from) `base` are written, in ascending
    /// page-index order (the canonical form — HashMap iteration order
    /// would make byte streams nondeterministic). Decoding with the same
    /// base reconstructs the memory exactly.
    ///
    /// The intended base is a deterministically regenerable image (a
    /// workload's initial memory): a warmed memory shares most of its
    /// pages with it copy-on-write, so the `Arc::ptr_eq` fast path skips
    /// untouched pages without comparing contents, and the encoded size
    /// is proportional to the pages the warm phase actually touched.
    /// Pages are never *removed* by simulation (writes only materialize
    /// or mutate), so a delta plus the base always covers the full page
    /// set; the encoded resident-page count guards that invariant.
    pub(crate) fn encode_delta(&self, base: &SparseMemory, e: &mut Encoder) {
        let mut changed: Vec<u64> = self
            .pages
            .iter()
            .filter(|(idx, page)| match base.pages.get(idx) {
                Some(b) => !Arc::ptr_eq(page, b) && ***page != **b,
                None => true,
            })
            .map(|(idx, _)| *idx)
            .collect();
        changed.sort_unstable();
        e.put_u64(base.content_digest());
        e.put_usize(self.pages.len());
        e.put_usize(changed.len());
        for idx in changed {
            e.put_u64(idx);
            for word in self.pages[&idx].iter() {
                e.put_u64(*word);
            }
        }
    }

    /// Reconstructs a memory from `base` plus an encoded delta.
    pub(crate) fn decode_delta(
        base: &SparseMemory,
        d: &mut Decoder<'_>,
    ) -> Result<Self, CodecError> {
        if d.take_u64()? != base.content_digest() {
            // The caller's base diverged from the one the delta was
            // encoded against (different contents, not just a different
            // page set) — never trust the reconstruction.
            return Err(CodecError::Invalid("base image diverged"));
        }
        let total = d.take_usize()?;
        let changed = d.take_usize()?;
        let mut mem = base.clone();
        for _ in 0..changed {
            let idx = d.take_u64()?;
            let mut page = [0u64; PAGE_WORDS];
            for word in page.iter_mut() {
                *word = d.take_u64()?;
            }
            mem.pages.insert(idx, Arc::new(page));
        }
        if mem.pages.len() != total {
            // Pages are never removed by simulation, so a delta over the
            // matching base must land on exactly the encoded page count.
            return Err(CodecError::Invalid("page set diverged from base"));
        }
        Ok(mem)
    }

    /// Order-insensitive-input, order-sensitive-output FNV-1a digest of
    /// the full canonical content (pages walked in ascending index
    /// order). Pins a delta to the *exact* base it was encoded against:
    /// equal page counts with different words must not decode.
    fn content_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(mut h: u64, v: u64) -> u64 {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        let mut idxs: Vec<u64> = self.pages.keys().copied().collect();
        idxs.sort_unstable();
        let mut h = OFFSET;
        for idx in idxs {
            h = mix(h, idx);
            for word in self.pages[&idx].iter() {
                h = mix(h, *word);
            }
        }
        h
    }
}

impl BinCodec for SparseMemory {
    /// The standalone encoding is the delta against an empty memory
    /// (i.e. every resident page).
    fn encode(&self, e: &mut Encoder) {
        self.encode_delta(&SparseMemory::new(), e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Self::decode_delta(&SparseMemory::new(), d)
    }
}

/// The dual architectural/DRAM memory described in the module docs.
///
/// # Examples
///
/// ```
/// use microlib_mem::FunctionalMemory;
/// use microlib_model::Addr;
///
/// let mut mem = FunctionalMemory::new();
/// let a = Addr::new(0x100);
/// mem.store_architectural(a, 7);      // the store executes
/// assert_eq!(mem.architectural(a), 7);
/// assert_eq!(mem.dram().read_word(a), 0); // not yet written back
/// ```
#[derive(Clone, Debug, Default)]
pub struct FunctionalMemory {
    arch: SparseMemory,
    dram: SparseMemory,
}

impl FunctionalMemory {
    /// Creates an empty functional memory.
    pub fn new() -> Self {
        FunctionalMemory::default()
    }

    /// Records a store's architectural effect (ground truth).
    pub fn store_architectural(&mut self, addr: Addr, value: u64) {
        self.arch.write_word(addr, value);
    }

    /// Reads the architectural (ground-truth) value at `addr`.
    pub fn architectural(&self, addr: Addr) -> u64 {
        self.arch.read_word(addr)
    }

    /// Initializes both images at once — used by workload generators to lay
    /// out data structures (pointer chains, arrays) before simulation.
    pub fn initialize_word(&mut self, addr: Addr, value: u64) {
        self.arch.write_word(addr, value);
        self.dram.write_word(addr, value);
    }

    /// Approximate resident heap footprint in bytes (both images; see
    /// [`SparseMemory::resident_bytes`]).
    pub fn resident_bytes(&self) -> usize {
        self.arch.resident_bytes() + self.dram.resident_bytes()
    }

    /// The DRAM image (what fills read and writebacks write).
    pub fn dram(&self) -> &SparseMemory {
        &self.dram
    }

    /// Mutable access to the DRAM image.
    pub fn dram_mut(&mut self) -> &mut SparseMemory {
        &mut self.dram
    }

    /// Encodes both images as deltas against `base` (the warm-checkpoint
    /// persistence path; `base` is the workload's freshly initialized
    /// memory, where the architectural and DRAM images coincide).
    pub(crate) fn encode_state(&self, base: &FunctionalMemory, e: &mut Encoder) {
        self.arch.encode_delta(&base.arch, e);
        self.dram.encode_delta(&base.dram, e);
    }

    /// Decodes both images against the same `base` the state was encoded
    /// with.
    pub(crate) fn decode_state(
        base: &FunctionalMemory,
        d: &mut Decoder<'_>,
    ) -> Result<Self, CodecError> {
        Ok(FunctionalMemory {
            arch: SparseMemory::decode_delta(&base.arch, d)?,
            dram: SparseMemory::decode_delta(&base.dram, d)?,
        })
    }

    /// Verifies that `observed` (a value produced by the cache hierarchy for
    /// a load at `addr`) matches the architectural image.
    ///
    /// # Errors
    ///
    /// Returns an [`IntegrityError`] describing the divergence.
    pub fn check_load(&self, addr: Addr, observed: u64) -> Result<(), IntegrityError> {
        let expected = self.arch.read_word(addr);
        if expected == observed {
            Ok(())
        } else {
            Err(IntegrityError {
                addr,
                expected,
                observed,
            })
        }
    }
}

/// A loaded value diverged from the architectural memory image — the
/// simulated hierarchy lost or corrupted data (e.g. a dirty line was dropped
/// without writeback).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IntegrityError {
    /// Address of the divergent load.
    pub addr: Addr,
    /// Architecturally correct value.
    pub expected: u64,
    /// Value the hierarchy produced.
    pub observed: u64,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "value integrity violation at {}: expected {:#x}, hierarchy returned {:#x}",
            self.addr, self.expected, self.observed
        )
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = SparseMemory::new();
        assert_eq!(mem.read_word(Addr::new(0xdead_beef)), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn write_then_read() {
        let mut mem = SparseMemory::new();
        mem.write_word(Addr::new(0x1008), 99);
        assert_eq!(mem.read_word(Addr::new(0x1008)), 99);
        // Unaligned address reads the containing word.
        assert_eq!(mem.read_word(Addr::new(0x100b)), 99);
        assert_eq!(mem.resident_pages(), 1);
    }

    #[test]
    fn zero_writes_do_not_materialize_pages() {
        let mut mem = SparseMemory::new();
        mem.write_word(Addr::new(0x5000), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn line_round_trip() {
        let mut mem = SparseMemory::new();
        let base = Addr::new(0x2040);
        let line = LineData::from_words(&[1, 2, 3, 4]);
        mem.write_line(base, &line);
        assert_eq!(mem.read_line(base, 32), line);
        assert_eq!(mem.read_word(Addr::new(0x2048)), 2);
        // 64-byte view covers the 32-byte line plus zeros.
        let wide = mem.read_line(base, 64);
        assert_eq!(wide.word(0), 1);
        assert_eq!(wide.word(4), 0);
    }

    #[test]
    fn line_crossing_pages() {
        let mut mem = SparseMemory::new();
        let base = Addr::new(0xFE0); // last 32B of a 4 KB page
        mem.write_line(base, &LineData::from_words(&[7, 8, 9, 10]));
        assert_eq!(mem.read_word(Addr::new(0xFF8)), 10);
    }

    #[test]
    fn functional_memory_separates_images() {
        let mut mem = FunctionalMemory::new();
        let a = Addr::new(0x40);
        mem.initialize_word(a, 5);
        assert_eq!(mem.architectural(a), 5);
        assert_eq!(mem.dram().read_word(a), 5);
        mem.store_architectural(a, 6);
        assert_eq!(mem.architectural(a), 6);
        assert_eq!(mem.dram().read_word(a), 5, "DRAM unchanged until writeback");
        mem.dram_mut().write_word(a, 6);
        assert!(mem.check_load(a, 6).is_ok());
    }

    #[test]
    fn delta_codec_round_trips_and_skips_shared_pages() {
        let mut base = SparseMemory::new();
        for i in 0..8u64 {
            base.write_word(Addr::new(i * 0x1000), i + 1);
        }
        // A COW clone that touches two pages: one mutated, one new.
        let mut warmed = base.clone();
        warmed.write_word(Addr::new(0x2008), 99);
        warmed.write_word(Addr::new(0x9000), 7);

        let mut e = Encoder::new();
        warmed.encode_delta(&base, &mut e);
        let bytes = e.into_bytes();
        // 2 changed pages at ~4 KB each, not 9.
        assert!(bytes.len() < 3 * 4_096, "delta stores only touched pages");
        let mut d = Decoder::new(&bytes);
        let back = SparseMemory::decode_delta(&base, &mut d).unwrap();
        d.finish().unwrap();
        for i in 0..8u64 {
            assert_eq!(back.read_word(Addr::new(i * 0x1000)), i + 1);
        }
        assert_eq!(back.read_word(Addr::new(0x2008)), 99);
        assert_eq!(back.read_word(Addr::new(0x9000)), 7);
        assert_eq!(back.resident_pages(), warmed.resident_pages());

        // A diverged base is rejected, not silently mis-reconstructed.
        let mut wrong = base.clone();
        wrong.write_word(Addr::new(0xA000), 1);
        let mut d = Decoder::new(&bytes);
        assert!(SparseMemory::decode_delta(&wrong, &mut d).is_err());

        // Same page set, different contents: the digest — not the page
        // count — must catch this.
        let mut same_shape = base.clone();
        same_shape.write_word(Addr::new(0x0000), 42);
        assert_eq!(same_shape.resident_pages(), base.resident_pages());
        let mut d = Decoder::new(&bytes);
        assert!(SparseMemory::decode_delta(&same_shape, &mut d).is_err());
    }

    #[test]
    fn standalone_codec_is_delta_against_empty() {
        let mut mem = SparseMemory::new();
        mem.write_word(Addr::new(0x40), 5);
        let mut e = Encoder::new();
        mem.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = SparseMemory::decode(&mut d).unwrap();
        assert_eq!(back.read_word(Addr::new(0x40)), 5);
        assert_eq!(back.resident_pages(), 1);
    }

    #[test]
    fn integrity_violation_detected() {
        let mut mem = FunctionalMemory::new();
        let a = Addr::new(0x80);
        mem.store_architectural(a, 0xAB);
        let err = mem.check_load(a, 0xCD).unwrap_err();
        assert_eq!(err.expected, 0xAB);
        assert_eq!(err.observed, 0xCD);
        assert!(err.to_string().contains("integrity"));
    }
}
