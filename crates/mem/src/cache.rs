//! The set-associative cache array: tags, data, dirty/prefetched bits and
//! replacement state.
//!
//! This is a *storage* model only — timing (ports, MSHRs, pipeline hazards)
//! lives in [`crate::hierarchy`]. Keeping storage and timing separate is
//! what lets the same array back both the detailed MicroLib model and the
//! SimpleScalar-like idealized model of Fig 1.

use microlib_model::{
    Addr, BinCodec, CacheConfig, CodecError, Decoder, Encoder, LineData, Replacement,
};

/// Metadata + data for one cache line slot.
#[derive(Clone, Debug)]
pub struct LineState {
    /// Tag (upper address bits).
    tag: u64,
    /// Whether the slot holds a line.
    valid: bool,
    /// Whether the line has been written since the fill.
    dirty: bool,
    /// Whether the line was brought in by a prefetch.
    prefetched: bool,
    /// Whether a demand access has touched the line since the fill.
    touched: bool,
    /// LRU timestamp (larger = more recent).
    lru: u64,
    /// FIFO sequence (set at fill time).
    fifo: u64,
    /// The line's data words.
    data: LineData,
}

/// A line displaced by a fill or invalidation.
#[derive(Clone, Debug)]
pub struct Victim {
    /// Line-aligned address of the displaced line.
    pub line: Addr,
    /// Whether it was dirty (needs writeback).
    pub dirty: bool,
    /// Its data.
    pub data: LineData,
    /// Whether it was a prefetched line never demand-touched.
    pub untouched_prefetch: bool,
}

/// Result of a demand lookup that hit.
#[derive(Clone, Copy, Debug)]
pub struct HitInfo {
    /// Whether the line had been prefetched and this is its first demand
    /// touch (tagged prefetching's second trigger).
    pub first_touch_of_prefetch: bool,
}

/// A set-associative cache array.
///
/// # Examples
///
/// ```
/// use microlib_mem::CacheArray;
/// use microlib_model::{Addr, CacheConfig, LineData};
///
/// let mut l1 = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
/// let line = Addr::new(0x1000);
/// assert!(l1.lookup(line).is_none());
/// l1.fill(line, LineData::zeroed(4), false, false);
/// assert!(l1.lookup(line).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray {
    config: CacheConfig,
    sets: Vec<Vec<LineState>>,
    line_shift: u32,
    set_mask: u64,
    clock: u64,
    rng_state: u64,
}

impl CacheArray {
    /// Builds the array for `config`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ConfigError`](microlib_model::ConfigError)
    /// if `config` is inconsistent.
    pub fn new(config: CacheConfig) -> Result<Self, microlib_model::ConfigError> {
        config.validate()?;
        let sets = config.sets() as usize;
        let ways = config.ways() as usize;
        let mut table = Vec::with_capacity(sets);
        for _ in 0..sets {
            let mut set = Vec::with_capacity(ways);
            for _ in 0..ways {
                set.push(LineState {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    prefetched: false,
                    touched: false,
                    lru: 0,
                    fifo: 0,
                    data: LineData::zeroed((config.line_bytes / 8) as usize),
                });
            }
            table.push(set);
        }
        Ok(CacheArray {
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets as u64) - 1,
            config,
            sets: table,
            clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        })
    }

    /// The array's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Encodes the array's mutable state (lines, clock, replacement RNG).
    /// The configuration is *not* encoded: warm-checkpoint cache keys
    /// already cover it, so decode rebuilds from the caller's config.
    ///
    /// Invalid lines are encoded as a single flag: their tag, replacement
    /// metadata and data can never influence behavior (every read path
    /// filters on `valid`, and victim choice takes an invalid way
    /// positionally, before any metadata comparison), so decode restores
    /// them to the fresh-array default. This keeps a half-warm L2's
    /// encoding proportional to its *resident* lines.
    pub(crate) fn encode_state(&self, e: &mut Encoder) {
        e.put_u64(self.clock);
        e.put_u64(self.rng_state);
        e.put_usize(self.sets.len());
        for set in &self.sets {
            e.put_usize(set.len());
            for line in set {
                e.put_bool(line.valid);
                if !line.valid {
                    continue;
                }
                e.put_u64(line.tag);
                e.put_bool(line.dirty);
                e.put_bool(line.prefetched);
                e.put_bool(line.touched);
                e.put_u64(line.lru);
                e.put_u64(line.fifo);
                line.data.encode(e);
            }
        }
    }

    /// Rebuilds an array for `config` and restores the encoded state.
    /// Rejects geometry mismatches (the entry was written under a
    /// different configuration than the key claimed).
    pub(crate) fn decode_state(
        config: CacheConfig,
        d: &mut Decoder<'_>,
    ) -> Result<Self, CodecError> {
        let mut array = CacheArray::new(config).map_err(|_| CodecError::Invalid("cache config"))?;
        array.clock = d.take_u64()?;
        array.rng_state = d.take_u64()?;
        if d.take_usize()? != array.sets.len() {
            return Err(CodecError::Invalid("cache set count"));
        }
        let line_words = (array.config.line_bytes / 8) as usize;
        for set in &mut array.sets {
            if d.take_usize()? != set.len() {
                return Err(CodecError::Invalid("cache way count"));
            }
            for line in set {
                line.valid = d.take_bool()?;
                if !line.valid {
                    continue;
                }
                line.tag = d.take_u64()?;
                line.dirty = d.take_bool()?;
                line.prefetched = d.take_bool()?;
                line.touched = d.take_bool()?;
                line.lru = d.take_u64()?;
                line.fifo = d.take_u64()?;
                line.data = LineData::decode(d)?;
                if line.data.words().len() != line_words {
                    return Err(CodecError::Invalid("cache line width"));
                }
            }
        }
        Ok(array)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.config.line_bytes
    }

    /// Decomposes a byte address into (set, tag).
    #[inline]
    pub fn index_of(&self, addr: Addr) -> (usize, u64) {
        let line = addr.raw() >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Reconstructs the line-aligned address for (set, tag).
    #[inline]
    pub fn address_of(&self, set: usize, tag: u64) -> Addr {
        Addr::new(((tag << self.set_mask.count_ones()) | set as u64) << self.line_shift)
    }

    fn find(&self, addr: Addr) -> Option<(usize, usize)> {
        let (set, tag) = self.index_of(addr);
        self.sets[set]
            .iter()
            .position(|w| w.valid && w.tag == tag)
            .map(|way| (set, way))
    }

    /// Whether the line containing `addr` is present.
    pub fn contains(&self, addr: Addr) -> bool {
        self.find(addr).is_some()
    }

    /// Demand lookup: on a hit, updates replacement/touch state and returns
    /// hit metadata.
    pub fn lookup(&mut self, addr: Addr) -> Option<HitInfo> {
        let (set, way) = self.find(addr)?;
        self.clock += 1;
        let slot = &mut self.sets[set][way];
        slot.lru = self.clock;
        let first_touch = slot.prefetched && !slot.touched;
        slot.touched = true;
        Some(HitInfo {
            first_touch_of_prefetch: first_touch,
        })
    }

    /// Fused demand lookup + word read for the load hit path: one tag
    /// search instead of [`CacheArray::lookup`] followed by
    /// [`CacheArray::read_word`], with the identical state updates.
    pub fn lookup_load(&mut self, addr: Addr) -> Option<(HitInfo, u64)> {
        let (set, way) = self.find(addr)?;
        self.clock += 1;
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        let slot = &mut self.sets[set][way];
        slot.lru = self.clock;
        let first_touch = slot.prefetched && !slot.touched;
        slot.touched = true;
        Some((
            HitInfo {
                first_touch_of_prefetch: first_touch,
            },
            slot.data.word(offset),
        ))
    }

    /// Fused demand lookup + word write for the store hit path: one tag
    /// search instead of [`CacheArray::lookup`] followed by
    /// [`CacheArray::write_word`], with the identical state updates.
    pub fn lookup_store(&mut self, addr: Addr, value: u64) -> Option<HitInfo> {
        let (set, way) = self.find(addr)?;
        self.clock += 1;
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        let slot = &mut self.sets[set][way];
        slot.lru = self.clock;
        let first_touch = slot.prefetched && !slot.touched;
        slot.touched = true;
        slot.data.set_word(offset, value);
        slot.dirty = true;
        Some(HitInfo {
            first_touch_of_prefetch: first_touch,
        })
    }

    /// Lookup without perturbing replacement or touch state (used by
    /// prefetch filtering and assertions).
    pub fn peek(&self, addr: Addr) -> bool {
        self.find(addr).is_some()
    }

    /// Reads the data word at `addr` if the line is present.
    pub fn read_word(&self, addr: Addr) -> Option<u64> {
        let (set, way) = self.find(addr)?;
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        Some(self.sets[set][way].data.word(offset))
    }

    /// Writes the data word at `addr` and sets the dirty bit; returns
    /// `false` if the line is absent.
    pub fn write_word(&mut self, addr: Addr, value: u64) -> bool {
        let Some((set, way)) = self.find(addr) else {
            return false;
        };
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        let slot = &mut self.sets[set][way];
        slot.data.set_word(offset, value);
        slot.dirty = true;
        true
    }

    /// Returns a copy of the line's data if present.
    pub fn read_line(&self, addr: Addr) -> Option<LineData> {
        self.find(addr).map(|(set, way)| self.sets[set][way].data)
    }

    /// Marks the line containing `addr` dirty (writeback arriving from the
    /// level above); returns `false` if absent.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let Some((set, way)) = self.find(addr) else {
            return false;
        };
        self.sets[set][way].dirty = true;
        true
    }

    /// Overwrites the whole line's data (writeback payload from above);
    /// the caller chooses whether this dirties the line.
    pub fn write_line(
        &mut self,
        addr: Addr,
        offset_words: usize,
        words: &[u64],
        dirty: bool,
    ) -> bool {
        let Some((set, way)) = self.find(addr) else {
            return false;
        };
        let slot = &mut self.sets[set][way];
        for (i, w) in words.iter().enumerate() {
            slot.data.set_word(offset_words + i, *w);
        }
        if dirty {
            slot.dirty = true;
        }
        true
    }

    fn choose_victim(&mut self, set: usize) -> usize {
        if let Some(way) = self.sets[set].iter().position(|w| !w.valid) {
            return way;
        }
        match self.config.replacement {
            Replacement::Lru => self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .unwrap_or(0),
            Replacement::Fifo => self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.fifo)
                .map(|(i, _)| i)
                .unwrap_or(0),
            Replacement::Random => {
                // xorshift64*
                self.rng_state ^= self.rng_state >> 12;
                self.rng_state ^= self.rng_state << 25;
                self.rng_state ^= self.rng_state >> 27;
                (self.rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) % self.sets[set].len() as u64)
                    as usize
            }
        }
    }

    /// Installs a line, returning the displaced victim if a valid line had
    /// to be evicted.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the line is already present — the
    /// hierarchy must never double-fill.
    pub fn fill(
        &mut self,
        addr: Addr,
        data: LineData,
        dirty: bool,
        prefetched: bool,
    ) -> Option<Victim> {
        debug_assert!(
            !self.contains(addr),
            "double fill of line {:#x} in {}",
            addr.raw(),
            self.config.name
        );
        let (set, tag) = self.index_of(addr);
        let way = self.choose_victim(set);
        self.clock += 1;
        let slot = &mut self.sets[set][way];
        let victim = if slot.valid {
            Some(Victim {
                line: Addr::new(
                    ((slot.tag << self.set_mask.count_ones()) | set as u64) << self.line_shift,
                ),
                dirty: slot.dirty,
                data: slot.data,
                untouched_prefetch: slot.prefetched && !slot.touched,
            })
        } else {
            None
        };
        *slot = LineState {
            tag,
            valid: true,
            dirty,
            prefetched,
            touched: false,
            lru: self.clock,
            fifo: self.clock,
            data,
        };
        victim
    }

    /// Removes the line containing `addr`, returning it as a victim.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Victim> {
        let (set, way) = self.find(addr)?;
        let slot = &mut self.sets[set][way];
        slot.valid = false;
        Some(Victim {
            line: addr.line(self.config.line_bytes),
            dirty: slot.dirty,
            data: slot.data,
            untouched_prefetch: slot.prefetched && !slot.touched,
        })
    }

    /// Whether the line containing `addr` is present and prefetched-untouched.
    pub fn is_untouched_prefetch(&self, addr: Addr) -> bool {
        self.find(addr)
            .map(|(s, w)| {
                let slot = &self.sets[s][w];
                slot.prefetched && !slot.touched
            })
            .unwrap_or(false)
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }

    /// Iterates over the line-aligned addresses of all valid lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        let shift = self.set_mask.count_ones();
        let line_shift = self.line_shift;
        self.sets.iter().enumerate().flat_map(move |(set, ways)| {
            ways.iter()
                .filter(|w| w.valid)
                .map(move |w| Addr::new(((w.tag << shift) | set as u64) << line_shift))
        })
    }

    /// Invalidates everything and clears replacement state.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for way in set {
                way.valid = false;
                way.dirty = false;
                way.prefetched = false;
                way.touched = false;
            }
        }
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32) -> CacheArray {
        CacheArray::new(CacheConfig {
            name: "tiny".into(),
            size_bytes: 256,
            assoc,
            line_bytes: 32,
            ports: 1,
            mshr_entries: 1,
            mshr_reads_per_entry: 1,
            latency: 1,
            write_policy: microlib_model::WritePolicy::Writeback,
            alloc_policy: microlib_model::AllocPolicy::AllocateOnWrite,
            replacement: Replacement::Lru,
        })
        .unwrap()
    }

    #[test]
    fn index_round_trip() {
        let c = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
        for addr in [0u64, 0x1234, 0xFFFF_FFC0, 0xABCD_EF00] {
            let a = Addr::new(addr);
            let (set, tag) = c.index_of(a);
            assert_eq!(c.address_of(set, tag), a.line(32));
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny(2);
        let a = Addr::new(0x40);
        assert!(c.lookup(a).is_none());
        assert!(c.fill(a, LineData::zeroed(4), false, false).is_none());
        assert!(c.lookup(a).is_some());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2); // 4 sets × 2 ways, 32B lines
                             // Three lines mapping to set 0: addresses 0, 128, 256 (set = (a>>5)&3).
        let (a, b, d) = (Addr::new(0), Addr::new(128), Addr::new(256));
        c.fill(a, LineData::zeroed(4), false, false);
        c.fill(b, LineData::zeroed(4), false, false);
        c.lookup(a); // a most recent; b is LRU
        let victim = c.fill(d, LineData::zeroed(4), false, false).unwrap();
        assert_eq!(victim.line, b);
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn fifo_ignores_recency() {
        let c = tiny(2);
        let mut cfg = c.config().clone();
        cfg.replacement = Replacement::Fifo;
        let mut c2 = CacheArray::new(cfg).unwrap();
        let (a, b, d) = (Addr::new(0), Addr::new(128), Addr::new(256));
        for x in [a, b] {
            c2.fill(x, LineData::zeroed(4), false, false);
        }
        c2.lookup(a); // recency must not matter
        let victim = c2.fill(d, LineData::zeroed(4), false, false).unwrap();
        assert_eq!(victim.line, a);
        drop(c);
    }

    #[test]
    fn dirty_data_travels_with_victim() {
        let mut c = tiny(1); // direct-mapped: 8 sets
        let a = Addr::new(0x40);
        c.fill(a, LineData::from_words(&[1, 2, 3, 4]), false, false);
        assert!(c.write_word(Addr::new(0x48), 99));
        let conflicting = Addr::new(0x40 + 256); // same set
        let victim = c
            .fill(conflicting, LineData::zeroed(4), false, false)
            .unwrap();
        assert!(victim.dirty);
        assert_eq!(victim.data.word(1), 99);
        assert_eq!(victim.line, a);
    }

    #[test]
    fn prefetch_touch_tracking() {
        let mut c = tiny(2);
        let a = Addr::new(0x40);
        c.fill(a, LineData::zeroed(4), false, true);
        assert!(c.is_untouched_prefetch(a));
        let hit = c.lookup(a).unwrap();
        assert!(hit.first_touch_of_prefetch);
        assert!(!c.is_untouched_prefetch(a));
        let hit2 = c.lookup(a).unwrap();
        assert!(!hit2.first_touch_of_prefetch);
    }

    #[test]
    fn invalidate_returns_victim() {
        let mut c = tiny(2);
        let a = Addr::new(0x60); // unaligned within line
        c.fill(a, LineData::zeroed(4), true, false);
        let v = c.invalidate(Addr::new(0x64)).unwrap();
        assert_eq!(v.line, Addr::new(0x60));
        assert!(v.dirty);
        assert!(!c.contains(a));
        assert!(c.invalidate(a).is_none());
    }

    #[test]
    fn word_read_write() {
        let mut c = tiny(2);
        let base = Addr::new(0x80);
        c.fill(base, LineData::from_words(&[10, 11, 12, 13]), false, false);
        assert_eq!(c.read_word(Addr::new(0x88)), Some(11));
        assert!(c.write_word(Addr::new(0x90), 77));
        assert_eq!(c.read_word(Addr::new(0x90)), Some(77));
        assert_eq!(c.read_word(Addr::new(0x200)), None);
        assert!(!c.write_word(Addr::new(0x200), 1));
    }

    #[test]
    fn resident_lines_enumerates() {
        let mut c = tiny(2);
        c.fill(Addr::new(0x40), LineData::zeroed(4), false, false);
        c.fill(Addr::new(0x80), LineData::zeroed(4), false, false);
        let mut lines: Vec<u64> = c.resident_lines().map(Addr::raw).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0x40, 0x80]);
    }

    #[test]
    fn random_replacement_stays_in_set() {
        let mut cfg = CacheConfig::baseline_l1d();
        cfg.assoc = 4;
        cfg.replacement = Replacement::Random;
        cfg.size_bytes = 512; // 4 sets × 4 ways
        let mut c = CacheArray::new(cfg).unwrap();
        // Fill set 0 beyond capacity; all fills map to set 0.
        for i in 0..16u64 {
            c.fill(Addr::new(i * 128), LineData::zeroed(4), false, false);
        }
        assert_eq!(c.occupancy(), 4);
    }
}
