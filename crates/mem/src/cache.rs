//! The set-associative cache array: tags, data, dirty/prefetched bits and
//! replacement state.
//!
//! This is a *storage* model only — timing (ports, MSHRs, pipeline hazards)
//! lives in [`crate::hierarchy`]. Keeping storage and timing separate is
//! what lets the same array back both the detailed MicroLib model and the
//! SimpleScalar-like idealized model of Fig 1.
//!
//! # Data layout
//!
//! The array is stored struct-of-arrays: four flat columns (`tags`, `meta`,
//! `fifo`, `data`), each `sets × ways` long and row-major by set, so a
//! lookup is a short linear tag scan over one or two cache lines of host
//! memory instead of per-way struct chasing. All per-way metadata except
//! the FIFO stamp is packed into one `meta` word per way:
//!
//! ```text
//!   bit 0      VALID        slot holds a line
//!   bit 1      DIRTY        written since fill
//!   bit 2      PREFETCHED   brought in by a prefetch
//!   bit 3      TOUCHED      demand-touched since fill
//!   bits 63..4 LRU stamp    replacement clock at last fill/demand touch
//! ```
//!
//! A demand touch is then one masked store (`flags | clock << 4`); an LRU
//! victim scan is a min over `meta >> 4` with no branches on validity
//! needed (the invalid-way check runs first and short-circuits). Debug
//! builds retain the original per-way struct implementation as a shadow
//! and cross-check every find / update / victim choice against it.

use microlib_model::{
    Addr, BinCodec, CacheConfig, CodecError, Decoder, Encoder, LineData, Replacement,
};

/// Packed `meta` word flags (see module docs for the layout).
const VALID: u64 = 1 << 0;
const DIRTY: u64 = 1 << 1;
const PREFETCHED: u64 = 1 << 2;
const TOUCHED: u64 = 1 << 3;
const FLAGS: u64 = 0xF;
/// LRU stamp lives in `meta >> LRU_SHIFT`.
const LRU_SHIFT: u32 = 4;

/// A line displaced by a fill or invalidation.
#[derive(Clone, Debug)]
pub struct Victim {
    /// Line-aligned address of the displaced line.
    pub line: Addr,
    /// Whether it was dirty (needs writeback).
    pub dirty: bool,
    /// Its data.
    pub data: LineData,
    /// Whether it was a prefetched line never demand-touched.
    pub untouched_prefetch: bool,
}

/// Result of a demand lookup that hit.
#[derive(Clone, Copy, Debug)]
pub struct HitInfo {
    /// Whether the line had been prefetched and this is its first demand
    /// touch (tagged prefetching's second trigger).
    pub first_touch_of_prefetch: bool,
}

/// A set-associative cache array.
///
/// # Examples
///
/// ```
/// use microlib_mem::CacheArray;
/// use microlib_model::{Addr, CacheConfig, LineData};
///
/// let mut l1 = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
/// let line = Addr::new(0x1000);
/// assert!(l1.lookup(line).is_none());
/// l1.fill(line, LineData::zeroed(4), false, false);
/// assert!(l1.lookup(line).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray {
    config: CacheConfig,
    /// Upper address bits per slot; only meaningful when `meta` has VALID.
    tags: Vec<u64>,
    /// Packed state word per slot (flags + LRU stamp; module docs).
    meta: Vec<u64>,
    /// FIFO stamp per slot (set at fill time only).
    fifo: Vec<u64>,
    /// Line payloads, parallel to `tags`.
    data: Vec<LineData>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    /// `set_mask.count_ones()`, cached for the index math.
    set_bits: u32,
    clock: u64,
    rng_state: u64,
    #[cfg(debug_assertions)]
    shadow: shadow::Shadow,
}

impl CacheArray {
    /// Builds the array for `config`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ConfigError`](microlib_model::ConfigError)
    /// if `config` is inconsistent.
    pub fn new(config: CacheConfig) -> Result<Self, microlib_model::ConfigError> {
        config.validate()?;
        let sets = config.sets() as usize;
        let ways = config.ways() as usize;
        let slots = sets * ways;
        let line = LineData::zeroed((config.line_bytes / 8) as usize);
        Ok(CacheArray {
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets as u64) - 1,
            set_bits: ((sets as u64) - 1).count_ones(),
            #[cfg(debug_assertions)]
            shadow: shadow::Shadow::new(sets, ways, &config),
            config,
            tags: vec![0; slots],
            meta: vec![0; slots],
            fifo: vec![0; slots],
            data: vec![line; slots],
            ways,
            clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        })
    }

    /// The array's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Encodes the array's mutable state (lines, clock, replacement RNG).
    /// The configuration is *not* encoded: warm-checkpoint cache keys
    /// already cover it, so decode rebuilds from the caller's config.
    ///
    /// Invalid lines are encoded as a single flag: their tag, replacement
    /// metadata and data can never influence behavior (every read path
    /// filters on `valid`, and victim choice takes an invalid way
    /// positionally, before any metadata comparison), so decode restores
    /// them to the fresh-array default. This keeps a half-warm L2's
    /// encoding proportional to its *resident* lines.
    ///
    /// The byte format is identical to the pre-SoA per-way-struct layout,
    /// so warm checkpoints written by earlier builds remain decodable.
    pub(crate) fn encode_state(&self, e: &mut Encoder) {
        e.put_u64(self.clock);
        e.put_u64(self.rng_state);
        e.put_usize((self.set_mask + 1) as usize);
        for set in 0..=self.set_mask as usize {
            e.put_usize(self.ways);
            let base = set * self.ways;
            for slot in base..base + self.ways {
                let m = self.meta[slot];
                e.put_bool(m & VALID != 0);
                if m & VALID == 0 {
                    continue;
                }
                e.put_u64(self.tags[slot]);
                e.put_bool(m & DIRTY != 0);
                e.put_bool(m & PREFETCHED != 0);
                e.put_bool(m & TOUCHED != 0);
                e.put_u64(m >> LRU_SHIFT);
                e.put_u64(self.fifo[slot]);
                self.data[slot].encode(e);
            }
        }
    }

    /// Rebuilds an array for `config` and restores the encoded state.
    /// Rejects geometry mismatches (the entry was written under a
    /// different configuration than the key claimed).
    pub(crate) fn decode_state(
        config: CacheConfig,
        d: &mut Decoder<'_>,
    ) -> Result<Self, CodecError> {
        let mut array = CacheArray::new(config).map_err(|_| CodecError::Invalid("cache config"))?;
        array.clock = d.take_u64()?;
        array.rng_state = d.take_u64()?;
        if d.take_usize()? != (array.set_mask + 1) as usize {
            return Err(CodecError::Invalid("cache set count"));
        }
        let line_words = (array.config.line_bytes / 8) as usize;
        for set in 0..=array.set_mask as usize {
            if d.take_usize()? != array.ways {
                return Err(CodecError::Invalid("cache way count"));
            }
            let base = set * array.ways;
            for slot in base..base + array.ways {
                if !d.take_bool()? {
                    continue;
                }
                array.tags[slot] = d.take_u64()?;
                let dirty = d.take_bool()?;
                let prefetched = d.take_bool()?;
                let touched = d.take_bool()?;
                let lru = d.take_u64()?;
                array.meta[slot] = (lru << LRU_SHIFT)
                    | VALID
                    | if dirty { DIRTY } else { 0 }
                    | if prefetched { PREFETCHED } else { 0 }
                    | if touched { TOUCHED } else { 0 };
                array.fifo[slot] = d.take_u64()?;
                array.data[slot] = LineData::decode(d)?;
                if array.data[slot].words().len() != line_words {
                    return Err(CodecError::Invalid("cache line width"));
                }
            }
        }
        #[cfg(debug_assertions)]
        array.shadow.rebuild(&array.tags, &array.meta, &array.fifo);
        Ok(array)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.config.line_bytes
    }

    /// Decomposes a byte address into (set, tag).
    #[inline]
    pub fn index_of(&self, addr: Addr) -> (usize, u64) {
        let line = addr.raw() >> self.line_shift;
        ((line & self.set_mask) as usize, line >> self.set_bits)
    }

    /// Reconstructs the line-aligned address for (set, tag).
    #[inline]
    pub fn address_of(&self, set: usize, tag: u64) -> Addr {
        Addr::new(((tag << self.set_bits) | set as u64) << self.line_shift)
    }

    /// Finds the flat slot index holding `addr`'s line, if resident.
    #[inline]
    fn find(&self, addr: Addr) -> Option<usize> {
        let (set, tag) = self.index_of(addr);
        let base = set * self.ways;
        let mut found = None;
        for slot in base..base + self.ways {
            if self.meta[slot] & VALID != 0 && self.tags[slot] == tag {
                found = Some(slot);
                break;
            }
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.shadow.find(set, tag).map(|way| base + way),
            found,
            "SoA find diverged from shadow in {}",
            self.config.name
        );
        found
    }

    /// Line-aligned address currently held by flat slot index `slot`.
    #[inline]
    fn slot_address(&self, slot: usize) -> Addr {
        let set = slot / self.ways;
        self.address_of(set, self.tags[slot])
    }

    /// The common demand-touch update: bump the clock, re-stamp LRU, set
    /// TOUCHED, and report whether this was a prefetched line's first
    /// demand touch.
    #[inline]
    fn touch(&mut self, slot: usize) -> HitInfo {
        self.clock += 1;
        let m = self.meta[slot];
        let first_touch = m & (PREFETCHED | TOUCHED) == PREFETCHED;
        self.meta[slot] = (m & FLAGS) | TOUCHED | (self.clock << LRU_SHIFT);
        #[cfg(debug_assertions)]
        self.shadow.touch(slot, self.clock, first_touch);
        HitInfo {
            first_touch_of_prefetch: first_touch,
        }
    }

    /// Whether the line containing `addr` is present.
    pub fn contains(&self, addr: Addr) -> bool {
        self.find(addr).is_some()
    }

    /// Demand lookup: on a hit, updates replacement/touch state and returns
    /// hit metadata.
    pub fn lookup(&mut self, addr: Addr) -> Option<HitInfo> {
        let slot = self.find(addr)?;
        Some(self.touch(slot))
    }

    /// Fused demand lookup + word read for the load hit path: one tag
    /// search instead of [`CacheArray::lookup`] followed by
    /// [`CacheArray::read_word`], with the identical state updates.
    pub fn lookup_load(&mut self, addr: Addr) -> Option<(HitInfo, u64)> {
        let slot = self.find(addr)?;
        let hit = self.touch(slot);
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        Some((hit, self.data[slot].word(offset)))
    }

    /// Fused demand lookup + word write for the store hit path: one tag
    /// search instead of [`CacheArray::lookup`] followed by
    /// [`CacheArray::write_word`], with the identical state updates.
    pub fn lookup_store(&mut self, addr: Addr, value: u64) -> Option<HitInfo> {
        let slot = self.find(addr)?;
        let hit = self.touch(slot);
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        self.data[slot].set_word(offset, value);
        self.meta[slot] |= DIRTY;
        #[cfg(debug_assertions)]
        self.shadow.set_dirty(slot);
        Some(hit)
    }

    /// Lookup without perturbing replacement or touch state (used by
    /// prefetch filtering and assertions).
    pub fn peek(&self, addr: Addr) -> bool {
        self.find(addr).is_some()
    }

    /// Reads the data word at `addr` if the line is present.
    pub fn read_word(&self, addr: Addr) -> Option<u64> {
        let slot = self.find(addr)?;
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        Some(self.data[slot].word(offset))
    }

    /// Writes the data word at `addr` and sets the dirty bit; returns
    /// `false` if the line is absent.
    pub fn write_word(&mut self, addr: Addr, value: u64) -> bool {
        let Some(slot) = self.find(addr) else {
            return false;
        };
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        self.data[slot].set_word(offset, value);
        self.meta[slot] |= DIRTY;
        #[cfg(debug_assertions)]
        self.shadow.set_dirty(slot);
        true
    }

    /// Returns a copy of the line's data if present.
    pub fn read_line(&self, addr: Addr) -> Option<LineData> {
        self.find(addr).map(|slot| self.data[slot])
    }

    /// Marks the line containing `addr` dirty (writeback arriving from the
    /// level above); returns `false` if absent.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let Some(slot) = self.find(addr) else {
            return false;
        };
        self.meta[slot] |= DIRTY;
        #[cfg(debug_assertions)]
        self.shadow.set_dirty(slot);
        true
    }

    /// Overwrites the whole line's data (writeback payload from above);
    /// the caller chooses whether this dirties the line.
    pub fn write_line(
        &mut self,
        addr: Addr,
        offset_words: usize,
        words: &[u64],
        dirty: bool,
    ) -> bool {
        let Some(slot) = self.find(addr) else {
            return false;
        };
        for (i, w) in words.iter().enumerate() {
            self.data[slot].set_word(offset_words + i, *w);
        }
        if dirty {
            self.meta[slot] |= DIRTY;
            #[cfg(debug_assertions)]
            self.shadow.set_dirty(slot);
        }
        true
    }

    /// Picks the fill slot for `set`: the first invalid way positionally,
    /// else per the configured replacement policy.
    fn choose_victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        for slot in base..base + self.ways {
            if self.meta[slot] & VALID == 0 {
                #[cfg(debug_assertions)]
                self.shadow.check_victim(set, slot - base, &self.config);
                return slot;
            }
        }
        let way = match self.config.replacement {
            // First-min semantics (strict `<`) match the reference
            // `min_by_key`, which keeps the earliest way on stamp ties.
            Replacement::Lru => {
                let mut best = 0usize;
                let mut best_stamp = self.meta[base] >> LRU_SHIFT;
                for way in 1..self.ways {
                    let stamp = self.meta[base + way] >> LRU_SHIFT;
                    if stamp < best_stamp {
                        best = way;
                        best_stamp = stamp;
                    }
                }
                best
            }
            Replacement::Fifo => {
                let mut best = 0usize;
                let mut best_stamp = self.fifo[base];
                for way in 1..self.ways {
                    let stamp = self.fifo[base + way];
                    if stamp < best_stamp {
                        best = way;
                        best_stamp = stamp;
                    }
                }
                best
            }
            Replacement::Random => {
                // xorshift64*
                self.rng_state ^= self.rng_state >> 12;
                self.rng_state ^= self.rng_state << 25;
                self.rng_state ^= self.rng_state >> 27;
                (self.rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) % self.ways as u64) as usize
            }
        };
        #[cfg(debug_assertions)]
        self.shadow.check_victim(set, way, &self.config);
        base + way
    }

    /// Installs a line, returning the displaced victim if a valid line had
    /// to be evicted.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the line is already present — the
    /// hierarchy must never double-fill.
    pub fn fill(
        &mut self,
        addr: Addr,
        data: LineData,
        dirty: bool,
        prefetched: bool,
    ) -> Option<Victim> {
        debug_assert!(
            !self.contains(addr),
            "double fill of line {:#x} in {}",
            addr.raw(),
            self.config.name
        );
        let (set, tag) = self.index_of(addr);
        let slot = self.choose_victim(set);
        self.clock += 1;
        let m = self.meta[slot];
        let victim = if m & VALID != 0 {
            Some(Victim {
                line: self.slot_address(slot),
                dirty: m & DIRTY != 0,
                data: self.data[slot],
                untouched_prefetch: m & (PREFETCHED | TOUCHED) == PREFETCHED,
            })
        } else {
            None
        };
        self.tags[slot] = tag;
        self.meta[slot] = VALID
            | if dirty { DIRTY } else { 0 }
            | if prefetched { PREFETCHED } else { 0 }
            | (self.clock << LRU_SHIFT);
        self.fifo[slot] = self.clock;
        self.data[slot] = data;
        #[cfg(debug_assertions)]
        self.shadow
            .fill(slot, tag, dirty, prefetched, self.clock, victim.as_ref());
        victim
    }

    /// Removes the line containing `addr`, returning it as a victim.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Victim> {
        let slot = self.find(addr)?;
        let m = self.meta[slot];
        self.meta[slot] = m & !VALID;
        #[cfg(debug_assertions)]
        self.shadow.invalidate(slot);
        Some(Victim {
            line: addr.line(self.config.line_bytes),
            dirty: m & DIRTY != 0,
            data: self.data[slot],
            untouched_prefetch: m & (PREFETCHED | TOUCHED) == PREFETCHED,
        })
    }

    /// Whether the line containing `addr` is present and prefetched-untouched.
    pub fn is_untouched_prefetch(&self, addr: Addr) -> bool {
        self.find(addr)
            .map(|slot| self.meta[slot] & (PREFETCHED | TOUCHED) == PREFETCHED)
            .unwrap_or(false)
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|m| **m & VALID != 0).count()
    }

    /// Iterates over the line-aligned addresses of all valid lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| **m & VALID != 0)
            .map(move |(slot, _)| self.slot_address(slot))
    }

    /// Invalidates everything and clears replacement state.
    pub fn reset(&mut self) {
        for m in &mut self.meta {
            *m &= !FLAGS;
        }
        self.clock = 0;
        #[cfg(debug_assertions)]
        self.shadow.reset();
    }
}

/// Warm-loop fast-path accessors: the hierarchy caches the flat slot index
/// of the last warm data hit and re-validates it with a single compare
/// instead of re-running the set scan. See `MemorySystem::warm_inst`.
impl CacheArray {
    /// Approximate resident heap footprint in bytes: the three parallel
    /// slot arrays plus line payloads (inline header + `line_bytes` of
    /// data per slot).
    pub fn resident_bytes(&self) -> usize {
        let slots = self.tags.len();
        slots
            * (3 * std::mem::size_of::<u64>()
                + std::mem::size_of::<LineData>()
                + self.config.line_bytes as usize)
    }

    /// Like [`CacheArray::lookup`], but also returns the flat slot index
    /// for later [`CacheArray::warm_slot_hit`] re-validation.
    pub(crate) fn lookup_slot(&mut self, addr: Addr) -> Option<(HitInfo, usize)> {
        let slot = self.find(addr)?;
        Some((self.touch(slot), slot))
    }

    /// Whether `slot` still holds `addr`'s line with the TOUCHED bit set —
    /// the precondition under which a repeated demand lookup is a pure
    /// MRU re-assertion (no flag, stat, or victim-choice effect beyond
    /// re-stamping a line that is already the set's most recent) and may
    /// be skipped by the warm fast path.
    #[inline]
    pub(crate) fn warm_slot_hit(&self, slot: usize, addr: Addr) -> bool {
        let (set, tag) = self.index_of(addr);
        debug_assert!(slot < self.meta.len());
        let m = self.meta[slot];
        slot / self.ways == set
            && m & (VALID | TOUCHED) == (VALID | TOUCHED)
            && self.tags[slot] == tag
    }

    /// Demand-touch for a slot pre-validated by
    /// [`CacheArray::warm_slot_hit`]: performs exactly the state update a
    /// full [`CacheArray::lookup`] would (clock bump, LRU re-stamp,
    /// TOUCHED), minus the tag scan — the warm fast path stays
    /// byte-identical to the slow path it short-circuits.
    #[inline]
    pub(crate) fn warm_touch(&mut self, slot: usize, addr: Addr) -> HitInfo {
        debug_assert!(self.warm_slot_hit(slot, addr));
        let _ = addr;
        self.touch(slot)
    }

    /// Store-through for a slot pre-validated by
    /// [`CacheArray::warm_slot_hit`]: writes the word and sets DIRTY
    /// without re-running the tag scan.
    #[inline]
    pub(crate) fn warm_slot_store(&mut self, slot: usize, addr: Addr, value: u64) {
        debug_assert!(self.warm_slot_hit(slot, addr));
        let offset = (addr.offset_in_line(self.config.line_bytes) >> 3) as usize;
        self.data[slot].set_word(offset, value);
        self.meta[slot] |= DIRTY;
        #[cfg(debug_assertions)]
        self.shadow.set_dirty(slot);
    }
}

/// Debug-only reference implementation: the original per-way-struct array,
/// kept in lockstep with the packed columns. Every find, touch, fill and
/// victim choice is cross-checked against it (PR-6 shadow pattern), so any
/// packing bug trips a debug_assert instead of silently skewing results.
#[cfg(debug_assertions)]
mod shadow {
    use super::Victim;
    use microlib_model::{CacheConfig, Replacement};

    #[derive(Clone, Debug, Default)]
    struct Line {
        tag: u64,
        valid: bool,
        dirty: bool,
        prefetched: bool,
        touched: bool,
        lru: u64,
        fifo: u64,
    }

    #[derive(Clone, Debug)]
    pub(super) struct Shadow {
        lines: Vec<Line>,
        ways: usize,
    }

    impl Shadow {
        pub(super) fn new(sets: usize, ways: usize, _config: &CacheConfig) -> Self {
            Shadow {
                lines: (0..sets * ways).map(|_| Line::default()).collect(),
                ways,
            }
        }

        /// Reconstructs the shadow from decoded packed columns.
        pub(super) fn rebuild(&mut self, tags: &[u64], meta: &[u64], fifo: &[u64]) {
            for (slot, line) in self.lines.iter_mut().enumerate() {
                let m = meta[slot];
                *line = Line {
                    tag: tags[slot],
                    valid: m & super::VALID != 0,
                    dirty: m & super::DIRTY != 0,
                    prefetched: m & super::PREFETCHED != 0,
                    touched: m & super::TOUCHED != 0,
                    lru: m >> super::LRU_SHIFT,
                    fifo: fifo[slot],
                };
            }
        }

        pub(super) fn find(&self, set: usize, tag: u64) -> Option<usize> {
            let base = set * self.ways;
            self.lines[base..base + self.ways]
                .iter()
                .position(|w| w.valid && w.tag == tag)
        }

        pub(super) fn touch(&mut self, slot: usize, clock: u64, first_touch: bool) {
            let line = &mut self.lines[slot];
            assert!(line.valid, "shadow: demand touch on invalid slot");
            assert_eq!(
                line.prefetched && !line.touched,
                first_touch,
                "shadow: first-touch flag diverged"
            );
            line.lru = clock;
            line.touched = true;
        }

        pub(super) fn set_dirty(&mut self, slot: usize) {
            self.lines[slot].dirty = true;
        }

        /// Verifies the packed victim choice against the reference policy.
        /// Random replacement shares the RNG with the packed array, so the
        /// chosen way is taken as given there.
        pub(super) fn check_victim(&self, set: usize, way: usize, config: &CacheConfig) {
            let base = set * self.ways;
            let ways = &self.lines[base..base + self.ways];
            if let Some(invalid) = ways.iter().position(|w| !w.valid) {
                assert_eq!(way, invalid, "shadow: invalid-way choice diverged");
                return;
            }
            let expect = match config.replacement {
                Replacement::Lru => ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .unwrap_or(0),
                Replacement::Fifo => ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.fifo)
                    .map(|(i, _)| i)
                    .unwrap_or(0),
                Replacement::Random => way,
            };
            assert_eq!(way, expect, "shadow: victim choice diverged");
        }

        pub(super) fn fill(
            &mut self,
            slot: usize,
            tag: u64,
            dirty: bool,
            prefetched: bool,
            clock: u64,
            victim: Option<&Victim>,
        ) {
            let line = &mut self.lines[slot];
            assert_eq!(
                line.valid,
                victim.is_some(),
                "shadow: victim presence diverged"
            );
            if let Some(v) = victim {
                assert_eq!(line.dirty, v.dirty, "shadow: victim dirty diverged");
                assert_eq!(
                    line.prefetched && !line.touched,
                    v.untouched_prefetch,
                    "shadow: victim untouched-prefetch diverged"
                );
            }
            *line = Line {
                tag,
                valid: true,
                dirty,
                prefetched,
                touched: false,
                lru: clock,
                fifo: clock,
            };
        }

        pub(super) fn invalidate(&mut self, slot: usize) {
            self.lines[slot].valid = false;
        }

        pub(super) fn reset(&mut self) {
            for line in &mut self.lines {
                line.valid = false;
                line.dirty = false;
                line.prefetched = false;
                line.touched = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32) -> CacheArray {
        CacheArray::new(CacheConfig {
            name: "tiny".into(),
            size_bytes: 256,
            assoc,
            line_bytes: 32,
            ports: 1,
            mshr_entries: 1,
            mshr_reads_per_entry: 1,
            latency: 1,
            write_policy: microlib_model::WritePolicy::Writeback,
            alloc_policy: microlib_model::AllocPolicy::AllocateOnWrite,
            replacement: Replacement::Lru,
        })
        .unwrap()
    }

    #[test]
    fn index_round_trip() {
        let c = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
        for addr in [0u64, 0x1234, 0xFFFF_FFC0, 0xABCD_EF00] {
            let a = Addr::new(addr);
            let (set, tag) = c.index_of(a);
            assert_eq!(c.address_of(set, tag), a.line(32));
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny(2);
        let a = Addr::new(0x40);
        assert!(c.lookup(a).is_none());
        assert!(c.fill(a, LineData::zeroed(4), false, false).is_none());
        assert!(c.lookup(a).is_some());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2); // 4 sets × 2 ways, 32B lines
                             // Three lines mapping to set 0: addresses 0, 128, 256 (set = (a>>5)&3).
        let (a, b, d) = (Addr::new(0), Addr::new(128), Addr::new(256));
        c.fill(a, LineData::zeroed(4), false, false);
        c.fill(b, LineData::zeroed(4), false, false);
        c.lookup(a); // a most recent; b is LRU
        let victim = c.fill(d, LineData::zeroed(4), false, false).unwrap();
        assert_eq!(victim.line, b);
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn fifo_ignores_recency() {
        let c = tiny(2);
        let mut cfg = c.config().clone();
        cfg.replacement = Replacement::Fifo;
        let mut c2 = CacheArray::new(cfg).unwrap();
        let (a, b, d) = (Addr::new(0), Addr::new(128), Addr::new(256));
        for x in [a, b] {
            c2.fill(x, LineData::zeroed(4), false, false);
        }
        c2.lookup(a); // recency must not matter
        let victim = c2.fill(d, LineData::zeroed(4), false, false).unwrap();
        assert_eq!(victim.line, a);
        drop(c);
    }

    #[test]
    fn dirty_data_travels_with_victim() {
        let mut c = tiny(1); // direct-mapped: 8 sets
        let a = Addr::new(0x40);
        c.fill(a, LineData::from_words(&[1, 2, 3, 4]), false, false);
        assert!(c.write_word(Addr::new(0x48), 99));
        let conflicting = Addr::new(0x40 + 256); // same set
        let victim = c
            .fill(conflicting, LineData::zeroed(4), false, false)
            .unwrap();
        assert!(victim.dirty);
        assert_eq!(victim.data.word(1), 99);
        assert_eq!(victim.line, a);
    }

    #[test]
    fn prefetch_touch_tracking() {
        let mut c = tiny(2);
        let a = Addr::new(0x40);
        c.fill(a, LineData::zeroed(4), false, true);
        assert!(c.is_untouched_prefetch(a));
        let hit = c.lookup(a).unwrap();
        assert!(hit.first_touch_of_prefetch);
        assert!(!c.is_untouched_prefetch(a));
        let hit2 = c.lookup(a).unwrap();
        assert!(!hit2.first_touch_of_prefetch);
    }

    #[test]
    fn invalidate_returns_victim() {
        let mut c = tiny(2);
        let a = Addr::new(0x60); // unaligned within line
        c.fill(a, LineData::zeroed(4), true, false);
        let v = c.invalidate(Addr::new(0x64)).unwrap();
        assert_eq!(v.line, Addr::new(0x60));
        assert!(v.dirty);
        assert!(!c.contains(a));
        assert!(c.invalidate(a).is_none());
    }

    #[test]
    fn word_read_write() {
        let mut c = tiny(2);
        let base = Addr::new(0x80);
        c.fill(base, LineData::from_words(&[10, 11, 12, 13]), false, false);
        assert_eq!(c.read_word(Addr::new(0x88)), Some(11));
        assert!(c.write_word(Addr::new(0x90), 77));
        assert_eq!(c.read_word(Addr::new(0x90)), Some(77));
        assert_eq!(c.read_word(Addr::new(0x200)), None);
        assert!(!c.write_word(Addr::new(0x200), 1));
    }

    #[test]
    fn resident_lines_enumerates() {
        let mut c = tiny(2);
        c.fill(Addr::new(0x40), LineData::zeroed(4), false, false);
        c.fill(Addr::new(0x80), LineData::zeroed(4), false, false);
        let mut lines: Vec<u64> = c.resident_lines().map(Addr::raw).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0x40, 0x80]);
    }

    #[test]
    fn random_replacement_stays_in_set() {
        let mut cfg = CacheConfig::baseline_l1d();
        cfg.assoc = 4;
        cfg.replacement = Replacement::Random;
        cfg.size_bytes = 512; // 4 sets × 4 ways
        let mut c = CacheArray::new(cfg).unwrap();
        // Fill set 0 beyond capacity; all fills map to set 0.
        for i in 0..16u64 {
            c.fill(Addr::new(i * 128), LineData::zeroed(4), false, false);
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn packed_meta_round_trips_through_codec() {
        let mut c = tiny(2);
        c.fill(
            Addr::new(0x40),
            LineData::from_words(&[7, 8, 9, 10]),
            false,
            true,
        );
        c.fill(Addr::new(0x80), LineData::zeroed(4), true, false);
        c.lookup(Addr::new(0x40)); // touch the prefetched line
        let mut e = Encoder::new();
        c.encode_state(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let restored = CacheArray::decode_state(c.config().clone(), &mut d).unwrap();
        // Restored array must re-encode to the same bytes (canonical codec)
        // and agree on every behavioral probe.
        let mut e2 = Encoder::new();
        restored.encode_state(&mut e2);
        assert_eq!(bytes, e2.into_bytes());
        assert!(!restored.is_untouched_prefetch(Addr::new(0x40)));
        assert_eq!(restored.read_word(Addr::new(0x48)), Some(8));
        assert_eq!(restored.occupancy(), 2);
    }

    #[test]
    fn warm_slot_hit_revalidates() {
        let mut c = tiny(2);
        let a = Addr::new(0x40);
        c.fill(a, LineData::zeroed(4), false, false);
        let (_, slot) = c.lookup_slot(a).unwrap();
        assert!(c.warm_slot_hit(slot, a));
        assert!(c.warm_slot_hit(slot, Addr::new(0x48))); // same line
        assert!(!c.warm_slot_hit(slot, Addr::new(0x140))); // other line, same set
        c.invalidate(a);
        assert!(!c.warm_slot_hit(slot, a));
        // An untouched fill must not satisfy the fast-path precondition.
        c.fill(a, LineData::zeroed(4), false, false);
        let slot2 = (0..2).find(|_| true).unwrap(); // way index unknown; probe both
        let _ = slot2;
        assert!(!(0..c.meta.len()).any(|s| c.warm_slot_hit(s, a)));
    }
}
