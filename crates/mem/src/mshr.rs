//! Miss status holding registers (the "miss address file").
//!
//! SimpleScalar's MSHR "has unlimited capacity" (paper §2.2); MicroLib's is
//! finite — 8 entries × 4 reads in the baseline — and that difference alone
//! visibly changes mechanism rankings (Fig 9). This implementation supports
//! both modes: construct with [`MshrFile::new`] for the finite file or
//! [`MshrFile::unlimited`] for the SimpleScalar-like one.
//!
//! # Data layout
//!
//! The file is a fixed-slot arena: parallel columns (`slot_line`,
//! `slot_flags`, target-chain head/tail/len) indexed by slot id, a free-slot
//! stack, and one shared arena of target nodes chained through intrusive
//! `next` indices — allocating an entry or merging a target never touches
//! the heap once the arena has warmed. Line→slot lookup goes through a
//! small open-addressed (linear probing, Fibonacci-hashed) index with
//! backward-shift deletion, the same scheme as the core's `StoreIndex`, so
//! `contains`/merge checks stay O(1) even for the unlimited SimpleScalar
//! file. Completion drains the target chain into a caller-provided scratch
//! buffer ([`MshrFile::complete_into`]) so the hierarchy's fill path does
//! not allocate per miss.
//!
//! Debug builds retain the original `Vec<MshrEntry>` implementation as a
//! shadow and cross-check every insert outcome and completion against it.

use crate::ReqId;
use microlib_model::{Addr, Cycle};

/// Sentinel for "no node / empty index slot".
const NONE: u32 = u32::MAX;

/// `slot_flags` bits.
const LIVE: u8 = 1 << 0;
const PREFETCH: u8 = 1 << 1;
const TO_BUFFER: u8 = 1 << 2;

/// One consumer waiting on an in-flight line fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MshrTarget {
    /// The CPU-visible request to complete, if this is a demand access
    /// (`None` for prefetch-originated entries).
    pub req: Option<ReqId>,
    /// Full byte address of the access.
    pub addr: Addr,
    /// Whether the access is a store (its data merges into the fill).
    pub is_store: bool,
    /// Store value (ignored for loads).
    pub value: u64,
}

/// One in-flight miss, as returned by the allocating
/// [`MshrFile::complete`] convenience API (tests and the L1I path).
/// The hot L1D/L2 fill paths use [`MshrFile::complete_into`] instead.
#[derive(Clone, Debug)]
pub struct MshrEntry {
    /// Line-aligned miss address.
    pub line: Addr,
    /// Demand/prefetch consumers merged into this miss.
    pub targets: Vec<MshrTarget>,
    /// Whether the entry was allocated by a prefetch (and no demand has
    /// merged into it yet).
    pub is_prefetch: bool,
    /// Whether the fill should bypass the cache array and go to the
    /// mechanism's buffer.
    pub to_buffer: bool,
}

/// Allocation-free completion header: the per-entry state of a completed
/// miss, with the targets drained separately into the caller's scratch.
#[derive(Clone, Copy, Debug)]
pub struct MshrCompletion {
    /// Line-aligned miss address.
    pub line: Addr,
    /// Whether the entry was (still) a pure prefetch.
    pub is_prefetch: bool,
    /// Whether the fill should bypass the cache array.
    pub to_buffer: bool,
}

/// Outcome of [`MshrFile::try_insert`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must send the miss downstream.
    Allocated,
    /// The access merged into an existing in-flight miss; nothing to send.
    Merged,
    /// The file is full (no free entry for a new line).
    FullStall,
    /// An entry for the line exists but its target slots are exhausted —
    /// the paper's "two misses on the same cache line … can stall the
    /// cache".
    TargetStall,
    /// The file is busy this cycle (an allocation happened last cycle —
    /// "upon receiving a request the MSHR is not available for one cycle").
    BusyStall,
}

impl MshrOutcome {
    /// Whether the access was accepted (allocated or merged).
    pub fn accepted(self) -> bool {
        matches!(self, MshrOutcome::Allocated | MshrOutcome::Merged)
    }
}

/// Occupancy counters for an [`MshrFile`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MshrStats {
    /// Entries allocated.
    pub allocations: u64,
    /// Accesses merged into existing entries.
    pub merges: u64,
    /// Stalls because the file was full.
    pub full_stalls: u64,
    /// Stalls because an entry's target slots were exhausted.
    pub target_stalls: u64,
    /// Stalls because the file was busy after an allocation.
    pub busy_stalls: u64,
    /// Peak simultaneous occupancy.
    pub peak_occupancy: u64,
}

/// A waiting consumer in the shared target arena, chained per entry.
#[derive(Clone, Copy, Debug)]
struct TargetNode {
    target: MshrTarget,
    next: u32,
}

/// One open-addressed index cell mapping a line address to its slot.
#[derive(Clone, Copy, Debug)]
struct IndexCell {
    line: u64,
    slot: u32,
}

/// The miss address file.
///
/// # Examples
///
/// ```
/// use microlib_mem::{MshrFile, MshrOutcome, MshrTarget};
/// use microlib_model::{Addr, Cycle};
///
/// let mut mshr = MshrFile::new(2, 2);
/// let t = |a| MshrTarget { req: None, addr: Addr::new(a), is_store: false, value: 0 };
/// let now = Cycle::new(10);
/// assert_eq!(mshr.try_insert(Addr::new(0x100), t(0x104), false, false, now), MshrOutcome::Allocated);
/// // Next cycle: a second access to the same line merges.
/// let now = Cycle::new(11);
/// assert_eq!(mshr.try_insert(Addr::new(0x100), t(0x108), false, false, now), MshrOutcome::Merged);
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    /// Line-aligned miss address per slot (meaningful while LIVE).
    slot_line: Vec<u64>,
    /// LIVE / PREFETCH / TO_BUFFER bits per slot.
    slot_flags: Vec<u8>,
    /// Head/tail of the slot's target chain in `nodes`.
    slot_head: Vec<u32>,
    slot_tail: Vec<u32>,
    /// Number of chained targets (checked against `targets_per_entry`).
    slot_len: Vec<u32>,
    /// Stack of dead slot ids available for allocation.
    free_slots: Vec<u32>,
    /// Live-slot count (== `len()`).
    live: usize,
    /// Shared target-node arena; dead nodes chain through `free_node`.
    nodes: Vec<TargetNode>,
    free_node: u32,
    /// Open-addressed line→slot index (power-of-two, `slot == NONE` empty).
    index: Vec<IndexCell>,
    index_mask: usize,
    /// `64 - log2(index.len())` for the Fibonacci hash.
    index_shift: u32,
    capacity: Option<usize>,
    targets_per_entry: usize,
    busy_after: Option<Cycle>,
    model_busy_cycle: bool,
    stats: MshrStats,
    #[cfg(debug_assertions)]
    shadow: shadow::Shadow,
}

impl MshrFile {
    /// Creates a finite MSHR file with `entries` entries of
    /// `targets_per_entry` mergeable reads each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(entries: u32, targets_per_entry: u32) -> Self {
        assert!(
            entries > 0 && targets_per_entry > 0,
            "MSHR geometry must be positive"
        );
        let cap = entries as usize;
        // Load factor never exceeds 1/2 → probes stay short, table never fills.
        let table = (cap * 2).next_power_of_two().max(8);
        MshrFile {
            slot_line: vec![0; cap],
            slot_flags: vec![0; cap],
            slot_head: vec![NONE; cap],
            slot_tail: vec![NONE; cap],
            slot_len: vec![0; cap],
            free_slots: (0..cap as u32).rev().collect(),
            live: 0,
            nodes: Vec::with_capacity(cap * (targets_per_entry as usize).min(8)),
            free_node: NONE,
            index: vec![
                IndexCell {
                    line: 0,
                    slot: NONE
                };
                table
            ],
            index_mask: table - 1,
            index_shift: 64 - table.trailing_zeros(),
            capacity: Some(cap),
            targets_per_entry: targets_per_entry as usize,
            busy_after: None,
            model_busy_cycle: true,
            stats: MshrStats::default(),
            #[cfg(debug_assertions)]
            shadow: shadow::Shadow::new(Some(cap), targets_per_entry as usize, true),
        }
    }

    /// Creates a SimpleScalar-like unlimited file: never full, unlimited
    /// merges, never busy. Slots and index grow on demand.
    pub fn unlimited() -> Self {
        let table = 16usize;
        MshrFile {
            slot_line: Vec::new(),
            slot_flags: Vec::new(),
            slot_head: Vec::new(),
            slot_tail: Vec::new(),
            slot_len: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            nodes: Vec::new(),
            free_node: NONE,
            index: vec![
                IndexCell {
                    line: 0,
                    slot: NONE
                };
                table
            ],
            index_mask: table - 1,
            index_shift: 64 - table.trailing_zeros(),
            capacity: None,
            targets_per_entry: usize::MAX,
            busy_after: None,
            model_busy_cycle: false,
            stats: MshrStats::default(),
            #[cfg(debug_assertions)]
            shadow: shadow::Shadow::new(None, usize::MAX, false),
        }
    }

    /// Enables/disables the one-cycle busy window after an allocation
    /// (a [`FidelityConfig::pipeline_stalls`] toggle).
    ///
    /// [`FidelityConfig::pipeline_stalls`]: microlib_model::FidelityConfig::pipeline_stalls
    pub fn set_model_busy_cycle(&mut self, on: bool) {
        self.model_busy_cycle = on;
        #[cfg(debug_assertions)]
        self.shadow.set_model_busy_cycle(on);
    }

    /// Number of in-flight entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no miss is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether a new allocation would fail for capacity reasons.
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.live >= c)
    }

    #[inline]
    fn index_home(&self, line: u64) -> usize {
        (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.index_shift) as usize
    }

    /// Probes the index for `line`, returning its slot id.
    #[inline]
    fn index_find(&self, line: u64) -> Option<u32> {
        let mut i = self.index_home(line);
        loop {
            let cell = self.index[i];
            if cell.slot == NONE {
                return None;
            }
            if cell.line == line {
                return Some(cell.slot);
            }
            i = (i + 1) & self.index_mask;
        }
    }

    fn index_insert(&mut self, line: u64, slot: u32) {
        // Unlimited files grow the table to keep the load factor under 1/2;
        // finite files are sized for worst-case occupancy up front.
        if (self.live + 1) * 2 > self.index.len() {
            self.grow_index();
        }
        let mut i = self.index_home(line);
        while self.index[i].slot != NONE {
            debug_assert_ne!(self.index[i].line, line, "duplicate MSHR index entry");
            i = (i + 1) & self.index_mask;
        }
        self.index[i] = IndexCell { line, slot };
    }

    fn grow_index(&mut self) {
        let table = self.index.len() * 2;
        self.index = vec![
            IndexCell {
                line: 0,
                slot: NONE
            };
            table
        ];
        self.index_mask = table - 1;
        self.index_shift = 64 - table.trailing_zeros();
        for slot in 0..self.slot_line.len() {
            if self.slot_flags[slot] & LIVE != 0 {
                let line = self.slot_line[slot];
                let mut i = self.index_home(line);
                while self.index[i].slot != NONE {
                    i = (i + 1) & self.index_mask;
                }
                self.index[i] = IndexCell {
                    line,
                    slot: slot as u32,
                };
            }
        }
    }

    /// Backward-shift deletion: close the probe gap left by removing
    /// `line`'s cell so every remaining cell stays reachable from its home
    /// slot without tombstones (same scheme as the core's `StoreIndex`).
    fn index_remove(&mut self, line: u64) {
        let mut i = self.index_home(line);
        loop {
            let cell = self.index[i];
            debug_assert_ne!(cell.slot, NONE, "removing unindexed MSHR line");
            if cell.line == line {
                break;
            }
            i = (i + 1) & self.index_mask;
        }
        loop {
            self.index[i].slot = NONE;
            let mut j = i;
            loop {
                j = (j + 1) & self.index_mask;
                if self.index[j].slot == NONE {
                    return;
                }
                let k = self.index_home(self.index[j].line);
                let passes_through_hole = if i <= j {
                    k <= i || k > j
                } else {
                    k <= i && k > j
                };
                if passes_through_hole {
                    self.index[i] = self.index[j];
                    i = j;
                    break;
                }
            }
        }
    }

    fn alloc_node(&mut self, target: MshrTarget) -> u32 {
        if self.free_node != NONE {
            let n = self.free_node;
            self.free_node = self.nodes[n as usize].next;
            self.nodes[n as usize] = TargetNode { target, next: NONE };
            n
        } else {
            self.nodes.push(TargetNode { target, next: NONE });
            (self.nodes.len() - 1) as u32
        }
    }

    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free_slots.pop() {
            slot
        } else {
            // Unlimited mode only: the finite file pre-allocates its slots.
            debug_assert!(self.capacity.is_none());
            self.slot_line.push(0);
            self.slot_flags.push(0);
            self.slot_head.push(NONE);
            self.slot_tail.push(NONE);
            self.slot_len.push(0);
            (self.slot_line.len() - 1) as u32
        }
    }

    /// Whether an entry for `line` is in flight.
    pub fn contains(&self, line: Addr) -> bool {
        let found = self.index_find(line.raw()).is_some();
        #[cfg(debug_assertions)]
        debug_assert_eq!(found, self.shadow.contains(line), "MSHR contains diverged");
        found
    }

    /// Whether the in-flight entry for `line` (if any) is a pure prefetch.
    pub fn is_prefetch_inflight(&self, line: Addr) -> bool {
        let found = self
            .index_find(line.raw())
            .is_some_and(|slot| self.slot_flags[slot as usize] & PREFETCH != 0);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            found,
            self.shadow.is_prefetch_inflight(line),
            "MSHR prefetch-inflight diverged"
        );
        found
    }

    /// Attempts to record a miss on `line` with consumer `target`.
    ///
    /// `as_prefetch` marks prefetch-originated allocations; `to_buffer`
    /// routes the eventual fill to the mechanism's buffer instead of the
    /// cache array. Demand accesses merging into a prefetch entry promote
    /// it to demand (the prefetch became useful-but-late).
    pub fn try_insert(
        &mut self,
        line: Addr,
        target: MshrTarget,
        as_prefetch: bool,
        to_buffer: bool,
        now: Cycle,
    ) -> MshrOutcome {
        let outcome = self.try_insert_arena(line, target, as_prefetch, to_buffer, now);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            outcome,
            self.shadow
                .try_insert(line, target, as_prefetch, to_buffer, now),
            "MSHR insert outcome diverged from shadow"
        );
        outcome
    }

    fn try_insert_arena(
        &mut self,
        line: Addr,
        target: MshrTarget,
        as_prefetch: bool,
        to_buffer: bool,
        now: Cycle,
    ) -> MshrOutcome {
        if self.model_busy_cycle {
            if let Some(busy) = self.busy_after {
                if now <= busy {
                    self.stats.busy_stalls += 1;
                    return MshrOutcome::BusyStall;
                }
            }
        }
        if let Some(slot) = self.index_find(line.raw()) {
            let slot = slot as usize;
            if self.slot_len[slot] as usize >= self.targets_per_entry {
                self.stats.target_stalls += 1;
                return MshrOutcome::TargetStall;
            }
            let node = self.alloc_node(target);
            let tail = self.slot_tail[slot];
            debug_assert_ne!(tail, NONE, "live MSHR slot with empty target chain");
            self.nodes[tail as usize].next = node;
            self.slot_tail[slot] = node;
            self.slot_len[slot] += 1;
            if !as_prefetch {
                self.slot_flags[slot] &= !(PREFETCH | TO_BUFFER);
            }
            self.stats.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.is_full() {
            self.stats.full_stalls += 1;
            return MshrOutcome::FullStall;
        }
        let node = self.alloc_node(target);
        let slot = self.alloc_slot() as usize;
        // Index before setting LIVE: a growth-triggered rehash walks the
        // LIVE slots, and the new slot must not be re-inserted by it.
        self.index_insert(line.raw(), slot as u32);
        self.slot_line[slot] = line.raw();
        self.slot_flags[slot] =
            LIVE | if as_prefetch { PREFETCH } else { 0 } | if to_buffer { TO_BUFFER } else { 0 };
        self.slot_head[slot] = node;
        self.slot_tail[slot] = node;
        self.slot_len[slot] = 1;
        self.live += 1;
        self.stats.allocations += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.live as u64);
        if self.model_busy_cycle {
            self.busy_after = Some(now);
        }
        MshrOutcome::Allocated
    }

    /// Completes the in-flight miss on `line`, draining its merged targets
    /// (in arrival order) into `targets` — the buffer is cleared first —
    /// and returning the entry header. Nothing is allocated: the slot and
    /// its target nodes return to the free lists.
    pub fn complete_into(
        &mut self,
        line: Addr,
        targets: &mut Vec<MshrTarget>,
    ) -> Option<MshrCompletion> {
        targets.clear();
        let slot = self.index_find(line.raw())? as usize;
        let flags = self.slot_flags[slot];
        let mut node = self.slot_head[slot];
        while node != NONE {
            let n = self.nodes[node as usize];
            targets.push(n.target);
            // Thread the node onto the free list as we walk.
            self.nodes[node as usize].next = self.free_node;
            self.free_node = node;
            node = n.next;
        }
        self.slot_flags[slot] = 0;
        self.slot_head[slot] = NONE;
        self.slot_tail[slot] = NONE;
        self.slot_len[slot] = 0;
        self.free_slots.push(slot as u32);
        self.index_remove(line.raw());
        self.live -= 1;
        let completion = MshrCompletion {
            line,
            is_prefetch: flags & PREFETCH != 0,
            to_buffer: flags & TO_BUFFER != 0,
        };
        #[cfg(debug_assertions)]
        {
            let reference = self.shadow.complete(line).expect("shadow entry missing");
            debug_assert_eq!(reference.line, completion.line);
            debug_assert_eq!(reference.is_prefetch, completion.is_prefetch);
            debug_assert_eq!(reference.to_buffer, completion.to_buffer);
            debug_assert_eq!(
                reference.targets, *targets,
                "MSHR completion targets diverged from shadow"
            );
        }
        Some(completion)
    }

    /// Completes the in-flight miss on `line`, removing and returning its
    /// entry (with all merged targets). Allocating convenience wrapper
    /// around [`MshrFile::complete_into`].
    pub fn complete(&mut self, line: Addr) -> Option<MshrEntry> {
        let mut targets = Vec::new();
        let completion = self.complete_into(line, &mut targets)?;
        Some(MshrEntry {
            line: completion.line,
            targets,
            is_prefetch: completion.is_prefetch,
            to_buffer: completion.to_buffer,
        })
    }

    /// Occupancy counters.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Clears all in-flight state and counters.
    pub fn reset(&mut self) {
        for flags in &mut self.slot_flags {
            *flags = 0;
        }
        for head in &mut self.slot_head {
            *head = NONE;
        }
        for tail in &mut self.slot_tail {
            *tail = NONE;
        }
        for len in &mut self.slot_len {
            *len = 0;
        }
        self.free_slots.clear();
        self.free_slots
            .extend((0..self.slot_line.len() as u32).rev());
        self.live = 0;
        self.nodes.clear();
        self.free_node = NONE;
        for cell in &mut self.index {
            cell.slot = NONE;
        }
        self.busy_after = None;
        self.stats = MshrStats::default();
        #[cfg(debug_assertions)]
        self.shadow.reset();
    }
}

/// Debug-only reference implementation: the original `Vec<MshrEntry>`
/// file, kept in lockstep and cross-checked on every insert/completion
/// (PR-6 shadow pattern).
#[cfg(debug_assertions)]
mod shadow {
    use super::{MshrEntry, MshrOutcome, MshrTarget};
    use microlib_model::{Addr, Cycle};

    #[derive(Clone, Debug)]
    pub(super) struct Shadow {
        entries: Vec<MshrEntry>,
        capacity: Option<usize>,
        targets_per_entry: usize,
        busy_after: Option<Cycle>,
        model_busy_cycle: bool,
    }

    impl Shadow {
        pub(super) fn new(
            capacity: Option<usize>,
            targets_per_entry: usize,
            model_busy_cycle: bool,
        ) -> Self {
            Shadow {
                entries: Vec::new(),
                capacity,
                targets_per_entry,
                busy_after: None,
                model_busy_cycle,
            }
        }

        pub(super) fn set_model_busy_cycle(&mut self, on: bool) {
            self.model_busy_cycle = on;
        }

        pub(super) fn contains(&self, line: Addr) -> bool {
            self.entries.iter().any(|e| e.line == line)
        }

        pub(super) fn is_prefetch_inflight(&self, line: Addr) -> bool {
            self.entries.iter().any(|e| e.line == line && e.is_prefetch)
        }

        pub(super) fn try_insert(
            &mut self,
            line: Addr,
            target: MshrTarget,
            as_prefetch: bool,
            to_buffer: bool,
            now: Cycle,
        ) -> MshrOutcome {
            if self.model_busy_cycle {
                if let Some(busy) = self.busy_after {
                    if now <= busy {
                        return MshrOutcome::BusyStall;
                    }
                }
            }
            if let Some(entry) = self.entries.iter_mut().find(|e| e.line == line) {
                if entry.targets.len() >= self.targets_per_entry {
                    return MshrOutcome::TargetStall;
                }
                entry.targets.push(target);
                if !as_prefetch {
                    entry.is_prefetch = false;
                    entry.to_buffer = false;
                }
                return MshrOutcome::Merged;
            }
            if self.capacity.is_some_and(|c| self.entries.len() >= c) {
                return MshrOutcome::FullStall;
            }
            self.entries.push(MshrEntry {
                line,
                targets: vec![target],
                is_prefetch: as_prefetch,
                to_buffer,
            });
            if self.model_busy_cycle {
                self.busy_after = Some(now);
            }
            MshrOutcome::Allocated
        }

        pub(super) fn complete(&mut self, line: Addr) -> Option<MshrEntry> {
            let idx = self.entries.iter().position(|e| e.line == line)?;
            Some(self.entries.swap_remove(idx))
        }

        pub(super) fn reset(&mut self) {
            self.entries.clear();
            self.busy_after = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(addr: u64) -> MshrTarget {
        MshrTarget {
            req: Some(ReqId::new(addr)),
            addr: Addr::new(addr),
            is_store: false,
            value: 0,
        }
    }

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(8, 4);
        assert_eq!(
            m.try_insert(Addr::new(0x100), t(0x100), false, false, Cycle::new(0)),
            MshrOutcome::Allocated
        );
        assert_eq!(
            m.try_insert(Addr::new(0x100), t(0x108), false, false, Cycle::new(2)),
            MshrOutcome::Merged
        );
        assert_eq!(m.len(), 1);
        let entry = m.complete(Addr::new(0x100)).unwrap();
        assert_eq!(entry.targets.len(), 2);
        assert!(m.is_empty());
        assert!(m.complete(Addr::new(0x100)).is_none());
    }

    #[test]
    fn busy_cycle_after_allocation() {
        let mut m = MshrFile::new(8, 4);
        let now = Cycle::new(5);
        assert!(m
            .try_insert(Addr::new(0x100), t(0x100), false, false, now)
            .accepted());
        // Same cycle: busy.
        assert_eq!(
            m.try_insert(Addr::new(0x200), t(0x200), false, false, now),
            MshrOutcome::BusyStall
        );
        // Next cycle: fine.
        assert_eq!(
            m.try_insert(Addr::new(0x200), t(0x200), false, false, Cycle::new(6)),
            MshrOutcome::Allocated
        );
    }

    #[test]
    fn target_slots_exhaust() {
        let mut m = MshrFile::new(8, 2);
        m.set_model_busy_cycle(false);
        let line = Addr::new(0x300);
        assert!(m
            .try_insert(line, t(0x300), false, false, Cycle::new(0))
            .accepted());
        assert!(m
            .try_insert(line, t(0x308), false, false, Cycle::new(1))
            .accepted());
        assert_eq!(
            m.try_insert(line, t(0x310), false, false, Cycle::new(2)),
            MshrOutcome::TargetStall
        );
        assert_eq!(m.stats().target_stalls, 1);
    }

    #[test]
    fn capacity_exhausts() {
        let mut m = MshrFile::new(2, 4);
        m.set_model_busy_cycle(false);
        assert!(m
            .try_insert(Addr::new(0x000), t(0), false, false, Cycle::new(0))
            .accepted());
        assert!(m
            .try_insert(Addr::new(0x100), t(0x100), false, false, Cycle::new(1))
            .accepted());
        assert_eq!(
            m.try_insert(Addr::new(0x200), t(0x200), false, false, Cycle::new(2)),
            MshrOutcome::FullStall
        );
        assert!(m.is_full());
        assert_eq!(m.stats().full_stalls, 1);
        assert_eq!(m.stats().peak_occupancy, 2);
    }

    #[test]
    fn unlimited_never_stalls() {
        let mut m = MshrFile::unlimited();
        for i in 0..100u64 {
            assert!(m
                .try_insert(Addr::new(i * 64), t(i * 64), false, false, Cycle::new(0))
                .accepted());
        }
        assert!(!m.is_full());
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn demand_promotes_prefetch_entry() {
        let mut m = MshrFile::new(4, 4);
        m.set_model_busy_cycle(false);
        let line = Addr::new(0x400);
        let pf = MshrTarget {
            req: None,
            addr: line,
            is_store: false,
            value: 0,
        };
        assert!(m.try_insert(line, pf, true, true, Cycle::new(0)).accepted());
        assert!(m.is_prefetch_inflight(line));
        assert!(m
            .try_insert(line, t(0x404), false, false, Cycle::new(1))
            .accepted());
        assert!(!m.is_prefetch_inflight(line));
        let entry = m.complete(line).unwrap();
        assert!(!entry.is_prefetch);
        assert!(!entry.to_buffer, "demand merge redirects fill to the cache");
    }

    /// Hammers slot/node recycling and the open-addressed index: repeated
    /// allocate/merge/complete cycles over colliding lines must preserve
    /// target order and leak no arena storage.
    #[test]
    fn arena_recycles_slots_and_nodes() {
        let mut m = MshrFile::new(4, 4);
        m.set_model_busy_cycle(false);
        for round in 0..50u64 {
            let lines: Vec<Addr> = (0..4).map(|i| Addr::new((round * 4 + i) * 0x40)).collect();
            for (i, line) in lines.iter().enumerate() {
                assert!(m
                    .try_insert(*line, t(line.raw()), false, false, Cycle::new(i as u64))
                    .accepted());
                assert!(m
                    .try_insert(*line, t(line.raw() + 8), false, false, Cycle::new(i as u64))
                    .accepted());
            }
            assert!(m.is_full());
            // Complete out of allocation order to exercise backward-shift
            // deletion in the index.
            let mut scratch = Vec::new();
            for line in lines.iter().rev() {
                let c = m.complete_into(*line, &mut scratch).unwrap();
                assert_eq!(c.line, *line);
                assert_eq!(scratch.len(), 2);
                assert_eq!(scratch[0].addr, *line, "arrival order preserved");
                assert_eq!(scratch[1].addr.raw(), line.raw() + 8);
            }
            assert!(m.is_empty());
        }
        // Node arena stabilized at one round's worth of nodes.
        assert!(m.nodes.len() <= 8, "node arena grew: {}", m.nodes.len());
        assert_eq!(m.stats().allocations, 200);
        assert_eq!(m.stats().merges, 200);
    }

    #[test]
    fn unlimited_grows_index_without_losing_entries() {
        let mut m = MshrFile::unlimited();
        let mut scratch = Vec::new();
        for i in 0..64u64 {
            assert!(m
                .try_insert(Addr::new(i * 64), t(i * 64), false, false, Cycle::new(0))
                .accepted());
        }
        for i in (0..64u64).step_by(2) {
            assert!(m.complete_into(Addr::new(i * 64), &mut scratch).is_some());
        }
        for i in (1..64u64).step_by(2) {
            assert!(m.contains(Addr::new(i * 64)));
        }
        assert_eq!(m.len(), 32);
    }
}
