//! Miss status holding registers (the "miss address file").
//!
//! SimpleScalar's MSHR "has unlimited capacity" (paper §2.2); MicroLib's is
//! finite — 8 entries × 4 reads in the baseline — and that difference alone
//! visibly changes mechanism rankings (Fig 9). This implementation supports
//! both modes: construct with [`MshrFile::new`] for the finite file or
//! [`MshrFile::unlimited`] for the SimpleScalar-like one.

use crate::ReqId;
use microlib_model::{Addr, Cycle};

/// One consumer waiting on an in-flight line fill.
#[derive(Clone, Copy, Debug)]
pub struct MshrTarget {
    /// The CPU-visible request to complete, if this is a demand access
    /// (`None` for prefetch-originated entries).
    pub req: Option<ReqId>,
    /// Full byte address of the access.
    pub addr: Addr,
    /// Whether the access is a store (its data merges into the fill).
    pub is_store: bool,
    /// Store value (ignored for loads).
    pub value: u64,
}

/// One in-flight miss.
#[derive(Clone, Debug)]
pub struct MshrEntry {
    /// Line-aligned miss address.
    pub line: Addr,
    /// Demand/prefetch consumers merged into this miss.
    pub targets: Vec<MshrTarget>,
    /// Whether the entry was allocated by a prefetch (and no demand has
    /// merged into it yet).
    pub is_prefetch: bool,
    /// Whether the fill should bypass the cache array and go to the
    /// mechanism's buffer.
    pub to_buffer: bool,
}

/// Outcome of [`MshrFile::try_insert`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must send the miss downstream.
    Allocated,
    /// The access merged into an existing in-flight miss; nothing to send.
    Merged,
    /// The file is full (no free entry for a new line).
    FullStall,
    /// An entry for the line exists but its target slots are exhausted —
    /// the paper's "two misses on the same cache line … can stall the
    /// cache".
    TargetStall,
    /// The file is busy this cycle (an allocation happened last cycle —
    /// "upon receiving a request the MSHR is not available for one cycle").
    BusyStall,
}

impl MshrOutcome {
    /// Whether the access was accepted (allocated or merged).
    pub fn accepted(self) -> bool {
        matches!(self, MshrOutcome::Allocated | MshrOutcome::Merged)
    }
}

/// Occupancy counters for an [`MshrFile`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MshrStats {
    /// Entries allocated.
    pub allocations: u64,
    /// Accesses merged into existing entries.
    pub merges: u64,
    /// Stalls because the file was full.
    pub full_stalls: u64,
    /// Stalls because an entry's target slots were exhausted.
    pub target_stalls: u64,
    /// Stalls because the file was busy after an allocation.
    pub busy_stalls: u64,
    /// Peak simultaneous occupancy.
    pub peak_occupancy: u64,
}

/// The miss address file.
///
/// # Examples
///
/// ```
/// use microlib_mem::{MshrFile, MshrOutcome, MshrTarget};
/// use microlib_model::{Addr, Cycle};
///
/// let mut mshr = MshrFile::new(2, 2);
/// let t = |a| MshrTarget { req: None, addr: Addr::new(a), is_store: false, value: 0 };
/// let now = Cycle::new(10);
/// assert_eq!(mshr.try_insert(Addr::new(0x100), t(0x104), false, false, now), MshrOutcome::Allocated);
/// // Next cycle: a second access to the same line merges.
/// let now = Cycle::new(11);
/// assert_eq!(mshr.try_insert(Addr::new(0x100), t(0x108), false, false, now), MshrOutcome::Merged);
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: Option<usize>,
    targets_per_entry: usize,
    busy_after: Option<Cycle>,
    model_busy_cycle: bool,
    stats: MshrStats,
}

impl MshrFile {
    /// Creates a finite MSHR file with `entries` entries of
    /// `targets_per_entry` mergeable reads each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(entries: u32, targets_per_entry: u32) -> Self {
        assert!(
            entries > 0 && targets_per_entry > 0,
            "MSHR geometry must be positive"
        );
        MshrFile {
            entries: Vec::with_capacity(entries as usize),
            capacity: Some(entries as usize),
            targets_per_entry: targets_per_entry as usize,
            busy_after: None,
            model_busy_cycle: true,
            stats: MshrStats::default(),
        }
    }

    /// Creates a SimpleScalar-like unlimited file: never full, unlimited
    /// merges, never busy.
    pub fn unlimited() -> Self {
        MshrFile {
            entries: Vec::new(),
            capacity: None,
            targets_per_entry: usize::MAX,
            busy_after: None,
            model_busy_cycle: false,
            stats: MshrStats::default(),
        }
    }

    /// Enables/disables the one-cycle busy window after an allocation
    /// (a [`FidelityConfig::pipeline_stalls`] toggle).
    ///
    /// [`FidelityConfig::pipeline_stalls`]: microlib_model::FidelityConfig::pipeline_stalls
    pub fn set_model_busy_cycle(&mut self, on: bool) {
        self.model_busy_cycle = on;
    }

    /// Number of in-flight entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no miss is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a new allocation would fail for capacity reasons.
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.entries.len() >= c)
    }

    /// Whether an entry for `line` is in flight.
    pub fn contains(&self, line: Addr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Whether the in-flight entry for `line` (if any) is a pure prefetch.
    pub fn is_prefetch_inflight(&self, line: Addr) -> bool {
        self.entries.iter().any(|e| e.line == line && e.is_prefetch)
    }

    /// Attempts to record a miss on `line` with consumer `target`.
    ///
    /// `as_prefetch` marks prefetch-originated allocations; `to_buffer`
    /// routes the eventual fill to the mechanism's buffer instead of the
    /// cache array. Demand accesses merging into a prefetch entry promote
    /// it to demand (the prefetch became useful-but-late).
    pub fn try_insert(
        &mut self,
        line: Addr,
        target: MshrTarget,
        as_prefetch: bool,
        to_buffer: bool,
        now: Cycle,
    ) -> MshrOutcome {
        if self.model_busy_cycle {
            if let Some(busy) = self.busy_after {
                if now <= busy {
                    self.stats.busy_stalls += 1;
                    return MshrOutcome::BusyStall;
                }
            }
        }
        if let Some(entry) = self.entries.iter_mut().find(|e| e.line == line) {
            if entry.targets.len() >= self.targets_per_entry {
                self.stats.target_stalls += 1;
                return MshrOutcome::TargetStall;
            }
            entry.targets.push(target);
            if !as_prefetch {
                entry.is_prefetch = false;
                entry.to_buffer = false;
            }
            self.stats.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.is_full() {
            self.stats.full_stalls += 1;
            return MshrOutcome::FullStall;
        }
        self.entries.push(MshrEntry {
            line,
            targets: vec![target],
            is_prefetch: as_prefetch,
            to_buffer,
        });
        self.stats.allocations += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.entries.len() as u64);
        if self.model_busy_cycle {
            self.busy_after = Some(now);
        }
        MshrOutcome::Allocated
    }

    /// Completes the in-flight miss on `line`, removing and returning its
    /// entry (with all merged targets).
    pub fn complete(&mut self, line: Addr) -> Option<MshrEntry> {
        let idx = self.entries.iter().position(|e| e.line == line)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Occupancy counters.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Clears all in-flight state and counters.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.busy_after = None;
        self.stats = MshrStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(addr: u64) -> MshrTarget {
        MshrTarget {
            req: Some(ReqId::new(addr)),
            addr: Addr::new(addr),
            is_store: false,
            value: 0,
        }
    }

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrFile::new(8, 4);
        assert_eq!(
            m.try_insert(Addr::new(0x100), t(0x100), false, false, Cycle::new(0)),
            MshrOutcome::Allocated
        );
        assert_eq!(
            m.try_insert(Addr::new(0x100), t(0x108), false, false, Cycle::new(2)),
            MshrOutcome::Merged
        );
        assert_eq!(m.len(), 1);
        let entry = m.complete(Addr::new(0x100)).unwrap();
        assert_eq!(entry.targets.len(), 2);
        assert!(m.is_empty());
        assert!(m.complete(Addr::new(0x100)).is_none());
    }

    #[test]
    fn busy_cycle_after_allocation() {
        let mut m = MshrFile::new(8, 4);
        let now = Cycle::new(5);
        assert!(m
            .try_insert(Addr::new(0x100), t(0x100), false, false, now)
            .accepted());
        // Same cycle: busy.
        assert_eq!(
            m.try_insert(Addr::new(0x200), t(0x200), false, false, now),
            MshrOutcome::BusyStall
        );
        // Next cycle: fine.
        assert_eq!(
            m.try_insert(Addr::new(0x200), t(0x200), false, false, Cycle::new(6)),
            MshrOutcome::Allocated
        );
    }

    #[test]
    fn target_slots_exhaust() {
        let mut m = MshrFile::new(8, 2);
        m.set_model_busy_cycle(false);
        let line = Addr::new(0x300);
        assert!(m
            .try_insert(line, t(0x300), false, false, Cycle::new(0))
            .accepted());
        assert!(m
            .try_insert(line, t(0x308), false, false, Cycle::new(1))
            .accepted());
        assert_eq!(
            m.try_insert(line, t(0x310), false, false, Cycle::new(2)),
            MshrOutcome::TargetStall
        );
        assert_eq!(m.stats().target_stalls, 1);
    }

    #[test]
    fn capacity_exhausts() {
        let mut m = MshrFile::new(2, 4);
        m.set_model_busy_cycle(false);
        assert!(m
            .try_insert(Addr::new(0x000), t(0), false, false, Cycle::new(0))
            .accepted());
        assert!(m
            .try_insert(Addr::new(0x100), t(0x100), false, false, Cycle::new(1))
            .accepted());
        assert_eq!(
            m.try_insert(Addr::new(0x200), t(0x200), false, false, Cycle::new(2)),
            MshrOutcome::FullStall
        );
        assert!(m.is_full());
        assert_eq!(m.stats().full_stalls, 1);
        assert_eq!(m.stats().peak_occupancy, 2);
    }

    #[test]
    fn unlimited_never_stalls() {
        let mut m = MshrFile::unlimited();
        for i in 0..100u64 {
            assert!(m
                .try_insert(Addr::new(i * 64), t(i * 64), false, false, Cycle::new(0))
                .accepted());
        }
        assert!(!m.is_full());
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn demand_promotes_prefetch_entry() {
        let mut m = MshrFile::new(4, 4);
        m.set_model_busy_cycle(false);
        let line = Addr::new(0x400);
        let pf = MshrTarget {
            req: None,
            addr: line,
            is_store: false,
            value: 0,
        };
        assert!(m.try_insert(line, pf, true, true, Cycle::new(0)).accepted());
        assert!(m.is_prefetch_inflight(line));
        assert!(m
            .try_insert(line, t(0x404), false, false, Cycle::new(1))
            .accepted());
        assert!(!m.is_prefetch_inflight(line));
        let entry = m.complete(line).unwrap();
        assert!(!entry.is_prefetch);
        assert!(!entry.to_buffer, "demand merge redirects fill to the cache");
    }
}
