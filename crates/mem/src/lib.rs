//! # microlib-mem
//!
//! Memory substrate of the MicroLib reproduction: the value-carrying
//! functional memory, the detailed cache model (ports, MSHRs, pipeline
//! hazards), buses, the SDRAM controller and the full
//! [`MemorySystem`] hierarchy the CPU model drives.
//!
//! The design follows the paper's §2.2 validation discussion: every
//! difference the authors found between their cache model and
//! SimpleScalar's (finite MSHRs, cache-pipeline stalls, LSQ backpressure,
//! refill port usage) is modelled and individually toggleable through
//! [`FidelityConfig`](microlib_model::FidelityConfig), which is what the
//! model-precision experiments (Fig 1, Fig 9) sweep.
//!
//! # Examples
//!
//! ```
//! use microlib_mem::{IssueResult, MemorySystem};
//! use microlib_model::{Addr, Cycle, SystemConfig};
//!
//! let mut mem = MemorySystem::new(SystemConfig::baseline(), Vec::new())?;
//! mem.functional_mut().initialize_word(Addr::new(0x100), 7);
//! mem.begin_cycle(Cycle::ZERO);
//! assert!(matches!(
//!     mem.try_load(Addr::new(0x40_0000), Addr::new(0x100), Cycle::ZERO),
//!     Ok(IssueResult::Pending(_))
//! ));
//! # Ok::<(), microlib_model::ConfigError>(())
//! ```

#![warn(missing_docs)]

mod bus;
mod cache;
mod functional;
mod hierarchy;
mod mshr;
mod sdram;
mod warmup;

pub use bus::{Bus, BusStats};
pub use cache::{CacheArray, HitInfo, Victim};
pub use functional::{FunctionalMemory, IntegrityError, SparseMemory};
pub use hierarchy::{Completion, IssueRejection, IssueResult, MemorySystem, ReqId};
pub use mshr::{MshrCompletion, MshrEntry, MshrFile, MshrOutcome, MshrStats, MshrTarget};
pub use sdram::{ConstantMemory, MainMemory, MemDone, MemToken, Sdram};
pub use warmup::{capture_warm_state, WarmCheckpoint, WarmEvent, WarmLog, WarmState};
