//! # microlib-trace
//!
//! Workload substrate of the MicroLib reproduction: deterministic synthetic
//! SPEC CPU2000-like instruction traces, basic-block-vector profiling and
//! SimPoint trace selection.
//!
//! The paper simulated 500-million-instruction SimPoint traces of SPEC
//! CPU2000 Alpha binaries; this crate provides the scaled-down substitution
//! described in DESIGN.md §2 — 26 behaviour profiles
//! ([`benchmarks::spec2000`]) turned into concrete memory images and
//! instruction streams ([`Workload`]), plus the real SimPoint machinery
//! ([`BbvProfiler`], [`simpoint`]) applied to those streams.
//!
//! # Examples
//!
//! ```
//! use microlib_trace::{benchmarks, TraceWindow, Workload};
//!
//! let profile = benchmarks::by_name("mcf").expect("known benchmark");
//! let workload = Workload::new(profile, 42);
//! let window = TraceWindow::new(1_000, 10_000);
//! let trace: Vec<_> = window.apply(workload.stream()).collect();
//! assert_eq!(trace.len(), 10_000);
//! ```

#![warn(missing_docs)]

pub mod bbv;
pub mod benchmarks;
mod buffer;
mod inst;
mod profile;
pub mod simpoint;
mod window;
mod workload;

pub use bbv::{BbvInterval, BbvProfiler};
pub use buffer::TraceBuffer;
pub use inst::{BranchInfo, MemRef, OpClass, TraceInst};
pub use profile::{BenchmarkProfile, PhaseProfile, StreamSpec, Suite, FREQUENT_VALUES};
pub use simpoint::{
    choose_simpoints, choose_simpoints_with_probes, primary_simpoint, SamplingPlan, SimPoint,
};
pub use window::TraceWindow;
pub use workload::{InstStream, Workload, BLOCK_CODE_BYTES, CODE_BASE, DATA_BASE, HEAP_BASE};
