//! Behaviour profiles describing synthetic SPEC CPU2000-like workloads.
//!
//! A [`BenchmarkProfile`] is a declarative description of how a benchmark
//! behaves: instruction mix, dependency density (ILP), memory streams
//! (strided, pointer-chasing, random, repeating), working-set sizes, value
//! locality, code footprint, phase structure and branch predictability.
//! [`Workload`](crate::Workload) turns a profile into a concrete
//! deterministic instruction stream plus an initialized memory image.
//!
//! The profiles stand in for the paper's SPEC CPU2000 Alpha binaries (see
//! DESIGN.md §2): the mechanisms only observe the address/PC/value stream,
//! so a profile tuned to a benchmark's published behaviour exercises the
//! same mechanism code paths the real benchmark would.

/// Integer or floating-point suite membership (SPEC CINT2000 / CFP2000).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// CINT2000.
    Int,
    /// CFP2000.
    Fp,
}

/// One memory access stream within a phase.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamSpec {
    /// Regular strided walk over a working set (array sweeps). Stride
    /// prefetchers (SP, GHB) love these; the stride is in bytes.
    Strided {
        /// Byte stride between consecutive accesses.
        stride: i64,
        /// Working-set size in bytes (the walk wraps around).
        working_set: u64,
        /// Relative selection weight within the phase.
        weight: f64,
    },
    /// Pointer chasing through a linked structure laid out in memory at
    /// initialization time. Each access loads the next pointer, serializing
    /// on memory latency. Content-directed prefetching inspects these very
    /// nodes for pointers.
    PointerChase {
        /// Number of nodes in the chain.
        nodes: u32,
        /// Node size in bytes (ammp's 88-byte nodes defeat 64-byte-line
        /// pointer scans).
        node_bytes: u32,
        /// Byte offset of the `next` pointer within the node.
        next_offset: u32,
        /// Extra pointer-looking fields per node within the first 64 bytes
        /// (stale pointers that bait CDP into useless prefetches, as in
        /// mcf).
        decoy_pointers: u32,
        /// Whether node order in memory is shuffled (defeats next-line
        /// prefetching) or sequential.
        shuffled: bool,
        /// Relative selection weight within the phase.
        weight: f64,
    },
    /// Uniformly random accesses within a working set (hash tables, symbol
    /// tables). Defeats every prefetcher; only capacity helps.
    Random {
        /// Working-set size in bytes.
        working_set: u64,
        /// Relative selection weight within the phase.
        weight: f64,
    },
    /// A fixed sequence of addresses replayed over and over with occasional
    /// noise — the repeating miss sequences Markov prefetching and
    /// tag-correlating prefetching learn.
    Repeating {
        /// Number of distinct addresses in the sequence.
        sequence_len: u32,
        /// Working-set size in bytes the sequence is drawn from.
        working_set: u64,
        /// Probability of replacing one step with a random address.
        noise: f64,
        /// Relative selection weight within the phase.
        weight: f64,
    },
}

impl StreamSpec {
    /// The stream's selection weight.
    pub fn weight(&self) -> f64 {
        match self {
            StreamSpec::Strided { weight, .. }
            | StreamSpec::PointerChase { weight, .. }
            | StreamSpec::Random { weight, .. }
            | StreamSpec::Repeating { weight, .. } => *weight,
        }
    }
}

/// Instruction mix and memory behaviour for one program phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseProfile {
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction that are stores.
    pub store_frac: f64,
    /// Of the non-memory, non-branch instructions, fraction that are FP.
    pub fp_frac: f64,
    /// Of the ALU instructions, fraction that are multiplies/divides.
    pub mult_frac: f64,
    /// Memory streams active in this phase.
    pub streams: Vec<StreamSpec>,
    /// Mean basic-block length in instructions (a branch ends each block).
    pub block_len: u32,
}

impl PhaseProfile {
    /// Validates the mix fractions.
    ///
    /// # Errors
    ///
    /// Returns a message when fractions are out of range or streams are
    /// missing while memory instructions are requested.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.load_frac)
            || !(0.0..=1.0).contains(&self.store_frac)
            || self.load_frac + self.store_frac > 0.95
        {
            return Err(format!(
                "memory fractions invalid: loads {} stores {}",
                self.load_frac, self.store_frac
            ));
        }
        if self.load_frac + self.store_frac > 0.0 && self.streams.is_empty() {
            return Err("memory instructions requested but no streams defined".to_owned());
        }
        if self.block_len < 2 {
            return Err("basic blocks must hold at least 2 instructions".to_owned());
        }
        Ok(())
    }
}

/// Complete behavioural description of one synthetic benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (matches the SPEC CPU2000 name it models).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// The distinct phases of the program.
    pub phases: Vec<PhaseProfile>,
    /// Order in which phases repeat (indices into `phases`).
    pub phase_pattern: Vec<usize>,
    /// Instructions per phase segment.
    pub phase_len: u64,
    /// Branch misprediction probability.
    pub mispredict_rate: f64,
    /// Mean producer distance for dependencies (smaller = tighter chains =
    /// less ILP).
    pub mean_dep_distance: f64,
    /// Static code footprint in basic blocks (drives L1I behaviour).
    pub code_blocks: u32,
    /// Probability that a store writes one of the 7 frequent values
    /// (frequent-value locality, the FVC food source).
    pub frequent_value_bias: f64,
}

impl BenchmarkProfile {
    /// Validates the whole profile.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("{}: no phases", self.name));
        }
        for (i, p) in self.phases.iter().enumerate() {
            p.validate()
                .map_err(|e| format!("{} phase {}: {}", self.name, i, e))?;
        }
        if self.phase_pattern.is_empty() {
            return Err(format!("{}: empty phase pattern", self.name));
        }
        if let Some(bad) = self.phase_pattern.iter().find(|&&i| i >= self.phases.len()) {
            return Err(format!("{}: phase index {} out of range", self.name, bad));
        }
        if self.phase_len == 0 {
            return Err(format!("{}: zero phase length", self.name));
        }
        if !(0.0..=1.0).contains(&self.mispredict_rate)
            || !(0.0..=1.0).contains(&self.frequent_value_bias)
        {
            return Err(format!("{}: probability out of range", self.name));
        }
        if self.mean_dep_distance < 1.0 {
            return Err(format!(
                "{}: mean dependency distance must be >= 1",
                self.name
            ));
        }
        if self.code_blocks == 0 {
            return Err(format!("{}: needs at least one code block", self.name));
        }
        Ok(())
    }
}

/// The seven frequent values (plus implicit "unknown") used for
/// frequent-value locality, mirroring the FVC configuration of Table 3.
pub const FREQUENT_VALUES: [u64; 7] = [0, 1, u64::MAX, 2, 4, 8, 0xFF];

#[cfg(test)]
mod tests {
    use super::*;

    fn phase() -> PhaseProfile {
        PhaseProfile {
            load_frac: 0.3,
            store_frac: 0.1,
            fp_frac: 0.0,
            mult_frac: 0.05,
            streams: vec![StreamSpec::Strided {
                stride: 8,
                working_set: 1 << 20,
                weight: 1.0,
            }],
            block_len: 8,
        }
    }

    fn profile() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "test",
            suite: Suite::Int,
            phases: vec![phase()],
            phase_pattern: vec![0],
            phase_len: 10_000,
            mispredict_rate: 0.02,
            mean_dep_distance: 4.0,
            code_blocks: 64,
            frequent_value_bias: 0.2,
        }
    }

    #[test]
    fn valid_profile_passes() {
        profile().validate().unwrap();
    }

    #[test]
    fn bad_fractions_rejected() {
        let mut p = profile();
        p.phases[0].load_frac = 0.9;
        p.phases[0].store_frac = 0.4;
        assert!(p.validate().is_err());
    }

    #[test]
    fn missing_streams_rejected() {
        let mut p = profile();
        p.phases[0].streams.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_phase_pattern_rejected() {
        let mut p = profile();
        p.phase_pattern = vec![3];
        assert!(p.validate().is_err());
        p.phase_pattern = vec![];
        assert!(p.validate().is_err());
    }

    #[test]
    fn stream_weights() {
        let s = StreamSpec::Random {
            working_set: 4096,
            weight: 2.5,
        };
        assert!((s.weight() - 2.5).abs() < 1e-12);
    }
}
