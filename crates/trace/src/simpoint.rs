//! SimPoint trace selection (Sherwood et al., ASPLOS 2002): random
//! projection of basic-block vectors, k-means clustering with a BIC-style
//! model-selection rule, and representative-interval extraction.
//!
//! The paper simulates "a 500-million instruction trace, skipping up to the
//! first SimPoint"; our scaled equivalent picks representative intervals of
//! the synthetic workloads the same way and Fig 11 compares the result
//! against arbitrary skip/simulate windows.

use crate::bbv::BbvProfiler;
use crate::window::TraceWindow;
use crate::workload::InstStream;
use microlib_model::{BinCodec, CodecError, Decoder, Encoder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A selected simulation point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimPoint {
    /// Index of the representative interval in the profiled stream.
    pub interval: usize,
    /// Fraction of all intervals its cluster covers (results are weighted
    /// by this).
    pub weight: f64,
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeans {
    /// Cluster index per point.
    pub assignment: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Randomly projects `vectors` down to `dims` dimensions (SimPoint uses 15).
///
/// # Examples
///
/// ```
/// use microlib_trace::simpoint::project;
///
/// let data = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]];
/// let low = project(&data, 2, 42);
/// assert_eq!(low.len(), 2);
/// assert_eq!(low[0].len(), 2);
/// ```
pub fn project(vectors: &[Vec<f64>], dims: usize, seed: u64) -> Vec<Vec<f64>> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let input_dims = vectors[0].len();
    if input_dims <= dims {
        return vectors.to_vec();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // Dense Gaussian-ish projection via sum of uniforms.
    let matrix: Vec<Vec<f64>> = (0..input_dims)
        .map(|_| (0..dims).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
        .collect();
    vectors
        .iter()
        .map(|v| {
            let mut out = vec![0.0; dims];
            for (x, row) in v.iter().zip(&matrix) {
                if *x != 0.0 {
                    for (o, m) in out.iter_mut().zip(row) {
                        *o += x * m;
                    }
                }
            }
            out
        })
        .collect()
}

/// Runs k-means (k-means++ seeding, fixed iteration cap) on `points`.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> KMeans {
    assert!(k >= 1 && k <= points.len(), "k={k} out of range");
    let mut rng = SmallRng::seed_from_u64(seed);
    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen = 0;
        for (i, d) in dists.iter().enumerate() {
            pick -= d;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..50 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(p, &centroids[a])
                        .partial_cmp(&sq_dist(p, &centroids[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let dims = points[0].len();
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeans {
        assignment,
        centroids,
        inertia,
    }
}

/// BIC-style score for a clustering (higher is better): log-likelihood under
/// a spherical-Gaussian model minus a complexity penalty.
pub fn bic_score(points: &[Vec<f64>], km: &KMeans) -> f64 {
    let n = points.len() as f64;
    let d = points[0].len() as f64;
    let k = km.centroids.len() as f64;
    let variance = (km.inertia / (n * d).max(1.0)).max(1e-12);
    let log_likelihood = -0.5 * n * d * (variance.ln() + 1.0);
    let params = k * (d + 1.0);
    log_likelihood - 0.5 * params * n.ln()
}

/// Chooses simulation points from profiled interval vectors: projects to 15
/// dimensions, tries k = 1..=`max_k`, keeps the smallest k whose BIC reaches
/// 90% of the best observed (SimPoint's rule), and returns the interval
/// closest to each centroid with its cluster weight.
///
/// # Examples
///
/// ```
/// use microlib_trace::simpoint::choose_simpoints;
///
/// let vectors = vec![
///     vec![1.0, 0.0], vec![0.9, 0.1], // cluster A
///     vec![0.0, 1.0], vec![0.1, 0.9], // cluster B
/// ];
/// let points = choose_simpoints(&vectors, 3, 7);
/// assert!(!points.is_empty());
/// let total: f64 = points.iter().map(|p| p.weight).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
pub fn choose_simpoints(vectors: &[Vec<f64>], max_k: usize, seed: u64) -> Vec<SimPoint> {
    choose_points(vectors, max_k, seed, false)
}

/// [`choose_simpoints`] plus a **probe** per multi-member cluster: the
/// member *farthest* from the centroid is simulated too, and representative
/// and probe each carry half the cluster weight. The two-point estimate
/// approximates the cluster's mean behaviour instead of betting on one
/// interval (phase-transition intervals share a cluster's basic blocks but
/// not its performance), and the rep-vs-probe spread gives downstream
/// error bounds real within-cluster evidence.
pub fn choose_simpoints_with_probes(
    vectors: &[Vec<f64>],
    max_k: usize,
    seed: u64,
) -> Vec<SimPoint> {
    choose_points(vectors, max_k, seed, true)
}

/// The BIC-selected clustering underlying both choosers.
fn best_clustering(projected: &[Vec<f64>], max_k: usize, seed: u64) -> KMeans {
    let max_k = max_k.clamp(1, projected.len());
    let runs: Vec<KMeans> = (1..=max_k)
        .map(|k| kmeans(projected, k, seed ^ (k as u64) << 32))
        .collect();
    let scores: Vec<f64> = runs.iter().map(|r| bic_score(projected, r)).collect();
    let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let worst = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let threshold = if best > worst {
        worst + 0.9 * (best - worst)
    } else {
        best
    };
    let chosen = scores
        .iter()
        .position(|s| *s >= threshold)
        .unwrap_or(scores.len() - 1);
    runs.into_iter().nth(chosen).expect("chosen is in range")
}

fn choose_points(vectors: &[Vec<f64>], max_k: usize, seed: u64, probes: bool) -> Vec<SimPoint> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let projected = project(vectors, 15, seed);
    let km = best_clustering(&projected, max_k, seed);

    let total = projected.len() as f64;
    let mut points = Vec::new();
    for c in 0..km.centroids.len() {
        let members: Vec<usize> = km
            .assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == c)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let by_dist = |&a: &usize, &b: &usize| {
            sq_dist(&projected[a], &km.centroids[c])
                .partial_cmp(&sq_dist(&projected[b], &km.centroids[c]))
                .expect("finite")
        };
        let rep = *members
            .iter()
            .min_by(|a, b| by_dist(a, b))
            .expect("nonempty");
        let weight = members.len() as f64 / total;
        if probes && members.len() >= 2 {
            let probe = *members
                .iter()
                .filter(|&&m| m != rep)
                .max_by(|a, b| by_dist(a, b))
                .expect("two members");
            points.push(SimPoint {
                interval: rep,
                weight: weight / 2.0,
            });
            points.push(SimPoint {
                interval: probe,
                weight: weight / 2.0,
            });
        } else {
            points.push(SimPoint {
                interval: rep,
                weight,
            });
        }
    }
    points
}

/// The single most representative interval (largest-weight simpoint) — the
/// paper's "skipping up to the first SimPoint" uses one point per program.
pub fn primary_simpoint(vectors: &[Vec<f64>], max_k: usize, seed: u64) -> Option<SimPoint> {
    choose_simpoints(vectors, max_k, seed)
        .into_iter()
        .max_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"))
}

/// A complete SimPoint sampling plan for one trace region: which
/// representative intervals to simulate in detail and with what weights.
///
/// This is the first-class face of the BBV → clustering → selection
/// pipeline: [`SamplingPlan::profile`] consumes an instruction stream,
/// profiles basic-block vectors over the region, clusters them and keeps
/// a weighted representative — plus, for multi-member clusters, a probe
/// (see [`choose_simpoints_with_probes`]) — per cluster. The plan's
/// [`windows`] are absolute `skip/simulate` windows ready to hand to a
/// simulator; the weights always sum to 1 (property-tested in
/// `tests/properties.rs`).
///
/// When the region is shorter than two intervals there is nothing to
/// cluster; the plan degrades to a single full-weight point covering the
/// whole region, so sampled and full simulation coincide.
///
/// [`windows`]: SamplingPlan::windows
///
/// # Examples
///
/// ```
/// use microlib_trace::{benchmarks, SamplingPlan, TraceWindow, Workload};
///
/// let w = Workload::new(benchmarks::by_name("gcc").unwrap(), 7);
/// let region = TraceWindow::new(25_000, 100_000);
/// let plan = SamplingPlan::profile(w.stream(), region, 10_000, 4, 7);
/// let total: f64 = plan.points().iter().map(|p| p.weight).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// for (window, weight) in plan.windows() {
///     assert!(window.skip >= region.skip && window.end() <= region.end());
///     assert!(weight > 0.0);
/// }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SamplingPlan {
    region: TraceWindow,
    interval: u64,
    points: Vec<SimPoint>,
}

impl SamplingPlan {
    /// Profiles `stream` over `region`, clusters the per-interval basic
    /// block vectors (at most `max_clusters`, BIC-selected) and returns
    /// the chosen representative intervals, sorted by position.
    ///
    /// `stream` must be positioned at (or before) the region start; the
    /// plan fast-forwards it to `region.skip` (O(1) for replay cursors)
    /// and consumes one region's worth of instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval` or `max_clusters` is zero, or if the stream is
    /// already past the region start.
    pub fn profile(
        mut stream: InstStream,
        region: TraceWindow,
        interval: u64,
        max_clusters: usize,
        seed: u64,
    ) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        assert!(max_clusters > 0, "need at least one cluster");
        let n_intervals = region.simulate / interval;
        if n_intervals < 2 {
            // Nothing to cluster: one full-weight point covering the
            // whole region (sampled simulation == full simulation).
            return SamplingPlan {
                region,
                interval: region.simulate,
                points: vec![SimPoint {
                    interval: 0,
                    weight: 1.0,
                }],
            };
        }
        stream.advance_to(region.skip);
        let mut profiler = BbvProfiler::new(interval);
        for inst in stream.take((n_intervals * interval) as usize) {
            profiler.observe(&inst);
        }
        let vectors = BbvProfiler::to_matrix(profiler.intervals());
        let mut points = choose_simpoints_with_probes(&vectors, max_clusters, seed);
        points.sort_by_key(|p| p.interval);
        SamplingPlan {
            region,
            interval,
            points,
        }
    }

    /// The region the plan samples.
    pub fn region(&self) -> TraceWindow {
        self.region
    }

    /// Length of one interval in instructions (equals the region length
    /// for degenerate single-point plans).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The chosen representative intervals, sorted by position.
    pub fn points(&self) -> &[SimPoint] {
        &self.points
    }

    /// Absolute trace windows to simulate in detail, with their weights,
    /// in position order.
    pub fn windows(&self) -> impl Iterator<Item = (TraceWindow, f64)> + '_ {
        self.points.iter().map(move |p| {
            (
                TraceWindow::new(
                    self.region.skip + p.interval as u64 * self.interval,
                    self.interval,
                ),
                p.weight,
            )
        })
    }

    /// Instructions the plan simulates in detail (versus
    /// `region.simulate` for a full run).
    pub fn detailed_instructions(&self) -> u64 {
        self.points.len() as u64 * self.interval
    }

    /// Rebuilds a plan from its parts (the decode path of the on-disk
    /// artifact cache). Points must be sorted by interval with positive
    /// weights — the invariants [`SamplingPlan::profile`] establishes.
    fn from_parts(
        region: TraceWindow,
        interval: u64,
        points: Vec<SimPoint>,
    ) -> Result<Self, CodecError> {
        if interval == 0 || points.is_empty() {
            return Err(CodecError::Invalid("empty sampling plan"));
        }
        if points.windows(2).any(|w| w[0].interval > w[1].interval) {
            return Err(CodecError::Invalid("unsorted sampling plan"));
        }
        if points.iter().any(|p| !(p.weight > 0.0 && p.weight <= 1.0)) {
            return Err(CodecError::Invalid("sampling plan weights"));
        }
        Ok(SamplingPlan {
            region,
            interval,
            points,
        })
    }

    /// Detailed-simulation work reduction versus a full run of the region
    /// (`2.0` = half the instructions simulated in detail).
    pub fn work_reduction(&self) -> f64 {
        let detailed = self.detailed_instructions();
        if detailed == 0 {
            1.0
        } else {
            self.region.simulate as f64 / detailed as f64
        }
    }
}

impl BinCodec for SimPoint {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.interval);
        e.put_f64(self.weight);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SimPoint {
            interval: d.take_usize()?,
            weight: d.take_f64()?,
        })
    }
}

impl BinCodec for SamplingPlan {
    fn encode(&self, e: &mut Encoder) {
        self.region.encode(e);
        e.put_u64(self.interval);
        self.points.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let region = TraceWindow::decode(d)?;
        let interval = d.take_u64()?;
        let points = Vec::decode(d)?;
        SamplingPlan::from_parts(region, interval, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(vec![1.0 + 0.01 * i as f64, 0.0]);
            v.push(vec![0.0, 1.0 + 0.01 * i as f64]);
        }
        v
    }

    #[test]
    fn kmeans_separates_blobs() {
        let points = two_blobs();
        let km = kmeans(&points, 2, 1);
        // All even indices together, all odd together.
        let a = km.assignment[0];
        for i in (0..20).step_by(2) {
            assert_eq!(km.assignment[i], a);
        }
        assert_ne!(km.assignment[1], a);
        // Within-blob spread only: 2 blobs x sum((0.01*i - mean)^2) ~ 0.0165.
        assert!(km.inertia < 0.05, "inertia {} too large", km.inertia);
    }

    #[test]
    fn kmeans_k1_centroid_is_mean() {
        let points = vec![vec![0.0], vec![2.0], vec![4.0]];
        let km = kmeans(&points, 1, 3);
        assert!((km.centroids[0][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simpoints_weights_sum_to_one() {
        let pts = choose_simpoints(&two_blobs(), 4, 9);
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(
            pts.len() >= 2,
            "two blobs need two simpoints, got {}",
            pts.len()
        );
    }

    #[test]
    fn primary_simpoint_is_heaviest() {
        let mut v = two_blobs();
        // Make blob A three times heavier.
        for i in 0..20 {
            v.push(vec![1.0 + 0.001 * i as f64, 0.0]);
        }
        let primary = primary_simpoint(&v, 4, 5).unwrap();
        // Heaviest cluster is blob A (index with x ~ 1.0).
        assert!(v[primary.interval][0] > 0.5);
        assert!(primary.weight > 0.5);
    }

    #[test]
    fn projection_preserves_count_and_dims() {
        let data: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64; 40]).collect();
        let low = project(&data, 15, 11);
        assert_eq!(low.len(), 8);
        assert!(low.iter().all(|v| v.len() == 15));
        // Low-dimensional inputs pass through.
        let tiny = vec![vec![1.0, 2.0]];
        assert_eq!(project(&tiny, 15, 11), tiny);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = choose_simpoints(&pts, 4, 77);
        let b = choose_simpoints(&pts, 4, 77);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kmeans_rejects_bad_k() {
        kmeans(&[vec![1.0]], 2, 0);
    }

    #[test]
    fn plan_finds_phase_structure() {
        use crate::benchmarks;
        use crate::workload::Workload;
        // gcc alternates phases [0,1,2,1] every 25k instructions; a plan
        // over 8 aligned intervals must keep more than one representative
        // and weight them over the whole region.
        let w = Workload::new(benchmarks::by_name("gcc").unwrap(), 5);
        let region = TraceWindow::new(0, 200_000);
        let plan = SamplingPlan::profile(w.stream(), region, 25_000, 4, 5);
        assert!(plan.points().len() >= 2, "gcc has multiple phases");
        let total: f64 = plan.points().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Even with per-cluster probes, sampling beats full simulation.
        assert!(
            plan.detailed_instructions() < region.simulate,
            "sampling must simulate less than the full region ({} of {})",
            plan.detailed_instructions(),
            region.simulate
        );
        assert!(plan.work_reduction() > 1.0);
        // Windows are in position order, inside the region, aligned.
        let mut last = 0;
        for (win, weight) in plan.windows() {
            assert!(win.skip >= last);
            assert!(win.end() <= region.end());
            assert_eq!((win.skip - region.skip) % 25_000, 0);
            assert!(weight > 0.0);
            last = win.skip;
        }
    }

    #[test]
    fn degenerate_region_gets_single_full_point() {
        use crate::benchmarks;
        use crate::workload::Workload;
        let w = Workload::new(benchmarks::by_name("swim").unwrap(), 1);
        let region = TraceWindow::new(4_000, 3_000);
        // interval > region: one point covering the whole region.
        let plan = SamplingPlan::profile(w.stream(), region, 10_000, 4, 1);
        assert_eq!(plan.points().len(), 1);
        assert_eq!(plan.interval(), 3_000);
        let (win, weight) = plan.windows().next().unwrap();
        assert_eq!(win, region);
        assert!((weight - 1.0).abs() < 1e-12);
        assert!((plan.work_reduction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_is_seed_deterministic() {
        use crate::benchmarks;
        use crate::workload::Workload;
        let w = Workload::new(benchmarks::by_name("gcc").unwrap(), 9);
        let region = TraceWindow::new(10_000, 100_000);
        let a = SamplingPlan::profile(w.stream(), region, 10_000, 4, 42);
        let b = SamplingPlan::profile(w.stream(), region, 10_000, 4, 42);
        assert_eq!(a, b);
    }
}
