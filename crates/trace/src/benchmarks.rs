//! The 26 synthetic SPEC CPU2000 benchmark profiles.
//!
//! Each profile is tuned to reproduce the *behaviour class* the paper (and
//! the literature it cites) attributes to the benchmark — see DESIGN.md §2
//! for the substitution argument. Every phase mixes a **hot** stream (a
//! small working set that caches well — the stack/globals/hot structures
//! real programs spend most accesses on) with the benchmark's
//! *characteristic* streams. Highlights wired to specific paper anecdotes:
//!
//! - `ammp`: 96-byte nodes with the next pointer 88 bytes in, so a 64-byte
//!   line fetch never contains it — CDP "systematically fails to prefetch
//!   it, saturating the memory bandwidth with useless prefetch requests";
//! - `mcf`: huge shuffled pointer graph with decoy pointers (CDP degrades
//!   it, speedup 0.75 in the paper);
//! - `equake`/`twolf`: pointer structures whose next pointers sit inside
//!   the fetched line (CDP gains, 1.11 / 1.07);
//! - `gzip`/`ammp`: repeating access sequences that Markov prefetching
//!   learns ("Markov outperforms all other mechanisms on gzip and ammp");
//! - `lucas`: long-stride memory-bound streams (387-cycle average SDRAM
//!   latency anecdote);
//! - high-sensitivity set {apsi, equake, fma3d, mgrid, swim, gap} and
//!   low-sensitivity set {wupwise, bzip2, crafty, eon, perlbmk, vortex}
//!   per Fig 6.

use crate::profile::{BenchmarkProfile, PhaseProfile, StreamSpec, Suite};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn strided(stride: i64, working_set: u64, weight: f64) -> StreamSpec {
    StreamSpec::Strided {
        stride,
        working_set,
        weight,
    }
}

/// The hot, cache-resident stream every program has (stack, globals, hot
/// structures): a tight sequential walk over a small buffer.
fn hot(working_set: u64, weight: f64) -> StreamSpec {
    strided(8, working_set, weight)
}

fn chase(
    nodes: u32,
    node_bytes: u32,
    next_offset: u32,
    decoy_pointers: u32,
    shuffled: bool,
    weight: f64,
) -> StreamSpec {
    StreamSpec::PointerChase {
        nodes,
        node_bytes,
        next_offset,
        decoy_pointers,
        shuffled,
        weight,
    }
}

fn random(working_set: u64, weight: f64) -> StreamSpec {
    StreamSpec::Random {
        working_set,
        weight,
    }
}

fn repeating(sequence_len: u32, working_set: u64, noise: f64, weight: f64) -> StreamSpec {
    StreamSpec::Repeating {
        sequence_len,
        working_set,
        noise,
        weight,
    }
}

#[allow(clippy::too_many_arguments)]
fn phase(
    load_frac: f64,
    store_frac: f64,
    fp_frac: f64,
    mult_frac: f64,
    block_len: u32,
    streams: Vec<StreamSpec>,
) -> PhaseProfile {
    PhaseProfile {
        load_frac,
        store_frac,
        fp_frac,
        mult_frac,
        streams,
        block_len,
    }
}

#[allow(clippy::too_many_arguments)]
fn profile(
    name: &'static str,
    suite: Suite,
    phases: Vec<PhaseProfile>,
    phase_pattern: Vec<usize>,
    mispredict_rate: f64,
    mean_dep_distance: f64,
    code_blocks: u32,
    frequent_value_bias: f64,
) -> BenchmarkProfile {
    BenchmarkProfile {
        name,
        suite,
        phases,
        phase_pattern,
        phase_len: 25_000,
        mispredict_rate,
        mean_dep_distance,
        code_blocks,
        frequent_value_bias,
    }
}

/// All 26 benchmark names in the paper's canonical (suite, alphabetical)
/// order: 14 CFP2000 then 12 CINT2000.
pub const NAMES: [&str; 26] = [
    "ammp", "applu", "apsi", "art", "equake", "facerec", "fma3d", "galgel", "lucas", "mesa",
    "mgrid", "sixtrack", "swim", "wupwise", "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
    "parser", "perlbmk", "twolf", "vortex", "vpr",
];

/// The six high-sensitivity benchmarks of Fig 6/7.
pub const HIGH_SENSITIVITY: [&str; 6] = ["apsi", "equake", "fma3d", "mgrid", "swim", "gap"];

/// The six low-sensitivity benchmarks of Fig 6/7.
pub const LOW_SENSITIVITY: [&str; 6] = ["wupwise", "bzip2", "crafty", "eon", "perlbmk", "vortex"];

/// The five-benchmark selection used in the DBCP article (Table 4; the
/// exact set is approximated by the five pointer/correlation-friendly
/// benchmarks — see EXPERIMENTS.md).
pub const DBCP_SELECTION: [&str; 5] = ["ammp", "equake", "gzip", "mcf", "twolf"];

/// The twelve-benchmark selection used in the GHB article (Table 4,
/// approximated by the stride/pointer mix the HPCA 2004 paper evaluated).
pub const GHB_SELECTION: [&str; 12] = [
    "applu", "art", "equake", "facerec", "lucas", "mcf", "mgrid", "parser", "swim", "twolf", "vpr",
    "wupwise",
];

/// Strongly-phased synthetic profiles (not SPEC models and not part of
/// [`NAMES`] or the paper's campaign): each alternates sharply different
/// execution phases so BBV clustering has real structure to find. They
/// exercise the SimPoint sampling pipeline — `tests/sampling.rs` checks
/// that sampled and full simulation agree on them within the reported
/// error bound.
pub const PHASED_SYNTHETICS: [&str; 3] = ["pulse", "drift", "strobe"];

/// Builds the profile for one benchmark.
///
/// # Examples
///
/// ```
/// let p = microlib_trace::benchmarks::by_name("mcf").unwrap();
/// assert_eq!(p.name, "mcf");
/// p.validate().unwrap();
/// ```
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    let p = match name {
        // ----------------------------- CFP2000 -----------------------------
        "ammp" => profile(
            "ammp",
            Suite::Fp,
            vec![
                // Molecular-dynamics neighbour lists: a repeating pointer
                // traversal (Markov-learnable) whose next pointer sits
                // *past* the fetched 64-byte line, plus stale pointer
                // fields that bait CDP.
                phase(
                    0.30,
                    0.10,
                    0.55,
                    0.08,
                    10,
                    vec![chase(2_600, 96, 88, 4, true, 2.0), hot(6 * KB, 4.0)],
                ),
                phase(
                    0.26,
                    0.14,
                    0.60,
                    0.10,
                    12,
                    vec![chase(9_000, 96, 88, 4, true, 2.0), hot(6 * KB, 4.5)],
                ),
            ],
            vec![0, 0, 1, 0],
            0.02,
            2.8,
            80,
            0.15,
        ),
        "applu" => profile(
            "applu",
            Suite::Fp,
            vec![phase(
                0.30,
                0.12,
                0.78,
                0.12,
                14,
                vec![
                    strided(32, 2 * MB, 2.0),
                    strided(-32, MB, 1.0),
                    hot(6 * KB, 3.0),
                ],
            )],
            vec![0],
            0.010,
            5.0,
            48,
            0.10,
        ),
        "apsi" => profile(
            "apsi",
            Suite::Fp,
            vec![
                phase(
                    0.32,
                    0.12,
                    0.72,
                    0.10,
                    12,
                    vec![
                        strided(32, 3 * MB, 2.0),
                        strided(64, MB, 1.5),
                        hot(8 * KB, 2.5),
                    ],
                ),
                phase(
                    0.30,
                    0.16,
                    0.70,
                    0.10,
                    12,
                    vec![
                        strided(32, 3 * MB, 2.0),
                        strided(-32, 2 * MB, 1.5),
                        strided(256 * KB as i64, 2 * MB, 0.7),
                        hot(8 * KB, 2.5),
                    ],
                ),
            ],
            vec![0, 1],
            0.012,
            4.5,
            64,
            0.10,
        ),
        "art" => profile(
            "art",
            Suite::Fp,
            vec![phase(
                0.34,
                0.08,
                0.70,
                0.08,
                10,
                vec![
                    strided(-32, 1536 * KB, 1.3),
                    strided(32, MB, 1.2),
                    random(64 * KB, 0.8),
                    hot(8 * KB, 3.0),
                ],
            )],
            vec![0],
            0.015,
            3.5,
            32,
            0.20,
        ),
        "equake" => profile(
            "equake",
            Suite::Fp,
            vec![
                // Sparse-matrix pointer structure: next pointer *inside*
                // the fetched line (CDP-friendly).
                phase(
                    0.33,
                    0.08,
                    0.60,
                    0.08,
                    10,
                    vec![
                        chase(20_000, 64, 8, 0, true, 2.0),
                        strided(32, MB, 1.0),
                        hot(6 * KB, 3.0),
                    ],
                ),
                phase(
                    0.30,
                    0.12,
                    0.65,
                    0.10,
                    12,
                    vec![
                        chase(20_000, 64, 8, 0, true, 1.5),
                        strided(32, 2 * MB, 1.5),
                        hot(6 * KB, 3.0),
                    ],
                ),
            ],
            vec![0, 1],
            0.015,
            3.0,
            72,
            0.12,
        ),
        "facerec" => profile(
            "facerec",
            Suite::Fp,
            vec![phase(
                0.30,
                0.10,
                0.72,
                0.10,
                12,
                vec![
                    strided(128, 2 * MB, 1.2),
                    strided(256 * KB as i64, 2 * MB, 1.0),
                    strided(32, 512 * KB, 1.0),
                    hot(6 * KB, 1.8),
                    hot(6 * KB, 1.7),
                ],
            )],
            vec![0],
            0.012,
            4.2,
            48,
            0.10,
        ),
        "fma3d" => profile(
            "fma3d",
            Suite::Fp,
            vec![
                phase(
                    0.31,
                    0.13,
                    0.70,
                    0.10,
                    12,
                    vec![
                        strided(32, 3 * MB, 2.0),
                        strided(256 * KB as i64, 2 * MB, 0.5),
                        random(256 * KB, 0.8),
                        hot(8 * KB, 2.8),
                    ],
                ),
                phase(
                    0.28,
                    0.15,
                    0.72,
                    0.12,
                    14,
                    vec![
                        strided(32, 2 * MB, 2.0),
                        random(512 * KB, 0.8),
                        hot(8 * KB, 2.8),
                    ],
                ),
            ],
            vec![0, 1, 0],
            0.015,
            4.0,
            96,
            0.10,
        ),
        "galgel" => profile(
            "galgel",
            Suite::Fp,
            vec![phase(
                0.30,
                0.12,
                0.78,
                0.14,
                14,
                vec![
                    strided(-32, 320 * KB, 1.5),
                    hot(6 * KB, 2.5),
                    hot(6 * KB, 2.5),
                ],
            )],
            vec![0],
            0.008,
            4.8,
            40,
            0.10,
        ),
        "lucas" => profile(
            "lucas",
            Suite::Fp,
            vec![phase(
                0.28,
                0.12,
                0.82,
                0.14,
                16,
                vec![
                    strided(32, 4 * MB, 2.0),
                    strided(512, 4 * MB, 1.0),
                    hot(8 * KB, 2.0),
                ],
            )],
            vec![0],
            0.006,
            5.5,
            24,
            0.08,
        ),
        "mesa" => profile(
            "mesa",
            Suite::Fp,
            vec![phase(
                0.26,
                0.12,
                0.55,
                0.10,
                12,
                vec![
                    strided(32, 96 * KB, 1.0),
                    random(32 * KB, 0.5),
                    hot(6 * KB, 5.0),
                ],
            )],
            vec![0],
            0.020,
            3.5,
            80,
            0.18,
        ),
        "mgrid" => profile(
            "mgrid",
            Suite::Fp,
            vec![
                phase(
                    0.33,
                    0.10,
                    0.80,
                    0.12,
                    16,
                    vec![
                        strided(32, 2560 * KB, 2.2),
                        strided(256, 2560 * KB, 1.0),
                        strided(256 * KB as i64, 2 * MB, 0.5),
                        hot(8 * KB, 2.2),
                    ],
                ),
                phase(
                    0.30,
                    0.14,
                    0.80,
                    0.12,
                    16,
                    vec![
                        strided(-32, 2560 * KB, 2.0),
                        strided(32, MB, 1.5),
                        hot(8 * KB, 2.2),
                    ],
                ),
            ],
            vec![0, 0, 1],
            0.008,
            5.0,
            40,
            0.08,
        ),
        "sixtrack" => profile(
            "sixtrack",
            Suite::Fp,
            vec![phase(
                0.24,
                0.10,
                0.75,
                0.16,
                14,
                vec![strided(32, 96 * KB, 1.0), hot(6 * KB, 5.0)],
            )],
            vec![0],
            0.010,
            2.8,
            56,
            0.10,
        ),
        "swim" => profile(
            "swim",
            Suite::Fp,
            vec![phase(
                0.31,
                0.15,
                0.80,
                0.10,
                16,
                vec![
                    strided(32, 1536 * KB, 1.4),
                    strided(-32, 1536 * KB, 1.4),
                    strided(32, 1536 * KB, 1.4),
                    hot(8 * KB, 3.0),
                ],
            )],
            vec![0],
            0.005,
            5.5,
            24,
            0.08,
        ),
        "wupwise" => profile(
            "wupwise",
            Suite::Fp,
            vec![phase(
                0.26,
                0.10,
                0.72,
                0.14,
                14,
                vec![strided(-32, 128 * KB, 1.0), hot(6 * KB, 6.0)],
            )],
            vec![0],
            0.008,
            4.5,
            40,
            0.10,
        ),
        // ----------------------------- CINT2000 ----------------------------
        "bzip2" => profile(
            "bzip2",
            Suite::Int,
            vec![
                phase(
                    0.28,
                    0.12,
                    0.0,
                    0.04,
                    8,
                    vec![
                        random(256 * KB, 0.7),
                        strided(32, 128 * KB, 0.8),
                        hot(6 * KB, 6.0),
                    ],
                ),
                phase(
                    0.30,
                    0.14,
                    0.0,
                    0.04,
                    8,
                    vec![
                        strided(-32, 192 * KB, 1.0),
                        random(96 * KB, 0.5),
                        hot(6 * KB, 6.0),
                    ],
                ),
            ],
            vec![0, 1],
            0.040,
            3.0,
            72,
            0.25,
        ),
        "crafty" => profile(
            "crafty",
            Suite::Int,
            vec![phase(
                0.27,
                0.09,
                0.0,
                0.06,
                6,
                vec![random(64 * KB, 0.6), hot(6 * KB, 3.0), hot(6 * KB, 3.0)],
            )],
            vec![0],
            0.060,
            2.5,
            104,
            0.22,
        ),
        "eon" => profile(
            "eon",
            Suite::Int,
            vec![phase(
                0.28,
                0.12,
                0.30,
                0.08,
                8,
                vec![strided(32, 48 * KB, 0.8), hot(6 * KB, 6.0)],
            )],
            vec![0],
            0.030,
            3.0,
            88,
            0.18,
        ),
        "gap" => profile(
            "gap",
            Suite::Int,
            vec![
                // Group-theory workspace sweeps: big sequential bags plus a
                // pointer structure — very mechanism-sensitive (Fig 6).
                phase(
                    0.33,
                    0.12,
                    0.0,
                    0.06,
                    9,
                    vec![
                        chase(16_000, 64, 8, 0, false, 1.2),
                        strided(32, 2 * MB, 2.2),
                        hot(8 * KB, 2.5),
                    ],
                ),
                phase(
                    0.30,
                    0.15,
                    0.0,
                    0.06,
                    9,
                    vec![
                        strided(-32, 3 * MB, 2.5),
                        random(256 * KB, 0.6),
                        hot(8 * KB, 2.5),
                    ],
                ),
            ],
            vec![0, 1],
            0.025,
            3.2,
            88,
            0.25,
        ),
        "gcc" => profile(
            "gcc",
            Suite::Int,
            vec![
                phase(
                    0.30,
                    0.14,
                    0.0,
                    0.04,
                    6,
                    vec![
                        random(768 * KB, 1.0),
                        strided(32, 256 * KB, 0.8),
                        hot(6 * KB, 4.0),
                    ],
                ),
                phase(
                    0.28,
                    0.12,
                    0.0,
                    0.04,
                    7,
                    vec![random(256 * KB, 0.8), hot(6 * KB, 4.5)],
                ),
                phase(
                    0.33,
                    0.16,
                    0.0,
                    0.04,
                    6,
                    vec![
                        random(MB, 1.0),
                        repeating(300, 512 * KB, 0.10, 0.8),
                        hot(6 * KB, 4.0),
                    ],
                ),
            ],
            vec![0, 1, 2, 1],
            0.050,
            2.8,
            224,
            0.20,
        ),
        "gzip" => profile(
            "gzip",
            Suite::Int,
            vec![
                // Dictionary scans: the same miss sequence replays over and
                // over — Markov territory.
                phase(
                    0.30,
                    0.12,
                    0.0,
                    0.04,
                    8,
                    vec![repeating(3000, 1536 * KB, 0.04, 2.2), hot(6 * KB, 4.5)],
                ),
                phase(
                    0.28,
                    0.14,
                    0.0,
                    0.04,
                    8,
                    vec![repeating(2200, MB, 0.06, 1.8), hot(6 * KB, 4.5)],
                ),
            ],
            vec![0, 1],
            0.030,
            3.0,
            64,
            0.30,
        ),
        "mcf" => profile(
            "mcf",
            Suite::Int,
            vec![
                // Network-simplex graph: enormous shuffled pointer chase
                // with pointer-dense nodes (every field looks like a
                // pointer) — CDP chases them to depth 3 and saturates the
                // memory system.
                phase(
                    0.35,
                    0.08,
                    0.0,
                    0.03,
                    7,
                    vec![chase(36_000, 96, 8, 2, true, 3.0), hot(8 * KB, 3.0)],
                ),
                phase(
                    0.32,
                    0.12,
                    0.0,
                    0.03,
                    7,
                    vec![
                        chase(36_000, 96, 8, 2, true, 2.5),
                        strided(32, MB, 0.8),
                        hot(8 * KB, 3.0),
                    ],
                ),
            ],
            vec![0, 0, 1],
            0.040,
            2.4,
            56,
            0.30,
        ),
        "parser" => profile(
            "parser",
            Suite::Int,
            vec![phase(
                0.31,
                0.11,
                0.0,
                0.04,
                7,
                vec![
                    chase(12_000, 48, 16, 0, true, 1.2),
                    random(256 * KB, 0.6),
                    hot(6 * KB, 2.3),
                    hot(6 * KB, 2.2),
                ],
            )],
            vec![0],
            0.045,
            2.6,
            112,
            0.25,
        ),
        "perlbmk" => profile(
            "perlbmk",
            Suite::Int,
            vec![phase(
                0.29,
                0.13,
                0.0,
                0.05,
                6,
                vec![random(96 * KB, 0.6), hot(6 * KB, 6.0)],
            )],
            vec![0],
            0.050,
            2.8,
            120,
            0.22,
        ),
        "twolf" => profile(
            "twolf",
            Suite::Int,
            vec![phase(
                0.32,
                0.10,
                0.0,
                0.05,
                8,
                vec![
                    chase(10_000, 64, 16, 0, true, 1.4),
                    random(128 * KB, 0.6),
                    hot(6 * KB, 2.0),
                    hot(6 * KB, 2.0),
                ],
            )],
            vec![0],
            0.035,
            2.8,
            96,
            0.20,
        ),
        "vortex" => profile(
            "vortex",
            Suite::Int,
            vec![phase(
                0.30,
                0.14,
                0.0,
                0.04,
                7,
                vec![
                    strided(-32, 256 * KB, 0.8),
                    random(128 * KB, 0.5),
                    hot(6 * KB, 3.0),
                    hot(6 * KB, 3.0),
                ],
            )],
            vec![0],
            0.030,
            3.2,
            112,
            0.22,
        ),
        "vpr" => profile(
            "vpr",
            Suite::Int,
            vec![
                phase(
                    0.31,
                    0.11,
                    0.0,
                    0.05,
                    8,
                    vec![
                        chase(8_000, 64, 24, 0, true, 1.0),
                        random(512 * KB, 0.8),
                        hot(6 * KB, 4.0),
                    ],
                ),
                phase(
                    0.29,
                    0.13,
                    0.0,
                    0.05,
                    8,
                    vec![
                        random(768 * KB, 1.0),
                        strided(16, 128 * KB, 0.6),
                        hot(6 * KB, 4.0),
                    ],
                ),
            ],
            vec![0, 1],
            0.040,
            2.9,
            112,
            0.20,
        ),
        // ---------------------- phased synthetics ---------------------
        // (see PHASED_SYNTHETICS — sampling-pipeline workloads, not SPEC)
        "pulse" => profile(
            "pulse",
            Suite::Fp,
            vec![
                // Phase 0: memory-bound streaming burst — long strided
                // sweeps far beyond L2, low ILP pressure on the cache.
                phase(
                    0.34,
                    0.10,
                    0.75,
                    0.10,
                    16,
                    vec![
                        strided(32, 4 * MB, 2.5),
                        strided(-64, 3 * MB, 1.5),
                        hot(6 * KB, 1.5),
                    ],
                ),
                // Phase 1: cache-resident compute — almost everything
                // hits L1, CPI drops by multiples vs phase 0.
                phase(
                    0.18,
                    0.06,
                    0.70,
                    0.16,
                    12,
                    vec![hot(4 * KB, 6.0), strided(8, 16 * KB, 2.0)],
                ),
            ],
            vec![0, 1],
            0.010,
            4.5,
            48,
            0.10,
        ),
        "drift" => profile(
            "drift",
            Suite::Int,
            vec![
                // Phase 0: serialized pointer chasing (latency-bound).
                phase(
                    0.33,
                    0.08,
                    0.0,
                    0.04,
                    8,
                    vec![chase(24_000, 64, 8, 0, true, 2.5), hot(6 * KB, 2.0)],
                ),
                // Phase 1: regular strides (prefetcher-friendly).
                phase(
                    0.30,
                    0.12,
                    0.0,
                    0.05,
                    10,
                    vec![strided(64, 2 * MB, 2.5), hot(6 * KB, 2.0)],
                ),
                // Phase 2: random scatter (nothing helps but capacity).
                phase(
                    0.31,
                    0.11,
                    0.0,
                    0.04,
                    7,
                    vec![random(MB, 1.5), hot(6 * KB, 2.0)],
                ),
            ],
            vec![0, 1, 2, 1, 0, 2],
            0.035,
            2.8,
            96,
            0.20,
        ),
        "strobe" => profile(
            "strobe",
            Suite::Int,
            vec![
                // Phase 0: a long repeating miss sequence (Markov/TCP
                // learnable) over a large footprint.
                phase(
                    0.31,
                    0.11,
                    0.0,
                    0.04,
                    8,
                    vec![repeating(2400, 2 * MB, 0.03, 2.2), hot(6 * KB, 2.5)],
                ),
                // Phase 1: hostile random churn that evicts what phase 0
                // learned.
                phase(
                    0.29,
                    0.13,
                    0.0,
                    0.04,
                    7,
                    vec![random(1536 * KB, 1.2), hot(6 * KB, 2.5)],
                ),
            ],
            vec![0, 0, 1],
            0.040,
            3.0,
            72,
            0.25,
        ),
        _ => return None,
    };
    Some(p)
}

/// All 26 profiles in canonical order.
pub fn spec2000() -> Vec<BenchmarkProfile> {
    NAMES
        .iter()
        .map(|n| by_name(n).expect("registry covers NAMES"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_exist_and_validate() {
        let all = spec2000();
        assert_eq!(all.len(), 26);
        for p in &all {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("doom3").is_none());
    }

    #[test]
    fn suite_split_is_14_12() {
        let all = spec2000();
        let fp = all.iter().filter(|p| p.suite == Suite::Fp).count();
        assert_eq!(fp, 14);
        assert_eq!(all.len() - fp, 12);
    }

    #[test]
    fn selections_are_subsets_of_names() {
        for sel in [
            HIGH_SENSITIVITY.as_slice(),
            LOW_SENSITIVITY.as_slice(),
            DBCP_SELECTION.as_slice(),
            GHB_SELECTION.as_slice(),
        ] {
            for n in sel {
                assert!(NAMES.contains(n), "{n} not a benchmark");
            }
        }
    }

    #[test]
    fn ammp_defeats_line_contained_pointer_scan() {
        let p = by_name("ammp").unwrap();
        let found = p.phases.iter().flat_map(|ph| &ph.streams).any(|s| {
            matches!(
                s,
                StreamSpec::PointerChase {
                    next_offset, ..
                } if *next_offset >= 64
            )
        });
        assert!(found, "ammp's next pointer must sit past the 64-byte line");
    }

    #[test]
    fn mcf_has_decoy_pointers() {
        let p = by_name("mcf").unwrap();
        let found = p.phases.iter().flat_map(|ph| &ph.streams).any(
            |s| matches!(s, StreamSpec::PointerChase { decoy_pointers, .. } if *decoy_pointers > 0),
        );
        assert!(found);
    }

    #[test]
    fn phased_synthetics_validate_and_stay_out_of_the_campaign() {
        for name in PHASED_SYNTHETICS {
            let p = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                !NAMES.contains(&name),
                "{name} must not join the 26-benchmark campaign"
            );
            assert!(
                p.phases.len() >= 2,
                "{name} must have multiple distinct phases"
            );
            assert!(
                p.phase_pattern.len() >= 2,
                "{name} must alternate between phases"
            );
        }
    }

    #[test]
    fn high_and_low_sensitivity_disjoint() {
        for h in HIGH_SENSITIVITY {
            assert!(!LOW_SENSITIVITY.contains(&h));
        }
    }

    #[test]
    fn every_phase_has_a_hot_stream() {
        for p in spec2000() {
            for (i, ph) in p.phases.iter().enumerate() {
                let has_hot = ph.streams.iter().any(|s| {
                    matches!(
                        s,
                        StreamSpec::Strided { stride: 8, working_set, .. }
                        if *working_set <= 16 * KB
                    )
                });
                assert!(has_hot, "{} phase {i} lacks a hot stream", p.name);
            }
        }
    }
}
