//! The trace instruction format consumed by the out-of-order core.
//!
//! Traces are *dependency-explicit*: each instruction names its source
//! producers by backward distance in the instruction stream, which is what
//! an out-of-order core sees after perfect register renaming (renaming
//! removes false dependences, so true dataflow plus resources is exactly
//! what determines scheduling).

use microlib_model::{AccessKind, Addr};

/// Functional class of an instruction (drives functional-unit selection and
/// latency in the core model).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Integer ALU operation (1 cycle).
    IntAlu,
    /// Integer multiply (3 cycles, pipelined).
    IntMult,
    /// Integer divide (20 cycles, unpipelined).
    IntDiv,
    /// Floating-point add/compare (2 cycles, pipelined).
    FpAlu,
    /// Floating-point multiply (4 cycles, pipelined).
    FpMult,
    /// Floating-point divide (12 cycles, unpipelined).
    FpDiv,
    /// Data load (address in [`TraceInst::mem`]).
    Load,
    /// Data store (address and value in [`TraceInst::mem`]).
    Store,
    /// Control transfer (outcome in [`TraceInst::branch`]).
    Branch,
}

impl OpClass {
    /// Whether the class accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the class is a floating-point operation.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMult | OpClass::FpDiv)
    }
}

/// A data-memory reference attached to a load or store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemRef {
    /// Byte address (8-byte aligned in generated workloads).
    pub addr: Addr,
    /// Whether this is a store.
    pub is_store: bool,
    /// Value stored (ignored for loads; the hierarchy supplies load values).
    pub value: u64,
}

/// Branch outcome information attached to a branch instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchInfo {
    /// Whether the branch is taken.
    pub taken: bool,
    /// Target address when taken (the next sequential PC otherwise).
    pub target: Addr,
    /// Whether the (modelled) branch predictor mispredicts this instance;
    /// the core stalls fetch until the branch resolves, then pays the
    /// front-end refill penalty.
    pub mispredicted: bool,
}

/// One dynamic instruction of a workload trace.
///
/// # Examples
///
/// ```
/// use microlib_model::{AccessKind, Addr};
/// use microlib_trace::{OpClass, TraceInst};
///
/// let inst = TraceInst::alu(Addr::new(0x400000), OpClass::IntAlu, [Some(1), None]);
/// assert_eq!(inst.op, OpClass::IntAlu);
/// assert!(inst.mem.is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceInst {
    /// Program counter.
    pub pc: Addr,
    /// Functional class.
    pub op: OpClass,
    /// Backward distances to producer instructions (1 = the immediately
    /// preceding instruction). `None` slots are unused.
    pub src_deps: [Option<u32>; 2],
    /// Memory reference for loads/stores.
    pub mem: Option<MemRef>,
    /// Branch outcome for branches.
    pub branch: Option<BranchInfo>,
}

impl TraceInst {
    /// Builds a non-memory, non-branch instruction.
    pub fn alu(pc: Addr, op: OpClass, src_deps: [Option<u32>; 2]) -> Self {
        debug_assert!(!op.is_mem() && op != OpClass::Branch);
        TraceInst {
            pc,
            op,
            src_deps,
            mem: None,
            branch: None,
        }
    }

    /// Builds a load from `addr`.
    pub fn load(pc: Addr, addr: Addr, src_deps: [Option<u32>; 2]) -> Self {
        TraceInst {
            pc,
            op: OpClass::Load,
            src_deps,
            mem: Some(MemRef {
                addr,
                is_store: false,
                value: 0,
            }),
            branch: None,
        }
    }

    /// Builds a store of `value` to `addr`.
    pub fn store(pc: Addr, addr: Addr, value: u64, src_deps: [Option<u32>; 2]) -> Self {
        TraceInst {
            pc,
            op: OpClass::Store,
            src_deps,
            mem: Some(MemRef {
                addr,
                is_store: true,
                value,
            }),
            branch: None,
        }
    }

    /// The `(address, kind, value)` triple the functional warm phase
    /// consumes (see `MemorySystem::warm_inst`), if this instruction
    /// touches data memory. The single definition of that mapping — the
    /// live warm loop and warm-state capture must agree on it exactly.
    pub fn warm_mem_ref(&self) -> Option<(Addr, AccessKind, u64)> {
        self.mem.map(|m| {
            (
                m.addr,
                if m.is_store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                m.value,
            )
        })
    }

    /// Builds a branch.
    pub fn branch(pc: Addr, info: BranchInfo, src_deps: [Option<u32>; 2]) -> Self {
        TraceInst {
            pc,
            op: OpClass::Branch,
            src_deps,
            mem: None,
            branch: Some(info),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_classes() {
        let pc = Addr::new(0x400100);
        let l = TraceInst::load(pc, Addr::new(0x1000), [None, None]);
        assert_eq!(l.op, OpClass::Load);
        assert!(!l.mem.unwrap().is_store);
        let s = TraceInst::store(pc, Addr::new(0x1008), 5, [Some(1), None]);
        assert!(s.mem.unwrap().is_store);
        assert_eq!(s.mem.unwrap().value, 5);
        let b = TraceInst::branch(
            pc,
            BranchInfo {
                taken: true,
                target: Addr::new(0x400000),
                mispredicted: false,
            },
            [None, None],
        );
        assert_eq!(b.op, OpClass::Branch);
        assert!(b.branch.unwrap().taken);
    }

    #[test]
    fn op_class_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::FpMult.is_fp());
        assert!(!OpClass::IntMult.is_fp());
    }
}
