//! Turning a [`BenchmarkProfile`] into a concrete, deterministic workload:
//! a memory image (arrays, linked structures, value distributions) plus an
//! infinite instruction stream.

use crate::inst::{BranchInfo, OpClass, TraceInst};
use crate::profile::{BenchmarkProfile, PhaseProfile, StreamSpec, FREQUENT_VALUES};
use microlib_mem::FunctionalMemory;
use microlib_model::Addr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Base of the code region (PCs).
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base of the flat data region (arrays, random working sets).
pub const DATA_BASE: u64 = 0x1000_0000;
/// Base of the pointer heap (linked structures live here; content-directed
/// prefetching recognizes pointers by this region's high bits).
pub const HEAP_BASE: u64 = 0x4000_0000;
/// Bytes reserved per static basic block in the code region.
pub const BLOCK_CODE_BYTES: u64 = 256;

#[derive(Clone, Debug)]
enum ConcreteStream {
    Strided {
        base: u64,
        stride: i64,
        working_set: u64,
        /// Stream-level cursor kept for staggering; traversal position is
        /// per block (see `BlockCursor`).
        #[allow(dead_code)]
        cursor: u64,
    },
    Chain {
        nodes: Arc<Vec<u64>>,
        next_offset: u32,
        cursor: usize,
        last_load_seq: Option<u64>,
    },
    Random {
        base: u64,
        working_set: u64,
    },
    Repeating {
        sequence: Arc<Vec<u64>>,
        base: u64,
        working_set: u64,
        noise: f64,
        cursor: usize,
    },
}

/// Per-block traversal state: each basic block behaves like one loop with
/// its own position in the stream it is bound to (distinct loops sweep the
/// same data at distinct positions — and give their load PCs perfectly
/// regular strides).
#[derive(Clone, Copy, Debug, Default)]
struct BlockCursor {
    pos: u64,
    /// Reserved for per-block chain traversals (currently stream-level).
    #[allow(dead_code)]
    last_load_seq: Option<u64>,
}

#[derive(Clone, Debug)]
struct ConcretePhase {
    profile: PhaseProfile,
    streams: Vec<ConcreteStream>,
    block_cursors: Vec<BlockCursor>,
    /// Static binding of basic blocks to streams: every memory instruction
    /// of a block draws from the block's stream, so a block re-executed in
    /// a loop gives its load PCs consecutive positions of one stream —
    /// the stable per-PC behaviour that PC-indexed predictors (SP, GHB,
    /// DBCP) rely on. Entries are stream indices, populated proportionally
    /// to the stream weights.
    block_stream_lut: Vec<usize>,
    /// First code block owned by this phase (phases use disjoint blocks so
    /// basic-block vectors distinguish them).
    block_base: u32,
    blocks: u32,
}

/// A fully instantiated synthetic benchmark: memory layout + stream factory.
///
/// # Examples
///
/// ```
/// use microlib_trace::{benchmarks, Workload};
///
/// let profile = benchmarks::by_name("swim").unwrap();
/// let workload = Workload::new(profile, 42);
/// let first: Vec<_> = workload.stream().take(100).collect();
/// assert_eq!(first.len(), 100);
/// // Deterministic: same seed, same trace.
/// let again: Vec<_> = workload.stream().take(100).collect();
/// assert_eq!(first, again);
/// ```
#[derive(Clone, Debug)]
pub struct Workload {
    profile: BenchmarkProfile,
    seed: u64,
    phases: Vec<ConcretePhase>,
    /// The initial memory image, built once at instantiation. `initialize`
    /// stamps copy-on-write clones of it into fresh systems, so laying out
    /// multi-megabyte structures is paid once per workload, not once per
    /// run (sampled campaigns initialize one system per slice).
    image: Arc<FunctionalMemory>,
}

impl Workload {
    /// Instantiates `profile` with a deterministic layout derived from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`] — the
    /// built-in benchmark profiles are tested to pass.
    pub fn new(profile: BenchmarkProfile, seed: u64) -> Self {
        profile.validate().expect("invalid benchmark profile");
        let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(profile.name));
        let mut data_cursor = DATA_BASE;
        let mut heap_cursor = HEAP_BASE;
        let mut init_words: Vec<(u64, u64)> = Vec::new();
        let mut phases = Vec::new();
        let blocks_per_phase = (profile.code_blocks / profile.phases.len() as u32).max(1);

        for (pi, phase) in profile.phases.iter().enumerate() {
            let mut streams = Vec::new();
            for spec in &phase.streams {
                match *spec {
                    StreamSpec::Strided {
                        stride,
                        working_set,
                        ..
                    } => {
                        // 32 KB alignment: small regions of one phase map
                        // onto the same L1 sets, producing the conflict
                        // misses victim caches exist for.
                        let base = align_up(data_cursor, 32 * 1024);
                        data_cursor = base + working_set;
                        // Pre-fill with values. Some regions are entirely
                        // frequent-valued (zero-initialized arrays are
                        // common in real programs) — the food source of the
                        // frequent value cache.
                        let frequent_region =
                            rng.gen::<f64>() < (profile.frequent_value_bias * 2.5).min(0.95);
                        let words = (working_set / 8).min(1 << 16);
                        let step = (working_set / 8 / words.max(1)).max(1) * 8;
                        let mut a = base;
                        for _ in 0..words {
                            let v = if frequent_region {
                                value_sample(&mut rng, 1.0)
                            } else {
                                value_sample(&mut rng, profile.frequent_value_bias)
                            };
                            init_words.push((a, v));
                            a += step;
                        }
                        streams.push(ConcreteStream::Strided {
                            base,
                            stride,
                            working_set,
                            cursor: 0,
                        });
                    }
                    StreamSpec::PointerChase {
                        nodes,
                        node_bytes,
                        next_offset,
                        decoy_pointers,
                        shuffled,
                        ..
                    } => {
                        let node_bytes = align_up(node_bytes as u64, 8);
                        let base = align_up(heap_cursor, 64);
                        heap_cursor = base + nodes as u64 * node_bytes;
                        let mut addrs: Vec<u64> =
                            (0..nodes as u64).map(|i| base + i * node_bytes).collect();
                        if shuffled {
                            // Fisher-Yates with the layout RNG.
                            for i in (1..addrs.len()).rev() {
                                let j = rng.gen_range(0..=i);
                                addrs.swap(i, j);
                            }
                        }
                        // Write next pointers (circular) and decoys.
                        for w in 0..addrs.len() {
                            let node = addrs[w];
                            let next = addrs[(w + 1) % addrs.len()];
                            init_words.push((node + next_offset as u64, next));
                            for d in 0..decoy_pointers {
                                let off = 8 * (d as u64 + 1);
                                if off != next_offset as u64 && off < node_bytes {
                                    let target = addrs[rng.gen_range(0..addrs.len())];
                                    init_words.push((node + off, target));
                                }
                            }
                        }
                        streams.push(ConcreteStream::Chain {
                            nodes: Arc::new(addrs),
                            next_offset,
                            cursor: 0,
                            last_load_seq: None,
                        });
                    }
                    StreamSpec::Random { working_set, .. } => {
                        let base = align_up(data_cursor, 64);
                        data_cursor = base + working_set;
                        streams.push(ConcreteStream::Random { base, working_set });
                    }
                    StreamSpec::Repeating {
                        sequence_len,
                        working_set,
                        noise,
                        ..
                    } => {
                        let base = align_up(data_cursor, 64);
                        data_cursor = base + working_set;
                        let sequence: Vec<u64> = (0..sequence_len)
                            .map(|_| base + (rng.gen_range(0..working_set / 8)) * 8)
                            .collect();
                        streams.push(ConcreteStream::Repeating {
                            sequence: Arc::new(sequence),
                            base,
                            working_set,
                            noise,
                            cursor: 0,
                        });
                    }
                }
            }
            // Distribute the 64 LUT slots proportionally to stream weights
            // (largest-remainder), so the dynamic mix matches the weights
            // while each static PC stays bound to one stream.
            let weight_sum: f64 = phase.streams.iter().map(StreamSpec::weight).sum();
            let mut lut = Vec::with_capacity(64);
            for (si, spec) in phase.streams.iter().enumerate() {
                let share = (spec.weight() / weight_sum * 64.0).round() as usize;
                for _ in 0..share.max(1) {
                    lut.push(si);
                }
            }
            lut.truncate(64);
            while lut.len() < 64 {
                lut.push(lut[lut.len() % phase.streams.len().max(1)]);
            }
            // Deterministic shuffle so adjacent PCs do not all share a
            // stream.
            for i in (1..lut.len()).rev() {
                let j = rng.gen_range(0..=i);
                lut.swap(i, j);
            }
            // Stagger each block's starting position through its stream so
            // concurrent "loops" cover different parts of the data.
            let mut block_cursors = Vec::with_capacity(blocks_per_phase as usize);
            for b in 0..blocks_per_phase {
                let si = lut[(b & 63) as usize].min(streams.len() - 1);
                let pos = match &streams[si] {
                    ConcreteStream::Strided { working_set, .. } => {
                        (b as u64 * (working_set / blocks_per_phase as u64)) & !7
                    }
                    ConcreteStream::Chain { nodes, .. } => {
                        b as u64 * (nodes.len() as u64 / blocks_per_phase as u64)
                    }
                    ConcreteStream::Repeating { sequence, .. } => {
                        b as u64 * (sequence.len() as u64 / blocks_per_phase as u64)
                    }
                    ConcreteStream::Random { .. } => 0,
                };
                block_cursors.push(BlockCursor {
                    pos,
                    last_load_seq: None,
                });
            }
            phases.push(ConcretePhase {
                profile: phase.clone(),
                streams,
                block_cursors,
                block_stream_lut: lut,
                block_base: pi as u32 * blocks_per_phase,
                blocks: blocks_per_phase,
            });
        }

        let mut image = FunctionalMemory::new();
        for (addr, value) in &init_words {
            image.initialize_word(Addr::new(*addr), *value);
        }
        Workload {
            profile,
            seed,
            phases,
            image: Arc::new(image),
        }
    }

    /// Process-wide shared instantiation of `profile` with `seed`, keyed by
    /// `(profile.name, seed)`. Instantiation lays out a multi-megabyte
    /// memory image, which dominates the cost of short runs; every run of
    /// the same (benchmark, seed) pair can share one immutable instance
    /// ([`Workload::initialize`] stamps copy-on-write clones, and
    /// [`Workload::stream`] starts fresh cursors, so sharing is invisible).
    ///
    /// The name is the cache key: callers must pass profiles from the
    /// built-in registry (`benchmarks::by_name`), where a name denotes one
    /// profile. Hand-built profiles should use [`Workload::new`].
    pub fn shared(profile: BenchmarkProfile, seed: u64) -> Arc<Workload> {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        type Cache = Mutex<HashMap<(&'static str, u64), Arc<Workload>>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry((profile.name, seed))
                .or_insert_with(|| Arc::new(Workload::new(profile, seed))),
        )
    }

    /// The profile this workload instantiates.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// The benchmark name.
    pub fn name(&self) -> &'static str {
        self.profile.name
    }

    /// The layout/stream seed this workload was instantiated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Writes the workload's initial memory image (both architectural and
    /// DRAM copies) into `memory`. Call once, on a fresh memory, before
    /// simulation: the pre-built image **replaces** the current contents
    /// (a cheap copy-on-write clone — pages are only copied when the
    /// simulation later writes them).
    pub fn initialize(&self, memory: &mut FunctionalMemory) {
        *memory = (*self.image).clone();
    }

    /// Creates the deterministic instruction stream (infinite; `take` what
    /// you need).
    pub fn stream(&self) -> InstStream {
        InstStream {
            inner: StreamInner::Generate(Box::new(GenState {
                rng: SmallRng::seed_from_u64(
                    self.seed ^ hash_name(self.profile.name) ^ 0x5717_ce57,
                ),
                profile: self.profile.clone(),
                phases: self.phases.clone(),
                seq: 0,
                block_left: 0,
                pc: Addr::new(CODE_BASE),
                block_pc: Addr::new(CODE_BASE),
                current_block: 0,
                block_mem_slot: 0,
            })),
        }
    }
}

/// Deterministic instruction stream for one workload.
///
/// A stream is either a *generator* (infinite, RNG-driven — the mode
/// [`Workload::stream`] returns) or a *zero-copy replay cursor* over a
/// shared pre-materialized [`TraceBuffer`](crate::TraceBuffer) (finite,
/// pure table reads — the mode [`TraceBuffer::replay`] returns). Both
/// modes yield the identical instruction sequence for the same
/// (benchmark, seed) pair; campaigns share one buffer across cells and
/// replay it instead of re-generating.
///
/// [`TraceBuffer::replay`]: crate::TraceBuffer::replay
#[derive(Clone, Debug)]
pub struct InstStream {
    inner: StreamInner,
}

#[derive(Clone, Debug)]
enum StreamInner {
    Generate(Box<GenState>),
    Replay {
        buffer: Arc<crate::TraceBuffer>,
        pos: u64,
    },
}

impl InstStream {
    pub(crate) fn replay(buffer: Arc<crate::TraceBuffer>, pos: u64) -> Self {
        InstStream {
            inner: StreamInner::Replay { buffer, pos },
        }
    }

    /// The number of instructions produced so far (for replay cursors, the
    /// current buffer position). Named to avoid clashing with
    /// [`Iterator::position`].
    pub fn stream_position(&self) -> u64 {
        match &self.inner {
            StreamInner::Generate(g) => g.seq,
            StreamInner::Replay { pos, .. } => *pos,
        }
    }

    /// Fast-forwards to absolute position `target` without yielding the
    /// skipped instructions. O(1) for replay cursors; generators step
    /// through the intermediate instructions.
    ///
    /// # Panics
    ///
    /// Panics if `target` is behind the current position, or (replay mode)
    /// beyond the end of the buffer.
    pub fn advance_to(&mut self, target: u64) {
        assert!(
            target >= self.stream_position(),
            "cannot rewind stream from {} to {target}",
            self.stream_position()
        );
        match &mut self.inner {
            StreamInner::Generate(g) => {
                while g.seq < target {
                    g.next_inst();
                }
            }
            StreamInner::Replay { buffer, pos } => {
                assert!(
                    target <= buffer.len(),
                    "advance target {target} beyond buffer length {}",
                    buffer.len()
                );
                *pos = target;
            }
        }
    }
}

impl Iterator for InstStream {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        match &mut self.inner {
            StreamInner::Generate(g) => Some(g.next_inst()),
            StreamInner::Replay { buffer, pos } => {
                if *pos < buffer.len() {
                    let inst = buffer.get(*pos);
                    *pos += 1;
                    Some(inst)
                } else {
                    None
                }
            }
        }
    }
}

/// The RNG-driven generator state behind [`InstStream`]'s generate mode.
#[derive(Clone, Debug)]
struct GenState {
    rng: SmallRng,
    profile: BenchmarkProfile,
    phases: Vec<ConcretePhase>,
    seq: u64,
    block_left: u32,
    pc: Addr,
    block_pc: Addr,
    current_block: u32,
    /// Memory accesses issued by the current block execution (the "loop
    /// iteration" offset for strided streams).
    block_mem_slot: u32,
}

impl GenState {
    /// Index of the phase active at instruction `seq`.
    fn phase_index(&self, seq: u64) -> usize {
        let segment = (seq / self.profile.phase_len) as usize;
        self.profile.phase_pattern[segment % self.profile.phase_pattern.len()]
    }

    fn sample_dep(&mut self) -> Option<u32> {
        if self.seq == 0 {
            return None;
        }
        let mean = self.profile.mean_dep_distance;
        let u: f64 = self.rng.gen::<f64>().max(1e-9);
        let d = 1.0 + (-u.ln()) * (mean - 1.0).max(0.0);
        let d = (d as u32).clamp(1, 64).min(self.seq as u32);
        Some(d)
    }

    fn next_block(&mut self, phase: usize) {
        let ph = &self.phases[phase];
        // Skewed block popularity within the phase's block range so basic-
        // block vectors carry real signal.
        let u: f64 = self.rng.gen();
        let idx = ((u * u) * ph.blocks as f64) as u32;
        self.current_block = ph.block_base + idx.min(ph.blocks - 1);
        self.block_pc = Addr::new(CODE_BASE + self.current_block as u64 * BLOCK_CODE_BYTES);
        self.pc = self.block_pc;
        let len = ph.profile.block_len;
        let jitter = if len > 4 {
            self.rng.gen_range(0..len / 2)
        } else {
            0
        };
        self.block_left = (len - len / 4 + jitter).max(2);
        self.block_mem_slot = 0;
    }

    fn gen_mem_access(
        &mut self,
        phase: usize,
        _pc: Addr,
        is_store: bool,
    ) -> (Addr, Option<u32>, u64) {
        let bias = self.profile.frequent_value_bias;
        let block = self.current_block;
        let ph = &mut self.phases[phase];
        // Static block -> stream binding (see `block_stream_lut`).
        let chosen = ph.block_stream_lut[(block & 63) as usize].min(ph.streams.len() - 1);
        let seq_now = self.seq;
        let slot = self.block_mem_slot;
        self.block_mem_slot += 1;
        let block_idx = (block.saturating_sub(ph.block_base) as usize)
            .min(ph.block_cursors.len().saturating_sub(1));
        let value = value_sample(&mut self.rng, bias);
        let stream = &mut ph.streams[chosen];
        match stream {
            ConcreteStream::Strided {
                base,
                stride,
                working_set,
                ..
            } => {
                // Loop-iteration semantics with a *per-block* cursor: this
                // block's cursor advances once per block execution; each
                // static slot reads a fixed offset from it. Every memory PC
                // therefore has a constant stride across executions — what
                // stride-based predictors see in real loops.
                let cur = &mut ph.block_cursors[block_idx];
                let ws = *working_set as i64;
                if slot == 0 {
                    let mut next = cur.pos as i64 + *stride;
                    if next < 0 {
                        next += ws;
                    }
                    cur.pos = (next % ws) as u64 & !7;
                }
                let addr = *base + (cur.pos + slot as u64 * 8) % *working_set;
                (Addr::new(addr), None, value)
            }
            ConcreteStream::Chain {
                nodes,
                next_offset,
                cursor,
                last_load_seq,
            } => {
                // One global traversal (stream-level cursor): pointer
                // chasing is *serial* — that is the property that defines
                // these workloads — and its miss sequence repeats exactly,
                // which is what Markov prefetching learns.
                let idx = *cursor % nodes.len();
                let node = nodes[idx];
                let addr = node + *next_offset as u64;
                let dep = last_load_seq
                    .map(|s| (seq_now - s).min(64) as u32)
                    .filter(|d| *d >= 1);
                if is_store {
                    // Stores to the structure rewrite the link (as list
                    // updates do), preserving pointer integrity for the
                    // content scans.
                    let next_node = nodes[(idx + 1) % nodes.len()];
                    (Addr::new(addr), dep, next_node)
                } else {
                    *last_load_seq = Some(seq_now);
                    *cursor = (idx + 1) % nodes.len();
                    (Addr::new(addr), dep, value)
                }
            }
            ConcreteStream::Random { base, working_set } => {
                let addr = *base + self.rng.gen_range(0..*working_set / 8) * 8;
                (Addr::new(addr), None, value)
            }
            ConcreteStream::Repeating {
                sequence,
                base,
                working_set,
                noise,
                cursor,
            } => {
                // One global replay position, so the observable address
                // sequence repeats verbatim (Markov/TCP food).
                let idx = *cursor % sequence.len();
                let addr = if self.rng.gen::<f64>() < *noise {
                    *base + self.rng.gen_range(0..*working_set / 8) * 8
                } else {
                    sequence[idx]
                };
                *cursor = (idx + 1) % sequence.len();
                (Addr::new(addr), None, value)
            }
        }
    }
}

impl GenState {
    /// Generates the next instruction (the stream is infinite).
    fn next_inst(&mut self) -> TraceInst {
        let phase = self.phase_index(self.seq);
        if self.block_left == 0 {
            self.next_block(phase);
        }
        let pc = self.pc;
        self.pc = pc.offset(4);
        self.block_left -= 1;

        let inst = if self.block_left == 0 {
            // Block-terminating branch.
            let taken = self.rng.gen::<f64>() < 0.7;
            let mispredicted = self.rng.gen::<f64>() < self.profile.mispredict_rate;
            let dep = self.sample_dep();
            // Target resolved when the next block is chosen; use the block
            // base of a plausible target (the actual next block is chosen
            // fresh — the core only uses `taken`/`mispredicted`).
            let target = self.block_pc;
            TraceInst::branch(
                pc,
                BranchInfo {
                    taken,
                    target,
                    mispredicted,
                },
                [dep, None],
            )
        } else {
            let ph = &self.phases[phase].profile;
            // Static code: an instruction's class is a pure function of its
            // PC (real binaries don't re-roll their opcodes per execution).
            // Only operands — addresses via stream cursors, dependencies,
            // values — vary dynamically.
            let h = pc.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let roll = ((h >> 11) & 0xFFFF_FFFF) as f64 / 4_294_967_296.0;
            if roll < ph.load_frac {
                let (addr, chain_dep, _) = self.gen_mem_access(phase, pc, false);
                // Most loads have trivially computable addresses (index
                // increments folded into the instruction); only some wait
                // on earlier producers.
                let dep2 = if self.rng.gen::<f64>() < 0.4 {
                    self.sample_dep()
                } else {
                    None
                };
                TraceInst::load(pc, addr, [chain_dep.or(dep2), None])
            } else if roll < ph.load_frac + ph.store_frac {
                let (addr, chain_dep, value) = self.gen_mem_access(phase, pc, true);
                let dep2 = self.sample_dep();
                TraceInst::store(pc, addr, value, [chain_dep, dep2])
            } else {
                let h2 = h.rotate_left(23);
                let fp = (h2 & 0xFF) as f64 / 256.0 < ph.fp_frac;
                let mult = ((h2 >> 8) & 0xFF) as f64 / 256.0 < ph.mult_frac;
                let div = mult && ((h2 >> 16) & 0xFF) < 26;
                let op = match (fp, mult, div) {
                    (false, false, _) => OpClass::IntAlu,
                    (false, true, false) => OpClass::IntMult,
                    (false, true, true) => OpClass::IntDiv,
                    (true, false, _) => OpClass::FpAlu,
                    (true, true, false) => OpClass::FpMult,
                    (true, true, true) => OpClass::FpDiv,
                };
                let d1 = self.sample_dep();
                let d2 = if self.rng.gen::<f64>() < 0.5 {
                    self.sample_dep()
                } else {
                    None
                };
                TraceInst::alu(pc, op, [d1, d2])
            }
        };
        self.seq += 1;
        inst
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn value_sample(rng: &mut SmallRng, frequent_bias: f64) -> u64 {
    if rng.gen::<f64>() < frequent_bias {
        FREQUENT_VALUES[rng.gen_range(0..FREQUENT_VALUES.len())]
    } else {
        rng.gen::<u64>() | 1 << 63 // high bit set: never looks like a heap pointer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn streams_are_deterministic() {
        let w = Workload::new(benchmarks::by_name("mcf").unwrap(), 7);
        let a: Vec<_> = w.stream().take(500).collect();
        let b: Vec<_> = w.stream().take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = benchmarks::by_name("gzip").unwrap();
        let a: Vec<_> = Workload::new(p.clone(), 1).stream().take(200).collect();
        let b: Vec<_> = Workload::new(p, 2).stream().take(200).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pointer_chase_values_match_layout() {
        let w = Workload::new(benchmarks::by_name("mcf").unwrap(), 3);
        let mut mem = FunctionalMemory::new();
        w.initialize(&mut mem);
        // Find two consecutive chain loads; the value at the first load's
        // address must point at the second load's node.
        let insts: Vec<_> = w.stream().take(5000).collect();
        let chain_loads: Vec<_> = insts
            .iter()
            .filter(|i| {
                i.op == OpClass::Load && i.mem.map(|m| m.addr.raw() >= HEAP_BASE).unwrap_or(false)
            })
            .collect();
        assert!(chain_loads.len() > 2, "mcf must chase pointers");
        let first = chain_loads[0].mem.unwrap().addr;
        let second = chain_loads[1].mem.unwrap().addr;
        // The value at the first load's address is the next node's base;
        // the second chain load reads that node's next pointer.
        let next_ptr = mem.architectural(first);
        assert!(next_ptr >= HEAP_BASE, "next pointer must live in the heap");
        assert!(
            second.raw() >= next_ptr && second.raw() - next_ptr < 128,
            "second chain load ({:#x}) must address a field of the next node ({next_ptr:#x})",
            second.raw()
        );
    }

    #[test]
    fn branches_terminate_blocks() {
        let w = Workload::new(benchmarks::by_name("crafty").unwrap(), 5);
        let insts: Vec<_> = w.stream().take(2000).collect();
        let branches = insts.iter().filter(|i| i.op == OpClass::Branch).count();
        assert!(branches > 50, "expected many basic blocks, got {branches}");
        // Every branch is followed by a block-start PC (aligned to
        // BLOCK_CODE_BYTES).
        for pair in insts.windows(2) {
            if pair[0].op == OpClass::Branch {
                assert_eq!(pair[1].pc.raw() % BLOCK_CODE_BYTES, 0);
            }
        }
    }

    #[test]
    fn phase_index_cycles_pattern() {
        let p = benchmarks::by_name("gcc").unwrap();
        let w = Workload::new(p.clone(), 1);
        let s = w.stream();
        let StreamInner::Generate(g) = &s.inner else {
            panic!("Workload::stream is a generator");
        };
        let max_phase = p.phases.len();
        for seg in 0..6u64 {
            let idx = g.phase_index(seg * p.phase_len + 1);
            assert!(idx < max_phase);
        }
    }

    #[test]
    fn addresses_are_word_aligned() {
        for name in ["swim", "mcf", "gzip", "vpr"] {
            let w = Workload::new(benchmarks::by_name(name).unwrap(), 11);
            for inst in w.stream().take(3000) {
                if let Some(m) = inst.mem {
                    assert_eq!(m.addr.raw() % 8, 0, "{name}: unaligned {:#x}", m.addr.raw());
                }
            }
        }
    }

    #[test]
    fn dep_distances_are_bounded_and_causal() {
        let w = Workload::new(benchmarks::by_name("parser").unwrap(), 9);
        for (i, inst) in w.stream().take(5000).enumerate() {
            for d in inst.src_deps.into_iter().flatten() {
                assert!((1..=64).contains(&d));
                assert!((d as u64) <= i as u64, "dep beyond start at inst {i}");
            }
        }
    }
}
