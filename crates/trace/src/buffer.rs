//! Pre-materialized trace storage: the packed [`TraceBuffer`].
//!
//! Generating an instruction stream is RNG-heavy (every instruction rolls
//! dependencies, addresses and values), and a campaign re-generates the
//! *identical* stream for every mechanism column of a sweep. A
//! [`TraceBuffer`] runs the generator once per (benchmark, seed, length)
//! and stores the stream in struct-of-arrays form (27 bytes per
//! instruction); replaying it through an [`InstStream`] cursor is a pure
//! table read that is shared across campaign cells via `Arc` with zero
//! copying.
//!
//! Replay is exact: `buffer.get(i)` reconstructs the very [`TraceInst`]
//! the generator produced (property-tested in `tests/properties.rs`), so
//! results are bit-identical whether a cell streams or replays.

use crate::inst::{BranchInfo, MemRef, OpClass, TraceInst};
use crate::workload::{InstStream, Workload};
use microlib_model::Addr;
use std::sync::Arc;

/// Bit assignments inside [`TraceBuffer::meta`].
const OP_MASK: u8 = 0x0F;
const FLAG_TAKEN: u8 = 0x10;
const FLAG_MISPREDICTED: u8 = 0x20;

fn encode_op(op: OpClass) -> u8 {
    match op {
        OpClass::IntAlu => 0,
        OpClass::IntMult => 1,
        OpClass::IntDiv => 2,
        OpClass::FpAlu => 3,
        OpClass::FpMult => 4,
        OpClass::FpDiv => 5,
        OpClass::Load => 6,
        OpClass::Store => 7,
        OpClass::Branch => 8,
    }
}

fn decode_op(bits: u8) -> OpClass {
    match bits & OP_MASK {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMult,
        2 => OpClass::IntDiv,
        3 => OpClass::FpAlu,
        4 => OpClass::FpMult,
        5 => OpClass::FpDiv,
        6 => OpClass::Load,
        7 => OpClass::Store,
        8 => OpClass::Branch,
        other => unreachable!("invalid op encoding {other}"),
    }
}

/// A packed, shareable recording of the first `len` instructions of one
/// workload's deterministic stream.
///
/// Layout is struct-of-arrays: one lane per field, with the memory address
/// and branch target sharing a lane (an instruction has at most one of
/// them). Dependency distances are 1..=64 by construction, so they pack
/// into a byte with 0 as the "no dependency" sentinel.
///
/// # Examples
///
/// ```
/// use microlib_trace::{benchmarks, TraceBuffer, Workload};
/// use std::sync::Arc;
///
/// let workload = Workload::new(benchmarks::by_name("swim").unwrap(), 42);
/// let buffer = Arc::new(TraceBuffer::capture(&workload, 1_000));
/// let replayed: Vec<_> = TraceBuffer::replay(&buffer).take(1_000).collect();
/// let generated: Vec<_> = workload.stream().take(1_000).collect();
/// assert_eq!(replayed, generated);
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    benchmark: &'static str,
    seed: u64,
    pc: Vec<u64>,
    /// Memory address for loads/stores, branch target for branches.
    aux: Vec<u64>,
    /// Stored value for stores (zero elsewhere, matching the generator).
    value: Vec<u64>,
    /// Dependency distances, 0 = none.
    deps: Vec<[u8; 2]>,
    /// Packed op class + branch flags.
    meta: Vec<u8>,
}

impl TraceBuffer {
    /// Runs `workload`'s generator for `len` instructions and packs the
    /// result.
    pub fn capture(workload: &Workload, len: u64) -> Self {
        let n = len as usize;
        let mut buf = TraceBuffer {
            benchmark: workload.name(),
            seed: workload.seed(),
            pc: Vec::with_capacity(n),
            aux: Vec::with_capacity(n),
            value: Vec::with_capacity(n),
            deps: Vec::with_capacity(n),
            meta: Vec::with_capacity(n),
        };
        for inst in workload.stream().take(n) {
            buf.push(&inst);
        }
        buf
    }

    fn push(&mut self, inst: &TraceInst) {
        let mut meta = encode_op(inst.op);
        let mut aux = 0u64;
        let mut value = 0u64;
        if let Some(m) = inst.mem {
            aux = m.addr.raw();
            value = m.value;
        }
        if let Some(b) = inst.branch {
            aux = b.target.raw();
            if b.taken {
                meta |= FLAG_TAKEN;
            }
            if b.mispredicted {
                meta |= FLAG_MISPREDICTED;
            }
        }
        let dep = |d: Option<u32>| {
            debug_assert!(d.is_none_or(|d| (1..=64).contains(&d)));
            d.map_or(0u8, |d| d as u8)
        };
        self.pc.push(inst.pc.raw());
        self.aux.push(aux);
        self.value.push(value);
        self.deps
            .push([dep(inst.src_deps[0]), dep(inst.src_deps[1])]);
        self.meta.push(meta);
    }

    /// The benchmark this buffer was captured from.
    pub fn benchmark(&self) -> &'static str {
        self.benchmark
    }

    /// The workload seed this buffer was captured with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> u64 {
        self.meta.len() as u64
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Approximate heap footprint in bytes (capacity-based).
    pub fn approx_bytes(&self) -> usize {
        self.pc.capacity() * 8
            + self.aux.capacity() * 8
            + self.value.capacity() * 8
            + self.deps.capacity() * 2
            + self.meta.capacity()
    }

    /// Reconstructs instruction `index` exactly as generated.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn get(&self, index: u64) -> TraceInst {
        let i = index as usize;
        let meta = self.meta[i];
        let op = decode_op(meta);
        let to_dep = |d: u8| (d != 0).then_some(d as u32);
        let deps = self.deps[i];
        TraceInst {
            pc: Addr::new(self.pc[i]),
            op,
            src_deps: [to_dep(deps[0]), to_dep(deps[1])],
            mem: op.is_mem().then(|| MemRef {
                addr: Addr::new(self.aux[i]),
                is_store: op == OpClass::Store,
                value: self.value[i],
            }),
            branch: (op == OpClass::Branch).then(|| BranchInfo {
                taken: meta & FLAG_TAKEN != 0,
                target: Addr::new(self.aux[i]),
                mispredicted: meta & FLAG_MISPREDICTED != 0,
            }),
        }
    }

    /// A zero-copy replay cursor over the whole buffer (the replay face of
    /// [`InstStream`]).
    pub fn replay(buffer: &Arc<Self>) -> InstStream {
        InstStream::replay(Arc::clone(buffer), 0)
    }

    /// A replay cursor starting at instruction `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start > self.len()`.
    pub fn replay_from(buffer: &Arc<Self>, start: u64) -> InstStream {
        assert!(
            start <= buffer.len(),
            "replay start {start} beyond buffer length {}",
            buffer.len()
        );
        InstStream::replay(Arc::clone(buffer), start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    fn workload(name: &str, seed: u64) -> Workload {
        Workload::new(benchmarks::by_name(name).unwrap(), seed)
    }

    #[test]
    fn replay_matches_generation() {
        for name in ["swim", "mcf", "crafty"] {
            let w = workload(name, 7);
            let buf = Arc::new(TraceBuffer::capture(&w, 3_000));
            assert_eq!(buf.len(), 3_000);
            let generated: Vec<_> = w.stream().take(3_000).collect();
            let replayed: Vec<_> = TraceBuffer::replay(&buf).collect();
            assert_eq!(generated, replayed, "{name}");
        }
    }

    #[test]
    fn replay_from_offset_matches_tail() {
        let w = workload("gzip", 11);
        let buf = Arc::new(TraceBuffer::capture(&w, 2_000));
        let tail: Vec<_> = w.stream().skip(500).take(1_500).collect();
        let replayed: Vec<_> = TraceBuffer::replay_from(&buf, 500).collect();
        assert_eq!(tail, replayed);
    }

    #[test]
    fn cursor_ends_at_buffer_length() {
        let w = workload("swim", 1);
        let buf = Arc::new(TraceBuffer::capture(&w, 100));
        let mut s = TraceBuffer::replay(&buf);
        assert_eq!(s.by_ref().count(), 100);
        assert!(s.next().is_none());
        assert_eq!(s.stream_position(), 100);
    }

    #[test]
    fn op_encoding_round_trips() {
        for op in [
            OpClass::IntAlu,
            OpClass::IntMult,
            OpClass::IntDiv,
            OpClass::FpAlu,
            OpClass::FpMult,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
        ] {
            assert_eq!(decode_op(encode_op(op)), op);
        }
    }

    #[test]
    fn metadata_is_preserved() {
        let w = workload("mcf", 3);
        let buf = Arc::new(TraceBuffer::capture(&w, 500));
        assert_eq!(buf.benchmark(), "mcf");
        assert_eq!(buf.seed(), 3);
        assert!(buf.approx_bytes() >= 500 * 27);
    }
}
