//! Trace windows: the "skip N, simulate M" selection every simulation run
//! uses, whether the window was chosen arbitrarily (the articles' "skip 1
//! billion, simulate 2 billion") or by SimPoint.

use crate::inst::TraceInst;

/// A contiguous window of the dynamic instruction stream.
///
/// # Examples
///
/// ```
/// use microlib_trace::TraceWindow;
///
/// let w = TraceWindow::new(1_000, 5_000);
/// assert_eq!(w.skip, 1_000);
/// assert_eq!(w.simulate, 5_000);
/// assert_eq!(w.end(), 6_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceWindow {
    /// Instructions to fast-forward (functionally warmed, not timed).
    pub skip: u64,
    /// Instructions to simulate in detail.
    pub simulate: u64,
}

impl TraceWindow {
    /// Creates a window.
    pub fn new(skip: u64, simulate: u64) -> Self {
        TraceWindow { skip, simulate }
    }

    /// A window starting at instruction zero.
    pub fn from_start(simulate: u64) -> Self {
        TraceWindow { skip: 0, simulate }
    }

    /// The window covering SimPoint interval `index` of length
    /// `interval_len`.
    pub fn simpoint_interval(index: usize, interval_len: u64) -> Self {
        TraceWindow {
            skip: index as u64 * interval_len,
            simulate: interval_len,
        }
    }

    /// First instruction past the window.
    pub fn end(&self) -> u64 {
        self.skip + self.simulate
    }

    /// Applies the window to an instruction stream.
    pub fn apply<I>(&self, stream: I) -> std::iter::Take<std::iter::Skip<I>>
    where
        I: Iterator<Item = TraceInst>,
    {
        stream.skip(self.skip as usize).take(self.simulate as usize)
    }
}

impl microlib_model::BinCodec for TraceWindow {
    fn encode(&self, e: &mut microlib_model::Encoder) {
        e.put_u64(self.skip);
        e.put_u64(self.simulate);
    }
    fn decode(d: &mut microlib_model::Decoder<'_>) -> Result<Self, microlib_model::CodecError> {
        Ok(TraceWindow {
            skip: d.take_u64()?,
            simulate: d.take_u64()?,
        })
    }
}

impl std::fmt::Display for TraceWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "skip {} simulate {}", self.skip, self.simulate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::workload::Workload;

    #[test]
    fn window_slices_the_stream() {
        let w = Workload::new(benchmarks::by_name("swim").unwrap(), 1);
        let full: Vec<_> = w.stream().take(300).collect();
        let window = TraceWindow::new(100, 50);
        let sliced: Vec<_> = window.apply(w.stream()).collect();
        assert_eq!(sliced.len(), 50);
        assert_eq!(sliced[..], full[100..150]);
    }

    #[test]
    fn simpoint_interval_window() {
        let w = TraceWindow::simpoint_interval(3, 10_000);
        assert_eq!(w.skip, 30_000);
        assert_eq!(w.simulate, 10_000);
        assert_eq!(w.end(), 40_000);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TraceWindow::new(5, 7).to_string(), "skip 5 simulate 7");
    }
}
