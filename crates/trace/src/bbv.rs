//! Basic-block vector (BBV) profiling — the front half of SimPoint
//! (Sherwood et al., ASPLOS 2002), which the paper uses for trace selection.
//!
//! The profiler splits the dynamic instruction stream into fixed-size
//! intervals and counts, per interval, how many instructions execute in
//! each static basic block. Intervals with similar vectors execute similar
//! code — the clustering half ([`crate::simpoint`]) exploits that.

use crate::inst::{OpClass, TraceInst};
use std::collections::HashMap;

/// One interval's basic-block execution profile.
#[derive(Clone, Debug, Default)]
pub struct BbvInterval {
    /// Instructions attributed to each basic-block start PC.
    counts: HashMap<u64, u64>,
    /// Total instructions in the interval.
    total: u64,
}

impl BbvInterval {
    /// Instructions attributed to block `pc`.
    pub fn count(&self, pc: u64) -> u64 {
        self.counts.get(&pc).copied().unwrap_or(0)
    }

    /// Total instructions profiled in the interval.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates (block pc, count).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

/// Streams instructions into per-interval basic-block vectors.
///
/// # Examples
///
/// ```
/// use microlib_trace::{benchmarks, BbvProfiler, Workload};
///
/// let w = Workload::new(benchmarks::by_name("gcc").unwrap(), 1);
/// let mut profiler = BbvProfiler::new(1_000);
/// for inst in w.stream().take(10_000) {
///     profiler.observe(&inst);
/// }
/// let intervals = profiler.finish();
/// assert_eq!(intervals.len(), 10);
/// ```
#[derive(Clone, Debug)]
pub struct BbvProfiler {
    interval_len: u64,
    current: BbvInterval,
    current_block: Option<u64>,
    at_block_start: bool,
    done: Vec<BbvInterval>,
}

impl BbvProfiler {
    /// Creates a profiler with `interval_len` instructions per interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero.
    pub fn new(interval_len: u64) -> Self {
        assert!(interval_len > 0, "interval length must be positive");
        BbvProfiler {
            interval_len,
            current: BbvInterval::default(),
            current_block: None,
            at_block_start: true,
            done: Vec::new(),
        }
    }

    /// Feeds one instruction.
    pub fn observe(&mut self, inst: &TraceInst) {
        if self.at_block_start {
            self.current_block = Some(inst.pc.raw());
            self.at_block_start = false;
        }
        if let Some(block) = self.current_block {
            *self.current.counts.entry(block).or_insert(0) += 1;
        }
        self.current.total += 1;
        if inst.op == OpClass::Branch {
            self.at_block_start = true;
        }
        if self.current.total >= self.interval_len {
            self.done.push(std::mem::take(&mut self.current));
        }
    }

    /// Completed intervals so far (not including a partial one in flight).
    pub fn intervals(&self) -> &[BbvInterval] {
        &self.done
    }

    /// Finishes profiling, returning all completed intervals (a trailing
    /// partial interval is discarded, as in SimPoint practice).
    pub fn finish(self) -> Vec<BbvInterval> {
        self.done
    }

    /// Converts intervals into dense, L1-normalized feature vectors over
    /// the union of observed blocks (sorted by PC for determinism).
    pub fn to_matrix(intervals: &[BbvInterval]) -> Vec<Vec<f64>> {
        let mut blocks: Vec<u64> = intervals
            .iter()
            .flat_map(|iv| iv.counts.keys().copied())
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        intervals
            .iter()
            .map(|iv| {
                let total = iv.total.max(1) as f64;
                blocks.iter().map(|b| iv.count(*b) as f64 / total).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::workload::Workload;

    #[test]
    fn intervals_have_fixed_length() {
        let w = Workload::new(benchmarks::by_name("swim").unwrap(), 2);
        let mut p = BbvProfiler::new(500);
        for inst in w.stream().take(2600) {
            p.observe(&inst);
        }
        let ivs = p.finish();
        assert_eq!(ivs.len(), 5, "partial interval discarded");
        assert!(ivs.iter().all(|iv| iv.total() == 500));
    }

    #[test]
    fn vectors_are_normalized() {
        let w = Workload::new(benchmarks::by_name("gcc").unwrap(), 3);
        let mut p = BbvProfiler::new(1000);
        for inst in w.stream().take(5000) {
            p.observe(&inst);
        }
        let m = BbvProfiler::to_matrix(p.intervals());
        for row in &m {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row sums to {sum}");
        }
    }

    #[test]
    fn different_phases_have_different_vectors() {
        // gcc alternates phases every 25k instructions; intervals from
        // different phases must differ much more than intervals from the
        // same phase.
        let w = Workload::new(benchmarks::by_name("gcc").unwrap(), 4);
        let mut p = BbvProfiler::new(25_000);
        for inst in w.stream().take(100_000) {
            p.observe(&inst);
        }
        let m = BbvProfiler::to_matrix(p.intervals());
        assert!(m.len() >= 4);
        let dist =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        // Pattern is [0,1,2,1]: intervals 1 and 3 share a phase.
        let same = dist(&m[1], &m[3]);
        let cross = dist(&m[0], &m[1]);
        assert!(
            cross > same * 2.0,
            "cross-phase distance {cross} should dwarf same-phase {same}"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_rejected() {
        BbvProfiler::new(0);
    }
}
