//! XCACTI-like energy model: per-access dynamic energy for SRAM structures
//! combined with *measured* activity counts from simulation.
//!
//! Fig 5's power argument is about the energy = activity × per-access-cost
//! product: Markov and DBCP burn power in huge tables; GHB's tables are
//! tiny but "each miss can induce up to 4 requests, and a table is scanned
//! repeatedly, hence the high power consumption"; SP issues a single
//! request per miss and stays efficient. Off-chip access power is *not*
//! modelled, matching the paper's footnote 4.

use crate::area::AreaModel;
use microlib_model::{CacheConfig, CacheStats, HardwareBudget, MechanismStats, SramTable};

/// Per-access energy model.
///
/// # Examples
///
/// ```
/// use microlib_cost::EnergyModel;
/// use microlib_model::SramTable;
///
/// let model = EnergyModel::default();
/// let small = SramTable::new("s", 256, 40, 1);
/// let big = SramTable::new("b", 131_072, 128, 8);
/// assert!(model.access_energy_nj(&big) > model.access_energy_nj(&small));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Fixed energy per access (decode + sense), nJ.
    pub base_nj: f64,
    /// Energy growth with the square root of capacity bits, nJ.
    pub bitline_nj: f64,
    /// Extra factor per way searched.
    pub assoc_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            base_nj: 0.05,
            bitline_nj: 0.002,
            assoc_nj: 0.04,
        }
    }
}

/// Activity observed during one simulation run, fed to
/// [`EnergyModel::power_ratio`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RunActivity {
    /// L1 data cache counters for the run.
    pub l1d: CacheStats,
    /// L2 counters for the run.
    pub l2: CacheStats,
    /// Attached mechanism counters (zeroed for the baseline run).
    pub mechanism: MechanismStats,
}

impl EnergyModel {
    /// Dynamic energy of one access to `table`, in nJ.
    pub fn access_energy_nj(&self, table: &SramTable) -> f64 {
        let ways = if table.assoc == 0 {
            table.entries.max(1) as f64
        } else {
            table.assoc as f64
        };
        self.base_nj + self.bitline_nj * (table.total_bits() as f64).sqrt() + self.assoc_nj * ways
    }

    /// Per-access energy of a cache array.
    pub fn cache_access_energy_nj(&self, cache: &CacheConfig) -> f64 {
        let tag_bits =
            64 - (cache.line_bytes.trailing_zeros() + cache.sets().trailing_zeros()) as u64;
        let table = SramTable {
            name: cache.name.clone(),
            entries: cache.lines(),
            entry_bits: cache.line_bytes * 8 + tag_bits + 4,
            assoc: cache.assoc,
            ports: cache.ports,
        };
        self.access_energy_nj(&table)
    }

    fn cache_energy_nj(&self, cache: &CacheConfig, stats: &CacheStats) -> f64 {
        let per_access = self.cache_access_energy_nj(cache);
        let events = stats.accesses()
            + stats.demand_fills
            + stats.prefetch_fills
            + stats.writebacks
            + stats.sidecar_hits;
        events as f64 * per_access
    }

    /// Total energy a mechanism's own tables consumed, given its activity.
    pub fn mechanism_energy_nj(&self, budget: &HardwareBudget, stats: &MechanismStats) -> f64 {
        if budget.tables.is_empty() {
            return 0.0;
        }
        // Charge table activity to the largest table (conservative) and
        // prefetch issue to a fixed request-queue cost.
        let per_access = budget
            .tables
            .iter()
            .map(|t| self.access_energy_nj(t))
            .fold(0.0, f64::max);
        let table_events = stats.table_reads + stats.table_writes;
        let queue_energy = stats.prefetches_requested as f64 * self.base_nj;
        table_events as f64 * per_access + queue_energy
    }

    /// Fig 5's metric: on-chip memory-system energy of the mechanism run
    /// relative to the baseline run.
    ///
    /// Both runs must simulate the same instruction window (the paper's
    /// fixed-trace methodology guarantees that).
    pub fn power_ratio(
        &self,
        budget: &HardwareBudget,
        l1d_cfg: &CacheConfig,
        l2_cfg: &CacheConfig,
        mech_run: &RunActivity,
        base_run: &RunActivity,
    ) -> f64 {
        let base_energy = self.cache_energy_nj(l1d_cfg, &base_run.l1d)
            + self.cache_energy_nj(l2_cfg, &base_run.l2);
        if base_energy <= 0.0 {
            return 1.0;
        }
        let mech_energy = self.cache_energy_nj(l1d_cfg, &mech_run.l1d)
            + self.cache_energy_nj(l2_cfg, &mech_run.l2)
            + self.mechanism_energy_nj(budget, &mech_run.mechanism);
        mech_energy / base_energy
    }
}

/// Convenience bundle: both models with default calibration.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostModels {
    /// The CACTI-like area model.
    pub area: AreaModel,
    /// The XCACTI-like energy model.
    pub energy: EnergyModel,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(accesses: u64) -> CacheStats {
        CacheStats {
            loads: accesses,
            ..CacheStats::default()
        }
    }

    #[test]
    fn bigger_tables_cost_more_energy() {
        let m = EnergyModel::default();
        let markov = SramTable::new("markov", 32_768, 256, 1);
        let sp = SramTable::new("sp", 512, 70, 1);
        assert!(m.access_energy_nj(&markov) > 3.0 * m.access_energy_nj(&sp));
    }

    #[test]
    fn no_mechanism_means_ratio_one() {
        let m = EnergyModel::default();
        let l1 = CacheConfig::baseline_l1d();
        let l2 = CacheConfig::baseline_l2();
        let run = RunActivity {
            l1d: stats(1000),
            l2: stats(100),
            mechanism: MechanismStats::default(),
        };
        let ratio = m.power_ratio(&HardwareBudget::none("Base"), &l1, &l2, &run, &run);
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn activity_drives_power_even_with_small_tables() {
        // The GHB effect: a tiny table scanned very often can cost more
        // than a big table touched rarely.
        let m = EnergyModel::default();
        let small = HardwareBudget::with_tables("GHB", vec![SramTable::new("ghb", 256, 40, 1)]);
        let busy = MechanismStats {
            table_reads: 1_000_000,
            ..MechanismStats::default()
        };
        let big = HardwareBudget::with_tables("Markov", vec![SramTable::new("t", 32_768, 256, 1)]);
        let quiet = MechanismStats {
            table_reads: 10_000,
            ..MechanismStats::default()
        };
        assert!(m.mechanism_energy_nj(&small, &busy) > m.mechanism_energy_nj(&big, &quiet));
    }

    #[test]
    fn extra_cache_activity_raises_the_ratio() {
        let m = EnergyModel::default();
        let l1 = CacheConfig::baseline_l1d();
        let l2 = CacheConfig::baseline_l2();
        let base = RunActivity {
            l1d: stats(10_000),
            l2: stats(1_000),
            mechanism: MechanismStats::default(),
        };
        let mut mech = base;
        mech.l2.prefetch_fills = 5_000; // prefetcher traffic
        let ratio = m.power_ratio(&HardwareBudget::none("TP"), &l1, &l2, &mech, &base);
        assert!(ratio > 1.0);
    }
}
