//! CACTI-like analytical SRAM area model.
//!
//! The paper "evaluated the relative cost (chip area) of each mechanism
//! using CACTI 3.2" and reported *ratios* of mechanism area to base cache
//! area (Fig 5). CACTI itself is a closed-form cache geometry optimizer;
//! this model keeps the parts the ratio depends on — storage bits dominate,
//! with multiplicative overheads for associativity (comparators, extra tag
//! width) and ports (wordline/bitline duplication) and a small fixed
//! decoder/sense overhead per table.

use microlib_model::{CacheConfig, HardwareBudget, SramTable};

/// Area model tuned to 180 nm-era CACTI 3.2 outputs.
///
/// # Examples
///
/// ```
/// use microlib_cost::AreaModel;
/// use microlib_model::CacheConfig;
///
/// let model = AreaModel::default();
/// let l1 = model.cache_area_mm2(&CacheConfig::baseline_l1d());
/// let l2 = model.cache_area_mm2(&CacheConfig::baseline_l2());
/// assert!(l2 > 10.0 * l1, "a 1 MB L2 dwarfs a 32 KB L1");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AreaModel {
    /// mm² per storage bit (cell + proportional overhead).
    pub mm2_per_bit: f64,
    /// Multiplicative overhead per doubling of associativity.
    pub assoc_overhead: f64,
    /// Multiplicative overhead per extra port.
    pub port_overhead: f64,
    /// Fixed decoder/sense-amp overhead per table in mm².
    pub fixed_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            // ~84 mm² for a 1 MB single-ported direct-mapped array at
            // 180 nm — in CACTI 3.2's ballpark.
            mm2_per_bit: 1.0e-5,
            assoc_overhead: 0.06,
            port_overhead: 0.35,
            fixed_mm2: 0.01,
        }
    }
}

impl AreaModel {
    /// Area of one SRAM table in mm².
    pub fn table_area_mm2(&self, table: &SramTable) -> f64 {
        let bits = table.total_bits() as f64;
        if bits == 0.0 {
            return 0.0;
        }
        let assoc = if table.assoc == 0 {
            table.entries.max(1) as f64 // fully associative: CAM-like
        } else {
            table.assoc as f64
        };
        let assoc_factor = 1.0 + self.assoc_overhead * assoc.log2().max(0.0);
        let port_factor = 1.0 + self.port_overhead * (table.ports.saturating_sub(1)) as f64;
        bits * self.mm2_per_bit * assoc_factor * port_factor + self.fixed_mm2
    }

    /// Total area of a mechanism's added hardware in mm².
    pub fn budget_area_mm2(&self, budget: &HardwareBudget) -> f64 {
        budget.tables.iter().map(|t| self.table_area_mm2(t)).sum()
    }

    /// Area of a cache (data + tag array) in mm².
    pub fn cache_area_mm2(&self, cache: &CacheConfig) -> f64 {
        let tag_bits =
            64 - (cache.line_bytes.trailing_zeros() + cache.sets().trailing_zeros()) as u64;
        let state_bits = 4; // valid/dirty/prefetched/touched
        let table = SramTable {
            name: cache.name.clone(),
            entries: cache.lines(),
            entry_bits: cache.line_bytes * 8 + tag_bits + state_bits,
            assoc: cache.assoc,
            ports: cache.ports,
        };
        self.table_area_mm2(&table)
    }

    /// Fig 5's metric: mechanism area relative to the base data-cache
    /// hierarchy area (L1D + L2).
    ///
    /// # Examples
    ///
    /// ```
    /// use microlib_cost::AreaModel;
    /// use microlib_model::HardwareBudget;
    ///
    /// let model = AreaModel::default();
    /// assert_eq!(model.cost_ratio(&HardwareBudget::none("TP")), 0.0);
    /// ```
    pub fn cost_ratio(&self, budget: &HardwareBudget) -> f64 {
        let base = self.cache_area_mm2(&CacheConfig::baseline_l1d())
            + self.cache_area_mm2(&CacheConfig::baseline_l2());
        if base <= 0.0 {
            return 0.0;
        }
        let mech = self.budget_area_mm2(budget);
        if budget.tables.is_empty() {
            0.0
        } else {
            mech / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_with_bits() {
        let m = AreaModel::default();
        let small = SramTable::new("s", 1024, 32, 1);
        let big = SramTable::new("b", 4096, 32, 1);
        assert!(m.table_area_mm2(&big) > 3.0 * m.table_area_mm2(&small));
    }

    #[test]
    fn ports_cost_area() {
        let m = AreaModel::default();
        let one = SramTable {
            ports: 1,
            ..SramTable::new("t", 8192, 64, 1)
        };
        let four = SramTable {
            ports: 4,
            ..SramTable::new("t", 8192, 64, 1)
        };
        assert!(m.table_area_mm2(&four) > 1.8 * m.table_area_mm2(&one));
    }

    #[test]
    fn fully_associative_is_expensive_per_bit() {
        let m = AreaModel::default();
        let dm = SramTable::new("dm", 64, 256, 1);
        let fa = SramTable::new("fa", 64, 256, 0);
        assert!(m.table_area_mm2(&fa) > m.table_area_mm2(&dm));
    }

    #[test]
    fn empty_budget_is_free() {
        let m = AreaModel::default();
        assert_eq!(m.cost_ratio(&HardwareBudget::none("Base")), 0.0);
    }

    #[test]
    fn megabyte_tables_rival_the_hierarchy() {
        // A 2 MB correlation table (DBCP) must cost more than the whole
        // base hierarchy (~1 MB L2 + 32 KB L1).
        let m = AreaModel::default();
        let budget =
            HardwareBudget::with_tables("DBCP", vec![SramTable::new("corr", 131_072, 128, 8)]);
        assert!(
            m.cost_ratio(&budget) > 1.0,
            "ratio {}",
            m.cost_ratio(&budget)
        );
    }
}
