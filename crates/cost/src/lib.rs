//! # microlib-cost
//!
//! Cost models for the MicroLib reproduction's Fig 5: a CACTI 3.2-like
//! analytical SRAM **area** model ([`AreaModel`]) and an XCACTI-like
//! **energy** model ([`EnergyModel`]) that multiplies per-access energies
//! by activity counts measured in simulation.
//!
//! Both models are substitutions for the closed tools the paper used (see
//! DESIGN.md §2): Fig 5 reports *ratios* relative to the base cache
//! hierarchy, and those ratios are dominated by storage bits and activity,
//! which these models capture.
//!
//! # Examples
//!
//! ```
//! use microlib_cost::{AreaModel, EnergyModel};
//! use microlib_mech::MechanismKind;
//!
//! let area = AreaModel::default();
//! let markov = MechanismKind::Markov.build().hardware();
//! let ghb = MechanismKind::Ghb.build().hardware();
//! // Fig 5 shape: Markov's megabyte table dwarfs GHB's.
//! assert!(area.cost_ratio(&markov) > 50.0 * area.cost_ratio(&ghb));
//! ```

#![warn(missing_docs)]

mod area;
mod cpi;
mod power;

pub use area::AreaModel;
pub use cpi::{CpiBreakdown, CpiCounters, CpiModel};
pub use power::{CostModels, EnergyModel, RunActivity};
