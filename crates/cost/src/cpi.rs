//! The analytic CPI tier: a closed-form latency-stack predictor that turns
//! cheap functional-warm cache counters into a CPI estimate without running
//! the detailed out-of-order core.
//!
//! This is the "first-order model" half of the differential inconsistency
//! miner (`crates/miner`): the detailed simulator and this stack model the
//! same machine at very different fidelity, and configurations where they
//! disagree — in CPI magnitude or in mechanism *ranking* — are exactly the
//! configurations where one of the models' assumptions breaks. The model is
//! deliberately simple and fully deterministic: a base issue-limited CPI
//! plus additive miss-latency terms, each divided by a memory-level-
//! parallelism (MLP) factor derived from the configuration.
//!
//! The stack (all terms in cycles per instruction):
//!
//! ```text
//! CPI = base + l1d_extra + l2_term + memory_term + icache_term
//!   base        = 1 / min(fetch, decode, issue, commit width)
//!   l1d_extra   = (l1d latency − 1) × data accesses per instruction
//!   l2_term     = l1d misses/inst × (L2 latency + L1↔L2 bus) / MLP_l2
//!   memory_term = L2 misses/inst × memory latency               / MLP_mem
//!   icache_term = L1I misses/inst × (L2 latency + L1↔L2 bus)
//! ```
//!
//! where the MLP divisors grow with the square root of the overlap
//! resources (MSHR entries, window size) — Little's-law-flavoured, like the
//! first-order models of Karkhanis & Smith (ISCA 2004).

use microlib_model::{BusConfig, MemoryModel, SystemConfig};

/// Counters measured over a (functionally warmed) instruction window, the
/// activity inputs of [`CpiModel::predict`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpiCounters {
    /// Instructions in the window.
    pub instructions: u64,
    /// Data accesses (loads + stores) issued to the L1D.
    pub data_accesses: u64,
    /// L1D demand misses.
    pub l1d_misses: u64,
    /// L1D misses served by a mechanism sidecar (victim cache etc.) at
    /// near-hit latency instead of the full L2 round trip.
    pub sidecar_hits: u64,
    /// L1I demand misses.
    pub l1i_misses: u64,
    /// L2 demand misses (requests that went to main memory).
    pub l2_misses: u64,
}

/// One predicted CPI, split into its stack terms (all cycles/instruction).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpiBreakdown {
    /// Issue-width-limited base term.
    pub base: f64,
    /// Extra L1D hit latency beyond the single implicit cycle.
    pub l1d_extra: f64,
    /// L1D-miss / L2-hit term.
    pub l2: f64,
    /// L2-miss / main-memory term.
    pub memory: f64,
    /// Instruction-fetch miss term.
    pub icache: f64,
}

impl CpiBreakdown {
    /// The total predicted CPI (sum of all terms).
    pub fn total(&self) -> f64 {
        self.base + self.l1d_extra + self.l2 + self.memory + self.icache
    }
}

/// The analytic CPI model: pure configuration-derived latencies, no
/// simulation state. See the module docs for the stack.
///
/// # Examples
///
/// ```
/// use microlib_cost::{CpiCounters, CpiModel};
/// use microlib_model::SystemConfig;
///
/// let model = CpiModel::for_config(&SystemConfig::baseline_constant_memory());
/// let hit_heavy = CpiCounters {
///     instructions: 10_000,
///     data_accesses: 4_000,
///     l1d_misses: 10,
///     ..CpiCounters::default()
/// };
/// let miss_heavy = CpiCounters {
///     l1d_misses: 2_000,
///     l2_misses: 1_000,
///     ..hit_heavy
/// };
/// assert!(model.predict(&miss_heavy).total() > model.predict(&hit_heavy).total());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpiModel {
    /// Issue-limited base CPI.
    pub base_cpi: f64,
    /// Extra cycles per data access beyond the implicit hit cycle.
    pub l1d_extra_per_access: f64,
    /// Cycles an L1D miss pays to reach the L2 and come back.
    pub l2_round_trip: f64,
    /// Cycles a sidecar (victim-cache) hit pays instead of the round trip.
    pub sidecar_round_trip: f64,
    /// Cycles an L2 miss pays to reach main memory and come back.
    pub memory_round_trip: f64,
    /// MLP divisor applied to the L2 term.
    pub mlp_l2: f64,
    /// MLP divisor applied to the memory term.
    pub mlp_memory: f64,
}

/// Approximate service latency of one main-memory access under `model`,
/// in CPU cycles: the flat constant, or a first-order SDRAM estimate — a
/// ~2/3 row-hit mix (tRCD + CAS, plus the precharge on the row-miss
/// fraction) plus half a row cycle of queueing/bank-conflict pressure —
/// plus the line transfer on `bus`. Deliberately crude: the detailed
/// SDRAM controller models per-bank state and scheduling that this single
/// number cannot, which is exactly the kind of gap the miner hunts.
fn memory_latency(model: &MemoryModel, bus: &BusConfig, line_bytes: u64) -> f64 {
    let transfer = bus.cycles_for(line_bytes) as f64;
    match model {
        MemoryModel::Constant { latency } => *latency as f64 + transfer,
        MemoryModel::Sdram(s) => {
            let row_hit = (s.t_rcd + s.cas) as f64;
            let row_miss = (s.t_rp + s.t_rcd + s.cas) as f64;
            let queueing = s.t_rc as f64 * 0.5;
            (2.0 / 3.0) * row_hit + (1.0 / 3.0) * row_miss + queueing + transfer
        }
    }
}

/// Memory-level-parallelism divisor from the overlap resources: grows with
/// the square root of outstanding-miss capacity, capped by the window's
/// ability to expose independent misses. Always at least 1.
fn mlp(mshr_entries: u32, mshr_reads: u32, ruu_entries: u32) -> f64 {
    let capacity = (mshr_entries as f64) * (mshr_reads as f64).sqrt();
    let window = (ruu_entries as f64 / 16.0).max(1.0);
    capacity.min(window).sqrt().max(1.0)
}

impl CpiModel {
    /// Derives every latency and MLP parameter from `config`.
    pub fn for_config(config: &SystemConfig) -> Self {
        let width = config
            .core
            .fetch_width
            .min(config.core.decode_width)
            .min(config.core.issue_width)
            .min(config.core.commit_width)
            .max(1);
        let l2_round_trip =
            config.l2.latency as f64 + config.l1_l2_bus.cycles_for(config.l1d.line_bytes) as f64;
        CpiModel {
            base_cpi: 1.0 / width as f64,
            l1d_extra_per_access: (config.l1d.latency.saturating_sub(1)) as f64,
            l2_round_trip,
            // A sidecar hit still pays the probe + transfer, roughly the
            // L1 latency plus one extra cycle.
            sidecar_round_trip: (config.l1d.latency + 1) as f64,
            memory_round_trip: memory_latency(
                &config.memory,
                &config.memory_bus,
                config.l2.line_bytes,
            ),
            mlp_l2: mlp(
                config.l1d.mshr_entries,
                config.l1d.mshr_reads_per_entry,
                config.core.ruu_entries,
            ),
            mlp_memory: mlp(
                config.l2.mshr_entries,
                config.l2.mshr_reads_per_entry,
                config.core.ruu_entries,
            ),
        }
    }

    /// Predicts the CPI stack for one measured window. Returns an all-zero
    /// breakdown when `counters.instructions` is zero.
    pub fn predict(&self, counters: &CpiCounters) -> CpiBreakdown {
        if counters.instructions == 0 {
            return CpiBreakdown::default();
        }
        let per_inst = |n: u64| n as f64 / counters.instructions as f64;
        // Sidecar-served misses pay the short sidecar trip, the rest the
        // full L2 round trip.
        let full_misses = counters.l1d_misses.saturating_sub(counters.sidecar_hits);
        CpiBreakdown {
            base: self.base_cpi,
            l1d_extra: per_inst(counters.data_accesses) * self.l1d_extra_per_access,
            l2: (per_inst(full_misses) * self.l2_round_trip
                + per_inst(counters.sidecar_hits.min(counters.l1d_misses))
                    * self.sidecar_round_trip)
                / self.mlp_l2,
            memory: per_inst(counters.l2_misses) * self.memory_round_trip / self.mlp_memory,
            icache: per_inst(counters.l1i_misses) * self.l2_round_trip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::SdramConfig;

    fn counters() -> CpiCounters {
        CpiCounters {
            instructions: 100_000,
            data_accesses: 40_000,
            l1d_misses: 2_000,
            sidecar_hits: 0,
            l1i_misses: 50,
            l2_misses: 800,
        }
    }

    #[test]
    fn zero_instructions_predicts_zero() {
        let m = CpiModel::for_config(&SystemConfig::baseline());
        assert_eq!(m.predict(&CpiCounters::default()).total(), 0.0);
    }

    #[test]
    fn misses_raise_cpi() {
        let m = CpiModel::for_config(&SystemConfig::baseline_constant_memory());
        let base = m.predict(&counters());
        let mut worse = counters();
        worse.l2_misses *= 4;
        assert!(m.predict(&worse).total() > base.total());
    }

    #[test]
    fn fewer_mshrs_mean_less_overlap() {
        let fat = CpiModel::for_config(&SystemConfig::baseline_constant_memory());
        let mut cfg = SystemConfig::baseline_constant_memory();
        cfg.l1d.mshr_entries = 1;
        cfg.l1d.mshr_reads_per_entry = 1;
        cfg.l2.mshr_entries = 1;
        cfg.l2.mshr_reads_per_entry = 1;
        let thin = CpiModel::for_config(&cfg);
        assert!(thin.mlp_l2 <= fat.mlp_l2);
        assert!(thin.predict(&counters()).total() >= fat.predict(&counters()).total());
    }

    #[test]
    fn sdram_costs_more_than_a_fast_constant() {
        let sdram = CpiModel::for_config(&SystemConfig::baseline());
        let constant = CpiModel::for_config(&SystemConfig::baseline_constant_memory());
        // Baseline SDRAM-170 has a longer average access than constant-70.
        assert!(sdram.memory_round_trip > constant.memory_round_trip);
    }

    #[test]
    fn scaled_sdram_approximates_seventy_cycles() {
        let mut cfg = SystemConfig::baseline();
        cfg.memory = MemoryModel::Sdram(SdramConfig::scaled_to_70_cycles());
        let m = CpiModel::for_config(&cfg);
        // The scaled SDRAM was calibrated to a ~70-cycle average; the
        // analytic approximation should land in its neighbourhood.
        assert!(
            m.memory_round_trip > 20.0 && m.memory_round_trip < 90.0,
            "approximation {} strayed from the 70-cycle ballpark",
            m.memory_round_trip
        );
    }

    #[test]
    fn sidecar_hits_discount_the_l2_term() {
        let m = CpiModel::for_config(&SystemConfig::baseline_constant_memory());
        let without = m.predict(&counters());
        let mut with = counters();
        with.sidecar_hits = 1_500;
        let with = m.predict(&with);
        assert!(with.l2 < without.l2);
        assert!(with.total() < without.total());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = CpiModel::for_config(&SystemConfig::baseline());
        let b = m.predict(&counters());
        let sum = b.base + b.l1d_extra + b.l2 + b.memory + b.icache;
        assert!((sum - b.total()).abs() < 1e-12);
    }

    #[test]
    fn prediction_is_bit_deterministic() {
        let m = CpiModel::for_config(&SystemConfig::baseline());
        let a = m.predict(&counters()).total();
        let b = m.predict(&counters()).total();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
