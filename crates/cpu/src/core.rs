//! The out-of-order superscalar core: an RUU/LSQ machine in the
//! sim-outorder mould, driven by dependency-explicit traces.
//!
//! Per cycle (in order): apply memory completions → writeback → commit →
//! issue → dispatch → fetch. The core is trace-driven: wrong-path execution
//! is not simulated; a mispredicted branch instead blocks fetch until it
//! resolves and then pays the front-end refill penalty — the standard
//! trace-driven approximation, which preserves the property the paper's
//! experiments rely on (IPC sensitivity to memory latency and bandwidth).

use crate::fu::{latency, FuPool};
use microlib_mem::{Completion, IssueRejection, IssueResult, MemorySystem, ReqId};
use microlib_model::codec::{BinCodec, CodecError, Decoder, Encoder};
use microlib_model::{Addr, CoreConfig, Cycle};
use microlib_trace::{OpClass, TraceInst};
use std::collections::{BTreeSet, HashMap, VecDeque};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    /// Waiting for operands / a functional unit / the cache.
    Waiting,
    /// Executing; completes at the cycle carried.
    Executing(Cycle),
    /// Load waiting on a memory response.
    WaitingMem,
    /// Finished executing (result available to dependents).
    Completed(Cycle),
}

#[derive(Clone, Debug)]
struct Slot {
    inst: TraceInst,
    seq: u64,
    state: SlotState,
    /// For stores: the commit-time cache write has been accepted.
    store_sent: bool,
    /// Producers this instruction still waits on (0, 1 or 2); maintained
    /// by the wakeup network, `issue` only ever sees slots at 0.
    pending_deps: u8,
}

impl Slot {
    fn completed(&self) -> bool {
        matches!(self.state, SlotState::Completed(_))
    }
}

/// Aggregate counters for one simulation run of the core.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CoreStats {
    /// Instructions committed.
    pub committed: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Cycles fetch was blocked on an unresolved mispredicted branch.
    pub mispredict_stall_cycles: u64,
    /// Cycles fetch was blocked on an instruction-cache miss.
    pub icache_stall_cycles: u64,
    /// Loads satisfied by store-to-load forwarding in the LSQ.
    pub loads_forwarded: u64,
    /// Issue attempts refused by the cache (ports/MSHR/pipeline).
    pub cache_reject_stalls: u64,
    /// Cycles dispatch stalled because the RUU was full.
    pub window_full_stalls: u64,
    /// Cycles dispatch stalled because the LSQ was full.
    pub lsq_full_stalls: u64,
    /// Cycles commit stalled because a store could not reach the cache.
    pub store_commit_stalls: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

impl BinCodec for CoreStats {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.committed);
        e.put_u64(self.cycles);
        e.put_u64(self.fetched);
        e.put_u64(self.mispredict_stall_cycles);
        e.put_u64(self.icache_stall_cycles);
        e.put_u64(self.loads_forwarded);
        e.put_u64(self.cache_reject_stalls);
        e.put_u64(self.window_full_stalls);
        e.put_u64(self.lsq_full_stalls);
        e.put_u64(self.store_commit_stalls);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CoreStats {
            committed: d.take_u64()?,
            cycles: d.take_u64()?,
            fetched: d.take_u64()?,
            mispredict_stall_cycles: d.take_u64()?,
            icache_stall_cycles: d.take_u64()?,
            loads_forwarded: d.take_u64()?,
            cache_reject_stalls: d.take_u64()?,
            window_full_stalls: d.take_u64()?,
            lsq_full_stalls: d.take_u64()?,
            store_commit_stalls: d.take_u64()?,
        })
    }
}

/// The out-of-order core.
///
/// Drive it with [`OoOCore::cycle`] once per cycle, passing the memory
/// system (already advanced via
/// [`MemorySystem::begin_cycle`]) and the trace source. See
/// `microlib::Simulator` for the canonical driver loop.
#[derive(Debug)]
pub struct OoOCore {
    config: CoreConfig,
    window: VecDeque<Slot>,
    lsq_used: u32,
    next_seq: u64,
    fetch_buffer: VecDeque<TraceInst>,
    fetch_blocked_until: Cycle,
    blocking_branch: Option<u64>,
    ifetch_pending: Option<ReqId>,
    last_fetch_line: Option<Addr>,
    mem_requests: HashMap<ReqId, u64>,
    /// In-window stores indexed by word address, seqs ascending — the
    /// LSQ disambiguation lookup is O(log stores-per-word) instead of a
    /// scan over every older window slot per waiting load per cycle.
    store_index: HashMap<u64, VecDeque<u64>>,
    /// Slots currently in `Executing` state (writeback skips its window
    /// scan when none are).
    executing: u32,
    /// Sequence numbers of slots that are `Waiting` with all producers
    /// complete — the issue stage walks exactly this set in program
    /// order instead of rescanning the whole window every cycle.
    ready: BTreeSet<u64>,
    /// Wakeup network: producer seq → consumers to notify when it
    /// completes (a consumer appears once per dependent operand).
    wakeups: HashMap<u64, Vec<u64>>,
    /// Scratch buffer for the issue stage's ready snapshot.
    ready_scratch: Vec<u64>,
    fus: FuPool,
    stats: CoreStats,
    trace_done: bool,
}

impl OoOCore {
    /// Creates a core with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: CoreConfig) -> Self {
        config.validate().expect("invalid core configuration");
        OoOCore {
            fus: FuPool::new(&config),
            config,
            window: VecDeque::new(),
            lsq_used: 0,
            next_seq: 0,
            fetch_buffer: VecDeque::new(),
            fetch_blocked_until: Cycle::ZERO,
            blocking_branch: None,
            ifetch_pending: None,
            last_fetch_line: None,
            mem_requests: HashMap::new(),
            store_index: HashMap::new(),
            executing: 0,
            ready: BTreeSet::new(),
            wakeups: HashMap::new(),
            ready_scratch: Vec::new(),
            stats: CoreStats::default(),
            trace_done: false,
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Whether every fetched instruction has committed and the trace is
    /// exhausted.
    pub fn drained(&self) -> bool {
        self.trace_done && self.window.is_empty() && self.fetch_buffer.is_empty()
    }

    fn seq_base(&self) -> u64 {
        self.window.front().map(|s| s.seq).unwrap_or(self.next_seq)
    }

    #[cfg(debug_assertions)]
    fn producer_ready(&self, consumer_seq: u64, distance: u32) -> bool {
        let Some(producer_seq) = consumer_seq.checked_sub(distance as u64) else {
            return true;
        };
        let base = self.seq_base();
        if producer_seq < base {
            return true; // producer already committed
        }
        self.window
            .get((producer_seq - base) as usize)
            .map(|s| s.completed())
            .unwrap_or(true)
    }

    /// Reference dependency check (scan form) — the wakeup network must
    /// always agree with it; debug builds assert so on every issue.
    #[cfg(debug_assertions)]
    fn deps_ready(&self, slot_idx: usize) -> bool {
        let slot = &self.window[slot_idx];
        slot.inst
            .src_deps
            .iter()
            .flatten()
            .all(|d| self.producer_ready(slot.seq, *d))
    }

    /// Notifies `producer_seq`'s registered consumers that it completed;
    /// consumers whose last outstanding producer this was become ready.
    fn wake_dependents(&mut self, producer_seq: u64) {
        let Some(consumers) = self.wakeups.remove(&producer_seq) else {
            return;
        };
        let base = self.seq_base();
        for c in consumers {
            debug_assert!(c >= base, "a waiting consumer cannot have committed");
            let Some(slot) = self.window.get_mut((c - base) as usize) else {
                continue;
            };
            slot.pending_deps -= 1;
            if slot.pending_deps == 0 && slot.state == SlotState::Waiting {
                self.ready.insert(c);
            }
        }
    }

    /// Index of the youngest older store overlapping `addr`'s word, if
    /// any. Served from `store_index`: window seqs are contiguous, so the
    /// youngest store seq below the load's seq maps straight to a slot.
    fn older_store_conflict(&self, load_idx: usize, addr: Addr) -> Option<usize> {
        let load_seq = self.window[load_idx].seq;
        let stores = self.store_index.get(&addr.word_index())?;
        let older = stores.partition_point(|&s| s < load_seq);
        let store_seq = *stores.get(older.checked_sub(1)?)?;
        Some((store_seq - self.seq_base()) as usize)
    }

    /// Runs one cycle. `completions` are this cycle's memory completions
    /// (from [`MemorySystem::begin_cycle`]); `trace` supplies instructions.
    /// Returns the number of instructions committed this cycle.
    pub fn cycle(
        &mut self,
        now: Cycle,
        completions: &[Completion],
        mem: &mut MemorySystem,
        trace: &mut dyn Iterator<Item = TraceInst>,
    ) -> u64 {
        self.stats.cycles += 1;
        self.fus.begin_cycle();

        self.apply_completions(now, completions);
        self.writeback(now);
        let committed = self.commit(now, mem);
        self.issue(now, mem);
        self.dispatch();
        self.fetch(now, mem, trace);
        committed
    }

    fn apply_completions(&mut self, now: Cycle, completions: &[Completion]) {
        for c in completions {
            let Some(seq) = self.mem_requests.remove(&c.req) else {
                continue; // retired store's write, or i-fetch handled below
            };
            let base = self.seq_base();
            if seq < base {
                continue;
            }
            if let Some(slot) = self.window.get_mut((seq - base) as usize) {
                if slot.state == SlotState::WaitingMem {
                    slot.state = SlotState::Completed(now);
                    self.wake_dependents(seq);
                }
            }
        }
        if let Some(pending) = self.ifetch_pending {
            if completions.iter().any(|c| c.req == pending) {
                self.ifetch_pending = None;
            }
        }
    }

    fn writeback(&mut self, now: Cycle) {
        if self.executing == 0 {
            return;
        }
        let mut resolved_mispredict = None;
        let mut completed: Vec<u64> = Vec::new();
        for slot in &mut self.window {
            if let SlotState::Executing(done) = slot.state {
                if done <= now {
                    slot.state = SlotState::Completed(now);
                    self.executing -= 1;
                    completed.push(slot.seq);
                    if Some(slot.seq) == self.blocking_branch {
                        resolved_mispredict = Some(now);
                    }
                }
            }
        }
        for seq in completed {
            self.wake_dependents(seq);
        }
        if let Some(at) = resolved_mispredict {
            self.blocking_branch = None;
            self.fetch_blocked_until = at + self.config.mispredict_penalty;
        }
    }

    fn commit(&mut self, now: Cycle, mem: &mut MemorySystem) -> u64 {
        let mut committed = 0;
        while committed < self.config.commit_width as u64 {
            let Some(head) = self.window.front() else {
                break;
            };
            if !head.completed() {
                break;
            }
            if head.inst.op == OpClass::Store && !head.store_sent {
                let m = head.inst.mem.expect("store has memory ref");
                match mem.try_store(head.inst.pc, m.addr, m.value, now) {
                    Ok(IssueResult::Done { .. }) => {}
                    Ok(IssueResult::Pending(_)) => {
                        // Retired into the "store buffer": the MSHR owns it.
                    }
                    Err(_) => {
                        self.stats.store_commit_stalls += 1;
                        break;
                    }
                }
            }
            let head = self.window.pop_front().expect("checked above");
            if head.inst.op == OpClass::Store {
                let m = head.inst.mem.expect("store has memory ref");
                let word = m.addr.word_index();
                let stores = self
                    .store_index
                    .get_mut(&word)
                    .expect("indexed at dispatch");
                let popped = stores.pop_front();
                debug_assert_eq!(popped, Some(head.seq), "oldest store commits first");
                if stores.is_empty() {
                    self.store_index.remove(&word);
                }
            }
            if head.inst.op.is_mem() {
                self.lsq_used -= 1;
            }
            self.stats.committed += 1;
            committed += 1;
        }
        committed
    }

    fn issue(&mut self, now: Cycle, mem: &mut MemorySystem) {
        let mut issued = 0;
        let mut mem_path_blocked = false;
        let lsq_backpressure = mem.config().fidelity.lsq_backpressure;
        let base = self.seq_base();
        // Snapshot the ready set (ascending seq = program order, exactly
        // the order the historical full-window scan visited issuable
        // slots). Issue only removes entries, never adds: nothing
        // completes mid-issue, so no slot can become ready here.
        let mut ready = std::mem::take(&mut self.ready_scratch);
        ready.clear();
        ready.extend(self.ready.iter().copied());
        for seq in &ready {
            if issued >= self.config.issue_width {
                break;
            }
            let idx = (seq - base) as usize;
            #[cfg(debug_assertions)]
            {
                debug_assert_eq!(self.window[idx].state, SlotState::Waiting);
                debug_assert!(self.deps_ready(idx), "ready set out of sync with deps");
            }
            let op = self.window[idx].inst.op;
            match op {
                OpClass::Load => {
                    if mem_path_blocked {
                        continue;
                    }
                    let m = self.window[idx].inst.mem.expect("load has memory ref");
                    // LSQ disambiguation: forward from (or wait on) the
                    // youngest older overlapping store.
                    if let Some(st) = self.older_store_conflict(idx, m.addr) {
                        if self.window[st].completed() && self.fus.try_issue(OpClass::Load, now) {
                            self.window[idx].state = SlotState::Executing(now + 1);
                            self.executing += 1;
                            self.ready.remove(seq);
                            self.stats.loads_forwarded += 1;
                            issued += 1;
                        }
                        continue; // store not executed yet: wait
                    }
                    if !self.fus.try_issue(OpClass::Load, now) {
                        continue;
                    }
                    let pc = self.window[idx].inst.pc;
                    match mem.try_load(pc, m.addr, now) {
                        Ok(IssueResult::Done { at, .. }) => {
                            self.window[idx].state = SlotState::Executing(at);
                            self.executing += 1;
                            self.ready.remove(seq);
                            issued += 1;
                        }
                        Ok(IssueResult::Pending(req)) => {
                            self.window[idx].state = SlotState::WaitingMem;
                            self.mem_requests.insert(req, self.window[idx].seq);
                            self.ready.remove(seq);
                            issued += 1;
                        }
                        Err(reason) => {
                            self.stats.cache_reject_stalls += 1;
                            if lsq_backpressure || matches!(reason, IssueRejection::PortBusy) {
                                mem_path_blocked = true;
                            }
                        }
                    }
                }
                OpClass::Store => {
                    // Address generation only; the cache write happens at
                    // commit.
                    if self.fus.try_issue(OpClass::Store, now) {
                        self.window[idx].state = SlotState::Executing(now + latency(op));
                        self.executing += 1;
                        self.ready.remove(seq);
                        issued += 1;
                    }
                }
                _ => {
                    if self.fus.try_issue(op, now) {
                        self.window[idx].state = SlotState::Executing(now + latency(op));
                        self.executing += 1;
                        self.ready.remove(seq);
                        issued += 1;
                    }
                }
            }
        }
        self.ready_scratch = ready;
    }

    fn dispatch(&mut self) {
        for _ in 0..self.config.decode_width {
            if self.window.len() >= self.config.ruu_entries as usize {
                self.stats.window_full_stalls += 1;
                break;
            }
            let Some(inst) = self.fetch_buffer.front() else {
                break;
            };
            if inst.op.is_mem() {
                if self.lsq_used >= self.config.lsq_entries {
                    self.stats.lsq_full_stalls += 1;
                    break;
                }
                self.lsq_used += 1;
            }
            let inst = self.fetch_buffer.pop_front().expect("peeked");
            if inst.op == OpClass::Store {
                let m = inst.mem.expect("store has memory ref");
                self.store_index
                    .entry(m.addr.word_index())
                    .or_default()
                    .push_back(self.next_seq);
            }
            let seq = self.next_seq;
            let base = self.seq_base();
            let mut pending = 0u8;
            for d in inst.src_deps.iter().flatten() {
                // No producer (distance reaches before the trace) or an
                // already-committed/completed one: nothing to wait for.
                let Some(p) = seq.checked_sub(*d as u64) else {
                    continue;
                };
                if p < base {
                    continue;
                }
                if self.window[(p - base) as usize].completed() {
                    continue;
                }
                pending += 1;
                self.wakeups.entry(p).or_default().push(seq);
            }
            if pending == 0 {
                self.ready.insert(seq);
            }
            self.window.push_back(Slot {
                inst,
                seq,
                state: SlotState::Waiting,
                store_sent: false,
                pending_deps: pending,
            });
            self.next_seq += 1;
        }
    }

    fn fetch(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        trace: &mut dyn Iterator<Item = TraceInst>,
    ) {
        if self.trace_done {
            return;
        }
        if self.blocking_branch.is_some() || self.fetch_blocked_until > now {
            self.stats.mispredict_stall_cycles += 1;
            return;
        }
        if self.ifetch_pending.is_some() {
            self.stats.icache_stall_cycles += 1;
            return;
        }
        // Keep the fetch buffer at most one fetch-group deep.
        if self.fetch_buffer.len() >= self.config.fetch_width as usize {
            return;
        }
        for _ in 0..self.config.fetch_width {
            let Some(inst) = trace.next() else {
                self.trace_done = true;
                break;
            };
            // Instruction-cache access, one new line per port per cycle.
            let line = inst.pc.line(mem.config().l1i.line_bytes);
            if Some(line) != self.last_fetch_line {
                match mem.try_ifetch(inst.pc, now) {
                    Ok(IssueResult::Done { .. }) => {
                        self.last_fetch_line = Some(line);
                    }
                    Ok(IssueResult::Pending(req)) => {
                        self.ifetch_pending = Some(req);
                        self.last_fetch_line = Some(line);
                        self.stats.fetched += 1;
                        self.push_fetched(inst);
                        break; // stall until the I-miss returns
                    }
                    Err(_) => {
                        // Port exhausted: put the instruction back by
                        // re-fetching it next cycle. Since the stream cannot
                        // be "un-advanced", buffer it and stop.
                        self.stats.fetched += 1;
                        self.push_fetched(inst);
                        break;
                    }
                }
            }
            self.stats.fetched += 1;
            let stop = self.push_fetched(inst);
            if stop {
                break;
            }
        }
    }

    /// Buffers a fetched instruction; returns `true` if fetch must stop
    /// this cycle (taken branch or mispredict).
    fn push_fetched(&mut self, inst: TraceInst) -> bool {
        let mut stop = false;
        if let Some(b) = inst.branch {
            if b.mispredicted {
                // Fetch stops until this branch resolves. Identify it by
                // the sequence number it will get.
                self.blocking_branch = Some(self.next_seq + self.fetch_buffer.len() as u64);
                stop = true;
            } else if b.taken {
                stop = true; // fetch discontinuity
            }
        }
        self.fetch_buffer.push_back(inst);
        stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::SystemConfig;
    use microlib_trace::{BranchInfo, TraceInst};

    fn mem() -> MemorySystem {
        MemorySystem::new(SystemConfig::baseline_constant_memory(), Vec::new()).unwrap()
    }

    /// Pre-warms the I-line of the first instruction (so tests exercise
    /// scheduling, not cold-start I-misses), then drives the core to
    /// drain. Returns the core-loop cycle count (excluding the warmup).
    fn run(
        core: &mut OoOCore,
        mem: &mut MemorySystem,
        insts: Vec<TraceInst>,
        max_cycles: u64,
    ) -> u64 {
        let mut start = 0u64;
        if let Some(first) = insts.first() {
            mem.begin_cycle(Cycle::ZERO);
            if let Ok(IssueResult::Pending(id)) = mem.try_ifetch(first.pc, Cycle::ZERO) {
                loop {
                    start += 1;
                    let dones = mem.begin_cycle(Cycle::new(start));
                    if dones.iter().any(|c| c.req == id) {
                        break;
                    }
                    assert!(start < 10_000, "warmup ifetch never completed");
                }
            }
            start += 1;
        }
        let mut trace = insts.into_iter();
        let mut used = 0;
        for c in 0..max_cycles {
            used = c;
            let now = Cycle::new(start + c);
            let completions = mem.begin_cycle(now);
            core.cycle(now, &completions, mem, &mut trace);
            if core.drained() {
                break;
            }
        }
        assert!(core.drained(), "core did not drain: {:?}", core.stats());
        used
    }

    /// ALU instructions whose PCs loop within a small code footprint (as
    /// real loops do), so the I-cache warms up instead of streaming cold.
    fn alu_chain(n: usize, dep: bool) -> Vec<TraceInst> {
        (0..n)
            .map(|i| {
                TraceInst::alu(
                    Addr::new(0x40_0000 + (i as u64 % 64) * 4),
                    OpClass::IntAlu,
                    [if dep && i > 0 { Some(1) } else { None }, None],
                )
            })
            .collect()
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, alu_chain(4000, false), 20_000);
        let ipc = core.stats().ipc();
        assert!(ipc > 4.0, "independent ALU IPC {ipc} too low");
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, alu_chain(2000, true), 20_000);
        let ipc = core.stats().ipc();
        assert!(ipc < 1.2, "serial chain IPC {ipc} should be ~1");
    }

    #[test]
    fn committed_matches_trace_length() {
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, alu_chain(777, false), 20_000);
        assert_eq!(core.stats().committed, 777);
    }

    #[test]
    fn load_latency_gates_dependents() {
        // load (miss) -> dependent ALU chain: cycles must include the miss
        // round trip.
        let mut insts = vec![TraceInst::load(
            Addr::new(0x40_0000),
            Addr::new(0x10_0000),
            [None, None],
        )];
        for i in 0..10 {
            insts.push(TraceInst::alu(
                Addr::new(0x40_0004 + i * 4),
                OpClass::IntAlu,
                [Some(1), None],
            ));
        }
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        let cycles = run(&mut core, &mut m, insts, 20_000);
        assert!(cycles > 70, "miss latency not observed: {cycles} cycles");
    }

    #[test]
    fn store_to_load_forwarding() {
        let pc = |i: u64| Addr::new(0x40_0000 + i * 4);
        let a = Addr::new(0x20_0000);
        // The divide blocks commit, so the store is executed-but-uncommitted
        // when the load issues — the LSQ must forward.
        let insts = vec![
            TraceInst::alu(pc(0), OpClass::IntDiv, [None, None]),
            TraceInst::store(pc(1), a, 99, [None, None]),
            TraceInst::load(pc(2), a, [None, None]),
        ];
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, insts, 20_000);
        assert_eq!(core.stats().loads_forwarded, 1);
        assert!(m.integrity_error().is_none());
    }

    #[test]
    fn load_after_committed_store_reads_through_cache() {
        let pc = |i: u64| Addr::new(0x40_0000 + i * 4);
        let a = Addr::new(0x20_0000);
        let insts = vec![
            TraceInst::store(pc(0), a, 99, [None, None]),
            TraceInst::load(pc(1), a, [None, None]),
        ];
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, insts, 20_000);
        // Commit applies the store before the load issues; either path
        // (forward or cache) must preserve the value.
        assert!(m.integrity_error().is_none());
        assert_eq!(m.functional().architectural(a), 99);
    }

    #[test]
    fn mispredicted_branch_stalls_fetch() {
        let pc = |i: u64| Addr::new(0x40_0000 + i * 4);
        let mut with_miss = vec![TraceInst::branch(
            pc(0),
            BranchInfo {
                taken: true,
                target: pc(1),
                mispredicted: true,
            },
            [None, None],
        )];
        with_miss.extend(alu_chain(500, false));
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, with_miss, 20_000);
        assert!(core.stats().mispredict_stall_cycles >= 1);
    }

    #[test]
    fn lsq_capacity_limits_memory_ops() {
        let mut cfg = CoreConfig::baseline();
        cfg.lsq_entries = 2;
        let insts: Vec<_> = (0..50)
            .map(|i| {
                TraceInst::load(
                    Addr::new(0x40_0000 + i * 4),
                    Addr::new(0x30_0000 + i * 0x1000),
                    [None, None],
                )
            })
            .collect();
        let mut core = OoOCore::new(cfg);
        let mut m = mem();
        run(&mut core, &mut m, insts, 100_000);
        assert!(core.stats().lsq_full_stalls > 0);
    }

    #[test]
    fn stores_commit_and_land_in_memory() {
        let a = Addr::new(0x28_0000);
        let insts = vec![TraceInst::store(
            Addr::new(0x40_0000),
            a,
            0xCAFE,
            [None, None],
        )];
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, insts, 20_000);
        assert_eq!(m.functional().architectural(a), 0xCAFE);
        // Let in-flight writes drain.
        for c in 0..500u64 {
            m.begin_cycle(Cycle::new(100 + c));
            if m.quiescent() {
                break;
            }
        }
        assert!(m.quiescent());
    }
}
