//! The out-of-order superscalar core: an RUU/LSQ machine in the
//! sim-outorder mould, driven by dependency-explicit traces.
//!
//! Per cycle (in order): apply memory completions → writeback → commit →
//! issue → dispatch → fetch. The core is trace-driven: wrong-path execution
//! is not simulated; a mispredicted branch instead blocks fetch until it
//! resolves and then pays the front-end refill penalty — the standard
//! trace-driven approximation, which preserves the property the paper's
//! experiments rely on (IPC sensitivity to memory latency and bandwidth).
//!
//! # Data layout
//!
//! The instruction window is a fixed-capacity ring of parallel arrays
//! (structure-of-arrays): a slot's index is `seq & mask` where the ring
//! capacity is `ruu_entries` rounded up to a power of two, so the window's
//! contiguous sequence numbers `[base, next_seq)` map to distinct slots
//! and nothing is ever moved or reallocated per cycle. On top of the ring:
//!
//! - **ready / executing bitsets** (one bit per slot). The issue stage
//!   scans the ready bitset with `trailing_zeros`, rotated to start at the
//!   window head, which visits slots in exactly the ascending-seq program
//!   order the historical scan used. Writeback scans only the executing
//!   bits instead of every window slot.
//! - **an intrusive wakeup network**: `wake_head[producer]` starts a chain
//!   through `wake_next[consumer * 2 + operand]`, so registering and firing
//!   a dependence allocates nothing.
//! - **an open-addressed store index** mapping a word address to the chain
//!   of in-window stores to that word (through `store_next`), which serves
//!   LSQ disambiguation without hashing allocations.
//!
//! Debug builds cross-check every issue against a retained reference
//! dependency scan (`deps_ready`), so the bitset/wakeup machinery cannot
//! silently drift from the architectural definition.

use crate::fu::{latency, FuPool};
use microlib_mem::{Completion, IssueRejection, IssueResult, MemorySystem, ReqId};
use microlib_model::codec::{BinCodec, CodecError, Decoder, Encoder};
use microlib_model::{Addr, CoreConfig, Cycle};
use microlib_trace::{OpClass, TraceInst};
use std::collections::VecDeque;

/// Null link in the intrusive slot chains (wakeup network, store index).
const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    /// Waiting for operands / a functional unit / the cache.
    Waiting,
    /// Executing; completes at the cycle in `done_at`.
    Executing,
    /// Load waiting on a memory response.
    WaitingMem,
    /// Finished executing (result available to dependents).
    Completed,
}

/// Aggregate counters for one simulation run of the core. Every counter is
/// maintained incrementally in the pipeline stages — nothing is re-derived
/// by scanning the window.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CoreStats {
    /// Instructions committed.
    pub committed: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Cycles fetch was blocked on an unresolved mispredicted branch.
    pub mispredict_stall_cycles: u64,
    /// Cycles fetch was blocked on an instruction-cache miss.
    pub icache_stall_cycles: u64,
    /// Loads satisfied by store-to-load forwarding in the LSQ.
    pub loads_forwarded: u64,
    /// Issue attempts refused by the cache (ports/MSHR/pipeline).
    pub cache_reject_stalls: u64,
    /// Cycles dispatch stalled because the RUU was full.
    pub window_full_stalls: u64,
    /// Cycles dispatch stalled because the LSQ was full.
    pub lsq_full_stalls: u64,
    /// Cycles commit stalled because a store could not reach the cache.
    pub store_commit_stalls: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

impl BinCodec for CoreStats {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.committed);
        e.put_u64(self.cycles);
        e.put_u64(self.fetched);
        e.put_u64(self.mispredict_stall_cycles);
        e.put_u64(self.icache_stall_cycles);
        e.put_u64(self.loads_forwarded);
        e.put_u64(self.cache_reject_stalls);
        e.put_u64(self.window_full_stalls);
        e.put_u64(self.lsq_full_stalls);
        e.put_u64(self.store_commit_stalls);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CoreStats {
            committed: d.take_u64()?,
            cycles: d.take_u64()?,
            fetched: d.take_u64()?,
            mispredict_stall_cycles: d.take_u64()?,
            icache_stall_cycles: d.take_u64()?,
            loads_forwarded: d.take_u64()?,
            cache_reject_stalls: d.take_u64()?,
            window_full_stalls: d.take_u64()?,
            lsq_full_stalls: d.take_u64()?,
            store_commit_stalls: d.take_u64()?,
        })
    }
}

/// One entry of the open-addressed store index: a word address and the
/// head/tail slots of its chain of in-window stores (ascending program
/// order, linked through the core's `store_next` column).
#[derive(Clone, Copy, Debug)]
struct StoreEntry {
    word: u64,
    head: u32,
    tail: u32,
}

/// Open-addressed (linear probing) map from word address to the in-window
/// stores on that word. Capacity is fixed at twice the window ring — the
/// window can hold at most `cap` stores, so the load factor never exceeds
/// one half, probes stay short and the table can never fill. Deletion uses
/// backward shifting, so there are no tombstones to accumulate over a run.
#[derive(Debug)]
struct StoreIndex {
    entries: Box<[StoreEntry]>,
    mask: usize,
    /// `64 - log2(capacity)`: hashes take the top bits of a Fibonacci mix.
    shift: u32,
}

impl StoreIndex {
    fn new(window_cap: usize) -> Self {
        let cap = (window_cap * 2).next_power_of_two();
        StoreIndex {
            entries: vec![
                StoreEntry {
                    word: 0,
                    head: NONE,
                    tail: NONE,
                };
                cap
            ]
            .into_boxed_slice(),
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    #[inline]
    fn home(&self, word: u64) -> usize {
        (word.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    #[inline]
    fn find(&self, word: u64) -> Option<usize> {
        let mut i = self.home(word);
        loop {
            let e = &self.entries[i];
            if e.head == NONE {
                return None;
            }
            if e.word == word {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// First (oldest) store slot on `word`, or [`NONE`].
    #[inline]
    fn head(&self, word: u64) -> u32 {
        self.find(word)
            .map(|i| self.entries[i].head)
            .unwrap_or(NONE)
    }

    /// Appends `slot` (the youngest store on `word`) to the chain.
    fn push_tail(&mut self, word: u64, slot: u32, store_next: &mut [u32]) {
        let mut i = self.home(word);
        loop {
            let e = &mut self.entries[i];
            if e.head == NONE {
                *e = StoreEntry {
                    word,
                    head: slot,
                    tail: slot,
                };
                store_next[slot as usize] = NONE;
                return;
            }
            if e.word == word {
                store_next[e.tail as usize] = slot;
                store_next[slot as usize] = NONE;
                e.tail = slot;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes and returns the oldest store slot on `word` (which must be
    /// indexed); drops the table entry when the chain empties.
    fn pop_head(&mut self, word: u64, store_next: &[u32]) -> u32 {
        let i = self.find(word).expect("indexed at dispatch");
        let head = self.entries[i].head;
        let next = store_next[head as usize];
        if next == NONE {
            self.remove(i);
        } else {
            self.entries[i].head = next;
        }
        head
    }

    /// Backward-shift deletion: close the probe gap at `i` by pulling back
    /// any later entry whose probe path from its home slot passes through
    /// `i` (keeps every remaining entry reachable without tombstones).
    fn remove(&mut self, mut i: usize) {
        loop {
            self.entries[i].head = NONE;
            let mut j = i;
            loop {
                j = (j + 1) & self.mask;
                if self.entries[j].head == NONE {
                    return;
                }
                let k = self.home(self.entries[j].word);
                let passes_through_hole = if i <= j {
                    k <= i || k > j
                } else {
                    k <= i && k > j
                };
                if passes_through_hole {
                    self.entries[i] = self.entries[j];
                    i = j;
                    break;
                }
            }
        }
    }
}

/// The out-of-order core.
///
/// Drive it with [`OoOCore::cycle`] once per cycle, passing the memory
/// system (already advanced via
/// [`MemorySystem::begin_cycle`]) and the trace source. See
/// `microlib::Simulator` for the canonical driver loop.
#[derive(Debug)]
pub struct OoOCore {
    config: CoreConfig,
    /// Ring capacity: `ruu_entries` rounded up to a power of two.
    cap: usize,
    /// `cap - 1`; a slot's ring position is `seq & mask`.
    mask: u64,
    /// Oldest in-window sequence number (== `next_seq` when empty).
    base: u64,
    /// Sequence number the next dispatched instruction will get.
    next_seq: u64,

    // ---- the window ring, one parallel column per field -------------
    op: Box<[OpClass]>,
    pc: Box<[Addr]>,
    mem_addr: Box<[Addr]>,
    store_value: Box<[u64]>,
    state: Box<[SlotState]>,
    done_at: Box<[Cycle]>,
    /// Producers this instruction still waits on (0, 1 or 2); maintained
    /// by the wakeup network, `issue` only ever sees slots at 0.
    pending_deps: Box<[u8]>,
    /// Next-younger in-window store on the same word ([`StoreIndex`]).
    store_next: Box<[u32]>,
    /// Wakeup network: head of the producer's consumer chain.
    wake_head: Box<[u32]>,
    /// Wakeup network links, indexed by `consumer_slot * 2 + operand`.
    wake_next: Box<[u32]>,
    /// Retained reference operand lists for the debug cross-check.
    #[cfg(debug_assertions)]
    dbg_src_deps: Box<[[Option<u32>; 2]]>,

    /// One bit per slot: `Waiting` with all producers complete. The issue
    /// stage scans exactly this set in program order.
    ready: Box<[u64]>,
    /// One bit per slot: in `Executing` state (writeback scans only these).
    executing_bits: Box<[u64]>,
    /// Population count of `executing_bits` (writeback early-out).
    executing: u32,

    lsq_used: u32,
    /// In-window stores indexed by word address — LSQ disambiguation
    /// without per-access hashing or allocation.
    store_index: StoreIndex,
    /// Outstanding load requests: `(request, seq)`, scanned linearly (the
    /// LSQ bounds the population to a handful).
    mem_requests: Vec<(ReqId, u64)>,

    fetch_buffer: VecDeque<TraceInst>,
    fetch_blocked_until: Cycle,
    blocking_branch: Option<u64>,
    ifetch_pending: Option<ReqId>,
    last_fetch_line: Option<Addr>,

    /// Scratch: the issue stage's program-order ready snapshot.
    ready_scratch: Vec<u32>,
    /// Scratch: slots of the load batch being accumulated.
    batch_slots: Vec<u32>,
    /// Scratch: `(pc, addr)` pairs handed to the hierarchy per batch.
    batch_reqs: Vec<(Addr, Addr)>,
    /// Scratch: per-entry results returned by the hierarchy.
    batch_results: Vec<Result<IssueResult, IssueRejection>>,

    fus: FuPool,
    stats: CoreStats,
    trace_done: bool,
}

impl OoOCore {
    /// Creates a core with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: CoreConfig) -> Self {
        config.validate().expect("invalid core configuration");
        let cap = (config.ruu_entries as usize).next_power_of_two();
        let words = cap.div_ceil(64);
        OoOCore {
            fus: FuPool::new(&config),
            config,
            cap,
            mask: (cap - 1) as u64,
            base: 0,
            next_seq: 0,
            op: vec![OpClass::IntAlu; cap].into_boxed_slice(),
            pc: vec![Addr::NULL; cap].into_boxed_slice(),
            mem_addr: vec![Addr::NULL; cap].into_boxed_slice(),
            store_value: vec![0; cap].into_boxed_slice(),
            state: vec![SlotState::Waiting; cap].into_boxed_slice(),
            done_at: vec![Cycle::ZERO; cap].into_boxed_slice(),
            pending_deps: vec![0; cap].into_boxed_slice(),
            store_next: vec![NONE; cap].into_boxed_slice(),
            wake_head: vec![NONE; cap].into_boxed_slice(),
            wake_next: vec![NONE; cap * 2].into_boxed_slice(),
            #[cfg(debug_assertions)]
            dbg_src_deps: vec![[None, None]; cap].into_boxed_slice(),
            ready: vec![0; words].into_boxed_slice(),
            executing_bits: vec![0; words].into_boxed_slice(),
            executing: 0,
            lsq_used: 0,
            store_index: StoreIndex::new(cap),
            mem_requests: Vec::new(),
            fetch_buffer: VecDeque::new(),
            fetch_blocked_until: Cycle::ZERO,
            blocking_branch: None,
            ifetch_pending: None,
            last_fetch_line: None,
            ready_scratch: Vec::new(),
            batch_slots: Vec::new(),
            batch_reqs: Vec::new(),
            batch_results: Vec::new(),
            stats: CoreStats::default(),
            trace_done: false,
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Whether every fetched instruction has committed and the trace is
    /// exhausted.
    pub fn drained(&self) -> bool {
        self.trace_done && self.base == self.next_seq && self.fetch_buffer.is_empty()
    }

    #[inline]
    fn pos_of(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// Sequence number of the instruction in ring slot `pos` (which must
    /// be occupied).
    #[inline]
    fn seq_at(&self, pos: usize) -> u64 {
        let head = (self.base & self.mask) as usize;
        let offset = (pos + self.cap - head) & (self.cap - 1);
        self.base + offset as u64
    }

    #[inline]
    fn set_ready(&mut self, pos: usize) {
        self.ready[pos >> 6] |= 1u64 << (pos & 63);
    }

    #[inline]
    fn clear_ready(&mut self, pos: usize) {
        self.ready[pos >> 6] &= !(1u64 << (pos & 63));
    }

    #[inline]
    fn set_executing(&mut self, pos: usize) {
        self.executing_bits[pos >> 6] |= 1u64 << (pos & 63);
        self.executing += 1;
    }

    #[cfg(debug_assertions)]
    fn producer_ready(&self, consumer_seq: u64, distance: u32) -> bool {
        let Some(producer_seq) = consumer_seq.checked_sub(distance as u64) else {
            return true;
        };
        if producer_seq < self.base {
            return true; // producer already committed
        }
        self.state[self.pos_of(producer_seq)] == SlotState::Completed
    }

    /// Reference dependency check (scan form) — the wakeup network must
    /// always agree with it; debug builds assert so on every issue.
    #[cfg(debug_assertions)]
    fn deps_ready(&self, pos: usize) -> bool {
        let seq = self.seq_at(pos);
        self.dbg_src_deps[pos]
            .iter()
            .flatten()
            .all(|d| self.producer_ready(seq, *d))
    }

    /// Notifies `producer`'s registered consumers that it completed;
    /// consumers whose last outstanding producer this was become ready.
    fn wake_dependents(&mut self, producer: usize) {
        let mut node = self.wake_head[producer];
        self.wake_head[producer] = NONE;
        while node != NONE {
            let n = node as usize;
            node = self.wake_next[n];
            let consumer = n >> 1;
            debug_assert!(self.pending_deps[consumer] > 0);
            self.pending_deps[consumer] -= 1;
            if self.pending_deps[consumer] == 0 && self.state[consumer] == SlotState::Waiting {
                self.set_ready(consumer);
            }
        }
    }

    /// Slot of the youngest older store overlapping `addr`'s word, if any.
    /// Served from the store index; the chain is in ascending program
    /// order, so the last chain node older than the load is the answer.
    fn older_store_conflict(&self, load_pos: usize, addr: Addr) -> Option<usize> {
        let mut node = self.store_index.head(addr.word_index());
        if node == NONE {
            return None;
        }
        let load_seq = self.seq_at(load_pos);
        let mut youngest_older = NONE;
        while node != NONE && self.seq_at(node as usize) < load_seq {
            youngest_older = node;
            node = self.store_next[node as usize];
        }
        (youngest_older != NONE).then_some(youngest_older as usize)
    }

    /// Runs one cycle. `completions` are this cycle's memory completions
    /// (from [`MemorySystem::begin_cycle`]); `trace` supplies instructions.
    /// Returns the number of instructions committed this cycle.
    pub fn cycle(
        &mut self,
        now: Cycle,
        completions: &[Completion],
        mem: &mut MemorySystem,
        trace: &mut dyn Iterator<Item = TraceInst>,
    ) -> u64 {
        self.stats.cycles += 1;
        self.fus.begin_cycle();

        self.apply_completions(completions);
        self.writeback(now);
        let committed = self.commit(now, mem);
        self.issue(now, mem);
        self.dispatch();
        self.fetch(now, mem, trace);
        committed
    }

    fn apply_completions(&mut self, completions: &[Completion]) {
        for c in completions {
            let Some(i) = self.mem_requests.iter().position(|e| e.0 == c.req) else {
                continue; // retired store's write, or i-fetch handled below
            };
            let (_, seq) = self.mem_requests.swap_remove(i);
            if seq < self.base {
                continue;
            }
            debug_assert!(seq < self.next_seq);
            let pos = self.pos_of(seq);
            if self.state[pos] == SlotState::WaitingMem {
                self.state[pos] = SlotState::Completed;
                self.wake_dependents(pos);
            }
        }
        if let Some(pending) = self.ifetch_pending {
            if completions.iter().any(|c| c.req == pending) {
                self.ifetch_pending = None;
            }
        }
    }

    fn writeback(&mut self, now: Cycle) {
        if self.executing == 0 {
            return;
        }
        for w in 0..self.executing_bits.len() {
            let mut bits = self.executing_bits[w];
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                let pos = (w << 6) | b as usize;
                if self.done_at[pos] <= now {
                    self.executing_bits[w] &= !(1u64 << b);
                    self.executing -= 1;
                    self.state[pos] = SlotState::Completed;
                    if self.blocking_branch == Some(self.seq_at(pos)) {
                        self.blocking_branch = None;
                        self.fetch_blocked_until = now + self.config.mispredict_penalty;
                    }
                    self.wake_dependents(pos);
                }
            }
        }
    }

    fn commit(&mut self, now: Cycle, mem: &mut MemorySystem) -> u64 {
        let mut committed = 0;
        while committed < self.config.commit_width as u64 {
            if self.base == self.next_seq {
                break; // window empty
            }
            let pos = (self.base & self.mask) as usize;
            if self.state[pos] != SlotState::Completed {
                break;
            }
            let op = self.op[pos];
            if op == OpClass::Store {
                match mem.try_store(self.pc[pos], self.mem_addr[pos], self.store_value[pos], now) {
                    // Done, or retired into the "store buffer" (the MSHR
                    // owns a pending write).
                    Ok(_) => {}
                    Err(_) => {
                        self.stats.store_commit_stalls += 1;
                        break;
                    }
                }
                let popped = self
                    .store_index
                    .pop_head(self.mem_addr[pos].word_index(), &self.store_next);
                debug_assert_eq!(popped, pos as u32, "oldest store commits first");
            }
            if op.is_mem() {
                self.lsq_used -= 1;
            }
            debug_assert_eq!(self.wake_head[pos], NONE, "committed with live consumers");
            self.stats.committed += 1;
            committed += 1;
            self.base += 1;
        }
        committed
    }

    /// Snapshots the ready bitset as slot positions in program order: the
    /// scan starts at the window head's ring position and wraps, which is
    /// ascending sequence order for the (contiguous) window.
    fn collect_ready_in_order(&self, out: &mut Vec<u32>) {
        out.clear();
        let head = (self.base & self.mask) as usize;
        let head_word = head >> 6;
        let head_bit = head & 63;
        // Positions [head, cap): the window head onward.
        for w in head_word..self.ready.len() {
            let mut bits = self.ready[w];
            if w == head_word {
                bits &= !0u64 << head_bit;
            }
            while bits != 0 {
                out.push(((w as u32) << 6) | bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        // Wrapped positions [0, head).
        for w in 0..=head_word {
            let mut bits = self.ready[w];
            if w == head_word {
                bits &= (1u64 << head_bit) - 1;
            }
            while bits != 0 {
                out.push(((w as u32) << 6) | bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
    }

    /// Presents a run of accumulated conflict-free ready loads to the
    /// hierarchy as one batch. The observable call sequence is identical
    /// to issuing them back to back: the batch is sized by the functional
    /// units that would have accepted them (refused `try_issue` calls are
    /// pure, so eliding them changes nothing), the hierarchy applies the
    /// same per-entry access path in the same order and stops exactly
    /// where the historical loop stopped (issue width exhausted, or a
    /// rejection that blocks the memory path), and one unit is consumed
    /// per entry that reached the cache — accepted or rejected — just as
    /// the per-instruction loop did.
    #[allow(clippy::too_many_arguments)] // the issue loop's running state
    fn flush_load_batch(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        batch: &[u32],
        issued: &mut u32,
        mem_path_blocked: &mut bool,
        lsq_backpressure: bool,
        reqs: &mut Vec<(Addr, Addr)>,
        results: &mut Vec<Result<IssueResult, IssueRejection>>,
    ) {
        let fu_available = self.fus.available(OpClass::Load, now) as usize;
        let attempt = batch.len().min(fu_available);
        if attempt == 0 {
            return; // no unit would accept: every load stays ready
        }
        reqs.clear();
        for &p in &batch[..attempt] {
            reqs.push((self.pc[p as usize], self.mem_addr[p as usize]));
        }
        let allowed = self.config.issue_width - *issued;
        let processed = mem.try_load_batch(reqs, now, allowed, results);
        debug_assert_eq!(processed, results.len());
        for (k, res) in results.iter().enumerate() {
            let pos = batch[k] as usize;
            let _accepted = self.fus.try_issue(OpClass::Load, now);
            debug_assert!(_accepted, "batch sized by FuPool::available");
            match res {
                Ok(IssueResult::Done { at, .. }) => {
                    self.state[pos] = SlotState::Executing;
                    self.done_at[pos] = *at;
                    self.set_executing(pos);
                    self.clear_ready(pos);
                    *issued += 1;
                }
                Ok(IssueResult::Pending(req)) => {
                    self.state[pos] = SlotState::WaitingMem;
                    self.mem_requests.push((*req, self.seq_at(pos)));
                    self.clear_ready(pos);
                    *issued += 1;
                }
                Err(reason) => {
                    self.stats.cache_reject_stalls += 1;
                    if lsq_backpressure || matches!(reason, IssueRejection::PortBusy) {
                        *mem_path_blocked = true;
                    }
                }
            }
        }
    }

    fn issue(&mut self, now: Cycle, mem: &mut MemorySystem) {
        let mut issued = 0u32;
        let mut mem_path_blocked = false;
        let lsq_backpressure = mem.config().fidelity.lsq_backpressure;
        let width = self.config.issue_width;
        // Snapshot the ready set (program order, exactly the order the
        // historical full-window scan visited issuable slots). Issue only
        // removes entries, never adds: nothing completes mid-issue, so no
        // slot can become ready here.
        let mut scratch = std::mem::take(&mut self.ready_scratch);
        self.collect_ready_in_order(&mut scratch);
        let mut batch = std::mem::take(&mut self.batch_slots);
        let mut reqs = std::mem::take(&mut self.batch_reqs);
        let mut results = std::mem::take(&mut self.batch_results);
        batch.clear();

        for &slot in &scratch {
            let pos = slot as usize;
            #[cfg(debug_assertions)]
            {
                debug_assert_eq!(self.state[pos], SlotState::Waiting);
                debug_assert!(self.deps_ready(pos), "ready set out of sync with deps");
            }
            let op = self.op[pos];
            // Conflict-free loads accumulate into a batch; `issued` cannot
            // change while one is open, so the width check made when it
            // opened stands for every entry that joins it.
            if op == OpClass::Load
                && !mem_path_blocked
                && self.older_store_conflict(pos, self.mem_addr[pos]).is_none()
            {
                if batch.is_empty() && issued >= width {
                    break;
                }
                batch.push(pos as u32);
                continue;
            }
            if !batch.is_empty() {
                self.flush_load_batch(
                    now,
                    mem,
                    &batch,
                    &mut issued,
                    &mut mem_path_blocked,
                    lsq_backpressure,
                    &mut reqs,
                    &mut results,
                );
                batch.clear();
            }
            if issued >= width {
                break;
            }
            match op {
                OpClass::Load => {
                    if mem_path_blocked {
                        continue;
                    }
                    // LSQ disambiguation: forward from (or wait on) the
                    // youngest older overlapping store. (Conflict-free
                    // loads joined the batch above.)
                    let st = self
                        .older_store_conflict(pos, self.mem_addr[pos])
                        .expect("conflict-free loads are batched");
                    if self.state[st] == SlotState::Completed
                        && self.fus.try_issue(OpClass::Load, now)
                    {
                        self.state[pos] = SlotState::Executing;
                        self.done_at[pos] = now + 1;
                        self.set_executing(pos);
                        self.clear_ready(pos);
                        self.stats.loads_forwarded += 1;
                        issued += 1;
                    }
                    // Store not executed yet: wait.
                }
                _ => {
                    // Stores only generate their address at issue; the
                    // cache write happens at commit.
                    if self.fus.try_issue(op, now) {
                        self.state[pos] = SlotState::Executing;
                        self.done_at[pos] = now + latency(op);
                        self.set_executing(pos);
                        self.clear_ready(pos);
                        issued += 1;
                    }
                }
            }
        }
        if !batch.is_empty() {
            self.flush_load_batch(
                now,
                mem,
                &batch,
                &mut issued,
                &mut mem_path_blocked,
                lsq_backpressure,
                &mut reqs,
                &mut results,
            );
            batch.clear();
        }
        self.ready_scratch = scratch;
        self.batch_slots = batch;
        self.batch_reqs = reqs;
        self.batch_results = results;
    }

    fn dispatch(&mut self) {
        for _ in 0..self.config.decode_width {
            if self.next_seq - self.base >= self.config.ruu_entries as u64 {
                self.stats.window_full_stalls += 1;
                break;
            }
            let Some(inst) = self.fetch_buffer.front() else {
                break;
            };
            if inst.op.is_mem() {
                if self.lsq_used >= self.config.lsq_entries {
                    self.stats.lsq_full_stalls += 1;
                    break;
                }
                self.lsq_used += 1;
            }
            let inst = self.fetch_buffer.pop_front().expect("peeked");
            let seq = self.next_seq;
            let pos = self.pos_of(seq);
            self.op[pos] = inst.op;
            self.pc[pos] = inst.pc;
            if let Some(m) = inst.mem {
                self.mem_addr[pos] = m.addr;
                self.store_value[pos] = m.value;
            }
            self.state[pos] = SlotState::Waiting;
            debug_assert_eq!(
                self.wake_head[pos], NONE,
                "recycled slot has stale consumers"
            );
            #[cfg(debug_assertions)]
            {
                self.dbg_src_deps[pos] = inst.src_deps;
            }
            if inst.op == OpClass::Store {
                let m = inst.mem.expect("store has memory ref");
                self.store_index
                    .push_tail(m.addr.word_index(), pos as u32, &mut self.store_next);
            }
            let mut pending = 0u8;
            for (operand, d) in inst.src_deps.iter().enumerate() {
                // No producer (distance reaches before the trace) or an
                // already-committed/completed one: nothing to wait for.
                let Some(d) = d else { continue };
                let Some(producer_seq) = seq.checked_sub(*d as u64) else {
                    continue;
                };
                if producer_seq < self.base {
                    continue;
                }
                let producer = self.pos_of(producer_seq);
                if self.state[producer] == SlotState::Completed {
                    continue;
                }
                pending += 1;
                let node = (pos as u32) * 2 + operand as u32;
                self.wake_next[node as usize] = self.wake_head[producer];
                self.wake_head[producer] = node;
            }
            self.pending_deps[pos] = pending;
            if pending == 0 {
                self.set_ready(pos);
            }
            self.next_seq += 1;
        }
    }

    fn fetch(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        trace: &mut dyn Iterator<Item = TraceInst>,
    ) {
        if self.trace_done {
            return;
        }
        if self.blocking_branch.is_some() || self.fetch_blocked_until > now {
            self.stats.mispredict_stall_cycles += 1;
            return;
        }
        if self.ifetch_pending.is_some() {
            self.stats.icache_stall_cycles += 1;
            return;
        }
        // Keep the fetch buffer at most one fetch-group deep.
        if self.fetch_buffer.len() >= self.config.fetch_width as usize {
            return;
        }
        for _ in 0..self.config.fetch_width {
            let Some(inst) = trace.next() else {
                self.trace_done = true;
                break;
            };
            // Instruction-cache access, one new line per port per cycle.
            let line = inst.pc.line(mem.config().l1i.line_bytes);
            if Some(line) != self.last_fetch_line {
                match mem.try_ifetch(inst.pc, now) {
                    Ok(IssueResult::Done { .. }) => {
                        self.last_fetch_line = Some(line);
                    }
                    Ok(IssueResult::Pending(req)) => {
                        self.ifetch_pending = Some(req);
                        self.last_fetch_line = Some(line);
                        self.stats.fetched += 1;
                        self.push_fetched(inst);
                        break; // stall until the I-miss returns
                    }
                    Err(_) => {
                        // Port exhausted: put the instruction back by
                        // re-fetching it next cycle. Since the stream cannot
                        // be "un-advanced", buffer it and stop.
                        self.stats.fetched += 1;
                        self.push_fetched(inst);
                        break;
                    }
                }
            }
            self.stats.fetched += 1;
            let stop = self.push_fetched(inst);
            if stop {
                break;
            }
        }
    }

    /// Buffers a fetched instruction; returns `true` if fetch must stop
    /// this cycle (taken branch or mispredict).
    fn push_fetched(&mut self, inst: TraceInst) -> bool {
        let mut stop = false;
        if let Some(b) = inst.branch {
            if b.mispredicted {
                // Fetch stops until this branch resolves. Identify it by
                // the sequence number it will get.
                self.blocking_branch = Some(self.next_seq + self.fetch_buffer.len() as u64);
                stop = true;
            } else if b.taken {
                stop = true; // fetch discontinuity
            }
        }
        self.fetch_buffer.push_back(inst);
        stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::SystemConfig;
    use microlib_trace::{BranchInfo, TraceInst};

    fn mem() -> MemorySystem {
        MemorySystem::new(SystemConfig::baseline_constant_memory(), Vec::new()).unwrap()
    }

    /// Pre-warms the I-line of the first instruction (so tests exercise
    /// scheduling, not cold-start I-misses), then drives the core to
    /// drain. Returns the core-loop cycle count (excluding the warmup).
    fn run(
        core: &mut OoOCore,
        mem: &mut MemorySystem,
        insts: Vec<TraceInst>,
        max_cycles: u64,
    ) -> u64 {
        let mut start = 0u64;
        if let Some(first) = insts.first() {
            mem.begin_cycle(Cycle::ZERO);
            if let Ok(IssueResult::Pending(id)) = mem.try_ifetch(first.pc, Cycle::ZERO) {
                loop {
                    start += 1;
                    let dones = mem.begin_cycle(Cycle::new(start));
                    if dones.iter().any(|c| c.req == id) {
                        break;
                    }
                    assert!(start < 10_000, "warmup ifetch never completed");
                }
            }
            start += 1;
        }
        let mut trace = insts.into_iter();
        let mut used = 0;
        for c in 0..max_cycles {
            used = c;
            let now = Cycle::new(start + c);
            let completions = mem.begin_cycle(now);
            core.cycle(now, &completions, mem, &mut trace);
            if core.drained() {
                break;
            }
        }
        assert!(core.drained(), "core did not drain: {:?}", core.stats());
        used
    }

    /// ALU instructions whose PCs loop within a small code footprint (as
    /// real loops do), so the I-cache warms up instead of streaming cold.
    fn alu_chain(n: usize, dep: bool) -> Vec<TraceInst> {
        (0..n)
            .map(|i| {
                TraceInst::alu(
                    Addr::new(0x40_0000 + (i as u64 % 64) * 4),
                    OpClass::IntAlu,
                    [if dep && i > 0 { Some(1) } else { None }, None],
                )
            })
            .collect()
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, alu_chain(4000, false), 20_000);
        let ipc = core.stats().ipc();
        assert!(ipc > 4.0, "independent ALU IPC {ipc} too low");
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, alu_chain(2000, true), 20_000);
        let ipc = core.stats().ipc();
        assert!(ipc < 1.2, "serial chain IPC {ipc} should be ~1");
    }

    #[test]
    fn committed_matches_trace_length() {
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, alu_chain(777, false), 20_000);
        assert_eq!(core.stats().committed, 777);
    }

    #[test]
    fn load_latency_gates_dependents() {
        // load (miss) -> dependent ALU chain: cycles must include the miss
        // round trip.
        let mut insts = vec![TraceInst::load(
            Addr::new(0x40_0000),
            Addr::new(0x10_0000),
            [None, None],
        )];
        for i in 0..10 {
            insts.push(TraceInst::alu(
                Addr::new(0x40_0004 + i * 4),
                OpClass::IntAlu,
                [Some(1), None],
            ));
        }
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        let cycles = run(&mut core, &mut m, insts, 20_000);
        assert!(cycles > 70, "miss latency not observed: {cycles} cycles");
    }

    #[test]
    fn store_to_load_forwarding() {
        let pc = |i: u64| Addr::new(0x40_0000 + i * 4);
        let a = Addr::new(0x20_0000);
        // The divide blocks commit, so the store is executed-but-uncommitted
        // when the load issues — the LSQ must forward.
        let insts = vec![
            TraceInst::alu(pc(0), OpClass::IntDiv, [None, None]),
            TraceInst::store(pc(1), a, 99, [None, None]),
            TraceInst::load(pc(2), a, [None, None]),
        ];
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, insts, 20_000);
        assert_eq!(core.stats().loads_forwarded, 1);
        assert!(m.integrity_error().is_none());
    }

    #[test]
    fn load_after_committed_store_reads_through_cache() {
        let pc = |i: u64| Addr::new(0x40_0000 + i * 4);
        let a = Addr::new(0x20_0000);
        let insts = vec![
            TraceInst::store(pc(0), a, 99, [None, None]),
            TraceInst::load(pc(1), a, [None, None]),
        ];
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, insts, 20_000);
        // Commit applies the store before the load issues; either path
        // (forward or cache) must preserve the value.
        assert!(m.integrity_error().is_none());
        assert_eq!(m.functional().architectural(a), 99);
    }

    #[test]
    fn mispredicted_branch_stalls_fetch() {
        let pc = |i: u64| Addr::new(0x40_0000 + i * 4);
        let mut with_miss = vec![TraceInst::branch(
            pc(0),
            BranchInfo {
                taken: true,
                target: pc(1),
                mispredicted: true,
            },
            [None, None],
        )];
        with_miss.extend(alu_chain(500, false));
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, with_miss, 20_000);
        assert!(core.stats().mispredict_stall_cycles >= 1);
    }

    #[test]
    fn lsq_capacity_limits_memory_ops() {
        let mut cfg = CoreConfig::baseline();
        cfg.lsq_entries = 2;
        let insts: Vec<_> = (0..50)
            .map(|i| {
                TraceInst::load(
                    Addr::new(0x40_0000 + i * 4),
                    Addr::new(0x30_0000 + i * 0x1000),
                    [None, None],
                )
            })
            .collect();
        let mut core = OoOCore::new(cfg);
        let mut m = mem();
        run(&mut core, &mut m, insts, 100_000);
        assert!(core.stats().lsq_full_stalls > 0);
    }

    #[test]
    fn stores_commit_and_land_in_memory() {
        let a = Addr::new(0x28_0000);
        let insts = vec![TraceInst::store(
            Addr::new(0x40_0000),
            a,
            0xCAFE,
            [None, None],
        )];
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, insts, 20_000);
        assert_eq!(m.functional().architectural(a), 0xCAFE);
        // Let in-flight writes drain.
        for c in 0..500u64 {
            m.begin_cycle(Cycle::new(100 + c));
            if m.quiescent() {
                break;
            }
        }
        assert!(m.quiescent());
    }

    /// The ring reuses slots many times over a long trace (4000 ALUs wrap
    /// the 128-entry window ~31 times); interleave stores/loads on few
    /// word addresses so the store-index chains and the wakeup network
    /// churn through recycled slots too.
    #[test]
    fn ring_reuse_with_store_chains_stays_consistent() {
        let pc = |i: u64| Addr::new(0x40_0000 + (i % 64) * 4);
        let addr = |i: u64| Addr::new(0x20_0000 + (i % 4) * 8);
        let insts: Vec<_> = (0..3000)
            .map(|i| match i % 5 {
                0 => TraceInst::store(pc(i), addr(i), i, [None, None]),
                1 => TraceInst::load(pc(i), addr(i - 1), [Some(1), None]),
                _ => TraceInst::alu(pc(i), OpClass::IntAlu, [Some(2), None]),
            })
            .collect();
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, insts, 100_000);
        assert_eq!(core.stats().committed, 3000);
        assert!(m.integrity_error().is_none(), "{:?}", m.integrity_error());
        assert!(core.stats().loads_forwarded > 0);
    }

    /// Pins the exact counter values for a fixed mixed trace: the stats
    /// are maintained incrementally by the pipeline stages, and any change
    /// to their accounting (or to the scheduler that feeds them) must show
    /// up here as a deliberate diff.
    #[test]
    fn stats_pinned_for_fixed_trace() {
        let pc = |i: u64| Addr::new(0x40_0000 + (i % 64) * 4);
        let mut insts = Vec::new();
        for i in 0..400u64 {
            insts.push(match i % 7 {
                0 => TraceInst::store(pc(i), Addr::new(0x20_0000 + (i % 8) * 8), i, [None, None]),
                1 => TraceInst::load(pc(i), Addr::new(0x20_0000 + (i % 8) * 8), [None, None]),
                2 => TraceInst::load(pc(i), Addr::new(0x30_0000 + i * 64), [None, None]),
                3 => TraceInst::alu(pc(i), OpClass::IntDiv, [Some(1), None]),
                6 => TraceInst::branch(
                    pc(i),
                    BranchInfo {
                        taken: i % 14 == 6,
                        target: pc(i + 1),
                        mispredicted: i % 21 == 6,
                    },
                    [Some(3), None],
                ),
                _ => TraceInst::alu(pc(i), OpClass::IntAlu, [Some(1), Some(2)]),
            });
        }
        let mut core = OoOCore::new(CoreConfig::baseline());
        let mut m = mem();
        run(&mut core, &mut m, insts, 100_000);
        let s = core.stats();
        assert!(m.integrity_error().is_none(), "{:?}", m.integrity_error());
        assert_eq!(
            (s.committed, s.fetched, s.loads_forwarded),
            (400, 400, 18),
            "full stats: {s:?}"
        );
        assert_eq!(
            CoreStats {
                cycles: s.cycles,
                mispredict_stall_cycles: s.mispredict_stall_cycles,
                icache_stall_cycles: s.icache_stall_cycles,
                cache_reject_stalls: s.cache_reject_stalls,
                window_full_stalls: s.window_full_stalls,
                lsq_full_stalls: s.lsq_full_stalls,
                store_commit_stalls: s.store_commit_stalls,
                ..s
            },
            s,
            "self-consistency"
        );
        // The scheduler-dependent counters, pinned.
        assert_eq!(s.cycles, 2647, "full stats: {s:?}");
        assert_eq!(s.mispredict_stall_cycles, 2166, "full stats: {s:?}");
        assert_eq!(s.icache_stall_cycles, 308, "full stats: {s:?}");
        assert_eq!(s.cache_reject_stalls, 2, "full stats: {s:?}");
    }

    /// Hammers the open-addressed store index: many distinct words (probe
    /// collisions + backward-shift deletion) and repeated words (chains).
    #[test]
    fn store_index_survives_collisions_and_deletion() {
        let mut idx = StoreIndex::new(8); // 16 entries: collisions likely
        let mut next: Box<[u32]> = vec![NONE; 8].into_boxed_slice();
        // Three words chained through slots, interleaved.
        idx.push_tail(0x100, 0, &mut next);
        idx.push_tail(0x200, 1, &mut next);
        idx.push_tail(0x100, 2, &mut next);
        idx.push_tail(0x300, 3, &mut next);
        idx.push_tail(0x100, 4, &mut next);
        assert_eq!(idx.head(0x100), 0);
        assert_eq!(idx.head(0x200), 1);
        assert_eq!(idx.head(0x400), NONE);
        assert_eq!(idx.pop_head(0x100, &next), 0);
        assert_eq!(idx.head(0x100), 2);
        assert_eq!(idx.pop_head(0x200, &next), 1);
        assert_eq!(idx.head(0x200), NONE, "chain emptied: entry removed");
        assert_eq!(idx.pop_head(0x100, &next), 2);
        assert_eq!(idx.pop_head(0x100, &next), 4);
        assert_eq!(idx.head(0x100), NONE);
        assert_eq!(idx.pop_head(0x300, &next), 3);
        // Fill/drain many distinct words to force wraparound probes and
        // backward shifts, in a mixed insertion/removal order.
        for round in 0..4u64 {
            for w in 0..6u64 {
                idx.push_tail(w * 0x1000 + round, (w % 8) as u32, &mut next);
            }
            for w in (0..6u64).rev() {
                assert_eq!(idx.pop_head(w * 0x1000 + round, &next), (w % 8) as u32);
                assert_eq!(idx.head(w * 0x1000 + round), NONE);
            }
        }
    }
}
