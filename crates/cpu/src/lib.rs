//! # microlib-cpu
//!
//! The out-of-order superscalar processor model of the MicroLib
//! reproduction — an RUU/LSQ core in the SimpleScalar `sim-outorder` mould
//! (Table 1: 128-entry RUU, 128-entry LSQ, 8-wide front end, the paper's
//! functional-unit mix), driven by the dependency-explicit traces of
//! [`microlib-trace`](microlib_trace).
//!
//! The core exists to give the cache mechanisms a realistic consumer:
//! latency tolerance up to the window size, bandwidth sensitivity through
//! the LSQ and MSHR backpressure, and fetch stalls through the L1I — the
//! properties every experiment in the paper measures through IPC.
//!
//! # Examples
//!
//! ```
//! use microlib_cpu::OoOCore;
//! use microlib_mem::MemorySystem;
//! use microlib_model::{CoreConfig, Cycle, SystemConfig};
//! use microlib_trace::{benchmarks, Workload};
//!
//! let mut core = OoOCore::new(CoreConfig::baseline());
//! let mut mem = MemorySystem::new(SystemConfig::baseline_constant_memory(), Vec::new())?;
//! let workload = Workload::new(benchmarks::by_name("swim").unwrap(), 1);
//! workload.initialize(mem.functional_mut());
//!
//! let mut trace = workload.stream().take(2_000);
//! let mut now = Cycle::ZERO;
//! while !core.drained() {
//!     let completions = mem.begin_cycle(now);
//!     core.cycle(now, &completions, &mut mem, &mut trace);
//!     now += 1;
//! }
//! assert_eq!(core.stats().committed, 2_000);
//! # Ok::<(), microlib_model::ConfigError>(())
//! ```

#![warn(missing_docs)]

mod core;
mod fu;

pub use crate::core::{CoreStats, OoOCore};
pub use fu::{latency, FuPool};
