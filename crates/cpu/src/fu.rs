//! The functional-unit pool: per-class issue bandwidth for pipelined units
//! and busy tracking for unpipelined dividers (Table 1: 8 IntALU, 3
//! IntMult/Div, 6 FPALU, 2 FPMult/Div, 4 load/store units).

use microlib_model::{CoreConfig, Cycle};
use microlib_trace::OpClass;

/// Execution latencies per class (sim-outorder defaults).
pub fn latency(op: OpClass) -> u64 {
    match op {
        OpClass::IntAlu | OpClass::Branch => 1,
        OpClass::IntMult => 3,
        OpClass::IntDiv => 20,
        OpClass::FpAlu => 2,
        OpClass::FpMult => 4,
        OpClass::FpDiv => 12,
        OpClass::Load | OpClass::Store => 1, // address generation
    }
}

/// Whether the op monopolizes its unit for the full latency (divides).
fn unpipelined(op: OpClass) -> bool {
    matches!(op, OpClass::IntDiv | OpClass::FpDiv)
}

#[derive(Clone, Debug)]
struct UnitClass {
    count: u32,
    issued_this_cycle: u32,
    busy_until: Vec<Cycle>,
}

impl UnitClass {
    fn new(count: u32) -> Self {
        UnitClass {
            count,
            issued_this_cycle: 0,
            busy_until: vec![Cycle::ZERO; count as usize],
        }
    }

    fn try_issue(&mut self, now: Cycle, hold_for: Option<u64>) -> bool {
        if self.issued_this_cycle >= self.count {
            return false;
        }
        let Some(slot) = self.busy_until.iter_mut().find(|b| **b <= now) else {
            return false;
        };
        if let Some(hold) = hold_for {
            *slot = now + hold;
        }
        self.issued_this_cycle += 1;
        true
    }

    fn begin_cycle(&mut self) {
        self.issued_this_cycle = 0;
    }
}

/// The pool of functional units.
///
/// # Examples
///
/// ```
/// use microlib_cpu::FuPool;
/// use microlib_model::{CoreConfig, Cycle};
/// use microlib_trace::OpClass;
///
/// let mut pool = FuPool::new(&CoreConfig::baseline());
/// pool.begin_cycle();
/// assert!(pool.try_issue(OpClass::IntAlu, Cycle::ZERO));
/// ```
#[derive(Clone, Debug)]
pub struct FuPool {
    int_alu: UnitClass,
    int_mult: UnitClass,
    fp_alu: UnitClass,
    fp_mult: UnitClass,
    mem: UnitClass,
}

impl FuPool {
    /// Builds the pool described by `config`.
    pub fn new(config: &CoreConfig) -> Self {
        FuPool {
            int_alu: UnitClass::new(config.int_alu),
            int_mult: UnitClass::new(config.int_mult),
            fp_alu: UnitClass::new(config.fp_alu),
            fp_mult: UnitClass::new(config.fp_mult),
            mem: UnitClass::new(config.mem_units),
        }
    }

    /// Resets per-cycle issue counters. Call once per cycle.
    pub fn begin_cycle(&mut self) {
        self.int_alu.begin_cycle();
        self.int_mult.begin_cycle();
        self.fp_alu.begin_cycle();
        self.fp_mult.begin_cycle();
        self.mem.begin_cycle();
    }

    /// Attempts to issue `op` at `now`; returns whether a unit accepted it.
    pub fn try_issue(&mut self, op: OpClass, now: Cycle) -> bool {
        let class = match op {
            OpClass::IntAlu | OpClass::Branch => &mut self.int_alu,
            OpClass::IntMult | OpClass::IntDiv => &mut self.int_mult,
            OpClass::FpAlu => &mut self.fp_alu,
            OpClass::FpMult | OpClass::FpDiv => &mut self.fp_mult,
            OpClass::Load | OpClass::Store => &mut self.mem,
        };
        let hold = unpipelined(op).then(|| latency(op));
        class.try_issue(now, hold)
    }

    /// How many consecutive [`FuPool::try_issue`] calls for `op` would
    /// succeed right now. Pure — lets a caller size a batch without making
    /// (and counting the side effects of) doomed issue attempts.
    pub fn available(&self, op: OpClass, now: Cycle) -> u32 {
        let class = match op {
            OpClass::IntAlu | OpClass::Branch => &self.int_alu,
            OpClass::IntMult | OpClass::IntDiv => &self.int_mult,
            OpClass::FpAlu => &self.fp_alu,
            OpClass::FpMult | OpClass::FpDiv => &self.fp_mult,
            OpClass::Load | OpClass::Store => &self.mem,
        };
        let width = class.count - class.issued_this_cycle;
        let free = class.busy_until.iter().filter(|b| **b <= now).count() as u32;
        if unpipelined(op) {
            // Each issue occupies a unit for its full latency.
            width.min(free)
        } else if free == 0 {
            0
        } else {
            // Pipelined issues share units; only the width counter binds.
            width
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FuPool {
        FuPool::new(&CoreConfig::baseline())
    }

    #[test]
    fn issue_width_per_class_per_cycle() {
        let mut p = pool();
        p.begin_cycle();
        for _ in 0..8 {
            assert!(p.try_issue(OpClass::IntAlu, Cycle::ZERO));
        }
        assert!(
            !p.try_issue(OpClass::IntAlu, Cycle::ZERO),
            "9th IntAlu refused"
        );
        // Other classes unaffected.
        assert!(p.try_issue(OpClass::FpAlu, Cycle::ZERO));
        p.begin_cycle();
        assert!(p.try_issue(OpClass::IntAlu, Cycle::ZERO));
    }

    #[test]
    fn divider_blocks_its_unit() {
        let mut p = pool();
        p.begin_cycle();
        // 3 IntMult/Div units; occupy all with divides.
        for _ in 0..3 {
            assert!(p.try_issue(OpClass::IntDiv, Cycle::ZERO));
        }
        p.begin_cycle();
        assert!(
            !p.try_issue(OpClass::IntMult, Cycle::new(1)),
            "all dividers busy"
        );
        p.begin_cycle();
        assert!(
            p.try_issue(OpClass::IntMult, Cycle::new(20)),
            "freed after 20 cycles"
        );
    }

    #[test]
    fn pipelined_mult_accepts_back_to_back() {
        let mut p = pool();
        p.begin_cycle();
        assert!(p.try_issue(OpClass::IntMult, Cycle::ZERO));
        p.begin_cycle();
        assert!(p.try_issue(OpClass::IntMult, Cycle::new(1)), "pipelined");
    }

    #[test]
    fn mem_units_shared_by_loads_and_stores() {
        let mut p = pool();
        p.begin_cycle();
        assert!(p.try_issue(OpClass::Load, Cycle::ZERO));
        assert!(p.try_issue(OpClass::Store, Cycle::ZERO));
        assert!(p.try_issue(OpClass::Load, Cycle::ZERO));
        assert!(p.try_issue(OpClass::Store, Cycle::ZERO));
        assert!(!p.try_issue(OpClass::Load, Cycle::ZERO), "4 LS units");
    }

    #[test]
    fn available_matches_try_issue_successes() {
        let mut p = pool();
        p.begin_cycle();
        // Pipelined mem class: width-limited only.
        assert_eq!(p.available(OpClass::Load, Cycle::ZERO), 4);
        assert!(p.try_issue(OpClass::Load, Cycle::ZERO));
        assert_eq!(p.available(OpClass::Load, Cycle::ZERO), 3);
        for _ in 0..3 {
            assert!(p.try_issue(OpClass::Store, Cycle::ZERO));
        }
        assert_eq!(p.available(OpClass::Load, Cycle::ZERO), 0);
        assert!(!p.try_issue(OpClass::Load, Cycle::ZERO));
        // Unpipelined divides occupy their unit across cycles.
        p.begin_cycle();
        assert_eq!(p.available(OpClass::IntDiv, Cycle::new(1)), 3);
        assert!(p.try_issue(OpClass::IntDiv, Cycle::new(1)));
        assert!(p.try_issue(OpClass::IntDiv, Cycle::new(1)));
        p.begin_cycle();
        assert_eq!(p.available(OpClass::IntDiv, Cycle::new(2)), 1);
        assert_eq!(
            p.available(OpClass::IntMult, Cycle::new(2)),
            3,
            "pipelined width"
        );
        assert!(p.try_issue(OpClass::IntDiv, Cycle::new(2)));
        assert_eq!(
            p.available(OpClass::IntMult, Cycle::new(3)),
            0,
            "all units held"
        );
    }

    #[test]
    fn latencies_match_sim_outorder() {
        assert_eq!(latency(OpClass::IntAlu), 1);
        assert_eq!(latency(OpClass::IntMult), 3);
        assert_eq!(latency(OpClass::IntDiv), 20);
        assert_eq!(latency(OpClass::FpAlu), 2);
        assert_eq!(latency(OpClass::FpMult), 4);
        assert_eq!(latency(OpClass::FpDiv), 12);
    }
}
