//! A small set-associative, LRU-managed lookup table — the building block
//! of almost every mechanism's hardware state (prediction tables, history
//! tables, victim buffers).

/// A set-associative table mapping `u64` keys to payloads of type `V`,
/// with per-set LRU replacement.
///
/// `ways == 0` means fully associative (a single set).
///
/// # Examples
///
/// ```
/// use microlib_mech::AssocTable;
///
/// let mut t: AssocTable<u32> = AssocTable::new(4, 2);
/// t.insert(1, 10);
/// t.insert(2, 20);
/// assert_eq!(t.get(&1), Some(&10));
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct AssocTable<V> {
    sets: usize,
    ways: usize,
    slots: Vec<Option<Slot<V>>>,
    clock: u64,
}

#[derive(Clone, Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    lru: u64,
}

impl<V> AssocTable<V> {
    /// Creates a table of `sets` sets × `ways` ways (`ways == 0` collapses
    /// to one fully associative set of `sets` entries).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two.
    pub fn new(sets: usize, ways: usize) -> Self {
        let (sets, ways) = if ways == 0 { (1, sets) } else { (sets, ways) };
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be positive");
        AssocTable {
            sets,
            ways,
            slots: (0..sets * ways).map(|_| None).collect(),
            clock: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        // Multiplicative hash spreads structured keys (line addresses).
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.sets - 1)
    }

    fn range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `key`, refreshing its LRU position.
    pub fn get(&mut self, key: &u64) -> Option<&V> {
        self.get_mut(key).map(|v| &*v)
    }

    /// Mutable lookup, refreshing LRU.
    pub fn get_mut(&mut self, key: &u64) -> Option<&mut V> {
        let set = self.set_of(*key);
        let range = self.range(set);
        self.clock += 1;
        let clock = self.clock;
        self.slots[range]
            .iter_mut()
            .flatten()
            .find(|s| s.key == *key)
            .map(|s| {
                s.lru = clock;
                &mut s.value
            })
    }

    /// Lookup without touching replacement state.
    pub fn peek(&self, key: &u64) -> Option<&V> {
        let set = self.set_of(*key);
        self.slots[self.range(set)]
            .iter()
            .flatten()
            .find(|s| s.key == *key)
            .map(|s| &s.value)
    }

    /// Inserts (or replaces) `key`; returns the evicted (key, value) if a
    /// valid entry was displaced.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        let set = self.set_of(key);
        self.clock += 1;
        let clock = self.clock;
        let range = self.range(set);
        // Existing entry: replace in place.
        if let Some(slot) = self.slots[range.clone()]
            .iter_mut()
            .flatten()
            .find(|s| s.key == key)
        {
            slot.lru = clock;
            let old = std::mem::replace(&mut slot.value, value);
            return Some((key, old));
        }
        // Free slot.
        if let Some(slot) = self.slots[range.clone()].iter_mut().find(|s| s.is_none()) {
            *slot = Some(Slot {
                key,
                value,
                lru: clock,
            });
            return None;
        }
        // Evict LRU.
        let victim_idx = range
            .clone()
            .min_by_key(|i| self.slots[*i].as_ref().map(|s| s.lru).unwrap_or(0))
            .expect("nonempty range");
        let old = self.slots[victim_idx].take().map(|s| (s.key, s.value));
        self.slots[victim_idx] = Some(Slot {
            key,
            value,
            lru: clock,
        });
        old
    }

    /// Removes `key`, returning its payload.
    pub fn remove(&mut self, key: &u64) -> Option<V> {
        let set = self.set_of(*key);
        let range = self.range(set);
        for i in range {
            if self.slots[i]
                .as_ref()
                .map(|s| s.key == *key)
                .unwrap_or(false)
            {
                return self.slots[i].take().map(|s| s.value);
            }
        }
        None
    }

    /// Whether `key` is present (no LRU update).
    pub fn contains(&self, key: &u64) -> bool {
        self.peek(key).is_some()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.clock = 0;
    }

    /// Iterates over (key, value) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots.iter().flatten().map(|s| (s.key, &s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut t: AssocTable<&str> = AssocTable::new(8, 2);
        assert!(t.insert(5, "five").is_none());
        assert_eq!(t.get(&5), Some(&"five"));
        assert_eq!(t.peek(&6), None);
        assert!(t.contains(&5));
    }

    #[test]
    fn replace_returns_old_value() {
        let mut t: AssocTable<u32> = AssocTable::new(4, 1);
        t.insert(1, 10);
        let old = t.insert(1, 11);
        assert_eq!(old, Some((1, 10)));
        assert_eq!(t.get(&1), Some(&11));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // Fully associative with 2 entries.
        let mut t: AssocTable<u32> = AssocTable::new(2, 0);
        t.insert(1, 1);
        t.insert(2, 2);
        t.get(&1); // 2 is now LRU
        let evicted = t.insert(3, 3);
        assert_eq!(evicted, Some((2, 2)));
        assert!(t.contains(&1) && t.contains(&3));
    }

    #[test]
    fn remove_frees_slot() {
        let mut t: AssocTable<u32> = AssocTable::new(1, 0);
        t.insert(9, 99);
        assert_eq!(t.remove(&9), Some(99));
        assert!(t.is_empty());
        assert_eq!(t.remove(&9), None);
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let mut t: AssocTable<u64> = AssocTable::new(4, 2);
        for k in 0..100 {
            t.insert(k, k);
        }
        assert!(t.len() <= t.capacity());
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    fn fully_associative_mode() {
        let mut t: AssocTable<u64> = AssocTable::new(16, 0);
        for k in 0..16 {
            assert!(t.insert(k, k).is_none());
        }
        assert_eq!(t.len(), 16);
        assert!(t.insert(99, 99).is_some(), "17th entry evicts");
    }

    #[test]
    fn clear_empties() {
        let mut t: AssocTable<u8> = AssocTable::new(2, 2);
        t.insert(1, 1);
        t.clear();
        assert!(t.is_empty());
    }
}
