//! Timekeeping Victim Cache (Hu, Kaxiras & Martonosi, ISCA 2002) — Table
//! 2's `TKVC`.
//!
//! "Determines if a (victim) cache line will again be used, and if so,
//! decides to store it in the victim cache." The timekeeping insight: a
//! block whose *dead time* (gap between eviction and the next miss to it)
//! was short in the past is worth keeping; one whose dead time was long
//! only pollutes the small victim cache. Table 3: 512-byte fully
//! associative victim store.

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, AccessOutcome, Addr, AttachPoint, Cycle, EvictEvent, HardwareBudget, LineData,
    Mechanism, MechanismStats, PrefetchQueue, ProbeResult, Spill, SramTable, VictimAction,
};

/// Dead-time threshold below which a block is predicted "will be reused"
/// (scaled to the reproduction's trace lengths).
pub const REUSE_THRESHOLD: u64 = 16 * 1024;

#[derive(Clone, Debug)]
struct VictimLine {
    data: LineData,
    dirty: bool,
}

/// The timekeeping-filtered victim cache.
///
/// # Examples
///
/// ```
/// use microlib_mech::TimekeepingVictimCache;
/// use microlib_model::Mechanism;
///
/// let tkvc = TimekeepingVictimCache::new();
/// assert_eq!(tkvc.name(), "TKVC");
/// ```
#[derive(Clone, Debug)]
pub struct TimekeepingVictimCache {
    lines: AssocTable<VictimLine>,
    entries: usize,
    /// line -> cycle of its last eviction (bounded history).
    evicted_at: AssocTable<Cycle>,
    /// line -> whether its last observed dead time was short.
    reuse_predictor: AssocTable<bool>,
    spills: Vec<Spill>,
    stats: MechanismStats,
    admissions: u64,
    rejections: u64,
}

impl Default for TimekeepingVictimCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TimekeepingVictimCache {
    /// Table 3 configuration: 512 B fully associative (16 × 32 B lines).
    pub fn new() -> Self {
        TimekeepingVictimCache {
            lines: AssocTable::new(16, 0),
            entries: 16,
            evicted_at: AssocTable::new(1024, 4),
            reuse_predictor: AssocTable::new(1024, 4),
            spills: Vec::new(),
            stats: MechanismStats::default(),
            admissions: 0,
            rejections: 0,
        }
    }

    /// Victims admitted / rejected by the reuse filter so far.
    pub fn admission_counts(&self) -> (u64, u64) {
        (self.admissions, self.rejections)
    }
}

impl Mechanism for TimekeepingVictimCache {
    fn name(&self) -> &str {
        "TKVC"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L1Data
    }

    fn on_access(&mut self, event: &AccessEvent, _prefetch: &mut PrefetchQueue) {
        if event.outcome != AccessOutcome::Miss {
            return;
        }
        // A miss to a previously evicted line reveals its dead time.
        let line = event.line.raw();
        if let Some(evicted) = self.evicted_at.remove(&line) {
            let dead_time = event.now.since(evicted);
            self.stats.table_writes += 1;
            self.reuse_predictor
                .insert(line, dead_time <= REUSE_THRESHOLD);
        }
    }

    fn on_evict(&mut self, event: &EvictEvent) -> VictimAction {
        let line = event.line.raw();
        self.evicted_at.insert(line, event.now);
        self.stats.table_reads += 1;
        let admit = self.reuse_predictor.peek(&line).copied().unwrap_or(false);
        if !admit {
            self.rejections += 1;
            return VictimAction::Dropped;
        }
        self.admissions += 1;
        self.stats.victims_captured += 1;
        if let Some((old_line, old)) = self.lines.insert(
            line,
            VictimLine {
                data: event.data,
                dirty: event.dirty,
            },
        ) {
            if old.dirty {
                self.spills.push(Spill {
                    line: Addr::new(old_line),
                    data: old.data,
                });
            }
        }
        VictimAction::Captured
    }

    fn holds(&self, line: Addr) -> bool {
        self.lines.contains(&line.raw())
    }

    fn probe(&mut self, line: Addr, _now: Cycle) -> Option<ProbeResult> {
        self.stats.table_reads += 1;
        match self.lines.remove(&line.raw()) {
            Some(v) => {
                self.stats.sidecar_hits += 1;
                Some(ProbeResult {
                    data: v.data,
                    dirty: v.dirty,
                    extra_latency: 1,
                })
            }
            None => {
                self.stats.sidecar_misses += 1;
                None
            }
        }
    }

    fn drain_spills(&mut self) -> Vec<Spill> {
        std::mem::take(&mut self.spills)
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::with_tables(
            "TKVC",
            vec![
                SramTable {
                    name: "victim lines".to_owned(),
                    entries: self.entries as u64,
                    entry_bits: 32 * 8 + 29,
                    assoc: 0,
                    ports: 1,
                },
                SramTable {
                    name: "dead-time predictor".to_owned(),
                    entries: 4096,
                    entry_bits: 27 + 2,
                    assoc: 4,
                    ports: 1,
                },
            ],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.lines.clear();
        self.evicted_at.clear();
        self.reuse_predictor.clear();
        self.spills.clear();
        self.stats = MechanismStats::default();
        self.admissions = 0;
        self.rejections = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::AccessKind;

    fn evict(line: u64, now: u64) -> EvictEvent {
        EvictEvent {
            now: Cycle::new(now),
            line: Addr::new(line),
            dirty: false,
            data: LineData::zeroed(4),
            untouched_prefetch: false,
        }
    }

    fn miss(line: u64, now: u64) -> AccessEvent {
        AccessEvent {
            now: Cycle::new(now),
            pc: Addr::new(0x40_0000),
            addr: Addr::new(line),
            line: Addr::new(line),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Miss,
            first_touch_of_prefetch: false,
            value: Some(0),
        }
    }

    #[test]
    fn first_eviction_is_rejected() {
        let mut tkvc = TimekeepingVictimCache::new();
        assert_eq!(tkvc.on_evict(&evict(0x1000, 10)), VictimAction::Dropped);
        assert_eq!(tkvc.admission_counts(), (0, 1));
    }

    #[test]
    fn short_dead_time_earns_admission() {
        let mut tkvc = TimekeepingVictimCache::new();
        let mut q = PrefetchQueue::new(4);
        // Evict, then re-miss quickly: short dead time observed.
        tkvc.on_evict(&evict(0x1000, 10));
        tkvc.on_access(&miss(0x1000, 500), &mut q);
        // Next eviction of the same line is admitted.
        assert_eq!(tkvc.on_evict(&evict(0x1000, 900)), VictimAction::Captured);
        assert!(tkvc.probe(Addr::new(0x1000), Cycle::new(901)).is_some());
    }

    #[test]
    fn long_dead_time_keeps_rejecting() {
        let mut tkvc = TimekeepingVictimCache::new();
        let mut q = PrefetchQueue::new(4);
        tkvc.on_evict(&evict(0x2000, 10));
        tkvc.on_access(&miss(0x2000, 10 + REUSE_THRESHOLD + 100), &mut q);
        assert_eq!(
            tkvc.on_evict(&evict(0x2000, 200_000)),
            VictimAction::Dropped
        );
    }

    #[test]
    fn probe_miss_counts() {
        let mut tkvc = TimekeepingVictimCache::new();
        assert!(tkvc.probe(Addr::new(0x3000), Cycle::ZERO).is_none());
        assert_eq!(tkvc.stats().sidecar_misses, 1);
    }
}
