//! Frequent Value Cache (Zhang, Yang & Gupta, ASPLOS 2000) — Table 2's
//! `FVC`.
//!
//! "A small additional cache that behaves like a victim cache, except that
//! it is just used for storing frequently used values in a compressed form
//! (as indexes to a frequent values table)." Only victim lines *all* of
//! whose words are frequent values (or zero/unknown-coded) are admitted;
//! each word is stored as a 3-bit index, which is why 1024 lines cost far
//! less than 1024 × 32 bytes. Table 3: 1024 lines, 7 frequent values +
//! unknown.

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, Addr, AttachPoint, Cycle, EvictEvent, HardwareBudget, LineData, Mechanism,
    MechanismStats, PrefetchQueue, ProbeResult, Spill, SramTable, VictimAction,
};

/// Default frequent-value table (mirrors the workload generator's value
/// distribution; the original design profiles these at run time).
pub const DEFAULT_FREQUENT_VALUES: [u64; 7] = [0, 1, u64::MAX, 2, 4, 8, 0xFF];

#[derive(Clone, Debug)]
struct CompressedLine {
    /// 3-bit indices into the frequent-value table, one per word.
    indices: [u8; 4],
    dirty: bool,
}

/// The frequent value cache.
///
/// # Examples
///
/// ```
/// use microlib_mech::FrequentValueCache;
/// use microlib_model::Mechanism;
///
/// let fvc = FrequentValueCache::new();
/// assert_eq!(fvc.name(), "FVC");
/// // Compressed storage: far below 1024 lines x 32 bytes.
/// assert!(fvc.hardware().total_bytes() < 16 * 1024);
/// ```
#[derive(Clone, Debug)]
pub struct FrequentValueCache {
    values: [u64; 7],
    lines: AssocTable<CompressedLine>,
    capacity: usize,
    spills: Vec<Spill>,
    stats: MechanismStats,
    rejected_uncompressible: u64,
}

impl Default for FrequentValueCache {
    fn default() -> Self {
        Self::new()
    }
}

impl FrequentValueCache {
    /// Table 3 configuration: 1024 lines, the default frequent values.
    pub fn new() -> Self {
        Self::with_values(DEFAULT_FREQUENT_VALUES, 1024)
    }

    /// Custom value table and capacity.
    pub fn with_values(values: [u64; 7], capacity: usize) -> Self {
        FrequentValueCache {
            values,
            lines: AssocTable::new(capacity.next_power_of_two(), 0),
            capacity,
            spills: Vec::new(),
            stats: MechanismStats::default(),
            rejected_uncompressible: 0,
        }
    }

    fn compress(&self, data: &LineData) -> Option<[u8; 4]> {
        let mut indices = [0u8; 4];
        for (i, w) in data.words().iter().enumerate() {
            let idx = self.values.iter().position(|v| v == w)?;
            if i < 4 {
                indices[i] = idx as u8;
            } else {
                return None;
            }
        }
        Some(indices)
    }

    fn decompress(&self, c: &CompressedLine) -> LineData {
        let words: Vec<u64> = c.indices.iter().map(|i| self.values[*i as usize]).collect();
        LineData::from_words(&words)
    }

    /// Victim lines rejected because they held non-frequent values.
    pub fn rejected_uncompressible(&self) -> u64 {
        self.rejected_uncompressible
    }

    /// Lines currently held.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }
}

impl Mechanism for FrequentValueCache {
    fn name(&self) -> &str {
        "FVC"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L1Data
    }

    fn on_access(&mut self, _event: &AccessEvent, _prefetch: &mut PrefetchQueue) {}

    fn on_evict(&mut self, event: &EvictEvent) -> VictimAction {
        match self.compress(&event.data) {
            Some(indices) => {
                self.stats.victims_captured += 1;
                self.stats.table_writes += 1;
                let displaced = self.lines.insert(
                    event.line.raw(),
                    CompressedLine {
                        indices,
                        dirty: event.dirty,
                    },
                );
                if let Some((old_line, old)) = displaced {
                    if old.dirty {
                        // Dirty compressed data must still be written back.
                        self.spills.push(Spill {
                            line: Addr::new(old_line),
                            data: self.decompress(&old),
                        });
                    }
                }
                VictimAction::Captured
            }
            None => {
                self.rejected_uncompressible += 1;
                VictimAction::Dropped
            }
        }
    }

    fn holds(&self, line: Addr) -> bool {
        self.lines.contains(&line.raw())
    }

    fn probe(&mut self, line: Addr, _now: Cycle) -> Option<ProbeResult> {
        self.stats.table_reads += 1;
        match self.lines.remove(&line.raw()) {
            Some(c) => {
                self.stats.sidecar_hits += 1;
                Some(ProbeResult {
                    data: self.decompress(&c),
                    dirty: c.dirty,
                    extra_latency: 1,
                })
            }
            None => {
                self.stats.sidecar_misses += 1;
                None
            }
        }
    }

    fn drain_spills(&mut self) -> Vec<Spill> {
        std::mem::take(&mut self.spills)
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::with_tables(
            "FVC",
            vec![
                SramTable {
                    name: "compressed lines".to_owned(),
                    entries: self.capacity as u64,
                    // 4 words × 3 bits + tag (27b) + dirty/valid. Banked
                    // 8-way set-associative (a 1024-entry CAM would be
                    // implausible).
                    entry_bits: 4 * 3 + 27 + 2,
                    assoc: 8,
                    ports: 1,
                },
                SramTable {
                    name: "frequent value table".to_owned(),
                    entries: 7,
                    entry_bits: 64,
                    assoc: 1,
                    ports: 1,
                },
            ],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.lines.clear();
        self.spills.clear();
        self.stats = MechanismStats::default();
        self.rejected_uncompressible = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evict(line: u64, words: &[u64; 4], dirty: bool) -> EvictEvent {
        EvictEvent {
            now: Cycle::ZERO,
            line: Addr::new(line),
            dirty,
            data: LineData::from_words(words),
            untouched_prefetch: false,
        }
    }

    #[test]
    fn compressible_lines_are_captured_and_restored() {
        let mut fvc = FrequentValueCache::new();
        let action = fvc.on_evict(&evict(0x1000, &[0, 1, 0xFF, 4], false));
        assert_eq!(action, VictimAction::Captured);
        let hit = fvc.probe(Addr::new(0x1000), Cycle::ZERO).unwrap();
        assert_eq!(hit.data.words(), &[0, 1, 0xFF, 4]);
    }

    #[test]
    fn uncompressible_lines_are_rejected() {
        let mut fvc = FrequentValueCache::new();
        let action = fvc.on_evict(&evict(0x2000, &[0, 0xDEADBEEF, 0, 0], false));
        assert_eq!(action, VictimAction::Dropped);
        assert_eq!(fvc.rejected_uncompressible(), 1);
        assert!(fvc.probe(Addr::new(0x2000), Cycle::ZERO).is_none());
    }

    #[test]
    fn dirty_bit_travels_through_compression() {
        let mut fvc = FrequentValueCache::new();
        fvc.on_evict(&evict(0x3000, &[1, 1, 1, 1], true));
        let hit = fvc.probe(Addr::new(0x3000), Cycle::ZERO).unwrap();
        assert!(hit.dirty);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut fvc = FrequentValueCache::with_values(DEFAULT_FREQUENT_VALUES, 4);
        for i in 0..10u64 {
            fvc.on_evict(&evict(0x1000 + i * 32, &[0, 0, 0, 0], false));
        }
        assert!(fvc.occupancy() <= 4);
    }

    #[test]
    fn compressed_hardware_is_small() {
        let hw = FrequentValueCache::new().hardware();
        // 1024 lines of raw data would be 32 KB; compressed is ~5 KB.
        assert!(hw.total_bytes() < 8 * 1024, "got {}", hw.total_bytes());
    }
}
