//! CDP + SP (Cooksey et al., ASPLOS 2002) — Table 2's `CDPSP`.
//!
//! "A combination of CDP and SP as proposed in [4]": the stride prefetcher
//! covers regular array traffic while the content scan chases pointers.
//! Table 3 gives them separate request queues of size 1 (SP) and 128
//! (CDP); this composite enforces those quotas inside one mechanism slot.

use crate::cdp::ContentDirectedPrefetcher;
use crate::sp::StridePrefetcher;
use microlib_model::{
    AccessEvent, AttachPoint, HardwareBudget, Mechanism, MechanismStats, PrefetchQueue, RefillEvent,
};

/// The combined stride + content-directed prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::CdpSp;
/// use microlib_model::Mechanism;
///
/// let combo = CdpSp::new();
/// assert_eq!(combo.name(), "CDPSP");
/// // One external queue sized for both internal quotas (1 + 128).
/// assert_eq!(combo.request_queue_capacity(), 129);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CdpSp {
    sp: StridePrefetcher,
    cdp: ContentDirectedPrefetcher,
    sp_queue: Option<PrefetchQueue>,
    cdp_queue: Option<PrefetchQueue>,
}

impl CdpSp {
    /// Builds both components with their Table 3 configurations.
    pub fn new() -> Self {
        CdpSp {
            sp: StridePrefetcher::new(),
            cdp: ContentDirectedPrefetcher::new(),
            sp_queue: Some(PrefetchQueue::new(1)),
            cdp_queue: Some(PrefetchQueue::new(128)),
        }
    }

    fn forward(&mut self, external: &mut PrefetchQueue) {
        // SP's single-entry queue drains first (stride predictions are the
        // higher-confidence ones), then CDP's.
        if let Some(q) = &mut self.sp_queue {
            while let Some(req) = q.pop() {
                external.push(req);
            }
        }
        if let Some(q) = &mut self.cdp_queue {
            while let Some(req) = q.pop() {
                external.push(req);
            }
        }
    }
}

impl Mechanism for CdpSp {
    fn name(&self) -> &str {
        "CDPSP"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L2Unified
    }

    fn warm_events_only(&self) -> bool {
        // combines two pure prefetchers: no sidecar, no captures, no spills.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        129 // Table 3: SP/CDP request queues of 1 / 128
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        let mut spq = self.sp_queue.take().expect("sp queue present");
        self.sp.on_access(event, &mut spq);
        self.sp_queue = Some(spq);
        let mut cdpq = self.cdp_queue.take().expect("cdp queue present");
        self.cdp.on_access(event, &mut cdpq);
        self.cdp_queue = Some(cdpq);
        self.forward(prefetch);
    }

    fn on_refill(&mut self, event: &RefillEvent, prefetch: &mut PrefetchQueue) {
        let mut cdpq = self.cdp_queue.take().expect("cdp queue present");
        self.cdp.on_refill(event, &mut cdpq);
        self.cdp_queue = Some(cdpq);
        self.forward(prefetch);
    }

    fn hardware(&self) -> HardwareBudget {
        let mut tables = self.sp.hardware().tables;
        tables.extend(self.cdp.hardware().tables);
        HardwareBudget::with_tables("CDPSP", tables)
    }

    fn stats(&self) -> MechanismStats {
        let a = self.sp.stats();
        let b = self.cdp.stats();
        MechanismStats {
            table_reads: a.table_reads + b.table_reads,
            table_writes: a.table_writes + b.table_writes,
            prefetches_requested: a.prefetches_requested + b.prefetches_requested,
            prefetches_useful: a.prefetches_useful + b.prefetches_useful,
            sidecar_hits: a.sidecar_hits + b.sidecar_hits,
            sidecar_misses: a.sidecar_misses + b.sidecar_misses,
            victims_captured: a.victims_captured + b.victims_captured,
        }
    }

    fn reset(&mut self) {
        self.sp.reset();
        self.cdp.reset();
        self.sp_queue = Some(PrefetchQueue::new(1));
        self.cdp_queue = Some(PrefetchQueue::new(128));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::{AccessKind, AccessOutcome, Addr, Cycle, LineData, RefillCause};

    fn miss(pc: u64, addr: u64) -> AccessEvent {
        AccessEvent {
            now: Cycle::ZERO,
            pc: Addr::new(pc),
            addr: Addr::new(addr),
            line: Addr::new(addr & !63),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Miss,
            first_touch_of_prefetch: false,
            value: Some(0),
        }
    }

    #[test]
    fn stride_side_works() {
        let mut combo = CdpSp::new();
        let mut q = PrefetchQueue::new(129);
        for i in 0..3u64 {
            combo.on_access(&miss(0x400, 0x10_000 + i * 256), &mut q);
        }
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(targets.contains(&(0x10_000 + 3 * 256)), "{targets:x?}");
    }

    #[test]
    fn content_side_works() {
        let mut combo = CdpSp::new();
        let mut q = PrefetchQueue::new(129);
        const HEAP: u64 = 0x4000_0000;
        combo.on_refill(
            &RefillEvent {
                now: Cycle::ZERO,
                line: Addr::new(HEAP),
                data: LineData::from_words(&[HEAP + 0x4000, 0, 0, 0]),
                cause: RefillCause::Demand,
            },
            &mut q,
        );
        assert_eq!(q.pop().unwrap().line.raw(), HEAP + 0x4000);
    }

    #[test]
    fn hardware_combines_both() {
        let combo = CdpSp::new();
        let hw = combo.hardware();
        assert!(hw.tables.len() >= 2);
        assert_eq!(hw.mechanism, "CDPSP");
    }

    #[test]
    fn stats_aggregate() {
        let mut combo = CdpSp::new();
        let mut q = PrefetchQueue::new(129);
        for i in 0..4u64 {
            combo.on_access(&miss(0x400, 0x10_000 + i * 256), &mut q);
        }
        assert!(combo.stats().table_reads > 0);
        assert!(combo.stats().prefetches_requested > 0);
    }
}
