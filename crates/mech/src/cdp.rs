//! Content-Directed Data Prefetching (Cooksey, Jourdan & Grunwald,
//! ASPLOS 2002) — Table 2's `CDP`.
//!
//! "A prefetch mechanism for pointer-based data structures that attempts to
//! determine if a fetched line contains addresses, and if so, prefetches
//! them immediately." Stateless: every line filled into the L2 is scanned;
//! words whose upper address bits match the fetched line's own region are
//! treated as pointers and prefetched, recursively up to the depth
//! threshold (Table 3: depth 3, request queue 128).
//!
//! The paper's cautionary anecdotes are reproduced by the workloads: `ammp`
//! keeps its next pointer 88 bytes into a 96-byte node — outside the
//! fetched 64-byte line — so CDP "systematically fails to prefetch it,
//! saturating the memory bandwidth with useless prefetch requests"; `mcf`'s
//! pointer-dense nodes trigger floods of depth-3 prefetches (speedup 0.75).

use microlib_model::{
    AccessEvent, Addr, AttachPoint, HardwareBudget, Mechanism, MechanismStats, PrefetchDestination,
    PrefetchQueue, PrefetchRequest, RefillEvent, SramTable,
};
use std::collections::HashMap;

/// How many upper bits must match for a word to "look like" a pointer into
/// the line's own region.
const REGION_SHIFT: u32 = 28;

/// The content-directed prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::ContentDirectedPrefetcher;
/// use microlib_model::Mechanism;
///
/// let cdp = ContentDirectedPrefetcher::new();
/// assert_eq!(cdp.name(), "CDP");
/// assert_eq!(cdp.request_queue_capacity(), 128);
/// ```
#[derive(Clone, Debug)]
pub struct ContentDirectedPrefetcher {
    depth_threshold: u32,
    /// Depth of outstanding prefetched lines (for recursion control).
    outstanding: HashMap<u64, u32>,
    line_bytes: u64,
    stats: MechanismStats,
    pointer_candidates: u64,
}

impl Default for ContentDirectedPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentDirectedPrefetcher {
    /// Table 3 configuration: prefetch depth threshold 3.
    pub fn new() -> Self {
        Self::with_depth(3)
    }

    /// Custom recursion depth.
    pub fn with_depth(depth_threshold: u32) -> Self {
        ContentDirectedPrefetcher {
            depth_threshold,
            outstanding: HashMap::new(),
            line_bytes: 64,
            stats: MechanismStats::default(),
            pointer_candidates: 0,
        }
    }

    /// Words the pointer heuristic has accepted so far.
    pub fn pointer_candidates(&self) -> u64 {
        self.pointer_candidates
    }

    fn looks_like_pointer(line: Addr, word: u64) -> bool {
        word != 0 && (word >> REGION_SHIFT) == (line.raw() >> REGION_SHIFT)
    }
}

impl Mechanism for ContentDirectedPrefetcher {
    fn name(&self) -> &str {
        "CDP"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L2Unified
    }

    fn warm_events_only(&self) -> bool {
        // pure prefetcher: no sidecar, no captures, no spills.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        128 // Table 3: CDP request queue
    }

    fn on_access(&mut self, event: &AccessEvent, _prefetch: &mut PrefetchQueue) {
        if event.first_touch_of_prefetch {
            self.stats.prefetches_useful += 1;
        }
    }

    fn on_refill(&mut self, event: &RefillEvent, prefetch: &mut PrefetchQueue) {
        let line = event.line;
        let depth = self.outstanding.remove(&line.raw()).unwrap_or(0);
        if depth >= self.depth_threshold {
            return;
        }
        self.stats.table_reads += 1; // the line scan
        for &word in event.data.words() {
            if Self::looks_like_pointer(line, word) {
                self.pointer_candidates += 1;
                let target = Addr::new(word & !(self.line_bytes - 1));
                if target == line {
                    continue;
                }
                self.stats.prefetches_requested += 1;
                if prefetch.push(PrefetchRequest {
                    line: target,
                    destination: PrefetchDestination::Cache,
                }) {
                    self.outstanding.insert(target.raw(), depth + 1);
                }
            }
        }
    }

    fn hardware(&self) -> HardwareBudget {
        // Stateless scan logic plus a small depth-tracking buffer.
        HardwareBudget::with_tables(
            "CDP",
            vec![SramTable {
                name: "outstanding prefetch depth buffer".to_owned(),
                entries: 128,
                entry_bits: 34,
                assoc: 0,
                ports: 1,
            }],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.outstanding.clear();
        self.stats = MechanismStats::default();
        self.pointer_candidates = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::{Cycle, LineData, RefillCause};

    const HEAP: u64 = 0x4000_0000;

    fn refill(line: u64, words: &[u64], cause: RefillCause) -> RefillEvent {
        RefillEvent {
            now: Cycle::ZERO,
            line: Addr::new(line),
            data: LineData::from_words(words),
            cause,
        }
    }

    #[test]
    fn heap_pointers_are_prefetched() {
        let mut cdp = ContentDirectedPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        let words = [0u64, HEAP + 0x2040, 7, 0, HEAP + 0x8000, 0, 0, 0];
        cdp.on_refill(&refill(HEAP + 0x1000, &words, RefillCause::Demand), &mut q);
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert_eq!(targets, vec![HEAP + 0x2040, HEAP + 0x8000]);
        assert_eq!(cdp.pointer_candidates(), 2);
    }

    #[test]
    fn non_pointer_values_ignored() {
        let mut cdp = ContentDirectedPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        // Random data has the high bit set / different region.
        let words = [0x8000_0000_0000_0001u64, 0xdead_beef_cafe_f00d, 0, 42];
        cdp.on_refill(
            &refill(HEAP + 0x1000, &words[..4], RefillCause::Demand),
            &mut q,
        );
        assert!(q.is_empty());
    }

    #[test]
    fn recursion_stops_at_depth_threshold() {
        let mut cdp = ContentDirectedPrefetcher::with_depth(2);
        let mut q = PrefetchQueue::new(128);
        // Line A points to B; B (prefetched, depth 1) points to C; C
        // (depth 2) points to D — D must NOT be scanned further.
        let a = HEAP;
        let (b, c, d) = (HEAP + 0x100, HEAP + 0x200, HEAP + 0x300);
        cdp.on_refill(&refill(a, &[b, 0, 0, 0], RefillCause::Demand), &mut q);
        assert_eq!(q.pop().unwrap().line.raw(), b & !63);
        cdp.on_refill(
            &refill(b & !63, &[c, 0, 0, 0], RefillCause::Prefetch),
            &mut q,
        );
        assert_eq!(q.pop().unwrap().line.raw(), c & !63);
        cdp.on_refill(
            &refill(c & !63, &[d, 0, 0, 0], RefillCause::Prefetch),
            &mut q,
        );
        assert!(q.is_empty(), "depth threshold must stop the chase");
    }

    #[test]
    fn self_pointers_skipped() {
        let mut cdp = ContentDirectedPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        let line = HEAP + 0x40;
        cdp.on_refill(
            &refill(line, &[line + 8, 0, 0, 0], RefillCause::Demand),
            &mut q,
        );
        assert!(q.is_empty(), "pointer into the same line is not useful");
    }

    #[test]
    fn pointer_dense_lines_flood_the_queue() {
        // The mcf failure mode: every word looks like a pointer.
        let mut cdp = ContentDirectedPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        let words: Vec<u64> = (1..=8).map(|i| HEAP + i * 0x1000).collect();
        cdp.on_refill(&refill(HEAP, &words, RefillCause::Demand), &mut q);
        assert_eq!(q.len(), 8);
        assert_eq!(cdp.stats().prefetches_requested, 8);
    }
}
