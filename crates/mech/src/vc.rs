//! Victim Cache (Jouppi, WRL TR 1990) — Table 2's `VC`.
//!
//! "A small fully associative cache for storing evicted lines; limits the
//! effect of conflict misses without (or in addition to) using
//! associativity." Table 3: 512 bytes, fully associative, at the L1.

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, Addr, AttachPoint, Cycle, EvictEvent, HardwareBudget, LineData, Mechanism,
    MechanismStats, PrefetchQueue, ProbeResult, Spill, SramTable, VictimAction,
};

#[derive(Clone, Debug)]
struct VictimLine {
    data: LineData,
    dirty: bool,
}

/// The 512-byte fully associative victim cache.
///
/// # Examples
///
/// ```
/// use microlib_mech::VictimCache;
/// use microlib_model::Mechanism;
///
/// let vc = VictimCache::new();
/// assert_eq!(vc.name(), "VC");
/// assert!(vc.hardware().total_bytes() >= 512);
/// ```
#[derive(Clone, Debug)]
pub struct VictimCache {
    lines: AssocTable<VictimLine>,
    entries: usize,
    line_bytes: u64,
    spills: Vec<Spill>,
    stats: MechanismStats,
}

impl Default for VictimCache {
    fn default() -> Self {
        Self::new()
    }
}

impl VictimCache {
    /// Creates the Table 3 configuration: 512 B / 32-byte L1 lines = 16
    /// fully associative entries.
    pub fn new() -> Self {
        Self::with_entries(16)
    }

    /// Creates a victim cache with a custom entry count (sensitivity
    /// studies).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn with_entries(entries: usize) -> Self {
        assert!(entries > 0, "victim cache needs at least one entry");
        VictimCache {
            lines: AssocTable::new(entries, 0),
            entries,
            line_bytes: 32,
            spills: Vec::new(),
            stats: MechanismStats::default(),
        }
    }

    /// Current number of held victim lines.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }
}

impl Mechanism for VictimCache {
    fn name(&self) -> &str {
        "VC"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L1Data
    }

    fn on_access(&mut self, _event: &AccessEvent, _prefetch: &mut PrefetchQueue) {}

    fn on_evict(&mut self, event: &EvictEvent) -> VictimAction {
        self.stats.victims_captured += 1;
        self.stats.table_writes += 1;
        if let Some((old_line, old)) = self.lines.insert(
            event.line.raw(),
            VictimLine {
                data: event.data,
                dirty: event.dirty,
            },
        ) {
            if old.dirty {
                // Displaced dirty victim: hand it back as a writeback.
                self.spills.push(Spill {
                    line: Addr::new(old_line),
                    data: old.data,
                });
            }
        }
        VictimAction::Captured
    }

    fn holds(&self, line: Addr) -> bool {
        self.lines.contains(&line.raw())
    }

    fn probe(&mut self, line: Addr, _now: Cycle) -> Option<ProbeResult> {
        self.stats.table_reads += 1;
        match self.lines.remove(&line.raw()) {
            Some(v) => {
                self.stats.sidecar_hits += 1;
                Some(ProbeResult {
                    data: v.data,
                    dirty: v.dirty,
                    extra_latency: 1,
                })
            }
            None => {
                self.stats.sidecar_misses += 1;
                None
            }
        }
    }

    fn drain_spills(&mut self) -> Vec<Spill> {
        std::mem::take(&mut self.spills)
    }

    fn hardware(&self) -> HardwareBudget {
        let data_bits = self.line_bytes * 8;
        let tag_state_bits = 64 - self.line_bytes.trailing_zeros() as u64 + 2;
        HardwareBudget::with_tables(
            "VC",
            vec![SramTable {
                name: "victim lines".to_owned(),
                entries: self.entries as u64,
                entry_bits: data_bits + tag_state_bits,
                assoc: 0,
                ports: 1,
            }],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.lines.clear();
        self.spills.clear();
        self.stats = MechanismStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evict(line: u64, dirty: bool, word0: u64) -> EvictEvent {
        let mut data = LineData::zeroed(4);
        data.set_word(0, word0);
        EvictEvent {
            now: Cycle::ZERO,
            line: Addr::new(line),
            dirty,
            data,
            untouched_prefetch: false,
        }
    }

    #[test]
    fn captures_and_serves_victims() {
        let mut vc = VictimCache::new();
        assert_eq!(
            vc.on_evict(&evict(0x1000, false, 7)),
            VictimAction::Captured
        );
        let hit = vc.probe(Addr::new(0x1000), Cycle::ZERO).unwrap();
        assert_eq!(hit.data.word(0), 7);
        assert_eq!(hit.extra_latency, 1);
        // Swap semantics: the line left the sidecar.
        assert!(vc.probe(Addr::new(0x1000), Cycle::ZERO).is_none());
        assert_eq!(vc.stats().sidecar_hits, 1);
        assert_eq!(vc.stats().sidecar_misses, 1);
    }

    #[test]
    fn dirty_data_survives_capture() {
        let mut vc = VictimCache::new();
        vc.on_evict(&evict(0x2000, true, 0xAB));
        let hit = vc.probe(Addr::new(0x2000), Cycle::ZERO).unwrap();
        assert!(hit.dirty);
        assert_eq!(hit.data.word(0), 0xAB);
    }

    #[test]
    fn capacity_is_sixteen_lines() {
        let mut vc = VictimCache::new();
        for i in 0..17u64 {
            vc.on_evict(&evict(0x1000 + i * 32, false, i));
        }
        assert_eq!(vc.occupancy(), 16);
        // The first (LRU) victim is gone.
        assert!(vc.probe(Addr::new(0x1000), Cycle::ZERO).is_none());
    }

    #[test]
    fn hardware_is_512_bytes_of_data() {
        let hw = VictimCache::new().hardware();
        assert_eq!(hw.tables.len(), 1);
        assert!(hw.total_bytes() >= 512, "data alone is 512B");
        assert!(hw.total_bytes() < 700, "plus modest tag overhead");
    }
}
