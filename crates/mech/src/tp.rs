//! Tagged Prefetching (Smith, Computing Surveys 1982) — Table 2's `TP`.
//!
//! "One of the very first prefetching techniques: prefetches next cache
//! line on a miss, or on a hit on a prefetched line." Attached at the L2;
//! the only hardware is one tag bit per line (which the cache array already
//! carries), so the cost model charges nothing — matching Fig 5 where TP
//! "incur[s] almost no additional cost".

use microlib_model::{
    AccessEvent, AccessOutcome, AttachPoint, HardwareBudget, Mechanism, MechanismStats,
    PrefetchDestination, PrefetchQueue, PrefetchRequest,
};

/// Tagged next-line prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::TaggedPrefetcher;
/// use microlib_model::{AttachPoint, Mechanism};
///
/// let tp = TaggedPrefetcher::new();
/// assert_eq!(tp.name(), "TP");
/// assert_eq!(tp.attach_point(), AttachPoint::L2Unified);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TaggedPrefetcher {
    line_bytes: u64,
    stats: MechanismStats,
}

impl TaggedPrefetcher {
    /// Creates the prefetcher for 64-byte L2 lines.
    pub fn new() -> Self {
        TaggedPrefetcher {
            line_bytes: 64,
            stats: MechanismStats::default(),
        }
    }
}

impl Mechanism for TaggedPrefetcher {
    fn name(&self) -> &str {
        "TP"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L2Unified
    }

    fn warm_events_only(&self) -> bool {
        // pure prefetcher: no sidecar, no captures, no spills.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        16 // Table 3: Tagged Prefetching, request queue size 16
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        if event.first_touch_of_prefetch {
            self.stats.prefetches_useful += 1;
        }
        let trigger = event.outcome == AccessOutcome::Miss || event.first_touch_of_prefetch;
        if trigger {
            self.stats.prefetches_requested += 1;
            prefetch.push(PrefetchRequest {
                line: event.line.offset(self.line_bytes as i64),
                destination: PrefetchDestination::Cache,
            });
        }
    }

    fn hardware(&self) -> HardwareBudget {
        // One tag bit per L2 line rides inside the existing array.
        HardwareBudget::none("TP")
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.stats = MechanismStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::{AccessKind, Addr, Cycle};

    fn event(line: u64, outcome: AccessOutcome, first_touch: bool) -> AccessEvent {
        AccessEvent {
            now: Cycle::ZERO,
            pc: Addr::new(0x40_0000),
            addr: Addr::new(line),
            line: Addr::new(line),
            kind: AccessKind::Load,
            outcome,
            first_touch_of_prefetch: first_touch,
            value: Some(0),
        }
    }

    #[test]
    fn miss_prefetches_next_line() {
        let mut tp = TaggedPrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        tp.on_access(&event(0x1000, AccessOutcome::Miss, false), &mut q);
        assert_eq!(q.pop().unwrap().line, Addr::new(0x1040));
    }

    #[test]
    fn first_touch_of_prefetched_line_triggers() {
        let mut tp = TaggedPrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        tp.on_access(&event(0x2000, AccessOutcome::Hit, true), &mut q);
        assert_eq!(q.pop().unwrap().line, Addr::new(0x2040));
        assert_eq!(tp.stats().prefetches_useful, 1);
    }

    #[test]
    fn ordinary_hit_is_quiet() {
        let mut tp = TaggedPrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        tp.on_access(&event(0x3000, AccessOutcome::Hit, false), &mut q);
        assert!(q.is_empty());
    }

    #[test]
    fn no_hardware_cost() {
        assert_eq!(TaggedPrefetcher::new().hardware().total_bits(), 0);
    }
}
