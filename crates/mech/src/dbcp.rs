//! Dead-Block Correlating Prefetcher (Lai, Fide & Falsafi, ISCA 2001) —
//! Table 2's `DBCP`.
//!
//! "Records access patterns finishing with a miss and prefetches whenever
//! the pattern occurs again." Each resident line accumulates a *signature*
//! (a truncated hash of the load/store PCs that touch it); when the
//! signature matches a correlation-table entry that historically preceded
//! the block's death, the block is predicted dead and the line that
//! historically replaced it is prefetched. Table 3: 1 K-entry history,
//! 2 MB 8-way correlation table, 128-entry request queue.
//!
//! Two build variants reproduce the paper's Fig 3 reverse-engineering
//! study. [`DbcpVariant::Initial`] re-creates the four documented bugs of
//! the authors' first implementation attempt:
//!
//! 1. PC addresses are **not prehashed** before being folded into the
//!    signature ("the correlation mechanism had to prehash the ld/st
//!    instruction addresses"), causing aliasing;
//! 2. the correlation table has **half the entries** ("the number of
//!    entries … was wrong (half the correct value)");
//! 3. confidence counters are **never decremented** ("the confidence
//!    counters … are decreased if the signature no longer induces misses"
//!    was omitted), polluting the table;
//! 4. signatures are truncated more aggressively (the pisa-vs-alpha
//!    signature-over-generation issue).

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, AccessOutcome, Addr, AttachPoint, EvictEvent, HardwareBudget, Mechanism,
    MechanismStats, PrefetchDestination, PrefetchQueue, PrefetchRequest, RefillEvent, SramTable,
    VictimAction,
};
use std::collections::HashMap;

/// Which DBCP implementation to build (Fig 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DbcpVariant {
    /// The corrected implementation (after author feedback).
    Fixed,
    /// The first reverse-engineered implementation with its four bugs.
    Initial,
}

#[derive(Clone, Copy, Debug)]
struct CorrEntry {
    predicted_next: u64,
    confidence: u8,
}

/// The dead-block correlating prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::{DbcpVariant, DeadBlockPrefetcher};
/// use microlib_model::Mechanism;
///
/// let fixed = DeadBlockPrefetcher::new(DbcpVariant::Fixed);
/// let initial = DeadBlockPrefetcher::new(DbcpVariant::Initial);
/// assert_eq!(fixed.name(), "DBCP");
/// assert_eq!(initial.name(), "DBCP-initial");
/// // Bug #2: the initial variant's table is half-sized.
/// assert!(initial.hardware().total_bits() < fixed.hardware().total_bits());
/// ```
#[derive(Clone, Debug)]
pub struct DeadBlockPrefetcher {
    variant: DbcpVariant,
    /// Per-resident-line signature (the "history": 1 K lines in the L1).
    live_sigs: HashMap<u64, u32>,
    correlation: AssocTable<CorrEntry>,
    corr_entries: usize,
    /// Victim of the in-progress replacement (paired with the next refill).
    last_death: Option<(u64, u32)>,
    confidence_threshold: u8,
    stats: MechanismStats,
}

impl DeadBlockPrefetcher {
    /// Builds the chosen variant with Table 3 sizes.
    pub fn new(variant: DbcpVariant) -> Self {
        // Fixed: 2 MB / 8-way at ~16 B per entry = 131072 entries.
        // Initial bug #2: half of that.
        let corr_entries = match variant {
            DbcpVariant::Fixed => 131_072,
            DbcpVariant::Initial => 65_536,
        };
        DeadBlockPrefetcher {
            variant,
            live_sigs: HashMap::new(),
            correlation: AssocTable::new(corr_entries / 8, 8),
            corr_entries,
            last_death: None,
            confidence_threshold: 2,
            stats: MechanismStats::default(),
        }
    }

    /// The variant this instance implements.
    pub fn variant(&self) -> DbcpVariant {
        self.variant
    }

    fn pc_hash(&self, pc: u64) -> u32 {
        match self.variant {
            // Bug #1 (initial): raw low PC bits alias heavily (PCs are
            // 4-byte aligned and clustered).
            DbcpVariant::Initial => (pc & 0xFFF) as u32,
            DbcpVariant::Fixed => (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as u32,
        }
    }

    fn truncate_sig(&self, sig: u32) -> u32 {
        match self.variant {
            // Bug #4 (initial): narrower signatures over-alias.
            DbcpVariant::Initial => sig & 0xFF,
            DbcpVariant::Fixed => sig & 0xFFFF,
        }
    }

    fn corr_key(&self, sig: u32, line: u64) -> u64 {
        ((sig as u64) << 32) ^ (line >> 5)
    }
}

impl Mechanism for DeadBlockPrefetcher {
    fn name(&self) -> &str {
        match self.variant {
            DbcpVariant::Fixed => "DBCP",
            DbcpVariant::Initial => "DBCP-initial",
        }
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L1Data
    }

    fn warm_events_only(&self) -> bool {
        // eviction observer + prefetcher: never captures or spills.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        128 // Table 3: DBCP request queue
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        if event.first_touch_of_prefetch {
            self.stats.prefetches_useful += 1;
        }
        if event.pc.is_null() {
            return;
        }
        let line = event.line.raw();
        let h = self.pc_hash(event.pc.raw());
        let prev_sig = self.live_sigs.get(&line).copied().unwrap_or(0);
        let sig_now = self.truncate_sig(prev_sig.wrapping_add(h).rotate_left(3));
        self.live_sigs.insert(line, sig_now);
        if event.outcome != AccessOutcome::Hit {
            return;
        }
        // Does the current signature historically precede this block's
        // death?
        self.stats.table_reads += 1;
        let key = self.corr_key(sig_now, line);
        if let Some(e) = self.correlation.peek(&key) {
            if e.confidence >= self.confidence_threshold {
                self.stats.prefetches_requested += 1;
                prefetch.push(PrefetchRequest {
                    line: Addr::new(e.predicted_next),
                    destination: PrefetchDestination::Cache,
                });
            }
        }
    }

    fn on_evict(&mut self, event: &EvictEvent) -> VictimAction {
        let line = event.line.raw();
        let sig = self.live_sigs.remove(&line).unwrap_or(0);
        self.last_death = Some((line, sig));
        VictimAction::Dropped
    }

    fn on_refill(&mut self, event: &RefillEvent, _prefetch: &mut PrefetchQueue) {
        let new_line = event.line.raw();
        let Some((victim, sig)) = self.last_death.take() else {
            return;
        };
        // Only a same-set fill is the victim's true replacement (baseline
        // L1 geometry: 1024 sets of 32-byte lines).
        if victim == new_line || ((victim >> 5) & 1023) != ((new_line >> 5) & 1023) {
            return;
        }
        let key = self.corr_key(sig, victim);
        self.stats.table_writes += 1;
        match self.correlation.get_mut(&key) {
            Some(e) if e.predicted_next == new_line => {
                e.confidence = (e.confidence + 1).min(3);
            }
            Some(e) => {
                if self.variant == DbcpVariant::Fixed {
                    // The fixed implementation decrements stale entries
                    // (bug #3 in the initial one never does, polluting the
                    // table with useless signatures).
                    if e.confidence > 0 {
                        e.confidence -= 1;
                    } else {
                        e.predicted_next = new_line;
                        e.confidence = 2;
                    }
                }
            }
            None => {
                self.correlation.insert(
                    key,
                    CorrEntry {
                        predicted_next: new_line,
                        confidence: 2,
                    },
                );
            }
        }
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::with_tables(
            self.name(),
            vec![
                SramTable {
                    name: "correlation table".to_owned(),
                    entries: self.corr_entries as u64,
                    entry_bits: 128, // signature tag + address + confidence
                    assoc: 8,
                    ports: 1,
                },
                SramTable {
                    name: "history (per-line signatures)".to_owned(),
                    entries: 1024,
                    entry_bits: 16,
                    assoc: 1,
                    ports: 1,
                },
            ],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.live_sigs.clear();
        self.correlation.clear();
        self.last_death = None;
        self.stats = MechanismStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::{AccessKind, Cycle, LineData, RefillCause};

    fn access(pc: u64, line: u64, outcome: AccessOutcome) -> AccessEvent {
        AccessEvent {
            now: Cycle::ZERO,
            pc: Addr::new(pc),
            addr: Addr::new(line),
            line: Addr::new(line),
            kind: AccessKind::Load,
            outcome,
            first_touch_of_prefetch: false,
            value: Some(0),
        }
    }

    fn evict(line: u64) -> EvictEvent {
        EvictEvent {
            now: Cycle::ZERO,
            line: Addr::new(line),
            dirty: false,
            data: LineData::zeroed(4),
            untouched_prefetch: false,
        }
    }

    fn refill(line: u64) -> RefillEvent {
        RefillEvent {
            now: Cycle::ZERO,
            line: Addr::new(line),
            data: LineData::zeroed(4),
            cause: RefillCause::Demand,
        }
    }

    /// Replays a block generation: PC sequence touching `line`, then death
    /// (evicted, replaced by `next`).
    fn generation(d: &mut DeadBlockPrefetcher, q: &mut PrefetchQueue, line: u64, next: u64) {
        d.on_access(&access(0x400, line, AccessOutcome::Miss), q);
        d.on_access(&access(0x404, line, AccessOutcome::Hit), q);
        d.on_access(&access(0x408, line, AccessOutcome::Hit), q);
        d.on_evict(&evict(line));
        d.on_refill(&refill(next), q);
    }

    #[test]
    fn repeated_pattern_predicts_replacement() {
        let mut d = DeadBlockPrefetcher::new(DbcpVariant::Fixed);
        let mut q = PrefetchQueue::new(128);
        // Two generations establish the correlation with confidence.
        generation(&mut d, &mut q, 0x1000, 0x9000);
        generation(&mut d, &mut q, 0x1000, 0x9000);
        q.clear();
        // Third generation: after the same PC trace, the death is
        // predicted and 0x2000 prefetched.
        d.on_access(&access(0x400, 0x1000, AccessOutcome::Miss), &mut q);
        d.on_access(&access(0x404, 0x1000, AccessOutcome::Hit), &mut q);
        d.on_access(&access(0x408, 0x1000, AccessOutcome::Hit), &mut q);
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(targets.contains(&0x9000), "targets {targets:x?}");
    }

    #[test]
    fn different_pc_trace_does_not_predict() {
        let mut d = DeadBlockPrefetcher::new(DbcpVariant::Fixed);
        let mut q = PrefetchQueue::new(128);
        generation(&mut d, &mut q, 0x1000, 0x9000);
        generation(&mut d, &mut q, 0x1000, 0x9000);
        q.clear();
        // A different PC sequence yields a different signature: no
        // prediction.
        d.on_access(&access(0x900, 0x1000, AccessOutcome::Miss), &mut q);
        d.on_access(&access(0x904, 0x1000, AccessOutcome::Hit), &mut q);
        assert!(q.is_empty());
    }

    #[test]
    fn fixed_decrements_stale_confidence() {
        let mut d = DeadBlockPrefetcher::new(DbcpVariant::Fixed);
        let mut q = PrefetchQueue::new(128);
        generation(&mut d, &mut q, 0x1000, 0x9000);
        generation(&mut d, &mut q, 0x1000, 0x9000);
        // Pattern changes: now replaced by 0x3000 twice -> confidence
        // drains and flips.
        generation(&mut d, &mut q, 0x1000, 0x11000);
        generation(&mut d, &mut q, 0x1000, 0x11000);
        generation(&mut d, &mut q, 0x1000, 0x11000);
        q.clear();
        d.on_access(&access(0x400, 0x1000, AccessOutcome::Miss), &mut q);
        d.on_access(&access(0x404, 0x1000, AccessOutcome::Hit), &mut q);
        d.on_access(&access(0x408, 0x1000, AccessOutcome::Hit), &mut q);
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(
            !targets.contains(&0x9000),
            "stale target must fade: {targets:x?}"
        );
    }

    #[test]
    fn initial_variant_never_adapts() {
        let mut d = DeadBlockPrefetcher::new(DbcpVariant::Initial);
        let mut q = PrefetchQueue::new(128);
        generation(&mut d, &mut q, 0x1000, 0x9000);
        generation(&mut d, &mut q, 0x1000, 0x9000);
        for _ in 0..5 {
            generation(&mut d, &mut q, 0x1000, 0x11000);
        }
        q.clear();
        d.on_access(&access(0x400, 0x1000, AccessOutcome::Miss), &mut q);
        d.on_access(&access(0x404, 0x1000, AccessOutcome::Hit), &mut q);
        d.on_access(&access(0x408, 0x1000, AccessOutcome::Hit), &mut q);
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(
            targets.contains(&0x9000),
            "bug #3: stale prediction survives forever: {targets:x?}"
        );
    }

    #[test]
    fn variants_have_distinct_names_and_sizes() {
        let f = DeadBlockPrefetcher::new(DbcpVariant::Fixed);
        let i = DeadBlockPrefetcher::new(DbcpVariant::Initial);
        assert_ne!(f.name(), i.name());
        assert_eq!(
            f.hardware().total_bits(),
            2 * i.hardware().total_bits() - 1024 * 16
        );
    }
}
