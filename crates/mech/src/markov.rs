//! Markov Prefetching (Joseph & Grunwald, ISCA 1997) — Table 2's `Markov`.
//!
//! "Records the most probable sequence of addresses and uses that
//! information for target address prediction." On every L1 miss the
//! predictor records `previous miss → current miss` in a 1 MB correlation
//! table holding up to 4 successors per entry (LRU-ordered), then prefetches
//! the recorded successors of the current miss into a 128-line prefetch
//! buffer probed on later misses. Table 3: 1 MB table, 4 predictions per
//! entry, 16-entry request queue, 128-line buffer.

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, AccessOutcome, Addr, AttachPoint, Cycle, HardwareBudget, LineData, Mechanism,
    MechanismStats, PrefetchDestination, PrefetchQueue, PrefetchRequest, ProbeResult, RefillCause,
    RefillEvent, SramTable,
};

#[derive(Clone, Debug, Default)]
struct Successors {
    /// Most-recent-first successor miss lines (up to 4).
    lines: Vec<u64>,
}

/// The Markov prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::MarkovPrefetcher;
/// use microlib_model::Mechanism;
///
/// let markov = MarkovPrefetcher::new();
/// assert_eq!(markov.name(), "Markov");
/// // 1 MB prediction table dominates its cost (Fig 5).
/// assert!(markov.hardware().total_bytes() >= 1024 * 1024);
/// ```
#[derive(Clone, Debug)]
pub struct MarkovPrefetcher {
    table: AssocTable<Successors>,
    table_entries: usize,
    predictions_per_entry: usize,
    buffer: AssocTable<LineData>,
    buffer_lines: usize,
    last_miss: Option<u64>,
    stats: MechanismStats,
}

impl Default for MarkovPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl MarkovPrefetcher {
    /// Table 3 configuration: 1 MB table (≈32 K entries of 4 predictions),
    /// 128-line prefetch buffer.
    pub fn new() -> Self {
        Self::with_geometry(32_768, 4, 128)
    }

    /// Custom geometry (sensitivity studies).
    pub fn with_geometry(
        table_entries: usize,
        predictions_per_entry: usize,
        buffer_lines: usize,
    ) -> Self {
        MarkovPrefetcher {
            table: AssocTable::new(table_entries.next_power_of_two(), 1),
            table_entries,
            predictions_per_entry,
            buffer: AssocTable::new(buffer_lines.next_power_of_two(), 0),
            buffer_lines,
            last_miss: None,
            stats: MechanismStats::default(),
        }
    }

    /// Lines currently held in the prefetch buffer.
    pub fn buffer_occupancy(&self) -> usize {
        self.buffer.len()
    }
}

impl Mechanism for MarkovPrefetcher {
    fn name(&self) -> &str {
        "Markov"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L1Data
    }

    fn warm_events_only(&self) -> bool {
        // the prefetch buffer only fills from prefetch-cause refills,
        // which never occur during functional warmup — warm probes always
        // miss.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        16 // Table 3: Markov request queue size 16
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        if event.outcome == AccessOutcome::Hit {
            return;
        }
        let line = event.line.raw();
        // Learn prev -> current.
        if let Some(prev) = self.last_miss {
            if prev != line {
                self.stats.table_writes += 1;
                let preds = self.predictions_per_entry;
                match self.table.get_mut(&prev) {
                    Some(s) => {
                        s.lines.retain(|l| *l != line);
                        s.lines.insert(0, line);
                        s.lines.truncate(preds);
                    }
                    None => {
                        self.table.insert(prev, Successors { lines: vec![line] });
                    }
                }
            }
        }
        self.last_miss = Some(line);
        // Predict the most probable *sequence* from the current miss:
        // follow first-choice successors transitively. The first hops are
        // skipped — their demand accesses arrive before any prefetch could
        // complete — and the next `predictions_per_entry` steps are issued
        // (prefetch distance), plus this entry's alternative successors as
        // width.
        const SKIP_AHEAD: usize = 3;
        let depth = SKIP_AHEAD + self.predictions_per_entry;
        let mut walk = Vec::with_capacity(depth);
        self.stats.table_reads += 1;
        let mut alternatives = Vec::new();
        if let Some(s) = self.table.get(&line) {
            walk.push(s.lines[0]);
            alternatives.extend(s.lines.iter().skip(1).copied());
        }
        while walk.len() < depth {
            self.stats.table_reads += 1;
            let Some(&cur) = walk.last() else { break };
            let Some(next) = self.table.peek(&cur).and_then(|s| s.lines.first()).copied() else {
                break;
            };
            if next == line || walk.contains(&next) {
                break;
            }
            walk.push(next);
        }
        // If the chain is shorter than the skip distance, fall back to the
        // shallow predictions rather than staying silent.
        let skip = if walk.len() > SKIP_AHEAD {
            SKIP_AHEAD
        } else {
            0
        };
        let mut targets: Vec<u64> = walk
            .into_iter()
            .skip(skip)
            .take(self.predictions_per_entry)
            .collect();
        for alt in alternatives {
            if targets.len() >= self.predictions_per_entry {
                break;
            }
            if !targets.contains(&alt) {
                targets.push(alt);
            }
        }
        for target in targets {
            self.stats.prefetches_requested += 1;
            prefetch.push(PrefetchRequest {
                line: Addr::new(target),
                destination: PrefetchDestination::Buffer,
            });
        }
    }

    fn on_refill(&mut self, event: &RefillEvent, _prefetch: &mut PrefetchQueue) {
        if event.cause == RefillCause::Prefetch {
            // Buffer-destination fills land here.
            self.buffer.insert(event.line.raw(), event.data);
        }
    }

    fn holds(&self, line: Addr) -> bool {
        self.buffer.contains(&line.raw())
    }

    fn probe(&mut self, line: Addr, _now: Cycle) -> Option<ProbeResult> {
        self.stats.table_reads += 1;
        match self.buffer.remove(&line.raw()) {
            Some(data) => {
                self.stats.sidecar_hits += 1;
                self.stats.prefetches_useful += 1;
                Some(ProbeResult {
                    data,
                    dirty: false,
                    extra_latency: 1,
                })
            }
            None => {
                self.stats.sidecar_misses += 1;
                None
            }
        }
    }

    fn hardware(&self) -> HardwareBudget {
        // Entry: tag (26b) + 4 successor addresses × 56b + LRU state —
        // 32 K entries × 256 bits = the 1 MB of Table 3.
        HardwareBudget::with_tables(
            "Markov",
            vec![
                SramTable {
                    name: "prediction table".to_owned(),
                    entries: self.table_entries as u64,
                    entry_bits: 26 + (self.predictions_per_entry as u64) * 56 + 6,
                    assoc: 1,
                    ports: 1,
                },
                SramTable {
                    name: "prefetch buffer".to_owned(),
                    entries: self.buffer_lines as u64,
                    entry_bits: 32 * 8 + 28,
                    assoc: 0,
                    ports: 1,
                },
            ],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.table.clear();
        self.buffer.clear();
        self.last_miss = None;
        self.stats = MechanismStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::AccessKind;

    fn miss(line: u64) -> AccessEvent {
        AccessEvent {
            now: Cycle::ZERO,
            pc: Addr::new(0x40_0000),
            addr: Addr::new(line),
            line: Addr::new(line),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Miss,
            first_touch_of_prefetch: false,
            value: Some(0),
        }
    }

    fn drive_sequence(m: &mut MarkovPrefetcher, q: &mut PrefetchQueue, seq: &[u64]) {
        for &l in seq {
            m.on_access(&miss(l), q);
        }
    }

    #[test]
    fn learns_repeating_sequence() {
        let mut m = MarkovPrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        let seq = [0x1000, 0x2000, 0x3000, 0x4000];
        drive_sequence(&mut m, &mut q, &seq);
        q.clear();
        // Second pass: after re-missing 0x1000, successor 0x2000 predicted.
        m.on_access(&miss(0x1000), &mut q);
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(targets.contains(&0x2000), "targets: {targets:x?}");
    }

    #[test]
    fn keeps_up_to_four_successors() {
        let mut m = MarkovPrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        // A followed by five different lines across five passes.
        for succ in [0x2000u64, 0x3000, 0x4000, 0x5000, 0x6000] {
            drive_sequence(&mut m, &mut q, &[0x1000, succ]);
            q.clear();
        }
        m.on_access(&miss(0x9000), &mut q); // decouple last_miss
        q.clear();
        m.on_access(&miss(0x1000), &mut q);
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert_eq!(targets.len(), 4, "at most 4 predictions: {targets:x?}");
        assert!(!targets.contains(&0x2000), "oldest successor dropped");
    }

    #[test]
    fn prefetches_land_in_buffer_and_serve_probes() {
        let mut m = MarkovPrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        let mut data = LineData::zeroed(4);
        data.set_word(1, 42);
        m.on_refill(
            &RefillEvent {
                now: Cycle::ZERO,
                line: Addr::new(0x2000),
                data,
                cause: RefillCause::Prefetch,
            },
            &mut q,
        );
        assert_eq!(m.buffer_occupancy(), 1);
        let hit = m.probe(Addr::new(0x2000), Cycle::ZERO).unwrap();
        assert_eq!(hit.data.word(1), 42);
        assert_eq!(m.buffer_occupancy(), 0, "swap semantics");
    }

    #[test]
    fn demand_refills_do_not_pollute_buffer() {
        let mut m = MarkovPrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        m.on_refill(
            &RefillEvent {
                now: Cycle::ZERO,
                line: Addr::new(0x3000),
                data: LineData::zeroed(4),
                cause: RefillCause::Demand,
            },
            &mut q,
        );
        assert_eq!(m.buffer_occupancy(), 0);
    }

    #[test]
    fn predictions_target_the_buffer() {
        let mut m = MarkovPrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        drive_sequence(&mut m, &mut q, &[0x1000, 0x2000, 0x1000]);
        if let Some(req) = q.pop() {
            assert_eq!(req.destination, PrefetchDestination::Buffer);
        }
    }
}
