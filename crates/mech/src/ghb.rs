//! Global History Buffer prefetching (Nesbit & Smith, HPCA 2004) — Table
//! 2's `GHB`, the paper's best-performing mechanism.
//!
//! "Records stride patterns in a load address stream and prefetches if
//! patterns recur." An index table (IT, 256 entries, PC-indexed) points at
//! the most recent entry of a 256-entry circular global history buffer;
//! entries of the same PC are chained by link pointers. On each L2 miss
//! the chain is walked to extract recent deltas; a constant stride (or a
//! recurring delta pair) triggers prefetches of degree 4.
//!
//! The walk touches the small tables repeatedly — the activity that makes
//! GHB "power greedy" in Fig 5 despite its tiny area: "each miss can induce
//! up to 4 requests, and a table is scanned repeatedly".

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, AccessOutcome, Addr, AttachPoint, HardwareBudget, Mechanism, MechanismStats,
    PrefetchDestination, PrefetchQueue, PrefetchRequest, SramTable,
};

#[derive(Clone, Copy, Debug)]
struct GhbEntry {
    addr: u64,
    /// Global sequence number of the previous entry with the same PC.
    prev: Option<u64>,
}

/// The global history buffer prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::GlobalHistoryBuffer;
/// use microlib_model::Mechanism;
///
/// let ghb = GlobalHistoryBuffer::new();
/// assert_eq!(ghb.name(), "GHB");
/// assert_eq!(ghb.request_queue_capacity(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct GlobalHistoryBuffer {
    index: AssocTable<u64>,
    it_entries: usize,
    buffer: Vec<Option<GhbEntry>>,
    buffer_entries: usize,
    head: u64,
    degree: u32,
    line_bytes: u64,
    stats: MechanismStats,
}

impl Default for GlobalHistoryBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalHistoryBuffer {
    /// Table 3 configuration: 256 IT entries, 256 GHB entries, queue 4,
    /// degree 4.
    pub fn new() -> Self {
        Self::with_geometry(256, 256, 4)
    }

    /// Custom geometry (sensitivity studies).
    pub fn with_geometry(it_entries: usize, ghb_entries: usize, degree: u32) -> Self {
        GlobalHistoryBuffer {
            index: AssocTable::new(it_entries.next_power_of_two(), 1),
            it_entries,
            buffer: vec![None; ghb_entries],
            buffer_entries: ghb_entries,
            head: 0,
            degree,
            line_bytes: 64,
            stats: MechanismStats::default(),
        }
    }

    fn entry(&self, seq: u64) -> Option<GhbEntry> {
        // Valid while not overwritten: within the last `buffer_entries`
        // insertions.
        if self.head.checked_sub(seq)? > self.buffer_entries as u64 {
            return None;
        }
        self.buffer[(seq % self.buffer_entries as u64) as usize]
    }

    /// Walks the PC chain, most recent first, returning up to `max` miss
    /// addresses.
    fn chain(&mut self, pc: u64, max: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(max);
        let mut cursor = self.index.peek(&pc).copied();
        while let Some(seq) = cursor {
            self.stats.table_reads += 1; // every hop is a buffer read
            let Some(e) = self.entry(seq) else { break };
            out.push(e.addr);
            if out.len() >= max {
                break;
            }
            cursor = e.prev.filter(|p| *p < seq);
        }
        out
    }
}

impl Mechanism for GlobalHistoryBuffer {
    fn name(&self) -> &str {
        "GHB"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L2Unified
    }

    fn warm_events_only(&self) -> bool {
        // pure prefetcher: no sidecar, no captures, no spills.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        4 // Table 3: GHB request queue
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        if event.first_touch_of_prefetch {
            self.stats.prefetches_useful += 1;
        }
        // Like the stride prefetcher, the GHB observes the full L2 access
        // stream (the L1 miss stream), hits included — training only on L2
        // misses would silence the predictor exactly when its prefetches
        // start working.
        if event.pc.is_null() {
            return;
        }
        let _ = AccessOutcome::Miss;
        let pc = event.pc.raw();
        let addr = event.addr.raw();
        // Append to the buffer and relink the IT.
        let prev = self.index.peek(&pc).copied();
        let seq = self.head;
        self.buffer[(seq % self.buffer_entries as u64) as usize] = Some(GhbEntry { addr, prev });
        self.head += 1;
        self.index.insert(pc, seq);
        self.stats.table_writes += 2;

        // Extract the recent delta history for this PC.
        let history = self.chain(pc, 8);
        if history.len() < 3 {
            return;
        }
        let d1 = history[0] as i64 - history[1] as i64;
        let d2 = history[1] as i64 - history[2] as i64;
        if d1 == 0 {
            return;
        }
        let stride = if d1 == d2 {
            Some(d1)
        } else {
            // Delta correlation: find the last earlier occurrence of the
            // pair (d2, d1) and predict the delta that followed it.
            let mut found = None;
            for w in 1..history.len().saturating_sub(2) {
                let e1 = history[w] as i64 - history[w + 1] as i64;
                let e2 = history[w + 1] as i64 - history[w + 2] as i64;
                self.stats.table_reads += 1;
                if e1 == d1 && e2 == d2 && w >= 1 {
                    found = Some(history[w - 1] as i64 - history[w] as i64);
                    break;
                }
            }
            found
        };
        if let Some(stride) = stride {
            if stride == 0 {
                return;
            }
            // Degree-4 issue with line-granular lookahead: sub-line strides
            // are widened to one cache line so the four prefetches cover
            // four *distinct* lines ahead of the stream.
            let line = self.line_bytes as i64;
            let effective = if stride.abs() < line {
                line * stride.signum()
            } else {
                stride
            };
            for k in 1..=self.degree as i64 {
                let target = addr as i64 + effective * k;
                if target <= 0 {
                    break;
                }
                self.stats.prefetches_requested += 1;
                prefetch.push(PrefetchRequest {
                    line: Addr::new(target as u64 & !(self.line_bytes - 1)),
                    destination: PrefetchDestination::Cache,
                });
            }
        }
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::with_tables(
            "GHB",
            vec![
                SramTable {
                    name: "index table".to_owned(),
                    entries: self.it_entries as u64,
                    entry_bits: 20 + 8,
                    assoc: 1,
                    ports: 1,
                },
                SramTable {
                    name: "global history buffer".to_owned(),
                    entries: self.buffer_entries as u64,
                    entry_bits: 32 + 8,
                    assoc: 1,
                    ports: 1,
                },
            ],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.index.clear();
        self.buffer.iter_mut().for_each(|e| *e = None);
        self.head = 0;
        self.stats = MechanismStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::{AccessKind, Cycle};

    fn miss(pc: u64, addr: u64) -> AccessEvent {
        AccessEvent {
            now: Cycle::ZERO,
            pc: Addr::new(pc),
            addr: Addr::new(addr),
            line: Addr::new(addr & !63),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Miss,
            first_touch_of_prefetch: false,
            value: Some(0),
        }
    }

    #[test]
    fn constant_stride_prefetches_degree_4() {
        let mut ghb = GlobalHistoryBuffer::new();
        let mut q = PrefetchQueue::new(16);
        for i in 0..3u64 {
            ghb.on_access(&miss(0x400, 0x10_0000 + i * 0x100), &mut q);
        }
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert_eq!(targets.len(), 4, "degree-4: {targets:x?}");
        assert_eq!(targets[0], 0x10_0300);
        assert_eq!(targets[3], 0x10_0600);
    }

    #[test]
    fn interleaved_pcs_keep_separate_chains() {
        let mut ghb = GlobalHistoryBuffer::new();
        let mut q = PrefetchQueue::new(32);
        // Two PCs with different strides, interleaved in the global buffer.
        for i in 0..3u64 {
            ghb.on_access(&miss(0x400, 0x10_0000 + i * 0x100), &mut q);
            ghb.on_access(&miss(0x408, 0x50_0000 + i * 0x40), &mut q);
        }
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(targets.contains(&0x10_0300));
        assert!(targets.contains(&0x50_00C0));
    }

    #[test]
    fn delta_correlation_catches_repeating_pairs() {
        let mut ghb = GlobalHistoryBuffer::new();
        let mut q = PrefetchQueue::new(32);
        // Pattern of deltas: +0x100, +0x40, +0x100, +0x40, ... (not a
        // constant stride).
        let mut addr = 0x20_0000u64;
        let deltas = [0x100u64, 0x40, 0x100, 0x40, 0x100];
        ghb.on_access(&miss(0x500, addr), &mut q);
        for d in deltas {
            addr += d;
            ghb.on_access(&miss(0x500, addr), &mut q);
        }
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(
            targets.iter().any(|t| *t == (addr + 0x40) & !63),
            "delta correlation should predict +0x40 next: {targets:x?}"
        );
    }

    #[test]
    fn old_entries_expire_from_the_ring() {
        let mut ghb = GlobalHistoryBuffer::with_geometry(256, 8, 4);
        let mut q = PrefetchQueue::new(32);
        ghb.on_access(&miss(0x600, 0x1000), &mut q);
        // Flood the ring with other PCs.
        for i in 0..20u64 {
            ghb.on_access(&miss(0x700 + i * 4, 0x90_0000 + i * 0x5000), &mut q);
        }
        q.clear();
        // The old chain entry for 0x600 has been overwritten; two more
        // misses are not enough history for a prediction.
        ghb.on_access(&miss(0x600, 0x2000), &mut q);
        ghb.on_access(&miss(0x600, 0x3000), &mut q);
        assert!(q.is_empty());
    }

    #[test]
    fn table_walks_show_up_in_activity() {
        let mut ghb = GlobalHistoryBuffer::new();
        let mut q = PrefetchQueue::new(32);
        for i in 0..10u64 {
            ghb.on_access(&miss(0x400, 0x10_0000 + i * 0x80), &mut q);
        }
        let s = ghb.stats();
        assert!(
            s.table_reads > s.prefetches_requested,
            "chain walks dominate: reads {} vs requests {}",
            s.table_reads,
            s.prefetches_requested
        );
    }

    #[test]
    fn hardware_is_tiny() {
        let hw = GlobalHistoryBuffer::new().hardware();
        assert!(
            hw.total_bytes() < 4 * 1024,
            "GHB tables are small: {}",
            hw.total_bytes()
        );
    }
}
