//! Timekeeping prefetcher (Hu, Kaxiras & Martonosi, ISCA 2002) — Table 2's
//! `TK`.
//!
//! "Determines when a cache line will no longer be used, records
//! replacement sequences, and uses both information for a timely prefetch
//! of the replacement line." Per-line idle counters (refreshed every 512
//! cycles, death threshold 1023 cycles — Table 3) detect dead blocks; an
//! 8 KB 8-way address-correlation table remembers, for each line, which
//! line historically replaced it; when a resident line is declared dead its
//! recorded replacement is prefetched into the L1.

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, AccessOutcome, Addr, AttachPoint, Cycle, EvictEvent, HardwareBudget, Mechanism,
    MechanismStats, PrefetchDestination, PrefetchQueue, PrefetchRequest, RefillEvent, SramTable,
    VictimAction,
};
use std::collections::HashMap;

/// Table 3: TK refresh interval (cycles).
pub const REFRESH_INTERVAL: u64 = 512;
/// Table 3: TK death threshold (cycles).
pub const DEATH_THRESHOLD: u64 = 1023;

#[derive(Clone, Copy, Debug)]
struct Residence {
    last_access: Cycle,
    death_handled: bool,
}

/// The timekeeping prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::TimekeepingPrefetcher;
/// use microlib_model::Mechanism;
///
/// let tk = TimekeepingPrefetcher::new();
/// assert_eq!(tk.name(), "TK");
/// assert_eq!(tk.request_queue_capacity(), 128);
/// ```
#[derive(Clone, Copy, Debug)]
struct Correlation {
    successor: u64,
    confidence: u8,
}

/// The timekeeping prefetcher (see module docs; Table 3 parameters).
#[derive(Clone, Debug)]
pub struct TimekeepingPrefetcher {
    resident: HashMap<u64, Residence>,
    correlation: AssocTable<Correlation>,
    corr_entries: usize,
    last_evicted: Option<u64>,
    pending_predictions: Vec<u64>,
    stats: MechanismStats,
}

impl Default for TimekeepingPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl TimekeepingPrefetcher {
    /// Table 3 configuration: 8 KB 8-way correlation table.
    pub fn new() -> Self {
        // 8 KB at ~8 bytes/entry = 1024 entries, 8-way.
        TimekeepingPrefetcher {
            resident: HashMap::new(),
            correlation: AssocTable::new(128, 8),
            corr_entries: 1024,
            last_evicted: None,
            pending_predictions: Vec::new(),
            stats: MechanismStats::default(),
        }
    }
}

impl Mechanism for TimekeepingPrefetcher {
    fn name(&self) -> &str {
        "TK"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L1Data
    }

    fn warm_events_only(&self) -> bool {
        // eviction observer + prefetcher: never captures or spills.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        128 // Table 3: Timekeeping prefetcher request queue
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        if event.first_touch_of_prefetch {
            self.stats.prefetches_useful += 1;
        }
        if event.outcome == AccessOutcome::Miss {
            return; // residence begins at the refill
        }
        if let Some(r) = self.resident.get_mut(&event.line.raw()) {
            r.last_access = event.now;
            r.death_handled = false;
        } else {
            self.resident.insert(
                event.line.raw(),
                Residence {
                    last_access: event.now,
                    death_handled: false,
                },
            );
        }
        // Drain predictions deferred from the refresh scan.
        for target in self.pending_predictions.drain(..) {
            self.stats.prefetches_requested += 1;
            prefetch.push(PrefetchRequest {
                line: Addr::new(target),
                destination: PrefetchDestination::Cache,
            });
        }
    }

    fn on_evict(&mut self, event: &EvictEvent) -> VictimAction {
        self.resident.remove(&event.line.raw());
        self.last_evicted = Some(event.line.raw());
        VictimAction::Dropped
    }

    fn on_refill(&mut self, event: &RefillEvent, _prefetch: &mut PrefetchQueue) {
        let line = event.line.raw();
        self.resident.insert(
            line,
            Residence {
                last_access: event.now,
                death_handled: false,
            },
        );
        // Learn the replacement sequence: the victim evicted this cycle was
        // replaced by this line. Only same-set pairs are true replacements
        // (baseline L1 geometry: 1024 sets of 32-byte lines), and a 2-bit
        // confidence counter suppresses one-off (noisy) pairs.
        let same_set = |a: u64, b: u64| ((a >> 5) & 1023) == ((b >> 5) & 1023);
        if let Some(victim) = self.last_evicted.take() {
            if victim != line && same_set(victim, line) {
                self.stats.table_writes += 1;
                match self.correlation.get_mut(&victim) {
                    Some(c) if c.successor == line => {
                        c.confidence = (c.confidence + 1).min(3);
                    }
                    Some(c) => {
                        if c.confidence > 0 {
                            c.confidence -= 1;
                        } else {
                            c.successor = line;
                            c.confidence = 1;
                        }
                    }
                    None => {
                        self.correlation.insert(
                            victim,
                            Correlation {
                                successor: line,
                                confidence: 1,
                            },
                        );
                    }
                }
            }
        }
    }

    fn tick(&mut self, now: Cycle) {
        // Refresh scan: every REFRESH_INTERVAL cycles, look for lines whose
        // idle time crossed the death threshold and schedule the prefetch
        // of their recorded replacement.
        if !now.raw().is_multiple_of(REFRESH_INTERVAL) || now.raw() == 0 {
            return;
        }
        let mut dead_lines = Vec::new();
        for (line, r) in self.resident.iter_mut() {
            if !r.death_handled && now.since(r.last_access) > DEATH_THRESHOLD {
                r.death_handled = true;
                dead_lines.push(*line);
            }
        }
        // The residency map iterates in hash order, which varies from
        // process to process; predictions must enqueue in a reproducible
        // order or the whole simulation stops being run-to-run
        // deterministic.
        dead_lines.sort_unstable();
        for line in dead_lines {
            self.stats.table_reads += 1;
            if let Some(c) = self.correlation.peek(&line).copied() {
                if c.confidence >= 3 {
                    self.pending_predictions.push(c.successor);
                }
            }
        }
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::with_tables(
            "TK",
            vec![
                SramTable {
                    name: "address correlation table".to_owned(),
                    entries: self.corr_entries as u64,
                    entry_bits: 27 + 32, // tag + successor line
                    assoc: 8,
                    ports: 1,
                },
                SramTable {
                    name: "per-line timekeeping counters".to_owned(),
                    entries: 1024, // one per L1 line
                    entry_bits: 8, // coarse 2-bit decay + state, padded
                    assoc: 1,
                    ports: 1,
                },
            ],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.resident.clear();
        self.correlation.clear();
        self.last_evicted = None;
        self.pending_predictions.clear();
        self.stats = MechanismStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::{AccessKind, LineData, RefillCause};

    fn refill(line: u64, now: u64) -> RefillEvent {
        RefillEvent {
            now: Cycle::new(now),
            line: Addr::new(line),
            data: LineData::zeroed(4),
            cause: RefillCause::Demand,
        }
    }

    fn evict(line: u64, now: u64) -> EvictEvent {
        EvictEvent {
            now: Cycle::new(now),
            line: Addr::new(line),
            dirty: false,
            data: LineData::zeroed(4),
            untouched_prefetch: false,
        }
    }

    fn hit(line: u64, now: u64) -> AccessEvent {
        AccessEvent {
            now: Cycle::new(now),
            pc: Addr::new(0x40_0000),
            addr: Addr::new(line),
            line: Addr::new(line),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Hit,
            first_touch_of_prefetch: false,
            value: Some(0),
        }
    }

    /// Replays "A evicted, B fills" so the confidence counter reaches the
    /// prediction threshold.
    fn train_replacement(tk: &mut TimekeepingPrefetcher, q: &mut PrefetchQueue, t0: u64) {
        // 0x1000 and 0x9000 map to the same L1 set (sets repeat per 32 KB).
        tk.on_evict(&evict(0x1000, t0));
        tk.on_refill(&refill(0x9000, t0), q);
        tk.on_evict(&evict(0x9000, t0 + 5));
        tk.on_refill(&refill(0x1000, t0 + 5), q);
    }

    #[test]
    fn learns_replacement_and_prefetches_on_death() {
        let mut tk = TimekeepingPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        tk.on_refill(&refill(0x1000, 0), &mut q);
        // Three observations of "B replaces A" reach full confidence.
        train_replacement(&mut tk, &mut q, 10);
        train_replacement(&mut tk, &mut q, 30);
        train_replacement(&mut tk, &mut q, 50);
        tk.on_access(&hit(0x1000, 60), &mut q);
        // Idle scan after threshold: next refresh boundary past 40+1023.
        tk.tick(Cycle::new(1536));
        // Prediction drains on the next access event.
        tk.on_access(&hit(0x3000, 1537), &mut q);
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(targets.contains(&0x9000), "targets {targets:x?}");
    }

    #[test]
    fn single_observation_lacks_confidence() {
        let mut tk = TimekeepingPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        tk.on_refill(&refill(0x1000, 0), &mut q);
        train_replacement(&mut tk, &mut q, 10);
        tk.on_access(&hit(0x1000, 20), &mut q);
        tk.tick(Cycle::new(1536));
        tk.on_access(&hit(0x3000, 1537), &mut q);
        assert!(q.is_empty(), "one observation must not predict");
    }

    #[test]
    fn live_lines_are_not_declared_dead() {
        let mut tk = TimekeepingPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        tk.on_refill(&refill(0x1000, 0), &mut q);
        tk.on_evict(&evict(0x1000, 5));
        tk.on_refill(&refill(0x2000, 5), &mut q);
        tk.on_evict(&evict(0x2000, 9));
        tk.on_refill(&refill(0x1000, 9), &mut q);
        // Keep touching the line: never idle long enough.
        for t in (0..4096u64).step_by(100) {
            tk.on_access(&hit(0x1000, t.max(10)), &mut q);
            tk.tick(Cycle::new((t / 512) * 512));
        }
        assert!(q.is_empty(), "live line must not trigger prefetch");
    }

    #[test]
    fn death_prediction_fires_once_per_residence() {
        let mut tk = TimekeepingPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        tk.on_refill(&refill(0x1000, 0), &mut q);
        train_replacement(&mut tk, &mut q, 1);
        train_replacement(&mut tk, &mut q, 10);
        train_replacement(&mut tk, &mut q, 15);
        tk.on_access(&hit(0x1000, 20), &mut q);
        tk.tick(Cycle::new(1536));
        tk.on_access(&hit(0x9000, 1537), &mut q);
        let first: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        tk.tick(Cycle::new(2048));
        tk.on_access(&hit(0x9000, 2049), &mut q);
        assert!(q.is_empty(), "no duplicate death prediction");
        assert!(first.contains(&0x9000));
    }
}
