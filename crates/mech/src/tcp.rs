//! Tag Correlating Prefetching (Hu, Martonosi & Kaxiras, HPCA 2003) —
//! Table 2's `TCP`.
//!
//! "Records miss patterns per tag and prefetches according to the most
//! likely miss pattern." A tag-history table (THT, 1024 sets direct-mapped,
//! two previous tags per set) feeds a pattern-history table (PHT, 8 KB,
//! 256 sets, 8-way) keyed by the last two tags; on a miss the predicted
//! next tag in the same cache set is prefetched.
//!
//! The request-queue size is the paper's §3.4 "second-guessing" parameter:
//! the article did not state it, the reproduction's Fig 10 sweeps it
//! between 1 and 128 (Table 3 settled on 128 after author contact).

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, AccessOutcome, Addr, AttachPoint, HardwareBudget, Mechanism, MechanismStats,
    PrefetchDestination, PrefetchQueue, PrefetchRequest, SramTable,
};

/// The tag-correlating prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::TagCorrelatingPrefetcher;
/// use microlib_model::Mechanism;
///
/// let tcp = TagCorrelatingPrefetcher::new();
/// assert_eq!(tcp.name(), "TCP");
/// assert_eq!(tcp.request_queue_capacity(), 128);
/// let short = TagCorrelatingPrefetcher::with_queue_capacity(1);
/// assert_eq!(short.request_queue_capacity(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TagCorrelatingPrefetcher {
    /// Two most recent miss tags per (hashed) cache set.
    tht: Vec<[u64; 2]>,
    tht_sets: usize,
    pht: AssocTable<u64>,
    pht_entries: usize,
    queue_capacity: usize,
    /// Observed cache geometry (baseline L2).
    l2_sets: u64,
    line_bytes: u64,
    stats: MechanismStats,
}

impl Default for TagCorrelatingPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl TagCorrelatingPrefetcher {
    /// Table 3 configuration: THT 1024 sets direct-mapped storing 2
    /// previous tags; PHT 8 KB (256 sets, 8-way); queue 128.
    pub fn new() -> Self {
        Self::with_queue_capacity(128)
    }

    /// Same tables with a custom request-queue size (Fig 10).
    pub fn with_queue_capacity(queue_capacity: usize) -> Self {
        TagCorrelatingPrefetcher {
            tht: vec![[u64::MAX; 2]; 1024],
            tht_sets: 1024,
            pht: AssocTable::new(256, 8),
            pht_entries: 2048,
            queue_capacity,
            l2_sets: 4096,
            line_bytes: 64,
            stats: MechanismStats::default(),
        }
    }

    fn split(&self, line: Addr) -> (u64, u64) {
        let line_no = line.raw() / self.line_bytes;
        (line_no % self.l2_sets, line_no / self.l2_sets)
    }

    fn line_of(&self, set: u64, tag: u64) -> Addr {
        Addr::new((tag * self.l2_sets + set) * self.line_bytes)
    }

    fn pht_key(set: u64, t1: u64, t2: u64) -> u64 {
        set ^ t1.rotate_left(17) ^ t2.rotate_left(37)
    }
}

impl Mechanism for TagCorrelatingPrefetcher {
    fn name(&self) -> &str {
        "TCP"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L2Unified
    }

    fn warm_events_only(&self) -> bool {
        // pure prefetcher: no sidecar, no captures, no spills.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        if event.first_touch_of_prefetch {
            self.stats.prefetches_useful += 1;
        }
        if event.outcome != AccessOutcome::Miss {
            return;
        }
        let (set, tag) = self.split(event.line);
        let tht_idx = (set as usize) & (self.tht_sets - 1);
        let [t1, t2] = self.tht[tht_idx];
        self.stats.table_reads += 1;
        if t1 != u64::MAX && t2 != u64::MAX {
            // Learn: (t2, t1) -> tag.
            self.stats.table_writes += 1;
            self.pht.insert(Self::pht_key(set, t2, t1), tag);
            // Predict: (t1, tag) -> next tag.
            if let Some(&next_tag) = self.pht.get(&Self::pht_key(set, t1, tag)) {
                if next_tag != tag {
                    self.stats.prefetches_requested += 1;
                    prefetch.push(PrefetchRequest {
                        line: self.line_of(set, next_tag),
                        destination: PrefetchDestination::Cache,
                    });
                }
            }
        }
        self.tht[tht_idx] = [tag, t1];
    }

    fn hardware(&self) -> HardwareBudget {
        HardwareBudget::with_tables(
            "TCP",
            vec![
                SramTable {
                    name: "tag history table".to_owned(),
                    entries: self.tht_sets as u64,
                    entry_bits: 2 * 20,
                    assoc: 1,
                    ports: 1,
                },
                SramTable {
                    name: "pattern history table".to_owned(),
                    entries: self.pht_entries as u64,
                    entry_bits: 32,
                    assoc: 8,
                    ports: 1,
                },
            ],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        for e in &mut self.tht {
            *e = [u64::MAX; 2];
        }
        self.pht.clear();
        self.stats = MechanismStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::{AccessKind, Cycle};

    fn miss(line: u64) -> AccessEvent {
        AccessEvent {
            now: Cycle::ZERO,
            pc: Addr::new(0x40_0000),
            addr: Addr::new(line),
            line: Addr::new(line),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Miss,
            first_touch_of_prefetch: false,
            value: Some(0),
        }
    }

    /// Three lines in the same L2 set: set = (line/64) % 4096.
    const SET_STRIDE: u64 = 4096 * 64;

    #[test]
    fn repeating_tag_sequence_predicts() {
        let mut tcp = TagCorrelatingPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        let (a, b, c) = (SET_STRIDE, 2 * SET_STRIDE, 3 * SET_STRIDE);
        // Two passes of the miss pattern a, b, c in one set.
        for _ in 0..2 {
            tcp.on_access(&miss(a), &mut q);
            tcp.on_access(&miss(b), &mut q);
            tcp.on_access(&miss(c), &mut q);
        }
        q.clear();
        // Replaying a then b: the PHT predicts c.
        tcp.on_access(&miss(a), &mut q);
        tcp.on_access(&miss(b), &mut q);
        let targets: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(targets.contains(&c), "targets {targets:x?}");
    }

    #[test]
    fn needs_two_tags_of_history() {
        let mut tcp = TagCorrelatingPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        tcp.on_access(&miss(SET_STRIDE), &mut q);
        assert!(q.is_empty(), "one miss is not a pattern");
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut tcp = TagCorrelatingPrefetcher::new();
        let mut q = PrefetchQueue::new(128);
        // Train set 0.
        for _ in 0..2 {
            for t in 1..=3u64 {
                tcp.on_access(&miss(t * SET_STRIDE), &mut q);
            }
        }
        q.clear();
        // Misses in a different set (offset by one line) must not fire the
        // set-0 pattern.
        tcp.on_access(&miss(SET_STRIDE + 64), &mut q);
        tcp.on_access(&miss(2 * SET_STRIDE + 64), &mut q);
        assert!(q.is_empty());
    }

    #[test]
    fn pht_is_8kb_scale() {
        let hw = TagCorrelatingPrefetcher::new().hardware();
        assert!(hw.total_bytes() >= 8 * 1024, "got {}", hw.total_bytes());
        assert!(hw.total_bytes() <= 16 * 1024);
    }
}
