//! # microlib-mech
//!
//! The thirteen data-cache mechanism configurations of *MicroLib: A Case
//! for the Quantitative Comparison of Micro-Architecture Mechanisms*
//! (MICRO 2004), each implemented against the
//! [`Mechanism`](microlib_model::Mechanism) trait with the parameters of
//! the paper's Table 3 — plus the deliberately buggy "initial" DBCP
//! variant used by the reverse-engineering study (Fig 3).
//!
//! | Acronym | Type | Attach |
//! |---|---|---|
//! | TP | [`TaggedPrefetcher`] | L2 |
//! | VC | [`VictimCache`] | L1 |
//! | SP | [`StridePrefetcher`] | L2 |
//! | Markov | [`MarkovPrefetcher`] | L1 |
//! | FVC | [`FrequentValueCache`] | L1 |
//! | DBCP | [`DeadBlockPrefetcher`] | L1 |
//! | TKVC | [`TimekeepingVictimCache`] | L1 |
//! | TK | [`TimekeepingPrefetcher`] | L1 |
//! | CDP | [`ContentDirectedPrefetcher`] | L2 |
//! | CDPSP | [`CdpSp`] | L2 |
//! | TCP | [`TagCorrelatingPrefetcher`] | L2 |
//! | GHB | [`GlobalHistoryBuffer`] | L2 |
//!
//! # Examples
//!
//! ```
//! use microlib_mech::MechanismKind;
//!
//! for kind in MechanismKind::study_set() {
//!     let mech = kind.build();
//!     println!("{:10} adds {:>9} bytes of state", mech.name(), mech.hardware().total_bytes());
//! }
//! ```

#![warn(missing_docs)]

mod cdp;
mod cdpsp;
mod dbcp;
mod fvc;
mod ghb;
mod markov;
mod registry;
mod sp;
mod table;
mod tcp;
mod tk;
mod tkvc;
mod tp;
mod vc;

pub use cdp::ContentDirectedPrefetcher;
pub use cdpsp::CdpSp;
pub use dbcp::{DbcpVariant, DeadBlockPrefetcher};
pub use fvc::{FrequentValueCache, DEFAULT_FREQUENT_VALUES};
pub use ghb::GlobalHistoryBuffer;
pub use markov::MarkovPrefetcher;
pub use registry::{CatalogEntry, MechanismKind};
pub use sp::StridePrefetcher;
pub use table::AssocTable;
pub use tcp::TagCorrelatingPrefetcher;
pub use tk::{TimekeepingPrefetcher, DEATH_THRESHOLD, REFRESH_INTERVAL};
pub use tkvc::{TimekeepingVictimCache, REUSE_THRESHOLD};
pub use tp::TaggedPrefetcher;
pub use vc::VictimCache;
