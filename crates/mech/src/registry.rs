//! The MicroLib mechanism catalog: one entry per studied mechanism with the
//! bibliographic metadata of Table 2, a factory, and the prior-comparison
//! record of Table 5.
//!
//! This is the "open library" face of the project: experiments enumerate
//! [`MechanismKind::study_set`] instead of hard-coding mechanisms, and a
//! downstream user registers a new mechanism simply by implementing
//! [`Mechanism`] (see the `custom_mechanism` example).

use crate::{
    CdpSp, ContentDirectedPrefetcher, DbcpVariant, DeadBlockPrefetcher, FrequentValueCache,
    GlobalHistoryBuffer, MarkovPrefetcher, StridePrefetcher, TagCorrelatingPrefetcher,
    TaggedPrefetcher, TimekeepingPrefetcher, TimekeepingVictimCache, VictimCache,
};
use microlib_model::{
    AttachPoint, BaseMechanism, BinCodec, CodecError, Decoder, Encoder, Mechanism,
};

impl BinCodec for MechanismKind {
    fn encode(&self, e: &mut Encoder) {
        use MechanismKind::*;
        e.put_u8(match self {
            Base => 0,
            Tp => 1,
            Vc => 2,
            Sp => 3,
            Markov => 4,
            Fvc => 5,
            Dbcp => 6,
            DbcpInitial => 7,
            Tkvc => 8,
            Tk => 9,
            Cdp => 10,
            CdpSp => 11,
            Tcp => 12,
            Ghb => 13,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        use MechanismKind::*;
        Ok(match d.take_u8()? {
            0 => Base,
            1 => Tp,
            2 => Vc,
            3 => Sp,
            4 => Markov,
            5 => Fvc,
            6 => Dbcp,
            7 => DbcpInitial,
            8 => Tkvc,
            9 => Tk,
            10 => Cdp,
            11 => CdpSp,
            12 => Tcp,
            13 => Ghb,
            _ => return Err(CodecError::Invalid("mechanism kind")),
        })
    }
}

/// Every mechanism configuration of the study (Table 2), plus the buggy
/// initial DBCP used by Fig 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variant names are the paper's acronyms
pub enum MechanismKind {
    Base,
    Tp,
    Vc,
    Sp,
    Markov,
    Fvc,
    Dbcp,
    DbcpInitial,
    Tkvc,
    Tk,
    Cdp,
    CdpSp,
    Tcp,
    Ghb,
}

/// Catalog metadata for one mechanism (Table 2's columns).
#[derive(Clone, Copy, Debug)]
pub struct CatalogEntry {
    /// The paper's acronym.
    pub acronym: &'static str,
    /// Full mechanism name.
    pub full_name: &'static str,
    /// Publication year of the original proposal.
    pub year: u16,
    /// Original venue.
    pub venue: &'static str,
    /// Attach point ("(L1)" / "(L2)" in Table 2).
    pub attach: AttachPoint,
    /// One-line description from Table 2.
    pub description: &'static str,
}

impl MechanismKind {
    /// The 13 configurations ranked in the paper's comparison (Fig 4,
    /// Tables 6/7): Base plus the 12 mechanisms, in Table 6's column
    /// order.
    pub fn study_set() -> [MechanismKind; 13] {
        use MechanismKind::*;
        [
            Base, Tp, Vc, Sp, Markov, Fvc, Dbcp, Tkvc, Tk, Cdp, CdpSp, Tcp, Ghb,
        ]
    }

    /// Builds a fresh instance of the mechanism.
    ///
    /// # Examples
    ///
    /// ```
    /// use microlib_mech::MechanismKind;
    ///
    /// let ghb = MechanismKind::Ghb.build();
    /// assert_eq!(ghb.name(), "GHB");
    /// ```
    pub fn build(self) -> Box<dyn Mechanism> {
        match self {
            MechanismKind::Base => Box::new(BaseMechanism::new()),
            MechanismKind::Tp => Box::new(TaggedPrefetcher::new()),
            MechanismKind::Vc => Box::new(VictimCache::new()),
            MechanismKind::Sp => Box::new(StridePrefetcher::new()),
            MechanismKind::Markov => Box::new(MarkovPrefetcher::new()),
            MechanismKind::Fvc => Box::new(FrequentValueCache::new()),
            MechanismKind::Dbcp => Box::new(DeadBlockPrefetcher::new(DbcpVariant::Fixed)),
            MechanismKind::DbcpInitial => Box::new(DeadBlockPrefetcher::new(DbcpVariant::Initial)),
            MechanismKind::Tkvc => Box::new(TimekeepingVictimCache::new()),
            MechanismKind::Tk => Box::new(TimekeepingPrefetcher::new()),
            MechanismKind::Cdp => Box::new(ContentDirectedPrefetcher::new()),
            MechanismKind::CdpSp => Box::new(CdpSp::new()),
            MechanismKind::Tcp => Box::new(TagCorrelatingPrefetcher::new()),
            MechanismKind::Ghb => Box::new(GlobalHistoryBuffer::new()),
        }
    }

    /// Catalog metadata (Table 2).
    pub fn catalog(self) -> CatalogEntry {
        use AttachPoint::{L1Data, L2Unified};
        match self {
            MechanismKind::Base => CatalogEntry {
                acronym: "Base",
                full_name: "Baseline hierarchy",
                year: 2004,
                venue: "—",
                attach: L1Data,
                description: "Table 1 hierarchy with no mechanism attached.",
            },
            MechanismKind::Tp => CatalogEntry {
                acronym: "TP",
                full_name: "Tagged Prefetching",
                year: 1982,
                venue: "Computing Surveys",
                attach: L2Unified,
                description: "Prefetches next cache line on a miss, or on a hit on a prefetched line.",
            },
            MechanismKind::Vc => CatalogEntry {
                acronym: "VC",
                full_name: "Victim Cache",
                year: 1990,
                venue: "DEC WRL TR",
                attach: L1Data,
                description: "Small fully associative cache for evicted lines; limits conflict misses.",
            },
            MechanismKind::Sp => CatalogEntry {
                acronym: "SP",
                full_name: "Stride Prefetching",
                year: 1992,
                venue: "MICRO",
                attach: L2Unified,
                description: "Detects per-load access strides and prefetches accordingly.",
            },
            MechanismKind::Markov => CatalogEntry {
                acronym: "Markov",
                full_name: "Markov Prefetcher",
                year: 1997,
                venue: "ISCA",
                attach: L1Data,
                description: "Records probable miss-address sequences for target address prediction.",
            },
            MechanismKind::Fvc => CatalogEntry {
                acronym: "FVC",
                full_name: "Frequent Value Cache",
                year: 2000,
                venue: "ASPLOS",
                attach: L1Data,
                description: "Victim-cache-like store for frequently used values in compressed form.",
            },
            MechanismKind::Dbcp => CatalogEntry {
                acronym: "DBCP",
                full_name: "Dead-Block Correlating Prefetcher",
                year: 2001,
                venue: "ISCA",
                attach: L1Data,
                description: "Records access patterns finishing with a miss; prefetches on recurrence.",
            },
            MechanismKind::DbcpInitial => CatalogEntry {
                acronym: "DBCP-initial",
                full_name: "DBCP (initial reverse-engineered implementation)",
                year: 2001,
                venue: "ISCA",
                attach: L1Data,
                description: "The first-pass implementation with the four documented reverse-engineering bugs (Fig 3).",
            },
            MechanismKind::Tkvc => CatalogEntry {
                acronym: "TKVC",
                full_name: "Timekeeping Victim Cache",
                year: 2002,
                venue: "ISCA",
                attach: L1Data,
                description: "Uses dead-time prediction to filter victim-cache insertion.",
            },
            MechanismKind::Tk => CatalogEntry {
                acronym: "TK",
                full_name: "Timekeeping Prefetcher",
                year: 2002,
                venue: "ISCA",
                attach: L1Data,
                description: "Predicts line death and prefetches the recorded replacement in time.",
            },
            MechanismKind::Cdp => CatalogEntry {
                acronym: "CDP",
                full_name: "Content-Directed Data Prefetching",
                year: 2002,
                venue: "ASPLOS",
                attach: L2Unified,
                description: "Scans fetched lines for addresses and prefetches them immediately.",
            },
            MechanismKind::CdpSp => CatalogEntry {
                acronym: "CDPSP",
                full_name: "CDP + SP",
                year: 2002,
                venue: "ASPLOS",
                attach: L2Unified,
                description: "The combination of CDP and SP proposed in the CDP article.",
            },
            MechanismKind::Tcp => CatalogEntry {
                acronym: "TCP",
                full_name: "Tag Correlating Prefetching",
                year: 2003,
                venue: "HPCA",
                attach: L2Unified,
                description: "Records per-set tag miss patterns and prefetches the likely next tag.",
            },
            MechanismKind::Ghb => CatalogEntry {
                acronym: "GHB",
                full_name: "Global History Buffer",
                year: 2004,
                venue: "HPCA",
                attach: L2Unified,
                description: "Linked miss-history buffer; prefetches recurring stride/delta patterns.",
            },
        }
    }

    /// Which previously published mechanisms the original article compared
    /// against (Table 5).
    pub fn compared_against(self) -> &'static [MechanismKind] {
        use MechanismKind::*;
        match self {
            Dbcp | DbcpInitial => &[Markov],
            Tk => &[Dbcp],
            Tcp => &[Dbcp],
            Tkvc => &[Vc],
            Cdp | CdpSp => &[Sp],
            Ghb => &[Sp],
            _ => &[],
        }
    }

    /// Looks a mechanism up by its paper acronym (case-insensitive).
    ///
    /// # Examples
    ///
    /// ```
    /// use microlib_mech::MechanismKind;
    ///
    /// assert_eq!(MechanismKind::by_acronym("ghb"), Some(MechanismKind::Ghb));
    /// assert_eq!(MechanismKind::by_acronym("nope"), None);
    /// ```
    pub fn by_acronym(acronym: &str) -> Option<MechanismKind> {
        use MechanismKind::*;
        let all = [
            Base,
            Tp,
            Vc,
            Sp,
            Markov,
            Fvc,
            Dbcp,
            DbcpInitial,
            Tkvc,
            Tk,
            Cdp,
            CdpSp,
            Tcp,
            Ghb,
        ];
        all.into_iter()
            .find(|k| k.catalog().acronym.eq_ignore_ascii_case(acronym))
    }
}

impl std::fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.catalog().acronym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_set_is_13_configurations() {
        let set = MechanismKind::study_set();
        assert_eq!(set.len(), 13);
        assert!(!set.contains(&MechanismKind::DbcpInitial));
        let mut names: Vec<_> = set.iter().map(|k| k.catalog().acronym).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn factories_match_catalog() {
        for kind in MechanismKind::study_set() {
            let built = kind.build();
            assert_eq!(built.name(), kind.catalog().acronym, "{kind:?}");
            assert_eq!(built.attach_point(), kind.catalog().attach, "{kind:?}");
        }
    }

    #[test]
    fn years_reflect_publication_history() {
        assert_eq!(MechanismKind::Tp.catalog().year, 1982);
        assert_eq!(MechanismKind::Ghb.catalog().year, 2004);
        // The paper's "are we making progress" irregularity: the best
        // mechanism (GHB) descends from the second best (SP, 1992 MICRO
        // formulation of a 1982 idea).
        assert!(MechanismKind::Sp.catalog().year < MechanismKind::Tk.catalog().year);
    }

    #[test]
    fn table5_prior_comparisons() {
        use MechanismKind::*;
        assert_eq!(Dbcp.compared_against(), &[Markov]);
        assert_eq!(Tk.compared_against(), &[Dbcp]);
        assert_eq!(Tcp.compared_against(), &[Dbcp]);
        assert_eq!(Tkvc.compared_against(), &[Vc]);
        assert_eq!(Ghb.compared_against(), &[Sp]);
        assert!(Tp.compared_against().is_empty());
    }

    #[test]
    fn acronym_round_trip() {
        for kind in MechanismKind::study_set() {
            let acro = kind.catalog().acronym;
            assert_eq!(MechanismKind::by_acronym(acro), Some(kind));
        }
    }

    #[test]
    fn display_uses_acronym() {
        assert_eq!(MechanismKind::Markov.to_string(), "Markov");
    }
}
