//! Stride Prefetching (Chen & Baer, MICRO 1992; evaluated at the L2 as in
//! Nesbit & Smith's baseline) — Table 2's `SP`.
//!
//! A per-PC reference-prediction table runs the classic
//! initial → transient → steady finite-state machine; once a load's stride
//! is steady, the next line at `addr + stride` is prefetched. Table 3:
//! 512 PC entries, request queue size 1.

use crate::table::AssocTable;
use microlib_model::{
    AccessEvent, AccessOutcome, AttachPoint, HardwareBudget, Mechanism, MechanismStats,
    PrefetchDestination, PrefetchQueue, PrefetchRequest, SramTable,
};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StrideState {
    Initial,
    Transient,
    Steady,
}

#[derive(Clone, Copy, Debug)]
struct StrideEntry {
    last_addr: u64,
    stride: i64,
    state: StrideState,
}

/// Per-PC stride prefetcher.
///
/// # Examples
///
/// ```
/// use microlib_mech::StridePrefetcher;
/// use microlib_model::Mechanism;
///
/// let sp = StridePrefetcher::new();
/// assert_eq!(sp.name(), "SP");
/// assert_eq!(sp.request_queue_capacity(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: AssocTable<StrideEntry>,
    pc_entries: usize,
    line_bytes: u64,
    degree: u32,
    stats: MechanismStats,
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl StridePrefetcher {
    /// Table 3 configuration: 512 PC entries.
    pub fn new() -> Self {
        Self::with_entries(512)
    }

    /// Custom table size (sensitivity studies).
    pub fn with_entries(pc_entries: usize) -> Self {
        StridePrefetcher {
            table: AssocTable::new(pc_entries.next_power_of_two(), 1),
            pc_entries,
            line_bytes: 64,
            degree: 1,
            stats: MechanismStats::default(),
        }
    }
}

impl Mechanism for StridePrefetcher {
    fn name(&self) -> &str {
        "SP"
    }

    fn attach_point(&self) -> AttachPoint {
        AttachPoint::L2Unified
    }

    fn warm_events_only(&self) -> bool {
        // pure prefetcher: no sidecar, no captures, no spills.
        true
    }

    fn request_queue_capacity(&self) -> usize {
        1 // Table 3: Stride Prefetching, request queue size 1
    }

    fn on_access(&mut self, event: &AccessEvent, prefetch: &mut PrefetchQueue) {
        if event.first_touch_of_prefetch {
            self.stats.prefetches_useful += 1;
        }
        // The reference prediction table observes the load's full reference
        // stream as seen by this cache level (hits included) — Chen &
        // Baer's RPT semantics.
        if event.pc.is_null() {
            return;
        }
        let _ = AccessOutcome::Miss;
        self.stats.table_reads += 1;
        let addr = event.addr.raw();
        let key = event.pc.raw();
        let entry = match self.table.get_mut(&key) {
            Some(e) => e,
            None => {
                self.stats.table_writes += 1;
                self.table.insert(
                    key,
                    StrideEntry {
                        last_addr: addr,
                        stride: 0,
                        state: StrideState::Initial,
                    },
                );
                return;
            }
        };
        let observed = addr as i64 - entry.last_addr as i64;
        entry.last_addr = addr;
        self.stats.table_writes += 1;
        match entry.state {
            StrideState::Initial => {
                entry.stride = observed;
                entry.state = StrideState::Transient;
            }
            StrideState::Transient => {
                if observed == entry.stride && observed != 0 {
                    entry.state = StrideState::Steady;
                } else {
                    entry.stride = observed;
                }
            }
            StrideState::Steady => {
                if observed != entry.stride {
                    entry.stride = observed;
                    entry.state = StrideState::Transient;
                }
            }
        }
        if entry.state == StrideState::Steady {
            // Prefetch along the stride with enough lookahead to land in
            // the *next* cache line even for sub-line strides (the L2
            // adaptation of the reference prediction table).
            let stride = entry.stride;
            let line = self.line_bytes as i64;
            let effective = if stride.abs() < line {
                line * stride.signum()
            } else {
                stride
            };
            for k in 1..=self.degree as i64 {
                let target = addr as i64 + effective * k;
                if target <= 0 {
                    break;
                }
                self.stats.prefetches_requested += 1;
                prefetch.push(PrefetchRequest {
                    line: microlib_model::Addr::new(target as u64 & !(self.line_bytes - 1)),
                    destination: PrefetchDestination::Cache,
                });
            }
        }
    }

    fn hardware(&self) -> HardwareBudget {
        // PC tag + last address (32b truncated) + stride (16b) + state (2b).
        HardwareBudget::with_tables(
            "SP",
            vec![SramTable {
                name: "reference prediction table".to_owned(),
                entries: self.pc_entries as u64,
                entry_bits: 20 + 32 + 16 + 2,
                assoc: 1,
                ports: 1,
            }],
        )
    }

    fn stats(&self) -> MechanismStats {
        self.stats
    }

    fn reset(&mut self) {
        self.table.clear();
        self.stats = MechanismStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microlib_model::{AccessKind, Addr, Cycle};

    fn miss(pc: u64, addr: u64) -> AccessEvent {
        AccessEvent {
            now: Cycle::ZERO,
            pc: Addr::new(pc),
            addr: Addr::new(addr),
            line: Addr::new(addr & !63),
            kind: AccessKind::Load,
            outcome: AccessOutcome::Miss,
            first_touch_of_prefetch: false,
            value: Some(0),
        }
    }

    #[test]
    fn steady_stride_prefetches() {
        let mut sp = StridePrefetcher::new();
        let mut q = PrefetchQueue::new(4);
        // Three accesses with stride 256 train the FSM...
        sp.on_access(&miss(0x400, 0x10_000), &mut q);
        sp.on_access(&miss(0x400, 0x10_100), &mut q);
        sp.on_access(&miss(0x400, 0x10_200), &mut q);
        // ...initial -> transient -> steady: the third access prefetches.
        let req = q.pop().expect("steady stride must prefetch");
        assert_eq!(req.line, Addr::new(0x10_300));
    }

    #[test]
    fn irregular_addresses_stay_quiet() {
        let mut sp = StridePrefetcher::new();
        let mut q = PrefetchQueue::new(4);
        for addr in [0x1000, 0x9340, 0x2468, 0x7771 & !7] {
            sp.on_access(&miss(0x500, addr), &mut q);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn stride_change_retrains() {
        let mut sp = StridePrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        for i in 0..3u64 {
            sp.on_access(&miss(0x600, 0x2_0000 + i * 64), &mut q);
        }
        q.clear();
        // Break the pattern; no prefetch until retrained.
        sp.on_access(&miss(0x600, 0x8_0000), &mut q);
        assert!(q.is_empty());
        sp.on_access(&miss(0x600, 0x8_0400), &mut q);
        assert!(q.is_empty(), "transient again");
        sp.on_access(&miss(0x600, 0x8_0800), &mut q);
        assert_eq!(q.pop().unwrap().line, Addr::new(0x8_0C00));
    }

    #[test]
    fn distinct_pcs_track_independently() {
        let mut sp = StridePrefetcher::new();
        let mut q = PrefetchQueue::new(16);
        for i in 0..4u64 {
            sp.on_access(&miss(0x700, 0x3_0000 + i * 128), &mut q);
            sp.on_access(&miss(0x704, 0x9_0000 + i * 512), &mut q);
        }
        let lines: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|r| r.line.raw())
            .collect();
        assert!(lines.contains(&((0x3_0000 + 4 * 128) & !63)));
        assert!(lines.contains(&((0x9_0000 + 4 * 512) & !63)));
    }

    #[test]
    fn hits_also_train_the_rpt() {
        // The reference prediction table observes the full reference
        // stream of this cache level, hits included.
        let mut sp = StridePrefetcher::new();
        let mut q = PrefetchQueue::new(4);
        let mut ev = miss(0x800, 0x4_0000);
        ev.outcome = AccessOutcome::Hit;
        sp.on_access(&ev, &mut q);
        assert_eq!(sp.stats().table_reads, 1);
        assert!(q.is_empty(), "a single access never prefetches");
    }

    #[test]
    fn hardware_is_small() {
        let hw = StridePrefetcher::new().hardware();
        assert!(hw.total_bytes() < 8 * 1024, "SP is a lightweight table");
    }
}
