//! Criterion benches for the per-event overhead of every mechanism's
//! hooks — the cost a MicroLib user pays for plugging a mechanism into
//! their own simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use microlib_mech::MechanismKind;
use microlib_model::{
    AccessEvent, AccessKind, AccessOutcome, Addr, Cycle, LineData, PrefetchQueue, RefillCause,
    RefillEvent,
};

fn access_event(i: u64) -> AccessEvent {
    AccessEvent {
        now: Cycle::new(i),
        pc: Addr::new(0x40_0000 + (i % 64) * 4),
        addr: Addr::new(0x10_0000 + i * 64),
        line: Addr::new(0x10_0000 + i * 64),
        kind: AccessKind::Load,
        outcome: if i.is_multiple_of(3) {
            AccessOutcome::Miss
        } else {
            AccessOutcome::Hit
        },
        first_touch_of_prefetch: false,
        value: Some(i),
    }
}

fn on_access_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism_on_access");
    group.throughput(Throughput::Elements(1_000));
    for kind in MechanismKind::study_set() {
        group.bench_function(kind.to_string(), |b| {
            let mut mech = kind.build();
            let mut queue = PrefetchQueue::new(mech.request_queue_capacity());
            b.iter(|| {
                for i in 0..1_000u64 {
                    mech.on_access(&access_event(i), &mut queue);
                    queue.clear();
                }
            });
        });
    }
    group.finish();
}

fn on_refill_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism_on_refill");
    group.throughput(Throughput::Elements(1_000));
    for kind in [MechanismKind::Cdp, MechanismKind::Tk, MechanismKind::Markov] {
        group.bench_function(kind.to_string(), |b| {
            let mut mech = kind.build();
            let mut queue = PrefetchQueue::new(mech.request_queue_capacity());
            let data = LineData::from_words(&[0x4000_0040, 0, 1, 2, 3, 4, 5, 6]);
            b.iter(|| {
                for i in 0..1_000u64 {
                    let ev = RefillEvent {
                        now: Cycle::new(i),
                        line: Addr::new(0x4000_0000 + i * 64),
                        data,
                        cause: RefillCause::Demand,
                    };
                    mech.on_refill(&ev, &mut queue);
                    queue.clear();
                }
                black_box(mech.stats())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, on_access_overhead, on_refill_overhead);
criterion_main!(benches);
