//! Criterion throughput benches for the simulation substrates: cache
//! array, MSHR file, SDRAM controller, workload generation and the
//! end-to-end simulator. These measure *simulator* performance (how fast
//! the reproduction runs), complementing the experiment binaries that
//! regenerate the paper's figures.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use microlib::{run_one, SimOptions};
use microlib_mech::MechanismKind;
use microlib_mem::{CacheArray, MemToken, MemorySystem, MshrFile, MshrTarget, Sdram};
use microlib_model::{Addr, CacheConfig, Cycle, LineData, SdramConfig, SystemConfig};
use microlib_trace::{benchmarks, TraceBuffer, TraceWindow, Workload};
use std::sync::Arc;

fn cache_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_array");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("l1_lookup_hit_1k", |b| {
        let mut cache = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
        for i in 0..1024u64 {
            cache.fill(Addr::new(i * 32), LineData::zeroed(4), false, false);
        }
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.lookup(Addr::new(i * 32)));
            }
        });
    });
    group.bench_function("l1_fill_evict_1k", |b| {
        let mut cache = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                next = next.wrapping_add(32);
                if !cache.contains(Addr::new(next)) {
                    black_box(cache.fill(Addr::new(next), LineData::zeroed(4), false, false));
                }
            }
        });
    });
    group.finish();
}

fn mshr(c: &mut Criterion) {
    c.bench_function("mshr_insert_complete_x8", |b| {
        let mut m = MshrFile::new(8, 4);
        m.set_model_busy_cycle(false);
        let t = |a: u64| MshrTarget {
            req: None,
            addr: Addr::new(a),
            is_store: false,
            value: 0,
        };
        b.iter(|| {
            for i in 0..8u64 {
                black_box(m.try_insert(Addr::new(i * 64), t(i * 64), false, false, Cycle::ZERO));
            }
            for i in 0..8u64 {
                black_box(m.complete(Addr::new(i * 64)));
            }
        });
    });
}

fn sdram(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdram");
    group.throughput(Throughput::Elements(32));
    group.bench_function("row_hit_stream_32", |b| {
        b.iter(|| {
            let mut mem = Sdram::new(SdramConfig::baseline());
            for i in 0..32u64 {
                mem.try_push(MemToken(i), Addr::new(i * 64), false, Cycle::new(i));
            }
            let mut done = 0;
            let mut now = 0;
            while done < 32 {
                done += mem.tick(Cycle::new(now)).len();
                now += 1;
            }
            black_box(now)
        });
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(10_000));
    for name in ["swim", "mcf", "gzip"] {
        group.bench_function(format!("{name}_gen_10k"), |b| {
            let w = Workload::new(benchmarks::by_name(name).unwrap(), 1);
            b.iter(|| {
                let mut n = 0u64;
                for inst in w.stream().take(10_000) {
                    n = n.wrapping_add(inst.pc.raw());
                }
                black_box(n)
            });
        });
        group.bench_function(format!("{name}_replay_10k"), |b| {
            let w = Workload::new(benchmarks::by_name(name).unwrap(), 1);
            let buf = std::sync::Arc::new(microlib_trace::TraceBuffer::capture(&w, 10_000));
            b.iter(|| {
                let mut n = 0u64;
                for inst in microlib_trace::TraceBuffer::replay(&buf) {
                    n = n.wrapping_add(inst.pc.raw());
                }
                black_box(n)
            });
        });
    }
    group.finish();
}

fn warmup(c: &mut Criterion) {
    let mut group = c.benchmark_group("warmup");
    group.sample_size(20);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("warm_inst_10k", |b| {
        let cfg: Arc<SystemConfig> = Arc::new(SystemConfig::baseline());
        let workload = Workload::new(benchmarks::by_name("swim").unwrap(), 1);
        let buf = Arc::new(TraceBuffer::capture(&workload, 10_000));
        b.iter(|| {
            let mut mem = MemorySystem::new(Arc::clone(&cfg), Vec::new()).unwrap();
            workload.initialize(mem.functional_mut());
            for inst in TraceBuffer::replay(&buf) {
                mem.warm_inst(inst.pc, inst.warm_mem_ref());
            }
            black_box(mem.finish_warmup())
        });
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(5_000));
    for kind in [MechanismKind::Base, MechanismKind::Ghb] {
        group.bench_function(format!("swim_{kind}_5k_insts"), |b| {
            let cfg = SystemConfig::baseline();
            let opts = SimOptions {
                window: TraceWindow::new(2_000, 5_000),
                ..SimOptions::default()
            };
            b.iter(|| black_box(run_one(&cfg, kind, "swim", &opts).unwrap().perf.cycles));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    cache_array,
    mshr,
    sdram,
    workload_generation,
    warmup,
    end_to_end
);
criterion_main!(benches);
