//! End-to-end tests of `run_all`'s sharded, fault-tolerant execution:
//! coordinator + worker processes over one shared cache, crash recovery
//! after an injected worker abort, stall detection via frozen lease
//! heartbeats, and poison-cell quarantine — each asserting the merged
//! `results/` stay byte-identical to a single-process run.
//!
//! Windows are kept tiny (`MICROLIB_SKIP=50 MICROLIB_SIM=100`) because
//! these tests run the *debug* binary; the selected experiments
//! (`fig04_speedup` = the standard campaign, `tab01_config` = no
//! simulation) still cover the full claim/steal/journal machinery.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("microlib-shard-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `run_all` invocation with a hermetic MICROLIB_* environment and the
/// tiny test window.
fn run_all() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_run_all"));
    for stale in [
        "MICROLIB_CACHE_DIR",
        "MICROLIB_SAMPLED",
        "MICROLIB_SHARD",
        "MICROLIB_LEASE",
        "MICROLIB_WORKER_ID",
        "MICROLIB_FAULT",
        "MICROLIB_FAULT_WORKER",
        "MICROLIB_FAULT_DIR",
        "MICROLIB_ARTIFACTS",
    ] {
        c.env_remove(stale);
    }
    c.env("MICROLIB_SKIP", "50")
        .env("MICROLIB_SIM", "100")
        .env("MICROLIB_THREADS", "2")
        // Short coordination timings so recovery paths run in test time.
        .env("MICROLIB_LEASE_TIMEOUT_MS", "1000")
        .env("MICROLIB_STEAL_GRACE_MS", "200")
        .env("MICROLIB_RETRY_BACKOFF_MS", "50");
    c
}

fn text(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({:?}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        text(&out.stdout),
        text(&out.stderr),
    );
}

/// Byte-compares one produced results file across two output dirs.
fn assert_identical(a: &Path, b: &Path, name: &str) {
    let fa = fs::read(a.join(format!("{name}.txt"))).unwrap_or_else(|e| {
        panic!("missing {name}.txt under {}: {e}", a.display());
    });
    let fb = fs::read(b.join(format!("{name}.txt"))).unwrap_or_else(|e| {
        panic!("missing {name}.txt under {}: {e}", b.display());
    });
    assert!(
        fa == fb,
        "{name}.txt differs between {} and {}",
        a.display(),
        b.display()
    );
}

const SELECTED: &str = "fig04_speedup,tab01_config";
const FILES: [&str; 2] = ["fig04_speedup", "tab01_config"];

/// The single-process reference battery (cached), shared by the tests
/// that need a golden to compare against.
fn reference(root: &Path) -> PathBuf {
    let out = root.join("ref-results");
    let cache = root.join("ref-cache");
    let run = run_all()
        .args(["--only", SELECTED, "--cache-dir"])
        .arg(&cache)
        .arg("--out-dir")
        .arg(&out)
        .output()
        .unwrap();
    assert_success(&run, "single-process reference battery");
    out
}

#[test]
fn sharded_battery_is_byte_identical_to_single_process() {
    let root = tmp_dir("identity");
    let golden = reference(&root);

    // Cache-off single process: same bytes (the memoization layers never
    // leak into the captured outputs).
    let nocache_out = root.join("nocache-results");
    let run = run_all()
        .args(["--only", SELECTED, "--no-cache", "--out-dir"])
        .arg(&nocache_out)
        .output()
        .unwrap();
    assert_success(&run, "cache-off battery");
    for name in FILES {
        assert_identical(&golden, &nocache_out, name);
    }

    // Four coordinated workers over a fresh cache, with the sharded
    // merge verified against the single-process golden (`--verify-golden`
    // under sharded mode — the coordinator runs the gate on the merged
    // outputs).
    let shard_out = root.join("shard-results");
    let run = run_all()
        .args(["--only", SELECTED, "--workers", "4", "--cache-dir"])
        .arg(root.join("shard-cache"))
        .arg("--out-dir")
        .arg(&shard_out)
        .arg("--verify-golden")
        .arg(&golden)
        .output()
        .unwrap();
    assert_success(&run, "4-worker battery");
    let stdout = text(&run.stdout);
    assert!(
        stdout.contains("golden verification passed"),
        "coordinator must run the golden gate on the merged outputs:\n{stdout}"
    );
    for name in FILES {
        assert_identical(&golden, &shard_out, name);
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn manual_shards_share_one_cache_and_a_rerun_recomputes_nothing() {
    let root = tmp_dir("manual-shards");
    let golden = reference(&root);
    let cache = root.join("cache");

    // Two concurrent worker-style processes, each preferring one shard of
    // the same cache.
    let mut children: Vec<std::process::Child> = (0..2)
        .map(|i| {
            run_all()
                .args(["--only", SELECTED, "--shard"])
                .arg(format!("{i}/2"))
                .arg("--cache-dir")
                .arg(&cache)
                .arg("--out-dir")
                .arg(root.join(format!("shard{i}")))
                .env("MICROLIB_WORKER_ID", i.to_string())
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .unwrap()
        })
        .collect();
    for child in &mut children {
        assert!(child.wait().unwrap().success(), "shard process failed");
    }
    for name in FILES {
        assert_identical(&golden, &root.join("shard0"), name);
        assert_identical(&golden, &root.join("shard1"), name);
    }

    // A follow-up plain run over the same cache is served entirely from
    // the journal: the workers released their leases on clean exit, so
    // nothing waits and nothing recomputes.
    let rerun_out = root.join("rerun");
    let rerun = run_all()
        .args(["--only", SELECTED, "--cache-dir"])
        .arg(&cache)
        .arg("--out-dir")
        .arg(&rerun_out)
        .output()
        .unwrap();
    assert_success(&rerun, "warm rerun");
    let stderr = text(&rerun.stderr);
    assert!(
        stderr.contains("recomputed 0 cells"),
        "warm rerun must be fully journal-served:\n{stderr}"
    );
    for name in FILES {
        assert_identical(&golden, &rerun_out, name);
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn killed_worker_is_respawned_and_only_orphans_recompute() {
    let root = tmp_dir("kill-recovery");
    let golden = reference(&root);

    // Worker 0 aborts (SIGABRT — a SIGKILL-class death) at its second
    // computed cell, once globally: the respawned incarnation must not
    // re-crash, and the battery must still merge byte-identical.
    let out = root.join("results");
    let run = run_all()
        .args(["--only", SELECTED, "--workers", "2", "--cache-dir"])
        .arg(root.join("cache"))
        .arg("--out-dir")
        .arg(&out)
        .env("MICROLIB_FAULT", "cell:2:abort")
        .env("MICROLIB_FAULT_WORKER", "0")
        .output()
        .unwrap();
    assert_success(&run, "battery with injected worker kill");
    let stdout = text(&run.stdout);
    assert!(
        stdout.contains("crash recovery: recomputed only orphaned cells"),
        "the coordinator must report the recovery:\n{stdout}\n{}",
        text(&run.stderr)
    );
    for name in FILES {
        assert_identical(&golden, &out, name);
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn stalled_worker_is_killed_via_lease_expiry_and_battery_recovers() {
    let root = tmp_dir("stall");
    let golden = reference(&root);

    // Worker 0 freezes (heartbeats stop, the claimed cell never ends).
    // The stall outlives the whole test unless the coordinator notices
    // the silent lease and kills the worker.
    let out = root.join("results");
    let run = run_all()
        .args(["--only", SELECTED, "--workers", "2", "--cache-dir"])
        .arg(root.join("cache"))
        .arg("--out-dir")
        .arg(&out)
        .env("MICROLIB_FAULT", "cell:1:stall")
        .env("MICROLIB_FAULT_WORKER", "0")
        .env("MICROLIB_FAULT_STALL_MS", "120000")
        .output()
        .unwrap();
    assert_success(&run, "battery with stalled worker");
    let stdout = text(&run.stdout);
    assert!(
        stdout.contains("stale-lease kill"),
        "the stall must be detected through lease expiry:\n{stdout}\n{}",
        text(&run.stderr)
    );
    for name in FILES {
        assert_identical(&golden, &out, name);
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn poison_cell_quarantines_while_the_rest_of_the_battery_completes() {
    let root = tmp_dir("poison");
    let golden = reference(&root);

    // Every claim of swim x Base aborts its worker ('*' = every process,
    // every time). After two crashed claims the cell must be quarantined,
    // every *other* cell must complete, and the run must fail loudly.
    let out = root.join("results");
    let run = run_all()
        .args(["--only", SELECTED, "--workers", "2", "--cache-dir"])
        .arg(root.join("cache"))
        .arg("--out-dir")
        .arg(&out)
        .env("MICROLIB_FAULT", "cell@swim+Base:*:abort")
        .env("MICROLIB_CELL_RETRIES", "2")
        .output()
        .unwrap();
    assert!(
        !run.status.success(),
        "a quarantined cell must fail the battery:\n{}",
        text(&run.stdout)
    );
    let stderr = text(&run.stderr);
    assert!(
        stderr.contains("QUARANTINED CELLS (1)"),
        "the final report lists the poison cell:\n{stderr}"
    );
    assert!(
        stderr.contains("swim x Base") && stderr.contains("repro:"),
        "the report names the cell with a repro command:\n{stderr}"
    );
    assert!(
        stderr.contains("MICROLIB_SKIP=50 MICROLIB_SIM=100"),
        "the repro pins the exact window:\n{stderr}"
    );
    // tab01_config simulates nothing — it must have survived untouched.
    assert_identical(&golden, &out, "tab01_config");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn usage_errors_exit_2() {
    let cases: &[&[&str]] = &[
        &["--workers", "2", "--no-cache"],
        &["--shard", "1/4", "--no-cache"],
        &["--shard", "0/2", "--workers", "2"],
        &["--shard", "9/4"],
        &["--workers", "0"],
    ];
    for args in cases {
        let out = run_all().args(*args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "run_all {args:?} must be a usage error:\n{}",
            text(&out.stderr)
        );
    }
}
