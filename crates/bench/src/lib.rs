//! # microlib-bench
//!
//! Experiment harnesses that regenerate every figure and table of the
//! MicroLib paper. Each `fig*`/`tab*` binary prints the same rows/series
//! the paper reports; `run_all` executes the full battery. See DESIGN.md §6
//! for the experiment index and EXPERIMENTS.md for measured-vs-paper notes.
//!
//! All binaries accept the environment overrides:
//!
//! - `MICROLIB_SKIP` — warmed (functionally simulated) instructions
//!   (default 150 000);
//! - `MICROLIB_SIM` — detailed-simulated instructions (default 100 000);
//! - `MICROLIB_SEED` — workload seed (default `0xC0FFEE`);
//! - `MICROLIB_THREADS` — worker threads (default: all cores).

#![warn(missing_docs)]

use microlib::{ExperimentConfig, SimOptions};
use microlib_trace::TraceWindow;

/// Environment-configurable trace window shared by all experiments.
pub fn std_window() -> TraceWindow {
    let skip = env_u64("MICROLIB_SKIP", 150_000);
    let simulate = env_u64("MICROLIB_SIM", 100_000);
    TraceWindow::new(skip, simulate)
}

/// The longer "article setup" window for validation experiments (the
/// paper's "skip 1 billion, simulate 2 billion", scaled).
pub fn article_window() -> TraceWindow {
    let w = std_window();
    TraceWindow::new(w.skip / 2, w.simulate * 2)
}

/// Environment-configurable seed.
pub fn std_seed() -> u64 {
    env_u64("MICROLIB_SEED", 0xC0FFEE)
}

/// Environment-configurable thread count (0 = all cores).
pub fn std_threads() -> usize {
    env_u64("MICROLIB_THREADS", 0) as usize
}

/// Standard [`SimOptions`] for single runs.
pub fn std_options() -> SimOptions {
    SimOptions {
        seed: std_seed(),
        window: std_window(),
        ..SimOptions::default()
    }
}

/// The paper's main sweep configuration with environment overrides applied.
pub fn std_experiment() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_baseline(std_window());
    cfg.seed = std_seed();
    cfg.threads = std_threads();
    cfg
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints the standard experiment header.
pub fn header(id: &str, paper_ref: &str, what: &str) {
    println!("==============================================================");
    println!("{id} — {paper_ref}");
    println!("{what}");
    println!("window: {} (seed {:#x})", std_window(), std_seed());
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let w = std_window();
        assert!(w.simulate > 0);
        assert!(std_options().window.simulate > 0);
        let cfg = std_experiment();
        assert_eq!(cfg.benchmarks.len(), 26);
        assert_eq!(cfg.mechanisms.len(), 13);
    }

    #[test]
    fn article_window_is_longer() {
        assert!(article_window().simulate > std_window().simulate);
    }
}
