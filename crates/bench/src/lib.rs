//! # microlib-bench
//!
//! Experiment harnesses that regenerate every figure and table of the
//! MicroLib paper. Each `fig*`/`tab*` binary prints the same rows/series
//! the paper reports; `run_all` executes the full battery **in process**,
//! sharing one standard campaign across every experiment that needs it.
//! See DESIGN.md §6 for the experiment index and EXPERIMENTS.md for
//! measured-vs-paper notes.
//!
//! All binaries accept the environment overrides:
//!
//! - `MICROLIB_SKIP` — warmed (functionally simulated) instructions
//!   (default 150 000);
//! - `MICROLIB_SIM` — detailed-simulated instructions (default 100 000);
//! - `MICROLIB_SEED` — workload seed (default `0xC0FFEE`);
//! - `MICROLIB_THREADS` — worker threads (default: all cores);
//! - `MICROLIB_ARTIFACTS` — `off`/`0`/`false` disables the shared
//!   artifact store (traces, warm checkpoints, sampling plans, cell
//!   memo); results are bit-identical either way;
//! - `MICROLIB_SAMPLED` — `1`/`on` runs sweeps SimPoint-sampled with the
//!   default plan for the window, `interval/clusters[/warmup]` picks an
//!   explicit plan (what `run_all --sampled` sets; see
//!   [`SamplingMode::SimPoints`]).
//!
//! Result tables are written to stdout and are bit-identical for any
//! `MICROLIB_THREADS` value; progress and timing go to stderr.

#![warn(missing_docs)]

use microlib::{ArtifactStore, Campaign, ExperimentConfig, Matrix, SamplingMode, SimOptions};
use microlib_trace::TraceWindow;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

pub mod experiments;

/// Environment-configurable trace window shared by all experiments.
pub fn std_window() -> TraceWindow {
    let skip = env_u64("MICROLIB_SKIP", 150_000);
    let simulate = env_u64("MICROLIB_SIM", 100_000);
    TraceWindow::new(skip, simulate)
}

/// The longer "article setup" window for validation experiments (the
/// paper's "skip 1 billion, simulate 2 billion", scaled).
pub fn article_window() -> TraceWindow {
    let w = std_window();
    TraceWindow::new(w.skip / 2, w.simulate * 2)
}

/// Environment-configurable seed.
pub fn std_seed() -> u64 {
    env_u64("MICROLIB_SEED", 0xC0FFEE)
}

/// Environment-configurable thread count (0 = all cores).
pub fn std_threads() -> usize {
    env_u64("MICROLIB_THREADS", 0) as usize
}

/// Environment-configurable sampling mode (`MICROLIB_SAMPLED`): unset,
/// `0`, `off` or `false` run full simulations; `1`, `on` or `true` use
/// [`SamplingMode::simpoints_for`] the standard window; an
/// `interval/clusters[/warmup]` triple picks an explicit SimPoint plan.
/// Unparseable values warn on stderr and fall back to the default plan.
pub fn std_sampling() -> SamplingMode {
    sampling_from_env(std_window())
}

fn sampling_from_env(window: TraceWindow) -> SamplingMode {
    match std::env::var("MICROLIB_SAMPLED") {
        Ok(value) => parse_sampling_spec(&value, window),
        Err(_) => SamplingMode::Full,
    }
}

fn parse_sampling_spec(spec: &str, window: TraceWindow) -> SamplingMode {
    match spec {
        "" | "0" | "off" | "false" => SamplingMode::Full,
        "1" | "on" | "true" => SamplingMode::simpoints_for(window),
        spec => {
            let parts: Vec<Option<u64>> = spec.split('/').map(|p| p.parse::<u64>().ok()).collect();
            match parts.as_slice() {
                [Some(interval), Some(clusters)] => SamplingMode::SimPoints {
                    interval: *interval,
                    max_clusters: *clusters as usize,
                    warmup: 0,
                },
                [Some(interval), Some(clusters), Some(warmup)] => SamplingMode::SimPoints {
                    interval: *interval,
                    max_clusters: *clusters as usize,
                    warmup: *warmup,
                },
                _ => {
                    eprintln!(
                        "MICROLIB_SAMPLED={spec:?} is not 0/1/on/off or \
                         interval/clusters[/warmup]; using the default plan"
                    );
                    SamplingMode::simpoints_for(window)
                }
            }
        }
    }
}

/// Standard [`SimOptions`] for single runs.
pub fn std_options() -> SimOptions {
    SimOptions {
        seed: std_seed(),
        window: std_window(),
        sampling: std_sampling(),
        ..SimOptions::default()
    }
}

/// The paper's main sweep configuration with environment overrides applied.
pub fn std_experiment() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_baseline(std_window());
    cfg.seed = std_seed();
    cfg.threads = std_threads();
    cfg.sampling = std_sampling();
    cfg
}

/// A thread pool honouring `MICROLIB_THREADS`, for experiment-local
/// parallelism outside the campaign engine (per-benchmark comparison
/// loops). Collected results are always in input order, so this never
/// perturbs output tables.
pub fn par_pool() -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(std_threads())
        .build()
        .expect("experiment thread pool")
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `cfg` through the campaign engine with progress on stderr.
///
/// Per-cell failures are all reported (coordinates + cause) before the
/// sweep panics — one bad cell no longer masks the rest of a sweep's
/// diagnostics. Standalone binaries abort on the panic (the historical
/// `.expect("sweep runs")` behavior); `run_all` catches it per
/// experiment so one failing experiment cannot sink the battery.
///
/// # Panics
///
/// Panics if the configuration is rejected or any cell fails.
pub fn sweep(cfg: &ExperimentConfig) -> Matrix {
    sweep_with(None, cfg)
}

/// [`sweep`] over a shared [`ArtifactStore`] (`None` keeps the campaign's
/// own per-sweep store). `run_all` passes its battery-wide store so
/// overlapping cells across experiments are computed once.
///
/// # Panics
///
/// Panics if the configuration is rejected or any cell fails (see
/// [`sweep`]).
pub fn sweep_with(store: Option<Arc<ArtifactStore>>, cfg: &ExperimentConfig) -> Matrix {
    sweep_logged(store, None, cfg)
}

/// [`sweep_with`] with an optional per-cell failure sink: failed cells
/// are recorded as `"benchmark x mechanism: cause"` lines *before* the
/// panic, so a battery driver that catches the panic can still report
/// exactly which cells failed at the end of the run.
fn sweep_logged(
    store: Option<Arc<ArtifactStore>>,
    failure_sink: Option<&Mutex<Vec<String>>>,
    cfg: &ExperimentConfig,
) -> Matrix {
    let mut campaign = Campaign::new(cfg.clone());
    if let Some(store) = store {
        campaign = campaign.with_store(store);
    }
    let campaign = campaign.with_progress(|u| {
        eprint!(
            "\r  [{}/{}] {} x {}        ",
            u.completed, u.total, u.benchmark, u.mechanism
        );
        let _ = std::io::stderr().flush();
    });
    eprintln!(
        "campaign: {} cells on {} threads",
        campaign.cell_count(),
        campaign.effective_threads()
    );
    let report = match campaign.run() {
        Ok(report) => report,
        Err(e) => panic!("campaign configuration rejected: {e}"),
    };
    eprintln!();
    if report.failure_count() > 0 {
        for cell in report.failures() {
            let err = cell.outcome.as_ref().expect_err("failure cell");
            eprintln!("  FAILED {} x {}: {err}", cell.benchmark, cell.mechanism);
            if let Some(sink) = failure_sink {
                // Dedup: a cell of the shared standard campaign that
                // fails re-fails under every later experiment that
                // touches `std_matrix` (the panic aborts assignment, so
                // nothing caches) — one summary line per distinct cell.
                let line = format!("{} x {}: {err}", cell.benchmark, cell.mechanism);
                let mut sink = sink.lock().expect("failure sink lock");
                if !sink.contains(&line) {
                    sink.push(line);
                }
            }
        }
        panic!(
            "{} of {} sweep cells failed (details on stderr)",
            report.failure_count(),
            report.cells().len()
        );
    }
    report.into_matrix().expect("all cells succeeded")
}

/// Shared state across experiments in one process: the standard campaign's
/// matrix is computed once and reused by every experiment that sweeps the
/// paper's main setup (`run_all` runs eight such experiments off a single
/// sweep).
#[derive(Debug)]
pub struct Context {
    std_matrix: Option<Matrix>,
    store: Arc<ArtifactStore>,
    cell_failures: Mutex<Vec<String>>,
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Context {
    /// Creates an empty context (no sweeps run yet) with a battery-wide
    /// artifact store honouring `MICROLIB_ARTIFACTS` and
    /// `MICROLIB_CACHE_DIR` (the persistent disk tier).
    pub fn new() -> Self {
        Context {
            std_matrix: None,
            store: Arc::new(ArtifactStore::from_env()),
            cell_failures: Mutex::new(Vec::new()),
        }
    }

    /// The battery-wide artifact store. Experiments route their sweeps
    /// and single runs through it so traces, warm states and duplicated
    /// cells are shared across the whole battery.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// Runs `cfg` through the campaign engine over the battery-wide
    /// artifact store (see [`sweep`] for the failure handling). Failed
    /// cells are additionally recorded in the context's failure log
    /// ([`cell_failures`](Context::cell_failures)) before the panic, so
    /// the battery driver can summarize them after catching it.
    pub fn sweep(&self, cfg: &ExperimentConfig) -> Matrix {
        sweep_logged(
            Some(Arc::clone(&self.store)),
            Some(&self.cell_failures),
            cfg,
        )
    }

    /// The matrix of the standard experiment ([`std_experiment`]), swept on
    /// first use through the campaign engine and cached for the rest of
    /// the process.
    pub fn std_matrix(&mut self) -> &Matrix {
        if self.std_matrix.is_none() {
            self.std_matrix = Some(sweep_logged(
                Some(Arc::clone(&self.store)),
                Some(&self.cell_failures),
                &std_experiment(),
            ));
        }
        self.std_matrix.as_ref().expect("just computed")
    }

    /// Every campaign cell that failed under this context, as
    /// `"benchmark x mechanism: cause"` lines in the order the failures
    /// were reported. `run_all` prints these in its end-of-battery
    /// summary so a partially failed battery can never look green.
    pub fn cell_failures(&self) -> Vec<String> {
        self.cell_failures
            .lock()
            .expect("failure sink lock")
            .clone()
    }
}

/// Prints the standard experiment header.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn header(
    w: &mut dyn std::io::Write,
    id: &str,
    paper_ref: &str,
    what: &str,
) -> std::io::Result<()> {
    writeln!(
        w,
        "=============================================================="
    )?;
    writeln!(w, "{id} — {paper_ref}")?;
    writeln!(w, "{what}")?;
    writeln!(w, "window: {} (seed {:#x})", std_window(), std_seed())?;
    writeln!(
        w,
        "=============================================================="
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let w = std_window();
        assert!(w.simulate > 0);
        assert!(std_options().window.simulate > 0);
        let cfg = std_experiment();
        assert_eq!(cfg.benchmarks.len(), 26);
        assert_eq!(cfg.mechanisms.len(), 13);
    }

    #[test]
    fn article_window_is_longer() {
        assert!(article_window().simulate > std_window().simulate);
    }

    #[test]
    fn failed_cells_are_recorded_before_the_sweep_panics() {
        use microlib_mech::MechanismKind;
        use microlib_model::SystemConfig;

        let cx = Context::new();
        let cfg = ExperimentConfig {
            system: SystemConfig::baseline_constant_memory(),
            benchmarks: vec!["swim".into(), "quake3".into()],
            mechanisms: vec![MechanismKind::Base],
            window: TraceWindow::new(0, 1_000),
            seed: 1,
            threads: 1,
            sampling: SamplingMode::Full,
        };
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cx.sweep(&cfg)));
        assert!(panicked.is_err(), "a failed cell still panics the sweep");
        let failures = cx.cell_failures();
        assert_eq!(failures.len(), 1, "one cell failed: {failures:?}");
        assert!(failures[0].contains("quake3"));
        assert!(failures[0].contains("Base"));
        assert!(failures[0].contains("unknown benchmark"));
    }

    #[test]
    fn sampling_spec_parses() {
        let w = TraceWindow::new(0, 100_000);
        assert_eq!(parse_sampling_spec("off", w), SamplingMode::Full);
        assert_eq!(parse_sampling_spec("0", w), SamplingMode::Full);
        assert_eq!(parse_sampling_spec("1", w), SamplingMode::simpoints_for(w));
        assert_eq!(
            parse_sampling_spec("5000/3", w),
            SamplingMode::SimPoints {
                interval: 5_000,
                max_clusters: 3,
                warmup: 0
            }
        );
        assert_eq!(
            parse_sampling_spec("5000/3/20000", w),
            SamplingMode::SimPoints {
                interval: 5_000,
                max_clusters: 3,
                warmup: 20_000
            }
        );
        // Garbage falls back to the default plan (with a warning).
        assert_eq!(
            parse_sampling_spec("5000:3", w),
            SamplingMode::simpoints_for(w)
        );
    }

    #[test]
    fn header_is_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        header(&mut a, "x", "y", "z").unwrap();
        header(&mut b, "x", "y", "z").unwrap();
        assert_eq!(a, b);
    }
}
