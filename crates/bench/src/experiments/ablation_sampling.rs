//! Ablation (extension beyond the paper's figures): SimPoint-sampled
//! simulation vs full simulation of the standard campaign.
//!
//! The paper's Fig 11 shows that *where* a trace window lies steers
//! research decisions; this study quantifies the cost/accuracy trade of
//! making SimPoint sampling the campaign's default execution mode: every
//! (benchmark × mechanism) cell is simulated both in full and as weighted
//! representative intervals, and the table reports the per-cell CPI
//! reconstruction error next to the detailed-simulation work each
//! benchmark saves.
//!
//! All printed numbers are deterministic (plans, slices and the weighted
//! reconstruction are seed-driven); wall-clock comparisons belong to
//! `run_all --sampled` and stderr.

use crate::Context;
use microlib::report::text_table;
use microlib::SamplingMode;
use microlib_mech::MechanismKind;
use std::io::{self, Write};

/// Runs the sampled-vs-full comparison over the standard campaign.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "ablation_sampling",
        "Extension: SimPoint-sampled campaign (beyond Fig 11)",
        "Weighted-CPI reconstruction error and detailed-work reduction, sampled vs full",
    )?;
    let window = crate::std_window();
    let mode = SamplingMode::simpoints_for(window);
    let SamplingMode::SimPoints {
        interval,
        max_clusters,
        ..
    } = mode
    else {
        unreachable!("simpoints_for always samples");
    };
    writeln!(
        w,
        "sampling plan: {interval}-instruction intervals, <= {max_clusters} clusters, full-prefix warm-up\n"
    )?;

    let mut full_cfg = crate::std_experiment();
    full_cfg.sampling = SamplingMode::Full;
    let mut sampled_cfg = full_cfg.clone();
    sampled_cfg.sampling = mode;
    let full = cx.sweep(&full_cfg);
    let sampled = cx.sweep(&sampled_cfg);

    let mechanisms = full_cfg.mechanisms.clone();
    let mut all_errors: Vec<f64> = Vec::new();
    let mut per_mech: Vec<(MechanismKind, Vec<f64>)> =
        mechanisms.iter().map(|k| (*k, Vec::new())).collect();
    let mut bound_violations = 0usize;
    let mut cells = 0usize;
    let mut rows = Vec::new();
    let mut reductions = Vec::new();

    for bench in &full_cfg.benchmarks {
        let plan = cx
            .store()
            .sampling_plan(bench, full_cfg.seed, window, interval, max_clusters)
            .expect("benchmark swept above");
        let mut errors = Vec::new();
        let cpi = |r: &microlib::RunResult| -> f64 {
            r.perf.cycles as f64 / r.perf.instructions.max(1) as f64
        };
        for ((_, acc), kind) in per_mech.iter_mut().zip(&mechanisms) {
            let full_cpi = cpi(full.result(bench, *kind));
            let s = sampled.result(bench, *kind);
            let sampled_cpi = cpi(s);
            let err = (sampled_cpi - full_cpi).abs() / full_cpi.max(1e-12) * 100.0;
            errors.push(err);
            acc.push(err);
            all_errors.push(err);
            cells += 1;
            let bound = s
                .sampling
                .as_ref()
                .map(|est| est.cpi_error_bound)
                .unwrap_or(0.0);
            if (sampled_cpi - full_cpi).abs() > bound {
                bound_violations += 1;
            }
        }
        let mean_err = microlib_model::stats::mean(&errors).unwrap_or(0.0);
        let max_err = errors.iter().cloned().fold(0.0, f64::max);
        reductions.push(plan.work_reduction());
        rows.push(vec![
            bench.clone(),
            format!("{}", plan.points().len()),
            format!("{}", plan.detailed_instructions()),
            format!("{:.1}x", plan.work_reduction()),
            format!("{:.2}%", mean_err),
            format!("{:.2}%", max_err),
        ]);
    }
    writeln!(
        w,
        "{}",
        text_table(
            &[
                "benchmark",
                "slices",
                "detailed insts",
                "work reduction",
                "mean |CPI err|",
                "max |CPI err|"
            ],
            &rows
        )
    )?;

    let mech_rows: Vec<Vec<String>> = per_mech
        .iter()
        .map(|(k, errs)| {
            vec![
                k.to_string(),
                format!("{:.2}%", microlib_model::stats::mean(errs).unwrap_or(0.0)),
                format!("{:.2}%", errs.iter().cloned().fold(0.0, f64::max)),
            ]
        })
        .collect();
    writeln!(
        w,
        "{}",
        text_table(
            &["mechanism", "mean |CPI err|", "max |CPI err|"],
            &mech_rows
        )
    )?;

    let mut sorted = all_errors.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let median = if sorted.is_empty() {
        0.0
    } else {
        sorted[sorted.len() / 2]
    };
    writeln!(
        w,
        "summary: {} cells; median |CPI error| {median:.2}%; mean detailed-work reduction {:.1}x;",
        cells,
        microlib_model::stats::mean(&reductions).unwrap_or(1.0)
    )?;
    writeln!(
        w,
        "reported error bound violated in {bound_violations}/{cells} cells."
    )?;
    writeln!(
        w,
        "\nthe detailed-work reduction is the speed headroom sampling buys; wall-clock"
    )?;
    writeln!(
        w,
        "speedup of the whole campaign is measured by `run_all --sampled` (stderr)."
    )
}
