//! Fig 10 — "Effect of second-guessing": the TCP article never stated its
//! prefetch request-queue size; the paper tried 1 vs 128 entries and found
//! per-benchmark swings in both directions (tiny for crafty/eon, dramatic
//! for lucas/mgrid/art — a large buffer can *hurt* by seizing the bus).

use crate::Context;
use microlib::report::{pct, text_table};
use microlib::run_custom_keyed;
use microlib_mech::{MechanismKind, TagCorrelatingPrefetcher};
use microlib_trace::benchmarks;
use rayon::prelude::*;
use std::io::{self, Write};

/// Runs the TCP queue-size second-guessing study.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig10_second_guessing",
        "Fig 10 (Effect of second-guessing: TCP prefetch queue size)",
        "TCP speedup with a 128-entry vs a 1-entry request queue, per benchmark",
    )?;
    let cfg = std::sync::Arc::new(microlib_model::SystemConfig::baseline());
    let opts = crate::std_options();
    // The Base and default-queue (128) TCP cells ARE standard-campaign
    // cells; only the 1-entry variant needs fresh simulation (one run per
    // benchmark, each a parallel work item).
    let store = cx.store().clone();
    let matrix = cx.std_matrix();
    let q1_speedups: Vec<f64> = crate::par_pool().install(|| {
        benchmarks::NAMES
            .par_iter()
            .map(|bench| {
                let base = matrix.result(bench, MechanismKind::Base);
                // Keyed (not opaque) custom run: "queue=1" covers the one
                // way this instance differs from the stock TCP, so the
                // cell is memoizable — and disk-cacheable — like any
                // standard-campaign cell.
                let q1 = run_custom_keyed(
                    &store,
                    &cfg,
                    Box::new(TagCorrelatingPrefetcher::with_queue_capacity(1)),
                    MechanismKind::Tcp,
                    "queue=1",
                    bench,
                    &opts,
                )
                .expect("TCP/1 runs");
                q1.perf.speedup_over(&base.perf)
            })
            .collect()
    });
    let mut rows = Vec::new();
    let mut spreads = Vec::new();
    for (bench, s1) in benchmarks::NAMES.iter().zip(q1_speedups) {
        let s128 = matrix.speedup(bench, MechanismKind::Tcp);
        let delta = (s128 - s1) / s1 * 100.0;
        spreads.push(delta.abs());
        rows.push(vec![
            (*bench).to_owned(),
            format!("{:.3}", s128),
            format!("{:.3}", s1),
            pct(delta),
        ]);
    }
    writeln!(
        w,
        "{}",
        text_table(
            &["benchmark", "queue = 128", "queue = 1", "difference"],
            &rows
        )
    )?;
    if let Some(avg) = microlib_model::stats::mean(&spreads) {
        writeln!(
            w,
            "average |difference|: {avg:.1}%  — an undocumented parameter moves results"
        )?;
        writeln!(
            w,
            "in both directions (the paper settled on 128 after contacting the authors)."
        )?;
    }
    Ok(())
}
