//! Ablation (extension beyond the paper's figures): Fig 1 toggles all four
//! cache-fidelity hazards at once and Fig 9 isolates the MSHR; this harness
//! ablates *each* of the §2.2 model differences individually, quantifying
//! how much of the SimpleScalar-vs-MicroLib IPC gap each one explains.

use crate::Context;
use microlib::report::text_table;
use microlib::ExperimentConfig;
use microlib_mech::MechanismKind;
use microlib_model::{FidelityConfig, SystemConfig};
use std::io::{self, Write};

const BENCHES: [&str; 6] = ["swim", "mgrid", "mcf", "gzip", "gcc", "crafty"];

/// Runs the per-toggle fidelity ablation.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "ablation_fidelity",
        "Extension: per-toggle fidelity ablation (beyond Fig 1/Fig 9)",
        "Mean IPC over six representative benchmarks with one hazard removed at a time",
    )?;

    type Toggle = Box<dyn Fn(&mut FidelityConfig)>;
    let variants: [(&str, Toggle); 6] = [
        ("detailed (MicroLib)", Box::new(|_| {})),
        ("no finite MSHR", Box::new(|f| f.finite_mshr = false)),
        (
            "no pipeline stalls",
            Box::new(|f| f.pipeline_stalls = false),
        ),
        (
            "no LSQ backpressure",
            Box::new(|f| f.lsq_backpressure = false),
        ),
        (
            "free refill ports",
            Box::new(|f| f.refill_uses_port = false),
        ),
        (
            "idealized (SimpleScalar-like)",
            Box::new(|f| *f = FidelityConfig::simplescalar_like()),
        ),
    ];

    let mut rows = Vec::new();
    let mut detailed_mean = 0.0;
    for (label, mutate) in &variants {
        let mut system = SystemConfig::baseline_constant_memory();
        mutate(&mut system.fidelity);
        // Each variant is a small Base-only campaign over the six
        // benchmarks (one sweep, parallel cells).
        let cfg = ExperimentConfig {
            system,
            benchmarks: BENCHES.iter().map(|s| s.to_string()).collect(),
            mechanisms: vec![MechanismKind::Base],
            window: crate::std_window(),
            seed: crate::std_seed(),
            threads: crate::std_threads(),
            sampling: crate::std_sampling(),
        };
        let matrix = cx.sweep(&cfg);
        let ipcs: Vec<f64> = BENCHES
            .iter()
            .map(|b| matrix.result(b, MechanismKind::Base).perf.ipc())
            .collect();
        let mean = microlib_model::stats::mean(&ipcs).unwrap_or(0.0);
        if *label == "detailed (MicroLib)" {
            detailed_mean = mean;
        }
        let delta = if detailed_mean > 0.0 {
            (mean - detailed_mean) / detailed_mean * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            format!("{mean:.3}"),
            format!("{delta:+.2}%"),
        ]);
    }
    writeln!(
        w,
        "{}",
        text_table(&["model variant", "mean IPC", "vs detailed"], &rows)
    )?;
    writeln!(
        w,
        "each removed hazard inflates IPC; their sum approximates the Fig 1 gap."
    )
}
