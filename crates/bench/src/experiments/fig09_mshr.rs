//! Fig 9 — "Effect of the cache model accuracy" (MSHR size): the sweep with
//! the baseline finite MSHR file (8 entries × 4 reads) vs SimpleScalar's
//! unlimited one. Paper: a limited-but-peculiar effect that can change
//! ranking — some mechanisms do *better* with a finite MSHR (TCP loses to
//! TK only when the MSHR is finite, because a full MSHR stalls the cache
//! and frees the bus for TK's L1 prefetches).

use crate::Context;
use microlib::report::text_table;
use microlib_mech::MechanismKind;
use std::io::{self, Write};

/// Runs the MSHR-accuracy comparison.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig09_mshr",
        "Fig 9 (Effect of the cache model accuracy: MSHR size)",
        "Mean speedups with the finite (8-entry) vs infinite miss address file",
    )?;
    // The finite-MSHR sweep IS the standard campaign; only the infinite
    // variant needs a fresh sweep.
    let mut infinite_cfg = crate::std_experiment();
    infinite_cfg.system.fidelity.finite_mshr = false;
    let infinite = cx.sweep(&infinite_cfg);
    let finite = cx.std_matrix();

    let names: Vec<&str> = finite.benchmarks().iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for k in finite.mechanisms() {
        if *k == MechanismKind::Base {
            continue;
        }
        let f = finite.mean_speedup_over(*k, &names);
        let i = infinite.mean_speedup_over(*k, &names);
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", f),
            format!("{:.3}", i),
            format!("{:+.3}", f - i),
        ]);
    }
    writeln!(
        w,
        "{}",
        text_table(
            &[
                "mechanism",
                "finite MSHR (8)",
                "infinite MSHR",
                "finite - infinite"
            ],
            &rows
        )
    )?;
    writeln!(
        w,
        "positive deltas = mechanisms that perform *better* with the realistic finite MSHR,"
    )?;
    writeln!(w, "the paper's \"surprising\" observation.")
}
