//! Fig 3 — "Fixing the DBCP reverse-engineered implementation": speedups of
//! the initial (four documented bugs) vs fixed DBCP implementations. The
//! paper measured an average 38% difference, and noted that the TK authors'
//! own independent reverse-engineering landed close to the *initial*
//! implementation.

use crate::Context;
use microlib::compare_dbcp_variants_with;
use microlib::report::{pct, text_table};
use microlib_trace::benchmarks;
use rayon::prelude::*;
use std::io::{self, Write};

/// Runs the DBCP initial-vs-fixed comparison.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig03_dbcp_fix",
        "Fig 3 (Fixing the DBCP reverse-engineered implementation)",
        "Speedup of the initial (buggy) vs fixed DBCP per benchmark",
    )?;
    let window = crate::article_window();
    let seed = crate::std_seed();
    let store = cx.store().clone();
    let comparisons = crate::par_pool().install(|| {
        benchmarks::NAMES
            .par_iter()
            .map(|bench| compare_dbcp_variants_with(&store, bench, window, seed))
            .collect::<Vec<_>>()
    });
    let mut rows = Vec::new();
    let mut diffs = Vec::new();
    for (bench, cmp) in benchmarks::NAMES.iter().zip(comparisons) {
        match cmp {
            Ok(cmp) => {
                diffs.push(cmp.difference_percent().abs());
                rows.push(vec![
                    (*bench).to_owned(),
                    format!("{:.3}", cmp.initial),
                    format!("{:.3}", cmp.fixed),
                    pct(cmp.difference_percent()),
                ]);
            }
            Err(e) => rows.push(vec![
                (*bench).to_owned(),
                "-".into(),
                "-".into(),
                format!("{e}"),
            ]),
        }
    }
    writeln!(
        w,
        "{}",
        text_table(
            &["benchmark", "DBCP-initial", "DBCP (fixed)", "difference"],
            &rows
        )
    )?;
    if let Some(avg) = microlib_model::stats::mean(&diffs) {
        writeln!(w, "average |difference|: {avg:.1}%  (paper: 38% average)")?;
    }
    Ok(())
}
