//! Table 6 — "Which mechanism can be the best with N benchmarks?":
//! exhaustively enumerates *every* benchmark subset (2²⁶ − 1 of them, via a
//! Gray-code walk) and records, per subset size N, which mechanisms can win
//! some N-benchmark selection. The paper's cherry-picking result: for any
//! N ≤ 23 there is more than one possible winner, and even poor-on-average
//! mechanisms (FVC, Markov) win surprisingly large selections.

use crate::Context;
use microlib::report::text_table;
use microlib::subset_winner_analysis;
use std::io::{self, Write};

/// Runs the exhaustive subset-winner enumeration.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "tab06_subset_winners",
        "Table 6 (Which mechanism can be the best with N benchmarks?)",
        "Exhaustive Gray-code enumeration of all benchmark subsets",
    )?;
    let matrix = cx.std_matrix();
    let t = std::time::Instant::now();
    let analysis = subset_winner_analysis(matrix);
    // Timing goes to stderr: result tables must be bit-identical across
    // runs and thread counts.
    eprintln!(
        "  enumerated {} subsets in {:?}",
        (1u64 << matrix.benchmarks().len()) - 1,
        t.elapsed()
    );
    writeln!(
        w,
        "enumerated {} subsets\n",
        (1u64 << matrix.benchmarks().len()) - 1
    )?;

    // The paper's table: rows = N, columns = mechanisms, check = can win.
    let mut headers: Vec<String> = vec!["N".into()];
    headers.extend(analysis.mechanisms.iter().map(|k| k.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for n in 1..=analysis.benchmark_count {
        let mut row = vec![n.to_string()];
        for k in &analysis.mechanisms {
            row.push(if analysis.wins_at(*k, n) {
                "x".into()
            } else {
                String::new()
            });
        }
        rows.push(row);
    }
    writeln!(w, "{}", text_table(&header_refs, &rows))?;

    let mut multi = 0;
    for n in 1..=analysis.benchmark_count {
        if analysis.winners_at(n) > 1 {
            multi = n;
        }
    }
    writeln!(
        w,
        "largest N with more than one possible winner: {multi}  (paper: 23)"
    )?;
    for k in &analysis.mechanisms {
        if let Some(n) = analysis.max_winning_size(*k) {
            writeln!(
                w,
                "  {:8} can win selections up to N = {}",
                k.to_string(),
                n
            )?;
        }
    }
    Ok(())
}
