//! The experiment battery, one module per figure/table of the paper.
//!
//! Every experiment is a plain function `run(cx, w)`: shared sweeps come
//! from the [`Context`] (so a battery run computes the
//! standard campaign once), and all deterministic output goes to `w`
//! (stdout for the standalone binaries, a capture buffer for `run_all`).
//! Progress and timing go to stderr only — result tables must be
//! bit-identical across runs and thread counts.

use crate::Context;
use std::io;

pub mod ablation_fidelity;
pub mod ablation_sampling;
pub mod fig01_model_validation;
pub mod fig02_reveng_error;
pub mod fig03_dbcp_fix;
pub mod fig04_speedup;
pub mod fig05_power_cost;
pub mod fig06_benchmark_sensitivity;
pub mod fig07_sensitivity_selection;
pub mod fig08_memory_model;
pub mod fig09_mshr;
pub mod fig10_second_guessing;
pub mod fig11_trace_selection;
pub mod tab01_config;
pub mod tab05_prior_comparisons;
pub mod tab06_subset_winners;
pub mod tab07_selection_ranking;

/// The uniform experiment entry point.
pub type ExperimentFn = fn(&mut Context, &mut dyn io::Write) -> io::Result<()>;

/// The full battery in execution order. fig10/fig11 are slow
/// (per-benchmark resimulation); they run last so a partial battery still
/// covers the headline results.
pub const ALL: &[(&str, ExperimentFn)] = &[
    ("ablation_fidelity", ablation_fidelity::run),
    ("ablation_sampling", ablation_sampling::run),
    ("tab01_config", tab01_config::run),
    ("fig01_model_validation", fig01_model_validation::run),
    ("fig02_reveng_error", fig02_reveng_error::run),
    ("fig03_dbcp_fix", fig03_dbcp_fix::run),
    ("fig04_speedup", fig04_speedup::run),
    ("fig05_power_cost", fig05_power_cost::run),
    ("tab05_prior_comparisons", tab05_prior_comparisons::run),
    ("tab06_subset_winners", tab06_subset_winners::run),
    ("tab07_selection_ranking", tab07_selection_ranking::run),
    (
        "fig06_benchmark_sensitivity",
        fig06_benchmark_sensitivity::run,
    ),
    (
        "fig07_sensitivity_selection",
        fig07_sensitivity_selection::run,
    ),
    ("fig08_memory_model", fig08_memory_model::run),
    ("fig09_mshr", fig09_mshr::run),
    ("fig10_second_guessing", fig10_second_guessing::run),
    ("fig11_trace_selection", fig11_trace_selection::run),
];
