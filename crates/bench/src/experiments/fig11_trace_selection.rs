//! Fig 11 — "Effect of trace selection": the arbitrary "skip N, simulate M"
//! windows most articles used vs SimPoint-selected representative
//! intervals. Paper: the two methods differ significantly, most mechanisms
//! look better on arbitrary windows, and even multi-billion-instruction
//! windows are no safe precaution.

use crate::Context;
use microlib::report::text_table;
use microlib::{Campaign, ExperimentConfig};
use microlib_mech::MechanismKind;
use microlib_trace::{benchmarks, simpoint, BbvProfiler, TraceWindow, Workload};
use rayon::prelude::*;
use std::io::{self, Write};

/// Runs the trace-selection comparison.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig11_trace_selection",
        "Fig 11 (Effect of trace selection)",
        "Arbitrary skip/simulate window vs the SimPoint-selected interval",
    )?;
    let base = crate::std_experiment();
    let seed = crate::std_seed();
    let window = crate::std_window();

    // SimPoint per benchmark: profile BBVs over a profiling prefix, pick
    // the primary simulation point, simulate that interval.
    let interval = window.simulate;
    let profile_len = interval * 8;
    writeln!(
        w,
        "profiling {profile_len} instructions per benchmark in {interval}-instruction intervals…\n"
    )?;

    // One parallel work item per benchmark: profile, choose the SimPoint,
    // sweep all mechanisms over the chosen interval (inner campaign runs
    // single-threaded — the outer loop already fills the machine).
    let mechanisms = base.mechanisms.clone();
    // Inner campaigns share the battery-wide store: their cells memoize
    // (and persist, with a disk tier) like standard-campaign cells.
    let store = cx.store().clone();
    let per_bench: Vec<(usize, TraceWindow, Vec<f64>)> = crate::par_pool().install(|| {
        benchmarks::NAMES
            .par_iter()
            .map(|bench| {
                let workload = Workload::new(benchmarks::by_name(bench).unwrap(), seed);
                let mut profiler = BbvProfiler::new(interval);
                for inst in workload.stream().take(profile_len as usize) {
                    profiler.observe(&inst);
                }
                let vectors = BbvProfiler::to_matrix(profiler.intervals());
                let chosen = simpoint::primary_simpoint(&vectors, 6, seed)
                    .map(|p| p.interval)
                    .unwrap_or(0);
                let sp_window = TraceWindow::simpoint_interval(chosen, interval);
                let cfg = ExperimentConfig {
                    benchmarks: vec![(*bench).to_owned()],
                    window: sp_window,
                    threads: 1,
                    ..base.clone()
                };
                let m = Campaign::new(cfg)
                    .with_store(store.clone())
                    .run()
                    .and_then(|r| r.into_matrix())
                    .expect("simpoint sweep");
                let speedups = mechanisms.iter().map(|k| m.speedup(bench, *k)).collect();
                (chosen, sp_window, speedups)
            })
            .collect()
    });

    // Arbitrary window (what most articles do) — the standard campaign.
    let arbitrary = cx.std_matrix();

    let mut rows = Vec::new();
    let mut simpoint_means: Vec<(MechanismKind, Vec<f64>)> =
        mechanisms.iter().map(|k| (*k, Vec::new())).collect();
    for (bench, (chosen, sp_window, speedups)) in benchmarks::NAMES.iter().zip(&per_bench) {
        for ((_, acc), s) in simpoint_means.iter_mut().zip(speedups) {
            acc.push(*s);
        }
        rows.push(vec![
            (*bench).to_owned(),
            format!("interval {chosen} ({sp_window})"),
        ]);
    }
    writeln!(
        w,
        "{}",
        text_table(&["benchmark", "SimPoint choice"], &rows)
    )?;

    let names: Vec<&str> = base.benchmarks.iter().map(String::as_str).collect();
    let mut table = Vec::new();
    for (k, acc) in &simpoint_means {
        if *k == MechanismKind::Base {
            continue;
        }
        let arb = arbitrary.mean_speedup_over(*k, &names);
        let sp = microlib_model::stats::mean(acc).unwrap_or(0.0);
        table.push(vec![
            k.to_string(),
            format!("{:.3}", arb),
            format!("{:.3}", sp),
            format!("{:+.3}", arb - sp),
        ]);
    }
    writeln!(
        w,
        "{}",
        text_table(
            &[
                "mechanism",
                "arbitrary window",
                "SimPoint interval",
                "arbitrary - simpoint"
            ],
            &table
        )
    )?;
    writeln!(
        w,
        "paper: \"most mechanisms appear to perform better with an arbitrary 2-billion"
    )?;
    writeln!(
        w,
        "trace, with the notable exception of TP\" — trace selection steers decisions."
    )
}
