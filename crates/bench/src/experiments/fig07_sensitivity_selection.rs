//! Fig 7 — "High- and low-sensitivity benchmarks speedup": mean speedups
//! and rankings computed over all 26 benchmarks, over the 6 most sensitive,
//! and over the 6 least sensitive. "Absolute observed performance and
//! ranking are severely affected by the benchmark selection."

use crate::Context;
use microlib::report::text_table;
use microlib::{rank_mechanisms, sensitivity_classes};
use std::io::{self, Write};

/// Runs the sensitivity-selection ranking comparison.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig07_sensitivity_selection",
        "Fig 7 (High- and low-sensitivity benchmark speedups)",
        "Mean speedups over 26 / high-6 / low-6 benchmark selections",
    )?;
    let matrix = cx.std_matrix();
    let (high, low) = sensitivity_classes(matrix, 6);
    writeln!(w, "measured high-sensitivity set: {high:?}")?;
    writeln!(w, "measured low-sensitivity set:  {low:?}\n")?;

    let all: Vec<&str> = matrix.benchmarks().iter().map(String::as_str).collect();
    let high_refs: Vec<&str> = high.iter().map(String::as_str).collect();
    let low_refs: Vec<&str> = low.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for k in matrix.mechanisms() {
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", matrix.mean_speedup_over(*k, &all)),
            format!("{:.3}", matrix.mean_speedup_over(*k, &high_refs)),
            format!("{:.3}", matrix.mean_speedup_over(*k, &low_refs)),
        ]);
    }
    writeln!(
        w,
        "{}",
        text_table(&["mechanism", "26 benchmarks", "high-6", "low-6"], &rows)
    )?;
    for (label, sel) in [("26", &all), ("high-6", &high_refs), ("low-6", &low_refs)] {
        let best = rank_mechanisms(matrix, sel);
        writeln!(
            w,
            "winner over {label}: {} ({:.3})",
            best[0].mechanism, best[0].mean_speedup
        )?;
    }
    Ok(())
}
