//! Table 7 — "Influence of benchmark selection": full 26-benchmark ranking
//! vs the rankings induced by the DBCP and GHB articles' own benchmark
//! selections. The paper: DBCP's selection flatters DBCP; GHB actually does
//! *better* on all 26 than on its own article's selection.

use crate::Context;
use microlib::ranking_row;
use microlib::report::text_table;
use microlib_trace::benchmarks;
use std::io::{self, Write};

/// Runs the benchmark-selection ranking comparison.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "tab07_selection_ranking",
        "Table 7 (Influence of benchmark selection)",
        "Rank of each mechanism under three benchmark selections",
    )?;
    let matrix = cx.std_matrix();

    let all: Vec<&str> = matrix.benchmarks().iter().map(String::as_str).collect();
    let dbcp_sel: Vec<&str> = benchmarks::DBCP_SELECTION.to_vec();
    let ghb_sel: Vec<&str> = benchmarks::GHB_SELECTION.to_vec();

    let mut headers: Vec<String> = vec!["selection".into()];
    headers.extend(matrix.mechanisms().iter().map(|k| k.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for (label, sel) in [
        ("26 benchmarks", &all),
        ("DBCP article selection", &dbcp_sel),
        ("GHB article selection", &ghb_sel),
    ] {
        let ranks = ranking_row(matrix, sel);
        let mut row = vec![label.to_owned()];
        row.extend(ranks.iter().map(|r| r.to_string()));
        rows.push(row);
    }
    writeln!(w, "{}", text_table(&header_refs, &rows))?;
    writeln!(w, "selections: DBCP = {:?}", benchmarks::DBCP_SELECTION)?;
    writeln!(w, "            GHB  = {:?}", benchmarks::GHB_SELECTION)
}
