//! Table 5 — "Previous comparisons": which mechanism's original article
//! quantitatively compared against which previously published mechanisms.
//! Straight from the catalog; the paper's point is how *few* such
//! comparisons exist ("few articles have quantitative comparisons with
//! (one or two) previous mechanisms, except when comparisons are almost
//! compulsory").

use crate::Context;
use microlib::report::text_table;
use microlib_mech::MechanismKind;
use std::io::{self, Write};

/// Prints the prior-comparison catalog.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(_cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "tab05_prior_comparisons",
        "Table 5 (Previous comparisons)",
        "Quantitative comparisons performed by the original articles",
    )?;
    let mut rows = Vec::new();
    for kind in MechanismKind::study_set() {
        let against = kind.compared_against();
        if against.is_empty() {
            continue;
        }
        let list: Vec<String> = against.iter().map(|k| k.to_string()).collect();
        rows.push(vec![kind.to_string(), format!("vs. {}", list.join(", "))]);
    }
    writeln!(w, "{}", text_table(&["mechanism", "compared"], &rows))?;
    writeln!(
        w,
        "(TK and TCP compared against DBCP — \"while in this case, a comparison with SP"
    )?;
    writeln!(
        w,
        " might have been more appropriate\", as the paper notes.)"
    )
}
