//! Fig 5 — "Power and Cost Ratios": chip-area ratio (CACTI-like model) and
//! on-chip memory-system power ratio (XCACTI-like energy × measured
//! activity) of each mechanism relative to the base cache hierarchy.
//! Paper shape: Markov and DBCP cost and burn the most (large tables); GHB
//! is tiny but power-greedy ("a table is scanned repeatedly"); SP and TP
//! are cheap and efficient.

use crate::Context;
use microlib::report::text_table;
use microlib_cost::{AreaModel, EnergyModel, RunActivity};
use microlib_mech::MechanismKind;
use std::io::{self, Write};

/// Runs the power/cost ratio analysis.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig05_power_cost",
        "Fig 5 (Power and Cost Ratios)",
        "Area ratio and power ratio vs base hierarchy, averaged over 26 benchmarks",
    )?;
    let system = crate::std_experiment().system;
    let matrix = cx.std_matrix();
    let area = AreaModel::default();
    let energy = EnergyModel::default();

    let mut rows = Vec::new();
    for kind in matrix.mechanisms() {
        if *kind == MechanismKind::Base {
            continue;
        }
        let hardware = kind.build().hardware();
        let cost_ratio = area.cost_ratio(&hardware);
        // Average power ratio over benchmarks, using measured activity.
        let mut ratios = Vec::new();
        for b in matrix.benchmarks() {
            let base_run = matrix.result(b, MechanismKind::Base);
            let mech_run = matrix.result(b, *kind);
            let base_act = RunActivity {
                l1d: base_run.l1d,
                l2: base_run.l2,
                mechanism: Default::default(),
            };
            let mech_act = RunActivity {
                l1d: mech_run.l1d,
                l2: mech_run.l2,
                mechanism: mech_run.mechanism_stats(),
            };
            ratios.push(energy.power_ratio(
                &hardware,
                &system.l1d,
                &system.l2,
                &mech_act,
                &base_act,
            ));
        }
        let power_ratio = microlib_model::stats::mean(&ratios).unwrap_or(1.0);
        rows.push(vec![
            kind.to_string(),
            format!("{:.4}", cost_ratio),
            format!("{:.3}", power_ratio),
            format!("{} B", hardware.total_bytes()),
        ]);
    }
    writeln!(
        w,
        "{}",
        text_table(
            &[
                "mechanism",
                "cost (area) ratio",
                "power ratio",
                "added state"
            ],
            &rows
        )
    )?;
    writeln!(
        w,
        "paper shape: Markov/DBCP heaviest in both; GHB cheap but power-greedy; SP/TP efficient."
    )?;
    writeln!(
        w,
        "note: off-chip (DRAM) access power is excluded, as in the paper's footnote 4."
    )
}
