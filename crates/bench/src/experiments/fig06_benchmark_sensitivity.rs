//! Fig 6 — "Benchmark sensitivity": the per-benchmark spread of speedups
//! across all mechanisms. Some benchmarks barely react to any data-cache
//! optimization; others make or break a mechanism's average — which is why
//! benchmark selection can steer conclusions (Table 6/7, Fig 7).

use crate::Context;
use microlib::benchmark_sensitivity;
use microlib::report::{bar, text_table};
use std::io::{self, Write};

/// Runs the benchmark-sensitivity spread analysis.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig06_benchmark_sensitivity",
        "Fig 6 (Benchmark sensitivity)",
        "Speedup spread (max - min over mechanisms) per benchmark, most sensitive first",
    )?;
    let matrix = cx.std_matrix();
    let rows = benchmark_sensitivity(matrix);
    let max_span = rows.first().map(|r| r.span()).unwrap_or(1.0).max(0.05);
    let mut table = Vec::new();
    for r in &rows {
        writeln!(w, "{}", bar(&r.benchmark, r.span(), max_span, 40))?;
        table.push(vec![
            r.benchmark.clone(),
            format!("{:.3}", r.min_speedup),
            format!("{:.3}", r.max_speedup),
            format!("{:.3}", r.span()),
        ]);
    }
    writeln!(w)?;
    writeln!(
        w,
        "{}",
        text_table(&["benchmark", "min speedup", "max speedup", "span"], &table)
    )?;
    writeln!(
        w,
        "paper's high-sensitivity set: apsi, equake, fma3d, mgrid, swim, gap"
    )?;
    writeln!(
        w,
        "paper's low-sensitivity set:  wupwise, bzip2, crafty, eon, perlbmk, vortex"
    )
}
