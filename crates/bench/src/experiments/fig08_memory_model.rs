//! Fig 8 — "Effect of the memory model": the same sweep under (a) the
//! constant 70-cycle SimpleScalar-like memory used by many articles, (b)
//! the detailed 170-cycle SDRAM of Table 1, and (c) an SDRAM scaled so its
//! average latency matches 70 cycles. Paper: speedups shrink ~58-60% going
//! from the constant model to either SDRAM; GHB is hurt far more than SP
//! (memory pressure); ranking changes (DBCP vs VC/TKVC flip).

use crate::Context;
use microlib::report::text_table;
use microlib::{ExperimentConfig, Matrix};
use microlib_mech::MechanismKind;
use microlib_model::{MemoryModel, SdramConfig, SystemConfig};
use std::io::{self, Write};

/// Runs the memory-model comparison.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig08_memory_model",
        "Fig 8 (Effect of the memory model)",
        "Mean speedups under constant-70 vs SDRAM-170 vs SDRAM-70 memory",
    )?;
    let base = crate::std_experiment();

    // The sdram-170 column IS the standard campaign (Table 1 baseline);
    // only the two alternative memory models need fresh sweeps, both over
    // the battery-wide artifact store.
    let variant = |memory: MemoryModel| -> ExperimentConfig {
        ExperimentConfig {
            system: SystemConfig {
                memory,
                ..base.system.clone()
            },
            ..base.clone()
        }
    };
    let constant = cx.sweep(&variant(MemoryModel::simplescalar_70()));
    let sdram_70 = cx.sweep(&variant(MemoryModel::Sdram(
        SdramConfig::scaled_to_70_cycles(),
    )));
    let sdram_170 = cx.std_matrix();
    let results: [(&str, &Matrix); 3] = [
        ("constant-70", &constant),
        ("sdram-170", sdram_170),
        ("sdram-70", &sdram_70),
    ];

    let names: Vec<&str> = base.benchmarks.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for k in results[0].1.mechanisms() {
        if *k == MechanismKind::Base {
            continue;
        }
        let mut row = vec![k.to_string()];
        for (_, m) in &results {
            row.push(format!("{:.3}", m.mean_speedup_over(*k, &names)));
        }
        rows.push(row);
    }
    writeln!(
        w,
        "{}",
        text_table(
            &["mechanism", "constant-70", "sdram-170", "sdram-70"],
            &rows
        )
    )?;

    // Speedup-reduction summary (paper: 57.9% / 59.9% average reductions).
    let mut reductions_170 = Vec::new();
    let mut reductions_70 = Vec::new();
    for k in results[0].1.mechanisms() {
        if *k == MechanismKind::Base {
            continue;
        }
        let c = results[0].1.mean_speedup_over(*k, &names) - 1.0;
        let s170 = results[1].1.mean_speedup_over(*k, &names) - 1.0;
        let s70 = results[2].1.mean_speedup_over(*k, &names) - 1.0;
        if c > 0.005 {
            reductions_170.push(((c - s170) / c * 100.0).clamp(-200.0, 200.0));
            reductions_70.push(((c - s70) / c * 100.0).clamp(-200.0, 200.0));
        }
    }
    if let (Some(a), Some(b)) = (
        microlib_model::stats::mean(&reductions_170),
        microlib_model::stats::mean(&reductions_70),
    ) {
        writeln!(
            w,
            "average speedup reduction vs constant-70: sdram-170 {a:.1}%, sdram-70 {b:.1}%"
        )?;
        writeln!(w, "(paper: 57.9% and 59.9%)")?;
    }
    // Per-benchmark SDRAM latency spread (the paper's gzip-vs-lucas range).
    let m170 = results[1].1;
    let mut lat: Vec<(String, f64)> = m170
        .benchmarks()
        .iter()
        .map(|b| {
            (
                b.clone(),
                m170.result(b, MechanismKind::Base)
                    .memory
                    .average_latency()
                    .unwrap_or(0.0),
            )
        })
        .collect();
    lat.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    if let (Some(min), Some(max)) = (lat.first(), lat.last()) {
        writeln!(
            w,
            "SDRAM average latency varies per benchmark: {} {:.1} cycles .. {} {:.1} cycles",
            min.0, min.1, max.0, max.1
        )?;
        writeln!(w, "(paper: 87.42 for gzip .. 389.73 for lucas)")?;
    }
    Ok(())
}
