//! Fig 1 — "MicroLib cache model validation": per-benchmark IPC under the
//! detailed MicroLib cache model vs the SimpleScalar-like idealized model
//! (infinite MSHRs, no pipeline stalls, no LSQ backpressure, free refill
//! ports). The paper found 6.8% average difference initially, 2% after
//! aligning the models; the idealized model overestimates IPC.

use crate::Context;
use microlib::compare_fidelity_with;
use microlib::report::{pct, text_table};
use microlib_trace::benchmarks;
use rayon::prelude::*;
use std::io::{self, Write};

/// Runs the cache-model validation comparison.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig01_model_validation",
        "Fig 1 (MicroLib cache model validation)",
        "IPC: detailed model vs SimpleScalar-like idealized model, per benchmark",
    )?;
    let window = crate::std_window();
    let seed = crate::std_seed();
    let store = cx.store().clone();
    let comparisons = crate::par_pool().install(|| {
        benchmarks::NAMES
            .par_iter()
            .map(|bench| compare_fidelity_with(&store, bench, window, seed))
            .collect::<Vec<_>>()
    });
    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for (bench, cmp) in benchmarks::NAMES.iter().zip(comparisons) {
        match cmp {
            Ok(cmp) => {
                gaps.push(cmp.gap_percent().abs());
                rows.push(vec![
                    (*bench).to_owned(),
                    format!("{:.3}", cmp.detailed_ipc),
                    format!("{:.3}", cmp.idealized_ipc),
                    pct(cmp.gap_percent()),
                ]);
            }
            Err(e) => rows.push(vec![
                (*bench).to_owned(),
                "-".into(),
                "-".into(),
                format!("{e}"),
            ]),
        }
    }
    writeln!(
        w,
        "{}",
        text_table(
            &["benchmark", "detailed IPC", "idealized IPC", "gap"],
            &rows
        )
    )?;
    if let Some(avg) = microlib_model::stats::mean(&gaps) {
        writeln!(
            w,
            "average |IPC gap|: {avg:.1}%  (paper: 6.8% before alignment, 2% after)"
        )?;
    }
    Ok(())
}
