//! Fig 4 — "Speedup": mean IPC speedup of every mechanism over the Table 1
//! baseline across all 26 benchmarks. The paper's headline: GHB (2004) is
//! the best mechanism and is an evolution of SP (1992 formulation of a 1982
//! idea) — "the progress of data cache research over the past 20 years has
//! been all but regular"; TP (1982) "performs also quite well"; CDP and
//! Markov sit at or below the baseline on average.

use crate::Context;
use microlib::rank_mechanisms;
use microlib::report::{bar, text_table};
use std::io::{self, Write};

/// Runs the headline speedup ranking.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig04_speedup",
        "Fig 4 (Speedup) + mechanism ranking",
        "Mean speedup over the 26 benchmarks, all 13 configurations",
    )?;
    let matrix = cx.std_matrix();
    let names: Vec<&str> = matrix.benchmarks().iter().map(String::as_str).collect();
    let ranked = rank_mechanisms(matrix, &names);

    for row in &ranked {
        writeln!(
            w,
            "{:2}. {}",
            row.rank,
            bar(&row.mechanism.to_string(), row.mean_speedup, 1.5, 40)
        )?;
    }
    writeln!(w)?;

    // Per-benchmark detail (the bars of Fig 4's companion data).
    let mut rows = Vec::new();
    for b in matrix.benchmarks() {
        let mut row = vec![b.clone()];
        for k in matrix.mechanisms() {
            row.push(format!("{:.3}", matrix.speedup(b, *k)));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["benchmark".into()];
    headers.extend(matrix.mechanisms().iter().map(|k| k.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    writeln!(w, "{}", text_table(&header_refs, &rows))?;
    writeln!(
        w,
        "year-of-proposal vs rank (the paper's irregular-progress point):"
    )?;
    for row in &ranked {
        let cat = row.mechanism.catalog();
        writeln!(
            w,
            "  rank {:2}: {:7} proposed {} ({})",
            row.rank, cat.acronym, cat.year, cat.venue
        )?;
    }
    Ok(())
}
