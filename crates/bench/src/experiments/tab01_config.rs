//! Table 1 — "Baseline configuration": echoes every parameter the
//! simulator actually uses, straight from the live configuration objects.

use crate::Context;
use microlib::report::text_table;
use microlib_model::{MemoryModel, SystemConfig};
use std::io::{self, Write};

/// Prints the live baseline configuration.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(_cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "tab01_config",
        "Table 1 (Baseline configuration)",
        "Parameters as instantiated by SystemConfig::baseline()",
    )?;
    let cfg = SystemConfig::baseline();
    cfg.validate().expect("baseline is self-consistent");

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |k: &str, v: String| rows.push(vec![k.to_owned(), v]);

    row(
        "Instruction window",
        format!("{}-RUU, {}-LSQ", cfg.core.ruu_entries, cfg.core.lsq_entries),
    );
    row(
        "Fetch/Decode/Issue width",
        format!("{} instructions per cycle", cfg.core.fetch_width),
    );
    row(
        "Functional units",
        format!(
            "{} IntALU, {} IntMult/Div, {} FPALU, {} FPMult/Div, {} Load/Store",
            cfg.core.int_alu,
            cfg.core.int_mult,
            cfg.core.fp_alu,
            cfg.core.fp_mult,
            cfg.core.mem_units
        ),
    );
    row(
        "Commit width",
        format!("up to {} per cycle", cfg.core.commit_width),
    );
    row(
        "L1 D-cache",
        format!(
            "{} KB / {}-way, {}-byte lines",
            cfg.l1d.size_bytes / 1024,
            cfg.l1d.assoc,
            cfg.l1d.line_bytes
        ),
    );
    row(
        "L1 D ports / MSHRs / reads-per-MSHR",
        format!(
            "{} / {} / {}",
            cfg.l1d.ports, cfg.l1d.mshr_entries, cfg.l1d.mshr_reads_per_entry
        ),
    );
    row("L1 D latency", format!("{} cycle", cfg.l1d.latency));
    row(
        "L1 I-cache",
        format!(
            "{} KB / {}-way LRU",
            cfg.l1i.size_bytes / 1024,
            cfg.l1i.assoc
        ),
    );
    row(
        "L2 unified",
        format!(
            "{} MB / {}-way LRU, {}-byte lines",
            cfg.l2.size_bytes / (1024 * 1024),
            cfg.l2.assoc,
            cfg.l2.line_bytes
        ),
    );
    row(
        "L2 ports / MSHRs / latency",
        format!(
            "{} / {} / {} cycles",
            cfg.l2.ports, cfg.l2.mshr_entries, cfg.l2.latency
        ),
    );
    row(
        "L1/L2 bus",
        format!(
            "{}-byte wide, {} CPU cycle(s) per beat",
            cfg.l1_l2_bus.width_bytes, cfg.l1_l2_bus.cpu_cycles_per_beat
        ),
    );
    row(
        "Memory bus",
        format!(
            "{} bytes ({} bits) wide, {} CPU cycles per beat",
            cfg.memory_bus.width_bytes,
            cfg.memory_bus.width_bytes * 8,
            cfg.memory_bus.cpu_cycles_per_beat
        ),
    );
    if let MemoryModel::Sdram(s) = cfg.memory {
        row(
            "SDRAM banks/rows/columns",
            format!("{} / {} / {}", s.banks, s.rows, s.columns),
        );
        row("RAS-to-RAS (tRRD)", format!("{} cpu cycles", s.t_rrd));
        row("RAS active (tRAS)", format!("{} cpu cycles", s.t_ras));
        row("RAS-to-CAS (tRCD)", format!("{} cpu cycles", s.t_rcd));
        row("CAS latency", format!("{} cpu cycles", s.cas));
        row("RAS precharge (tRP)", format!("{} cpu cycles", s.t_rp));
        row("RAS cycle (tRC)", format!("{} cpu cycles", s.t_rc));
        row("Controller queue", format!("{} entries", s.queue_entries));
        row("Refresh", "avoided".to_owned());
    }
    writeln!(w, "{}", text_table(&["parameter", "value"], &rows))
}
