//! Fig 2 — "Validation of TK, TCP and TKVC": relative speedup error of the
//! reproduction's standard setup against the original articles' setup
//! (long arbitrary trace window + constant 70-cycle memory). The paper read
//! the reference numbers off the articles' graphs and found a 5% average
//! error with occasional tendency flips (speedup↔slowdown); here the
//! article numbers are *reproduced* by running the article setup (see
//! DESIGN.md §2 on this substitution).

use crate::Context;
use microlib::report::{pct, text_table};
use microlib::{article_speedup_with, SetupComparison};
use microlib_mech::MechanismKind;
use microlib_trace::benchmarks;
use rayon::prelude::*;
use std::io::{self, Write};

/// Runs the reverse-engineering validation comparison.
///
/// # Errors
///
/// Propagates write failures on `w`.
pub fn run(cx: &mut Context, w: &mut dyn Write) -> io::Result<()> {
    crate::header(
        w,
        "fig02_reveng_error",
        "Fig 2 (Validation of TK, TCP and TKVC)",
        "Relative speedup error: our setup vs article setup, per benchmark",
    )?;
    let article = crate::article_window();
    let seed = crate::std_seed();
    let pool = crate::par_pool();
    // The "our setup" half of each comparison IS a standard-campaign cell;
    // only the article-setup runs (constant-70 memory, longer window) need
    // fresh simulation.
    let store = cx.store().clone();
    let matrix = cx.std_matrix();

    for kind in [MechanismKind::Tk, MechanismKind::Tcp, MechanismKind::Tkvc] {
        writeln!(w, "--- {kind} ---")?;
        let comparisons = pool.install(|| {
            benchmarks::NAMES
                .par_iter()
                .map(|bench| {
                    Ok(SetupComparison {
                        benchmark: (*bench).to_owned(),
                        ours: matrix.speedup(bench, kind),
                        article_setup: article_speedup_with(&store, kind, bench, article, seed)?,
                    })
                })
                .collect::<Vec<Result<_, microlib::SimError>>>()
        });
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        let mut flips = 0;
        for (bench, cmp) in benchmarks::NAMES.iter().zip(comparisons) {
            match cmp {
                Ok(cmp) => {
                    errors.push(cmp.relative_error_percent().abs());
                    if cmp.tendency_flipped() {
                        flips += 1;
                    }
                    rows.push(vec![
                        (*bench).to_owned(),
                        format!("{:.3}", cmp.ours),
                        format!("{:.3}", cmp.article_setup),
                        pct(cmp.relative_error_percent()),
                        if cmp.tendency_flipped() {
                            "FLIP".into()
                        } else {
                            String::new()
                        },
                    ]);
                }
                Err(e) => rows.push(vec![
                    (*bench).to_owned(),
                    "-".into(),
                    "-".into(),
                    format!("{e}"),
                    String::new(),
                ]),
            }
        }
        writeln!(
            w,
            "{}",
            text_table(
                &[
                    "benchmark",
                    "our speedup",
                    "article-setup speedup",
                    "error",
                    "tendency"
                ],
                &rows
            )
        )?;
        if let Some(avg) = microlib_model::stats::mean(&errors) {
            writeln!(
                w,
                "{kind}: average |error| {avg:.1}%, tendency flips {flips}  (paper: 5% average, occasional flips)\n"
            )?;
        }
    }
    Ok(())
}
