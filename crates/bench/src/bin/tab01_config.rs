//! Standalone entry point for the `tab01_config` experiment; the body lives in
//! [`microlib_bench::experiments::tab01_config`] so `run_all` can execute it
//! in-process against the shared campaign context.

fn main() {
    let mut cx = microlib_bench::Context::new();
    let stdout = std::io::stdout();
    microlib_bench::experiments::tab01_config::run(&mut cx, &mut stdout.lock())
        .expect("write experiment output");
}
