//! Standalone entry point for the `tab05_prior_comparisons` experiment; the body lives in
//! [`microlib_bench::experiments::tab05_prior_comparisons`] so `run_all` can execute it
//! in-process against the shared campaign context.

fn main() {
    let mut cx = microlib_bench::Context::new();
    let stdout = std::io::stdout();
    microlib_bench::experiments::tab05_prior_comparisons::run(&mut cx, &mut stdout.lock())
        .expect("write experiment output");
}
