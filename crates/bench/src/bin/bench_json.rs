//! Simulator-throughput measurement for the committed perf trajectory.
//!
//! The criterion benches (`cargo bench -p microlib-bench`) are the
//! interactive tool; this binary is the *recorded* one: it times the same
//! `simulator/*` workloads — plus the memory-side substrate benches the
//! hot loop is built from — with a plain best-of-batches harness and
//! writes machine-readable rows, so every PR can commit a
//! `BENCH_<pr>.json` snapshot and CI can fail on throughput regressions
//! the same way the golden gate fails on CPI drift.
//!
//! Usage:
//!
//! ```text
//! bench_json --out BENCH_8.json    # measure, write the trajectory rows
//! bench_json --check [dir]         # measure, compare against the latest
//!                                  # committed BENCH_*.json in dir (default
//!                                  # "."); exit 1 if the headline bench
//!                                  # regresses more than 15% in insts/s, or
//!                                  # any other shared row more than 30%.
//!                                  # Skips (exit 0) when no baseline exists.
//! ```
//!
//! Row format (one JSON object per line, inside a top-level array):
//! `{"bench": ..., "ns_per_iter": ..., "insts_per_s": ...}`. For substrate
//! rows `insts_per_s` is operations per second (lookups, MSHR round trips,
//! SDRAM requests, warm instructions) — same field, same gate arithmetic.

use microlib::{run_one, SimOptions};
use microlib_mech::MechanismKind;
use microlib_mem::{CacheArray, MemToken, MemorySystem, MshrFile, MshrTarget, Sdram};
use microlib_model::{Addr, CacheConfig, Cycle, LineData, SdramConfig, SystemConfig};
use microlib_serve::{CampaignOutcome, Client, Server, ServerConfig};
use microlib_trace::{benchmarks, TraceBuffer, TraceWindow, Workload};
use std::sync::Arc;
use std::time::Instant;

/// Instructions simulated per iteration (matches the criterion benches).
const INSTS: u64 = 5_000;
/// The bench the CI regression gate tracks most tightly.
const HEADLINE: &str = "simulator/swim_Base_5k_insts";
/// Minimum acceptable fraction of the baseline's rate for the headline.
const FLOOR: f64 = 0.85;
/// Minimum acceptable fraction for every other shared row. Substrate
/// microbenches jitter more than the 100ms-scale simulator rows, so the
/// gate is looser — it exists to catch structural regressions (an
/// accidental re-quadratization), not single-digit noise.
const SUBSTRATE_FLOOR: f64 = 0.70;

/// Every row this binary measures, in emission order.
const BENCHES: &[&str] = &[
    "simulator/swim_Base_5k_insts",
    "simulator/swim_GHB_5k_insts",
    "cache_array/l1_lookup_hit_1k",
    "mshr_insert_complete_x8",
    "sdram/row_hit_stream_32",
    "warmup/warm_inst_10k",
    "serve/cell_query_warm",
];

struct Row {
    bench: String,
    ns_per_iter: u64,
    insts_per_s: u64,
}

/// Best (lowest mean) of `batches` fixed-size batches of `iters` calls —
/// the minimum over batches discards scheduling noise, which only ever
/// adds time. Returns ns per call.
fn best_of(batches: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best_ns = f64::INFINITY;
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best_ns = best_ns.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best_ns
}

fn row(bench: &str, elements: u64, best_ns: f64) -> Row {
    Row {
        bench: bench.to_owned(),
        ns_per_iter: best_ns.round() as u64,
        insts_per_s: (elements as f64 * 1e9 / best_ns).round() as u64,
    }
}

/// Times one simulator config: warmup, then best-of-batches.
fn measure_simulator(kind: MechanismKind) -> Row {
    let cfg = SystemConfig::baseline();
    let opts = SimOptions {
        window: TraceWindow::new(2_000, INSTS),
        ..SimOptions::default()
    };
    for _ in 0..3 {
        std::hint::black_box(run_one(&cfg, kind, "swim", &opts).unwrap());
    }
    let best_ns = best_of(5, 16, || {
        std::hint::black_box(run_one(&cfg, kind, "swim", &opts).unwrap());
    });
    row(&format!("simulator/swim_{kind}_5k_insts"), INSTS, best_ns)
}

/// 1024 resident-line lookups over the flat L1D columns (the per-access
/// inner loop of every simulated load).
fn measure_cache_array() -> Row {
    let mut cache = CacheArray::new(CacheConfig::baseline_l1d()).unwrap();
    for i in 0..1024u64 {
        cache.fill(Addr::new(i * 32), LineData::zeroed(4), false, false);
    }
    let mut pass = || {
        for i in 0..1024u64 {
            std::hint::black_box(cache.lookup(Addr::new(i * 32)));
        }
    };
    for _ in 0..3 {
        pass();
    }
    let best_ns = best_of(5, 500, pass);
    row("cache_array/l1_lookup_hit_1k", 1024, best_ns)
}

/// Eight allocate/complete round trips through the fixed-slot MSHR arena.
fn measure_mshr() -> Row {
    let mut m = MshrFile::new(8, 4);
    m.set_model_busy_cycle(false);
    let t = |a: u64| MshrTarget {
        req: None,
        addr: Addr::new(a),
        is_store: false,
        value: 0,
    };
    let mut targets = Vec::new();
    let mut pass = || {
        for i in 0..8u64 {
            std::hint::black_box(m.try_insert(
                Addr::new(i * 64),
                t(i * 64),
                false,
                false,
                Cycle::ZERO,
            ));
        }
        for i in 0..8u64 {
            std::hint::black_box(m.complete_into(Addr::new(i * 64), &mut targets));
        }
    };
    for _ in 0..3 {
        pass();
    }
    let best_ns = best_of(5, 20_000, pass);
    row("mshr_insert_complete_x8", 8, best_ns)
}

/// A 32-request row-hit stream through the SDRAM bank state machine,
/// including the idle ticks the next-ready fast path skips.
fn measure_sdram() -> Row {
    let mut done_buf = Vec::new();
    let mut pass = || {
        let mut mem = Sdram::new(SdramConfig::baseline());
        for i in 0..32u64 {
            mem.try_push(MemToken(i), Addr::new(i * 64), false, Cycle::new(i));
        }
        let mut done = 0;
        let mut now = 0;
        while done < 32 {
            done_buf.clear();
            mem.tick_into(Cycle::new(now), &mut done_buf);
            done += done_buf.len();
            now += 1;
        }
        std::hint::black_box(now);
    };
    for _ in 0..3 {
        pass();
    }
    let best_ns = best_of(5, 500, pass);
    row("sdram/row_hit_stream_32", 32, best_ns)
}

/// 10k instructions through the functional warm loop (the skip phase every
/// cell pays before detailed simulation starts).
fn measure_warm() -> Row {
    let cfg: Arc<SystemConfig> = Arc::new(SystemConfig::baseline());
    let workload = Workload::new(benchmarks::by_name("swim").unwrap(), 1);
    let buf = Arc::new(TraceBuffer::capture(&workload, 10_000));
    let pass = || {
        let mut mem = MemorySystem::new(Arc::clone(&cfg), Vec::new()).unwrap();
        workload.initialize(mem.functional_mut());
        for inst in TraceBuffer::replay(&buf) {
            mem.warm_inst(inst.pc, inst.warm_mem_ref());
        }
        std::hint::black_box(mem.finish_warmup());
    };
    for _ in 0..2 {
        pass();
    }
    let best_ns = best_of(5, 8, pass);
    row("warmup/warm_inst_10k", 10_000, best_ns)
}

/// One warm-cache single-cell campaign query through the full HTTP path:
/// connect, POST the spec, stream the answer back. The first query
/// computes and memoizes the cell; every timed iteration is a memo hit,
/// so this row tracks the *service* overhead (spec parse, queueing,
/// scheduling, socket round trip), which is what a regression gate over
/// the daemon should watch. `insts_per_s` is queries per second — same
/// field, same gate arithmetic as the substrate rows.
fn measure_serve() -> Row {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        queue_cap: 64,
        cache_dir: None,
        resident_cap_bytes: None,
    })
    .expect("bind serve bench daemon");
    let client = Client::new(server.addr().to_string());
    let spec = format!(
        r#"{{"benchmarks":["swim"],"mechanisms":["Base"],"window":{{"skip":2000,"simulate":{INSTS}}}}}"#
    );
    let pass = || {
        match client.campaign(&spec).expect("serve bench query") {
            CampaignOutcome::Completed(lines) => assert_eq!(lines.len(), 1),
            CampaignOutcome::Rejected(r) => panic!("serve bench rejected: {}", r.status),
        };
    };
    for _ in 0..3 {
        pass();
    }
    let best_ns = best_of(5, 50, pass);
    drop(server);
    row("serve/cell_query_warm", 1, best_ns)
}

fn measure_named(bench: &str) -> Row {
    match bench {
        "simulator/swim_Base_5k_insts" => measure_simulator(MechanismKind::Base),
        "simulator/swim_GHB_5k_insts" => measure_simulator(MechanismKind::Ghb),
        "cache_array/l1_lookup_hit_1k" => measure_cache_array(),
        "mshr_insert_complete_x8" => measure_mshr(),
        "sdram/row_hit_stream_32" => measure_sdram(),
        "warmup/warm_inst_10k" => measure_warm(),
        "serve/cell_query_warm" => measure_serve(),
        other => panic!("unknown bench {other}"),
    }
}

fn measure_all() -> Vec<Row> {
    BENCHES
        .iter()
        .map(|bench| {
            let row = measure_named(bench);
            eprintln!(
                "{}: {} ns/iter ({} insts/s)",
                row.bench, row.ns_per_iter, row.insts_per_s
            );
            row
        })
        .collect()
}

fn to_json(rows: &[Row]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"bench\": \"{}\", \"ns_per_iter\": {}, \"insts_per_s\": {}}}{}\n",
            r.bench,
            r.ns_per_iter,
            r.insts_per_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n");
    s
}

/// Finds the highest-numbered `BENCH_<n>.json` in `dir`.
fn latest_baseline(dir: &str) -> Option<std::path::PathBuf> {
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let Some(n) = path
            .file_name()
            .and_then(|f| f.to_str())
            .and_then(|name| name.strip_prefix("BENCH_"))
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, path));
        }
    }
    best.map(|(_, p)| p)
}

/// Pulls `insts_per_s` for `bench` out of a trajectory file. The files are
/// written by this binary (one object per line), so a line scan suffices.
fn baseline_insts_per_s(text: &str, bench: &str) -> Option<f64> {
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"bench\": \"{bench}\"")))?;
    let tail = line.split("\"insts_per_s\":").nth(1)?;
    tail.trim()
        .trim_end_matches(['}', ',', ' '])
        .parse::<f64>()
        .ok()
}

fn check(dir: &str) {
    let Some(baseline_path) = latest_baseline(dir) else {
        eprintln!("no BENCH_*.json baseline under {dir}; skipping check");
        return;
    };
    let text = std::fs::read_to_string(&baseline_path).expect("read baseline");
    let rows = measure_all();
    let mut failed = false;
    for r in &rows {
        // Rows absent from the baseline (older snapshots predate the
        // substrate rows) are skipped: the gate tightens as soon as a
        // snapshot that has them is committed.
        let Some(baseline) = baseline_insts_per_s(&text, &r.bench) else {
            eprintln!("{}: no baseline row; skipped", r.bench);
            continue;
        };
        let tolerance = if r.bench == HEADLINE {
            FLOOR
        } else {
            SUBSTRATE_FLOOR
        };
        let floor = baseline * tolerance;
        let mut current = r.insts_per_s as f64;
        if current < floor {
            // A loaded machine slows every batch at once; one fresh
            // measurement separates sustained contention from a real
            // regression before failing the gate.
            eprintln!(
                "{}: below floor ({current:.0} < {floor:.0}); re-measuring once",
                r.bench
            );
            current = current.max(measure_named(&r.bench).insts_per_s as f64);
        }
        let verdict = if current >= floor { "ok" } else { "FAIL" };
        eprintln!(
            "{verdict}: {} {current:.0} insts/s vs baseline {baseline:.0} (floor {floor:.0})",
            r.bench
        );
        failed |= current < floor;
    }
    if failed {
        eprintln!("FAIL: throughput regressed vs {}", baseline_path.display());
        std::process::exit(1);
    }
    eprintln!(
        "ok: all shared rows within tolerance of {}",
        baseline_path.display()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--out") => {
            let path = args.get(1).expect("--out requires a path");
            let rows = measure_all();
            std::fs::write(path, to_json(&rows)).expect("write trajectory file");
            eprintln!("wrote {path}");
        }
        Some("--check") => {
            let dir = args.get(1).map(String::as_str).unwrap_or(".");
            check(dir);
        }
        _ => {
            eprintln!("usage: bench_json --out <file> | --check [dir]");
            std::process::exit(2);
        }
    }
}
