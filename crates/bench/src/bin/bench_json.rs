//! Simulator-throughput measurement for the committed perf trajectory.
//!
//! The criterion benches (`cargo bench -p microlib-bench`) are the
//! interactive tool; this binary is the *recorded* one: it times the same
//! `simulator/*` workloads with a plain best-of-batches harness and writes
//! machine-readable rows, so every PR can commit a `BENCH_<pr>.json`
//! snapshot and CI can fail on throughput regressions the same way the
//! golden gate fails on CPI drift.
//!
//! Usage:
//!
//! ```text
//! bench_json --out BENCH_6.json    # measure, write the trajectory rows
//! bench_json --check [dir]         # measure, compare against the latest
//!                                  # committed BENCH_*.json in dir (default
//!                                  # "."); exit 1 if the headline bench
//!                                  # regresses more than 15% in insts/s.
//!                                  # Skips (exit 0) when no baseline exists.
//! ```
//!
//! Row format (one JSON object per line, inside a top-level array):
//! `{"bench": ..., "ns_per_iter": ..., "insts_per_s": ...}`.

use microlib::{run_one, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::SystemConfig;
use microlib_trace::TraceWindow;
use std::time::Instant;

/// Instructions simulated per iteration (matches the criterion benches).
const INSTS: u64 = 5_000;
/// The bench the CI regression gate tracks.
const HEADLINE: &str = "simulator/swim_Base_5k_insts";
/// Minimum acceptable fraction of the baseline's insts/s (15% tolerance).
const FLOOR: f64 = 0.85;

struct Row {
    bench: String,
    ns_per_iter: u64,
    insts_per_s: u64,
}

/// Times one simulator config: warmup, then the best (lowest mean) of
/// several fixed-size batches — the minimum over batches discards
/// scheduling noise, which only ever adds time.
fn measure(kind: MechanismKind) -> Row {
    let cfg = SystemConfig::baseline();
    let opts = SimOptions {
        window: TraceWindow::new(2_000, INSTS),
        ..SimOptions::default()
    };
    for _ in 0..3 {
        std::hint::black_box(run_one(&cfg, kind, "swim", &opts).unwrap());
    }
    let (batches, iters) = (5, 16);
    let mut best_ns = f64::INFINITY;
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(run_one(&cfg, kind, "swim", &opts).unwrap());
        }
        best_ns = best_ns.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    Row {
        bench: format!("simulator/swim_{kind}_5k_insts"),
        ns_per_iter: best_ns.round() as u64,
        insts_per_s: (INSTS as f64 * 1e9 / best_ns).round() as u64,
    }
}

fn measure_all() -> Vec<Row> {
    [MechanismKind::Base, MechanismKind::Ghb]
        .into_iter()
        .map(|kind| {
            let row = measure(kind);
            eprintln!(
                "{}: {} ns/iter ({} insts/s)",
                row.bench, row.ns_per_iter, row.insts_per_s
            );
            row
        })
        .collect()
}

fn to_json(rows: &[Row]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"bench\": \"{}\", \"ns_per_iter\": {}, \"insts_per_s\": {}}}{}\n",
            r.bench,
            r.ns_per_iter,
            r.insts_per_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n");
    s
}

/// Finds the highest-numbered `BENCH_<n>.json` in `dir`.
fn latest_baseline(dir: &str) -> Option<std::path::PathBuf> {
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let Some(n) = path
            .file_name()
            .and_then(|f| f.to_str())
            .and_then(|name| name.strip_prefix("BENCH_"))
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, path));
        }
    }
    best.map(|(_, p)| p)
}

/// Pulls `insts_per_s` for `bench` out of a trajectory file. The files are
/// written by this binary (one object per line), so a line scan suffices.
fn baseline_insts_per_s(text: &str, bench: &str) -> Option<f64> {
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"bench\": \"{bench}\"")))?;
    let tail = line.split("\"insts_per_s\":").nth(1)?;
    tail.trim()
        .trim_end_matches(['}', ',', ' '])
        .parse::<f64>()
        .ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--out") => {
            let path = args.get(1).expect("--out requires a path");
            let rows = measure_all();
            std::fs::write(path, to_json(&rows)).expect("write trajectory file");
            eprintln!("wrote {path}");
        }
        Some("--check") => {
            let dir = args.get(1).map(String::as_str).unwrap_or(".");
            let Some(baseline_path) = latest_baseline(dir) else {
                eprintln!("no BENCH_*.json baseline under {dir}; skipping check");
                return;
            };
            let text = std::fs::read_to_string(&baseline_path).expect("read baseline");
            let Some(baseline) = baseline_insts_per_s(&text, HEADLINE) else {
                eprintln!(
                    "{} has no {HEADLINE} row; skipping check",
                    baseline_path.display()
                );
                return;
            };
            let rows = measure_all();
            let mut current = rows
                .iter()
                .find(|r| r.bench == HEADLINE)
                .expect("headline bench measured")
                .insts_per_s as f64;
            let floor = baseline * FLOOR;
            if current < floor {
                // A loaded machine slows every batch at once; one fresh
                // measurement separates sustained contention from a real
                // regression before failing the gate.
                eprintln!("below floor ({current:.0} < {floor:.0}); re-measuring once");
                current = current.max(measure(MechanismKind::Base).insts_per_s as f64);
            }
            eprintln!(
                "{HEADLINE}: {current:.0} insts/s vs baseline {baseline:.0} ({} floor {floor:.0})",
                baseline_path.display()
            );
            if current < floor {
                eprintln!(
                    "FAIL: throughput regressed more than {:.0}% vs {}",
                    (1.0 - FLOOR) * 100.0,
                    baseline_path.display()
                );
                std::process::exit(1);
            }
            eprintln!("ok: within tolerance");
        }
        _ => {
            eprintln!("usage: bench_json --out <file> | --check [dir]");
            std::process::exit(2);
        }
    }
}
