use microlib::{run_matrix, rank_mechanisms, ExperimentConfig};
use microlib_mech::MechanismKind;
use microlib_trace::{benchmarks, TraceWindow};
use std::time::Instant;

fn main() {
    let t = Instant::now();
    let cfg = ExperimentConfig::paper_baseline(TraceWindow::new(150_000, 100_000));
    let m = match run_matrix(&cfg) {
        Ok(m) => m,
        Err(e) => { eprintln!("MATRIX FAILED: {e}"); std::process::exit(1); }
    };
    println!("matrix in {:?}", t.elapsed());
    let names: Vec<&str> = cfg.benchmarks.iter().map(String::as_str).collect();
    println!("\n== Fig 4: mean speedups (paper rank target in parens) ==");
    let target = [("GHB",1),("SP",2),("CDPSP",3),("TK",4),("TCP",5),("TP",6),("TKVC",7),("VC",8),("DBCP",9),("FVC",10),("Base",11),("CDP",12),("Markov",13)];
    for r in rank_mechanisms(&m, &names) {
        let t = target.iter().find(|(n,_)| *n == format!("{}", r.mechanism)).map(|(_,p)| *p).unwrap_or(0);
        println!("{:2}. {:8} {:.4}   (paper rank {})", r.rank, format!("{}", r.mechanism), r.mean_speedup, t);
    }
    println!("\n== anecdotes ==");
    for (b, k) in [("mcf", MechanismKind::Cdp), ("twolf", MechanismKind::Cdp), ("equake", MechanismKind::Cdp), ("ammp", MechanismKind::Cdp),
                   ("gzip", MechanismKind::Markov), ("ammp", MechanismKind::Markov), ("lucas", MechanismKind::Ghb), ("swim", MechanismKind::Ghb),
                   ("swim", MechanismKind::Sp), ("mcf", MechanismKind::Ghb)] {
        println!("{:8} {:8} speedup {:.3}", b, format!("{k:?}"), m.speedup(b, k));
    }
    println!("\n== per-benchmark base IPC / L1D miss ==");
    for b in benchmarks::NAMES {
        let r = m.result(b, MechanismKind::Base);
        println!("{:10} ipc {:.3} l1dmiss {:.3} l2miss {:.3} memlat {:.0}", b, r.perf.ipc(),
            r.l1d.miss_ratio().unwrap_or(0.0), r.l2.miss_ratio().unwrap_or(0.0),
            r.memory.average_latency().unwrap_or(0.0));
    }
}
