//! Calibration snapshot: sweeps the paper's fixed window through the
//! campaign engine and prints the Fig 4 ranking against the paper's
//! target ranks, plus per-benchmark anecdotes and base-column vitals.

use microlib::{rank_mechanisms, ExperimentConfig};
use microlib_mech::MechanismKind;
use microlib_trace::{benchmarks, TraceWindow};
use std::time::Instant;

fn main() {
    let t = Instant::now();
    let mut cfg = ExperimentConfig::paper_baseline(TraceWindow::new(150_000, 100_000));
    cfg.threads = microlib_bench::std_threads();
    let m = microlib_bench::sweep(&cfg);
    eprintln!("matrix in {:?}", t.elapsed());
    let names: Vec<&str> = cfg.benchmarks.iter().map(String::as_str).collect();
    println!("\n== Fig 4: mean speedups (paper rank target in parens) ==");
    let target = [
        ("GHB", 1),
        ("SP", 2),
        ("CDPSP", 3),
        ("TK", 4),
        ("TCP", 5),
        ("TP", 6),
        ("TKVC", 7),
        ("VC", 8),
        ("DBCP", 9),
        ("FVC", 10),
        ("Base", 11),
        ("CDP", 12),
        ("Markov", 13),
    ];
    for r in rank_mechanisms(&m, &names) {
        let t = target
            .iter()
            .find(|(n, _)| *n == format!("{}", r.mechanism))
            .map(|(_, p)| *p)
            .unwrap_or(0);
        println!(
            "{:2}. {:8} {:.4}   (paper rank {})",
            r.rank,
            format!("{}", r.mechanism),
            r.mean_speedup,
            t
        );
    }
    println!("\n== anecdotes ==");
    for (b, k) in [
        ("mcf", MechanismKind::Cdp),
        ("twolf", MechanismKind::Cdp),
        ("equake", MechanismKind::Cdp),
        ("ammp", MechanismKind::Cdp),
        ("gzip", MechanismKind::Markov),
        ("ammp", MechanismKind::Markov),
        ("lucas", MechanismKind::Ghb),
        ("swim", MechanismKind::Ghb),
        ("swim", MechanismKind::Sp),
        ("mcf", MechanismKind::Ghb),
    ] {
        println!(
            "{:8} {:8} speedup {:.3}",
            b,
            format!("{k:?}"),
            m.speedup(b, k)
        );
    }
    println!("\n== per-benchmark base IPC / L1D miss ==");
    for b in benchmarks::NAMES {
        let r = m.result(b, MechanismKind::Base);
        println!(
            "{:10} ipc {:.3} l1dmiss {:.3} l2miss {:.3} memlat {:.0}",
            b,
            r.perf.ipc(),
            r.l1d.miss_ratio().unwrap_or(0.0),
            r.l2.miss_ratio().unwrap_or(0.0),
            r.memory.average_latency().unwrap_or(0.0)
        );
    }
}
