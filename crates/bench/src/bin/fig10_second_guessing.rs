//! Fig 10 — "Effect of second-guessing": the TCP article never stated its
//! prefetch request-queue size; the paper tried 1 vs 128 entries and found
//! per-benchmark swings in both directions (tiny for crafty/eon, dramatic
//! for lucas/mgrid/art — a large buffer can *hurt* by seizing the bus).

use microlib::report::{pct, text_table};
use microlib::{run_custom, run_one};
use microlib_mech::{MechanismKind, TagCorrelatingPrefetcher};
use microlib_trace::benchmarks;

fn main() {
    microlib_bench::header(
        "fig10_second_guessing",
        "Fig 10 (Effect of second-guessing: TCP prefetch queue size)",
        "TCP speedup with a 128-entry vs a 1-entry request queue, per benchmark",
    );
    let cfg = microlib_model::SystemConfig::baseline();
    let opts = microlib_bench::std_options();
    let mut rows = Vec::new();
    let mut spreads = Vec::new();
    for bench in benchmarks::NAMES {
        let base = run_one(&cfg, MechanismKind::Base, bench, &opts).expect("base runs");
        let q128 = run_one(&cfg, MechanismKind::Tcp, bench, &opts).expect("TCP/128 runs");
        let q1 = run_custom(
            &cfg,
            Box::new(TagCorrelatingPrefetcher::with_queue_capacity(1)),
            MechanismKind::Tcp,
            bench,
            &opts,
        )
        .expect("TCP/1 runs");
        let s128 = q128.perf.speedup_over(&base.perf);
        let s1 = q1.perf.speedup_over(&base.perf);
        let delta = (s128 - s1) / s1 * 100.0;
        spreads.push(delta.abs());
        rows.push(vec![
            bench.to_owned(),
            format!("{:.3}", s128),
            format!("{:.3}", s1),
            pct(delta),
        ]);
    }
    println!(
        "{}",
        text_table(&["benchmark", "queue = 128", "queue = 1", "difference"], &rows)
    );
    if let Some(avg) = microlib_model::stats::mean(&spreads) {
        println!("average |difference|: {avg:.1}%  — an undocumented parameter moves results");
        println!("in both directions (the paper settled on 128 after contacting the authors).");
    }
}
