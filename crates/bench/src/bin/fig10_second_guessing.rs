//! Standalone entry point for the `fig10_second_guessing` experiment; the body lives in
//! [`microlib_bench::experiments::fig10_second_guessing`] so `run_all` can execute it
//! in-process against the shared campaign context.

fn main() {
    let mut cx = microlib_bench::Context::new();
    let stdout = std::io::stdout();
    microlib_bench::experiments::fig10_second_guessing::run(&mut cx, &mut stdout.lock())
        .expect("write experiment output");
}
