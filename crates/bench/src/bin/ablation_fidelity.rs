//! Ablation (extension beyond the paper's figures): Fig 1 toggles all four
//! cache-fidelity hazards at once and Fig 9 isolates the MSHR; this harness
//! ablates *each* of the §2.2 model differences individually, quantifying
//! how much of the SimpleScalar-vs-MicroLib IPC gap each one explains.

use microlib::report::text_table;
use microlib::{run_one, SimOptions};
use microlib_mech::MechanismKind;
use microlib_model::{FidelityConfig, SystemConfig};

fn main() {
    microlib_bench::header(
        "ablation_fidelity",
        "Extension: per-toggle fidelity ablation (beyond Fig 1/Fig 9)",
        "Mean IPC over six representative benchmarks with one hazard removed at a time",
    );
    let benches = ["swim", "mgrid", "mcf", "gzip", "gcc", "crafty"];
    let opts = SimOptions {
        seed: microlib_bench::std_seed(),
        window: microlib_bench::std_window(),
        ..SimOptions::default()
    };

    let variants: [(&str, Box<dyn Fn(&mut FidelityConfig)>); 6] = [
        ("detailed (MicroLib)", Box::new(|_| {})),
        ("no finite MSHR", Box::new(|f| f.finite_mshr = false)),
        ("no pipeline stalls", Box::new(|f| f.pipeline_stalls = false)),
        ("no LSQ backpressure", Box::new(|f| f.lsq_backpressure = false)),
        ("free refill ports", Box::new(|f| f.refill_uses_port = false)),
        ("idealized (SimpleScalar-like)", Box::new(|f| *f = FidelityConfig::simplescalar_like())),
    ];

    let mut rows = Vec::new();
    let mut detailed_mean = 0.0;
    for (label, mutate) in &variants {
        let mut cfg = SystemConfig::baseline_constant_memory();
        mutate(&mut cfg.fidelity);
        let mut ipcs = Vec::new();
        for b in benches {
            let r = run_one(&cfg, MechanismKind::Base, b, &opts).expect("run");
            ipcs.push(r.perf.ipc());
        }
        let mean = microlib_model::stats::mean(&ipcs).unwrap_or(0.0);
        if *label == "detailed (MicroLib)" {
            detailed_mean = mean;
        }
        let delta = if detailed_mean > 0.0 {
            (mean - detailed_mean) / detailed_mean * 100.0
        } else {
            0.0
        };
        rows.push(vec![label.to_string(), format!("{mean:.3}"), format!("{delta:+.2}%")]);
    }
    println!(
        "{}",
        text_table(&["model variant", "mean IPC", "vs detailed"], &rows)
    );
    println!("each removed hazard inflates IPC; their sum approximates the Fig 1 gap.");
}
