//! Standalone entry point for the `fig08_memory_model` experiment; the body lives in
//! [`microlib_bench::experiments::fig08_memory_model`] so `run_all` can execute it
//! in-process against the shared campaign context.

fn main() {
    let mut cx = microlib_bench::Context::new();
    let stdout = std::io::stdout();
    microlib_bench::experiments::fig08_memory_model::run(&mut cx, &mut stdout.lock())
        .expect("write experiment output");
}
