//! Fig 1 — "MicroLib cache model validation": per-benchmark IPC under the
//! detailed MicroLib cache model vs the SimpleScalar-like idealized model
//! (infinite MSHRs, no pipeline stalls, no LSQ backpressure, free refill
//! ports). The paper found 6.8% average difference initially, 2% after
//! aligning the models; the idealized model overestimates IPC.

use microlib::report::{pct, text_table};
use microlib::compare_fidelity;
use microlib_trace::benchmarks;

fn main() {
    microlib_bench::header(
        "fig01_model_validation",
        "Fig 1 (MicroLib cache model validation)",
        "IPC: detailed model vs SimpleScalar-like idealized model, per benchmark",
    );
    let window = microlib_bench::std_window();
    let seed = microlib_bench::std_seed();
    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for bench in benchmarks::NAMES {
        match compare_fidelity(bench, window, seed) {
            Ok(cmp) => {
                gaps.push(cmp.gap_percent().abs());
                rows.push(vec![
                    bench.to_owned(),
                    format!("{:.3}", cmp.detailed_ipc),
                    format!("{:.3}", cmp.idealized_ipc),
                    pct(cmp.gap_percent()),
                ]);
            }
            Err(e) => rows.push(vec![bench.to_owned(), "-".into(), "-".into(), format!("{e}")]),
        }
    }
    println!(
        "{}",
        text_table(&["benchmark", "detailed IPC", "idealized IPC", "gap"], &rows)
    );
    if let Some(avg) = microlib_model::stats::mean(&gaps) {
        println!("average |IPC gap|: {avg:.1}%  (paper: 6.8% before alignment, 2% after)");
    }
}
