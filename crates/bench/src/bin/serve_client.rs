//! CLI client for the `microlib-serve` daemon — the tool CI and the
//! integration tests drive the end-to-end service checks with.
//!
//! ```text
//! serve_client submit  --addr HOST:PORT (--spec JSON | --spec-file F)
//! serve_client local   (--spec JSON | --spec-file F) [--cache-dir DIR]
//! serve_client metrics --addr HOST:PORT
//! ```
//!
//! `submit` posts the spec and prints the streamed NDJSON lines restored
//! to grid order; `local` computes the same spec directly (no HTTP, no
//! daemon) through the identical rendering path — so `diff <(submit)
//! <(local)` is the byte-level proof that the service answers exactly
//! what the library computes. `metrics` prints the daemon's counter
//! text. Exit codes: 0 success, 1 runtime/HTTP failure, 2 usage.

use microlib::ArtifactStore;
use microlib_serve::{run_cell, CampaignOutcome, CampaignSpec, Client};
use std::process::exit;

struct Cli {
    mode: String,
    addr: Option<String>,
    spec: Option<String>,
    cache_dir: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_client submit  --addr HOST:PORT (--spec JSON | --spec-file FILE)\n\
         \x20      serve_client local   (--spec JSON | --spec-file FILE) [--cache-dir DIR]\n\
         \x20      serve_client metrics --addr HOST:PORT"
    );
    exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let Some(mode) = args.next() else { usage() };
    let mut cli = Cli {
        mode,
        addr: None,
        spec: None,
        cache_dir: None,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cli.addr = Some(value()),
            "--spec" => cli.spec = Some(value()),
            "--spec-file" => {
                let path = value();
                match std::fs::read_to_string(&path) {
                    Ok(text) => cli.spec = Some(text),
                    Err(e) => {
                        eprintln!("serve_client: cannot read {path}: {e}");
                        exit(1);
                    }
                }
            }
            "--cache-dir" => cli.cache_dir = Some(value()),
            _ => usage(),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    match cli.mode.as_str() {
        "submit" => {
            let (Some(addr), Some(spec)) = (&cli.addr, &cli.spec) else {
                usage()
            };
            match Client::new(addr.clone()).campaign(spec) {
                Ok(CampaignOutcome::Completed(lines)) => {
                    for line in lines {
                        println!("{line}");
                    }
                }
                Ok(CampaignOutcome::Rejected(response)) => {
                    eprintln!(
                        "serve_client: rejected with {}: {}",
                        response.status,
                        response.body.trim_end()
                    );
                    exit(1);
                }
                Err(e) => {
                    eprintln!("serve_client: {e}");
                    exit(1);
                }
            }
        }
        "local" => {
            let Some(spec_text) = &cli.spec else { usage() };
            let spec = match CampaignSpec::parse(spec_text) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("serve_client: bad spec: {e}");
                    exit(1);
                }
            };
            let mut store = ArtifactStore::new();
            if let Some(dir) = &cli.cache_dir {
                store = store.with_disk_cache(dir);
            }
            for cell in spec.cells() {
                println!("{}", run_cell(&store, &cell));
            }
            store.finish();
        }
        "metrics" => {
            let Some(addr) = &cli.addr else { usage() };
            match Client::new(addr.clone()).metrics() {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("serve_client: {e}");
                    exit(1);
                }
            }
        }
        _ => usage(),
    }
}
