//! Fig 3 — "Fixing the DBCP reverse-engineered implementation": speedups of
//! the initial (four documented bugs) vs fixed DBCP implementations. The
//! paper measured an average 38% difference, and noted that the TK authors'
//! own independent reverse-engineering landed close to the *initial*
//! implementation.

use microlib::report::{pct, text_table};
use microlib::compare_dbcp_variants;
use microlib_trace::benchmarks;

fn main() {
    microlib_bench::header(
        "fig03_dbcp_fix",
        "Fig 3 (Fixing the DBCP reverse-engineered implementation)",
        "Speedup of the initial (buggy) vs fixed DBCP per benchmark",
    );
    let window = microlib_bench::article_window();
    let seed = microlib_bench::std_seed();
    let mut rows = Vec::new();
    let mut diffs = Vec::new();
    for bench in benchmarks::NAMES {
        match compare_dbcp_variants(bench, window, seed) {
            Ok(cmp) => {
                diffs.push(cmp.difference_percent().abs());
                rows.push(vec![
                    bench.to_owned(),
                    format!("{:.3}", cmp.initial),
                    format!("{:.3}", cmp.fixed),
                    pct(cmp.difference_percent()),
                ]);
            }
            Err(e) => rows.push(vec![bench.to_owned(), "-".into(), "-".into(), format!("{e}")]),
        }
    }
    println!(
        "{}",
        text_table(&["benchmark", "DBCP-initial", "DBCP (fixed)", "difference"], &rows)
    );
    if let Some(avg) = microlib_model::stats::mean(&diffs) {
        println!("average |difference|: {avg:.1}%  (paper: 38% average)");
    }
}
