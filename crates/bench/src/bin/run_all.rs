//! Runs the experiment battery (every figure and table, or a `--only`
//! selection) **in-process** on the campaign engine, capturing each
//! experiment's output under `results/`.
//!
//! All experiments share one [`microlib_bench::Context`]: the standard
//! 26×13 campaign is swept exactly once and reused by the eight
//! experiments that need it, and the context's battery-wide
//! [`ArtifactStore`](microlib::ArtifactStore) shares traces, warm-state
//! checkpoints and duplicated cells across the rest. Captured outputs
//! contain only deterministic content (progress and timing go to stderr),
//! so `results/` is bit-identical for any `MICROLIB_THREADS` value and
//! with artifact sharing on or off (`MICROLIB_ARTIFACTS=off`).
//!
//! # Usage
//!
//! ```text
//! run_all [--sampled] [--only <name>[,<name>...]]
//! ```
//!
//! `--only` filters the battery by experiment name (exact or unambiguous
//! prefix — `--only fig03` runs `fig03_dbcp_fix`), so a single figure can
//! be (re)produced without the whole battery.
//!
//! `--sampled` runs every sweep SimPoint-sampled (sets `MICROLIB_SAMPLED=1`
//! unless an explicit spec is already in the environment) and writes to
//! `results-sampled/` so the committed full-mode `results/` stay
//! untouched. The `ablation_sampling` experiment — which exists to compare
//! sampled against full simulation — is excluded from the default sampled
//! battery (select it explicitly with `--only` if wanted).

use microlib_bench::{experiments, Context};
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::process::exit;
use std::time::Instant;

/// Resolves one `--only` entry against the experiment list (exact name
/// wins, else an unambiguous prefix).
fn resolve(name: &str) -> Result<&'static str, String> {
    if let Some((exact, _)) = experiments::ALL.iter().find(|(n, _)| *n == name) {
        return Ok(exact);
    }
    let matches: Vec<&'static str> = experiments::ALL
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| n.starts_with(name))
        .collect();
    match matches.as_slice() {
        [one] => Ok(one),
        [] => Err(format!(
            "unknown experiment {name:?}; available:\n  {}",
            experiments::ALL
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join("\n  ")
        )),
        many => Err(format!(
            "ambiguous experiment {name:?}: {}",
            many.join(", ")
        )),
    }
}

/// Parses the command line: the set of experiment names to run, and
/// whether `--sampled` was given.
fn selection() -> Result<(Vec<&'static str>, bool), String> {
    let mut args = std::env::args().skip(1);
    let mut selected: Vec<&'static str> = Vec::new();
    let mut explicit = false;
    let mut sampled = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sampled" => sampled = true,
            "--only" => {
                explicit = true;
                let list = args
                    .next()
                    .ok_or_else(|| "--only needs a comma-separated experiment list".to_owned())?;
                for name in list.split(',').filter(|s| !s.is_empty()) {
                    let resolved = resolve(name)?;
                    if !selected.contains(&resolved) {
                        selected.push(resolved);
                    }
                }
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (expected --sampled or --only <list>)"
                ))
            }
        }
    }
    if !explicit {
        selected = experiments::ALL
            .iter()
            .map(|(n, _)| *n)
            // The sampled-vs-full calibration study forces a full-mode
            // standard campaign, defeating the point of a sampled battery.
            .filter(|n| !(sampled && *n == "ablation_sampling"))
            .collect();
    }
    Ok((selected, sampled))
}

fn main() {
    let (selected, sampled) = match selection() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    };
    // `--sampled` must actually sample: override an unset or *disabling*
    // MICROLIB_SAMPLED (a stale `=0` in the shell would otherwise run the
    // whole battery in full mode while labeling the output sampled), but
    // respect an explicit sampling spec.
    if sampled
        && matches!(
            std::env::var("MICROLIB_SAMPLED").as_deref(),
            Err(_) | Ok("" | "0" | "off" | "false")
        )
    {
        std::env::set_var("MICROLIB_SAMPLED", "1");
    }
    let out_dir = if sampled {
        "results-sampled"
    } else {
        "results"
    };
    fs::create_dir_all(out_dir).expect("results dir");
    let mut cx = Context::new();
    let battery = Instant::now();
    let mut failed = 0usize;
    let mut ran = 0usize;
    for (name, run) in experiments::ALL {
        if !selected.contains(name) {
            continue;
        }
        ran += 1;
        println!(">>> {name}");
        let t = Instant::now();
        let mut captured: Vec<u8> = Vec::new();
        // One failing experiment (a panicking sweep cell, say) must not
        // sink the rest of the battery: catch it, keep the partial
        // capture for diagnosis, move on — the old child-process
        // orchestrator's isolation, kept across the in-process port.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| run(&mut cx, &mut captured)));
        let path = format!("{out_dir}/{name}.txt");
        fs::write(&path, &captured).expect("write result");
        match outcome {
            Ok(Ok(())) => println!("    -> {path} ({:.1?})", t.elapsed()),
            Ok(Err(e)) => {
                failed += 1;
                eprintln!("{name} FAILED writing output: {e} (partial capture in {path})");
            }
            Err(payload) => {
                failed += 1;
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic");
                eprintln!("{name} FAILED: {msg} (partial capture in {path})");
            }
        }
        // Warm checkpoints only pay off within one experiment's sweeps
        // (different experiments warm different configurations); traces
        // and the cell memo keep earning across the battery and stay.
        cx.store().clear_warm_states();
    }
    let stats = cx.store().stats();
    eprintln!(
        "artifact store: traces {}/{} hits, warm states {}/{} hits, sampling plans {}/{} hits, cell memo {}/{} hits",
        stats.trace_hits,
        stats.trace_hits + stats.trace_misses,
        stats.warm_hits,
        stats.warm_hits + stats.warm_misses,
        stats.plan_hits,
        stats.plan_hits + stats.plan_misses,
        stats.memo_hits,
        stats.memo_hits + stats.memo_misses,
    );
    println!(
        "\nall {ran} experiments done in {:.1?} ({failed} failed); results under {out_dir}/",
        battery.elapsed()
    );
    if failed > 0 {
        exit(1);
    }
}
