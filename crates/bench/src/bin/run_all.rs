//! Runs the complete experiment battery (every figure and table)
//! **in-process** on the campaign engine, capturing each experiment's
//! output under `results/`.
//!
//! Unlike the old child-process orchestrator, all experiments share one
//! [`microlib_bench::Context`]: the standard 26×13 campaign is swept
//! exactly once and reused by the eight experiments that need it, so a
//! full battery costs a fraction of the former sixteen independent
//! sweeps. Captured outputs contain only deterministic content (progress
//! and timing go to stderr), so `results/` is bit-identical for any
//! `MICROLIB_THREADS` value.

use microlib_bench::{experiments, Context};
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

fn main() {
    fs::create_dir_all("results").expect("results dir");
    let mut cx = Context::new();
    let battery = Instant::now();
    let mut failed = 0usize;
    for (name, run) in experiments::ALL {
        println!(">>> {name}");
        let t = Instant::now();
        let mut captured: Vec<u8> = Vec::new();
        // One failing experiment (a panicking sweep cell, say) must not
        // sink the rest of the battery: catch it, keep the partial
        // capture for diagnosis, move on — the old child-process
        // orchestrator's isolation, kept across the in-process port.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| run(&mut cx, &mut captured)));
        let path = format!("results/{name}.txt");
        fs::write(&path, &captured).expect("write result");
        match outcome {
            Ok(Ok(())) => println!("    -> {path} ({:.1?})", t.elapsed()),
            Ok(Err(e)) => {
                failed += 1;
                eprintln!("{name} FAILED writing output: {e} (partial capture in {path})");
            }
            Err(payload) => {
                failed += 1;
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic");
                eprintln!("{name} FAILED: {msg} (partial capture in {path})");
            }
        }
    }
    println!(
        "\nall {} experiments done in {:.1?} ({failed} failed); results under results/",
        experiments::ALL.len(),
        battery.elapsed()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
