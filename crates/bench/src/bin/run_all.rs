//! Runs the experiment battery (every figure and table, or a `--only`
//! selection) **in-process** on the campaign engine, capturing each
//! experiment's output under `results/`.
//!
//! All experiments share one [`microlib_bench::Context`]: the standard
//! 26×13 campaign is swept exactly once and reused by the eight
//! experiments that need it, and the context's battery-wide
//! [`ArtifactStore`](microlib::ArtifactStore) shares traces, warm-state
//! checkpoints and duplicated cells across the rest. Captured outputs
//! contain only deterministic content (progress and timing go to stderr),
//! so `results/` is bit-identical for any `MICROLIB_THREADS` value, with
//! artifact sharing on or off (`MICROLIB_ARTIFACTS=off`), and with the
//! disk cache cold, warm or disabled.
//!
//! # Usage
//!
//! ```text
//! run_all [--sampled] [--only <name>[,<name>...]]
//!         [--cache-dir <dir>] [--no-cache] [--verify-golden <dir>]
//!         [--shard i/N] [--workers N] [--out-dir <dir>]
//!         [--mine] [--mine-budget <n>] [--mine-bound <f>]
//!         [--mine-export <dir>] [--mine-cell <benchmark>:<delta>]
//! ```
//!
//! `--only` filters the battery by experiment name (exact or unambiguous
//! prefix — `--only fig03` runs `fig03_dbcp_fix`), so a single figure can
//! be (re)produced without the whole battery.
//!
//! `--sampled` runs every sweep SimPoint-sampled (sets `MICROLIB_SAMPLED=1`
//! unless an explicit spec is already in the environment) and writes to
//! `results-sampled/` so the committed full-mode `results/` stay
//! untouched. The `ablation_sampling` experiment — which exists to compare
//! sampled against full simulation — is excluded from the default sampled
//! battery (select it explicitly with `--only` if wanted).
//!
//! # The persistent cache
//!
//! By default the battery runs over a persistent on-disk artifact cache
//! (`.microlib-cache/`, or `$MICROLIB_CACHE_DIR`, or `--cache-dir <dir>`):
//! finished cells, sampling plans and warm-state checkpoints are journaled
//! to disk as they complete, so a killed run resumes where it stopped, a
//! re-run is served from disk (`recomputed 0 cells` on stderr), and a
//! config/window tweak recomputes only the cells it touches. `--no-cache`
//! (or `MICROLIB_CACHE_DIR=off`) runs memory-only. Entries are checksummed
//! and version-stamped; corrupt or stale files are recomputed, never
//! trusted.
//!
//! # Sharded, fault-tolerant execution
//!
//! `--workers N` turns this process into a **coordinator**: it spawns `N`
//! worker processes of itself (worker `i` gets `--shard i/N`), all sharing
//! the cache directory, where they coordinate cell-by-cell through atomic
//! lease files (see `ARCHITECTURE.md` and the `microlib::LeaseManager`
//! docs). The coordinator monitors exit statuses and lease heartbeats:
//! a crashed worker (signal, abort, panic at top level) is respawned with
//! exponential backoff up to `MICROLIB_WORKER_RESPAWNS` times, a worker
//! whose lease heartbeat freezes is killed and respawned, and the
//! orphaned cells of either are simply recomputed by whichever worker
//! claims them next — nothing already journaled is redone. A cell that
//! crashes `MICROLIB_CELL_RETRIES` consecutive claimers is *quarantined*:
//! the rest of the battery completes, the final report lists each
//! quarantined cell with a minimized repro command, and the exit code is
//! nonzero. After the workers finish, the coordinator byte-compares their
//! outputs against each other (they must agree exactly — the merged run
//! is only published if they do) and writes the merged battery to the
//! final output directory, where `--verify-golden` applies as usual.
//!
//! `--shard i/N` alone runs a single worker-style process claiming (by
//! preference) the `i`-th shard of the cell grid — the mode the
//! coordinator uses internally, also usable by hand across machines that
//! share a cache directory.
//!
//! # Inconsistency mining
//!
//! `--mine` runs the differential inconsistency miner (`microlib-miner`)
//! instead of the experiment battery: a deterministic budgeted walk of
//! config space probing every cell through both model tiers, minimizing
//! each inconsistency to its load-bearing knobs, and writing the
//! byte-reproducible report to `results-mine/mine.txt` (see
//! `ARCHITECTURE.md` § Inconsistency mining). `--mine-budget` and
//! `--mine-bound` override the default 64-cell / 0.25-bound run,
//! `--mine-export <dir>` additionally writes one `cliff-<id>.txt` per
//! confirmed cliff (the `cliffs-golden/` corpus is generated this way),
//! and `--mine-cell benchmark:delta` re-probes a single cell from a
//! cliff record's repro line. Mining honours `MICROLIB_SKIP` /
//! `MICROLIB_SIM` / `MICROLIB_SEED` (defaulting to a small
//! 2000-skip/4000-instruction window, not the battery's full window),
//! memoizes per-cell outcomes in the `mine` class of the disk cache
//! (a warm re-run recomputes 0 mine cells), and composes with
//! `--workers`/`--shard`: workers probe their own shard's cells first,
//! the detailed runs underneath coordinate through the lease layer, and
//! the coordinator byte-compares every worker's full report.
//!
//! # The golden gate
//!
//! `--verify-golden <dir>` re-runs the selected battery and byte-compares
//! every produced results file against the committed snapshot in `<dir>`,
//! exiting nonzero on any drift — CI runs this on every PR so a silent
//! CPI change cannot land unnoticed.
//!
//! # Exit status
//!
//! `0` only if every selected experiment ran cleanly (and, with
//! `--verify-golden`, matched the snapshot). Any failed experiment — or
//! any failed campaign cell inside one — is summarized per cell on stderr
//! and the process exits `1`. Usage errors exit `2`.

use microlib::{LeaseManager, SimOptions};
use microlib_bench::{experiments, std_threads, Context};
use microlib_miner::{mine, perturb_from_env, reprobe_cell, CellOutcome, MineConfig};
use microlib_trace::TraceWindow;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{exit, Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Resolves one `--only` entry against the experiment list (exact name
/// wins, else an unambiguous prefix).
fn resolve(name: &str) -> Result<&'static str, String> {
    if let Some((exact, _)) = experiments::ALL.iter().find(|(n, _)| *n == name) {
        return Ok(exact);
    }
    let matches: Vec<&'static str> = experiments::ALL
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| n.starts_with(name))
        .collect();
    match matches.as_slice() {
        [one] => Ok(one),
        [] => Err(format!(
            "unknown experiment {name:?}; available:\n  {}",
            experiments::ALL
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join("\n  ")
        )),
        many => Err(format!(
            "ambiguous experiment {name:?}: {}",
            many.join(", ")
        )),
    }
}

/// The parsed command line.
struct Cli {
    selected: Vec<&'static str>,
    sampled: bool,
    /// `None` = memory-only (`--no-cache`); `Some(dir)` = disk tier at
    /// `dir`.
    cache_dir: Option<String>,
    /// Golden snapshot directory to verify against, if requested.
    verify_golden: Option<String>,
    /// `--shard i/N`: run as (or like) one worker of an N-way battery.
    shard: Option<String>,
    /// `--workers N`: run as the coordinator of N worker processes.
    workers: Option<u32>,
    /// Output directory override (the coordinator points each worker at
    /// its own).
    out_dir: Option<String>,
    /// `--mine`: run the inconsistency miner instead of the battery.
    mine: bool,
    /// `--mine-budget <n>`: cells to sample (default 64).
    mine_budget: Option<usize>,
    /// `--mine-bound <f>`: divergence-shift bound (default 0.25).
    mine_bound: Option<f64>,
    /// `--mine-export <dir>`: also write one file per confirmed cliff.
    mine_export: Option<String>,
    /// `--mine-cell benchmark:delta`: re-probe one cell and exit.
    mine_cell: Option<String>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses the command line (see the module docs for the grammar).
fn selection() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut selected: Vec<&'static str> = Vec::new();
    let mut explicit = false;
    let mut sampled = false;
    let mut no_cache = false;
    let mut cache_dir: Option<String> = None;
    let mut verify_golden: Option<String> = None;
    let mut shard: Option<String> = None;
    let mut workers: Option<u32> = None;
    let mut out_dir: Option<String> = None;
    let mut mine = false;
    let mut mine_budget: Option<usize> = None;
    let mut mine_bound: Option<f64> = None;
    let mut mine_export: Option<String> = None;
    let mut mine_cell: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sampled" => sampled = true,
            "--no-cache" => no_cache = true,
            "--cache-dir" => {
                cache_dir = Some(args.next().ok_or("--cache-dir needs a directory")?);
            }
            "--verify-golden" => {
                verify_golden = Some(args.next().ok_or("--verify-golden needs a directory")?);
            }
            "--shard" => {
                let spec = args.next().ok_or("--shard needs i/N")?;
                microlib::ShardSpec::parse(&spec)?;
                shard = Some(spec);
            }
            "--workers" => {
                let n = args.next().ok_or("--workers needs a count")?;
                let n: u32 = n
                    .parse()
                    .map_err(|_| format!("--workers count {n:?} is not a number"))?;
                if n == 0 {
                    return Err("--workers needs at least 1".to_owned());
                }
                workers = Some(n);
            }
            "--out-dir" => {
                out_dir = Some(args.next().ok_or("--out-dir needs a directory")?);
            }
            "--mine" => mine = true,
            "--mine-budget" => {
                let n = args.next().ok_or("--mine-budget needs a cell count")?;
                mine_budget = Some(
                    n.parse()
                        .map_err(|_| format!("--mine-budget count {n:?} is not a number"))?,
                );
            }
            "--mine-bound" => {
                let b = args.next().ok_or("--mine-bound needs a bound")?;
                mine_bound = Some(
                    b.parse()
                        .map_err(|_| format!("--mine-bound {b:?} is not a number"))?,
                );
            }
            "--mine-export" => {
                mine_export = Some(args.next().ok_or("--mine-export needs a directory")?);
            }
            "--mine-cell" => {
                mine_cell = Some(args.next().ok_or("--mine-cell needs benchmark:delta")?);
            }
            "--only" => {
                explicit = true;
                let list = args
                    .next()
                    .ok_or_else(|| "--only needs a comma-separated experiment list".to_owned())?;
                for name in list.split(',').filter(|s| !s.is_empty()) {
                    let resolved = resolve(name)?;
                    if !selected.contains(&resolved) {
                        selected.push(resolved);
                    }
                }
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (expected --sampled, --only <list>, \
                     --cache-dir <dir>, --no-cache, --verify-golden <dir>, \
                     --shard i/N, --workers <n>, --out-dir <dir>, --mine, \
                     --mine-budget <n>, --mine-bound <f>, --mine-export <dir> \
                     or --mine-cell <benchmark>:<delta>)"
                ))
            }
        }
    }
    if !explicit {
        selected = experiments::ALL
            .iter()
            .map(|(n, _)| *n)
            // The sampled-vs-full calibration study forces a full-mode
            // standard campaign, defeating the point of a sampled battery.
            .filter(|n| !(sampled && *n == "ablation_sampling"))
            .collect();
    }
    if shard.is_some() && workers.is_some() {
        return Err("--shard and --workers are mutually exclusive \
                    (the coordinator assigns shards itself)"
            .to_owned());
    }
    if !mine
        && mine_cell.is_none()
        && (mine_budget.is_some() || mine_bound.is_some() || mine_export.is_some())
    {
        return Err("--mine-budget/--mine-bound/--mine-export need --mine".to_owned());
    }
    if (mine || mine_cell.is_some()) && verify_golden.is_some() {
        return Err(
            "--verify-golden applies to the experiment battery, not --mine \
                    (the cliffs-golden gate lives in the test suite)"
                .to_owned(),
        );
    }
    if mine_export.is_some() && workers.is_some() {
        return Err("--mine-export is a solo-run flag (the coordinator merges \
                    workers' reports; export from a single run)"
            .to_owned());
    }
    if mine_cell.is_some() && (workers.is_some() || shard.is_some()) {
        return Err("--mine-cell re-probes one cell and does not shard".to_owned());
    }
    // Cache resolution: --no-cache wins; then --cache-dir; then the
    // environment (including its own off switch); then the default dir.
    let cache_dir = if no_cache {
        None
    } else if cache_dir.is_some() {
        cache_dir
    } else if std::env::var("MICROLIB_CACHE_DIR").is_err() {
        Some(".microlib-cache".to_owned())
    } else {
        // Set in the environment: let the library's parse (shared with
        // every other binary) decide whether the value means "off".
        microlib::ArtifactStore::cache_dir_from_env().map(|p| p.to_string_lossy().into_owned())
    };
    if cache_dir.is_none() && (shard.is_some() || workers.is_some()) {
        return Err("--shard/--workers coordinate through lease files in the \
                    cache directory and cannot run with the cache off"
            .to_owned());
    }
    Ok(Cli {
        selected,
        sampled,
        cache_dir,
        verify_golden,
        shard,
        workers,
        out_dir,
        mine: mine || mine_cell.is_some(),
        mine_budget,
        mine_bound,
        mine_export,
        mine_cell,
    })
}

/// Byte-compares every selected results file against the golden snapshot.
/// Returns the number of mismatched (or missing) files.
fn verify_golden(out_dir: &str, golden_dir: &str, selected: &[&str]) -> usize {
    let mut drifted = 0usize;
    println!("\nverifying {out_dir}/ against golden snapshot {golden_dir}/");
    for name in selected {
        let produced = fs::read(format!("{out_dir}/{name}.txt"));
        let golden = fs::read(format!("{golden_dir}/{name}.txt"));
        match (produced, golden) {
            (Ok(p), Ok(g)) if p == g => println!("  ok      {name}"),
            (Ok(_), Ok(_)) => {
                drifted += 1;
                println!(
                    "  DRIFT   {name} (run `diff {golden_dir}/{name}.txt {out_dir}/{name}.txt`)"
                );
            }
            (_, Err(_)) => {
                drifted += 1;
                println!("  MISSING {name} (no golden file — regenerate the snapshot?)");
            }
            (Err(_), _) => {
                drifted += 1;
                println!("  MISSING {name} (experiment produced no output)");
            }
        }
    }
    drifted
}

/// How one worker process's life ended, as the coordinator sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WorkerOutcome {
    /// Still running (or awaiting a respawn).
    Running,
    /// Exit 0: full battery, no failures.
    Clean,
    /// Exit 1: battery completed but some experiment/cell failed
    /// deterministically (a respawn would fail identically).
    Failed,
    /// Crashed (signal/abort/panic) more than the respawn budget allows.
    Dead,
}

/// One worker slot the coordinator manages.
struct Worker {
    id: u32,
    child: Option<Child>,
    outcome: WorkerOutcome,
    respawns: u32,
    /// Deadline of a pending exponential-backoff respawn.
    respawn_at: Option<Instant>,
    log_path: PathBuf,
    out_dir: PathBuf,
}

/// Spawns (or respawns) worker `id`, logging to its append-mode log file.
fn spawn_worker(
    exe: &Path,
    cli: &Cli,
    cache_dir: &str,
    worker: &Worker,
    workers: u32,
    threads: u32,
) -> std::io::Result<Child> {
    let log = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&worker.log_path)?;
    let log_err = log.try_clone()?;
    let mut cmd = Command::new(exe);
    cmd.arg("--shard")
        .arg(format!("{}/{workers}", worker.id))
        .arg("--cache-dir")
        .arg(cache_dir)
        .arg("--out-dir")
        .arg(&worker.out_dir);
    if cli.mine {
        cmd.arg("--mine");
        if let Some(n) = cli.mine_budget {
            cmd.arg("--mine-budget").arg(n.to_string());
        }
        if let Some(b) = cli.mine_bound {
            cmd.arg("--mine-bound").arg(b.to_string());
        }
    } else {
        cmd.arg("--only").arg(cli.selected.join(","));
        if cli.sampled {
            cmd.arg("--sampled");
        }
    }
    cmd.env("MICROLIB_WORKER_ID", worker.id.to_string())
        .env("MICROLIB_THREADS", threads.to_string())
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(log_err));
    cmd.spawn()
}

/// Prints the last lines of a failed worker's log.
fn print_log_tail(worker: &Worker) {
    let Ok(text) = fs::read_to_string(&worker.log_path) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    let tail = lines.len().saturating_sub(25);
    eprintln!(
        "--- worker {} log tail ({}) ---",
        worker.id,
        worker.log_path.display()
    );
    for line in &lines[tail..] {
        eprintln!("  {line}");
    }
}

/// The `--workers N` coordinator (see the module docs): spawns, monitors,
/// respawns and merges. Returns the process exit code.
fn coordinate(cli: &Cli, worker_count: u32) -> i32 {
    let cache_dir = cli
        .cache_dir
        .clone()
        .expect("selection() rejects --workers without a cache dir");
    let cache_root = PathBuf::from(&cache_dir);
    let out_dir = cli.out_dir.clone().unwrap_or_else(|| default_out_dir(cli));
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("cannot locate own executable to spawn workers: {e}");
            return 2;
        }
    };
    let worker_root = cache_root.join("workers");
    if fs::create_dir_all(&worker_root).is_err() {
        eprintln!("cannot create {}", worker_root.display());
        return 2;
    }
    let timeout = Duration::from_millis(env_u64("MICROLIB_LEASE_TIMEOUT_MS", 30_000));
    let backoff_ms = env_u64("MICROLIB_RETRY_BACKOFF_MS", 100);
    let max_respawns = env_u64("MICROLIB_WORKER_RESPAWNS", 3) as u32;
    let total_threads = std::env::var("MICROLIB_THREADS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1)
        });
    let worker_threads = (total_threads / worker_count).max(1);

    println!(
        ">>> coordinator: {worker_count} workers x {worker_threads} thread(s), \
         cache {cache_dir}, lease timeout {timeout:?}"
    );
    let battery = Instant::now();
    let mut workers: Vec<Worker> = (0..worker_count)
        .map(|id| Worker {
            id,
            child: None,
            outcome: WorkerOutcome::Running,
            respawns: 0,
            respawn_at: None,
            log_path: worker_root.join(format!("w{id}.log")),
            out_dir: worker_root.join(format!("w{id}")),
        })
        .collect();
    for w in &mut workers {
        // A fresh run must not merge stale outputs or read old logs.
        let _ = fs::remove_dir_all(&w.out_dir);
        let _ = fs::remove_file(&w.log_path);
        match spawn_worker(&exe, cli, &cache_dir, w, worker_count, worker_threads) {
            Ok(child) => w.child = Some(child),
            Err(e) => {
                eprintln!("cannot spawn worker {}: {e}", w.id);
                return 2;
            }
        }
    }

    let mut respawn_count = 0u32;
    let mut stale_kills = 0u32;
    let mut fatal = false;
    // Kill frozen workers well before other workers steal their leases
    // (a live worker heartbeats at ~timeout/4, so timeout/2 of silence
    // already means frozen).
    let kill_after = timeout / 2;
    let mut next_stale_scan = Instant::now() + kill_after;
    'monitor: loop {
        let mut all_settled = true;
        for w in &mut workers {
            if w.outcome != WorkerOutcome::Running {
                continue;
            }
            all_settled = false;
            if let Some(child) = &mut w.child {
                match child.try_wait() {
                    Ok(None) => {}
                    Ok(Some(status)) => {
                        w.child = None;
                        match status.code() {
                            Some(0) => {
                                w.outcome = WorkerOutcome::Clean;
                                println!("worker {} finished clean", w.id);
                            }
                            Some(1) => {
                                // Deterministic failure: a respawn would
                                // fail the same way. Keep its outputs for
                                // the merge (quarantine runs end here).
                                w.outcome = WorkerOutcome::Failed;
                                eprintln!("worker {} failed (deterministic, not respawning)", w.id);
                            }
                            Some(2) => {
                                eprintln!("worker {} rejected its command line — fatal", w.id);
                                print_log_tail(w);
                                fatal = true;
                                break 'monitor;
                            }
                            code => {
                                // Signal (None) or abort/panic exit: a
                                // crash. Its leases expire and its cells
                                // get reclaimed; respawn it (bounded) to
                                // keep its shard's throughput.
                                eprintln!(
                                    "worker {} crashed ({}), {} respawn(s) used",
                                    w.id,
                                    match code {
                                        Some(c) => format!("exit code {c}"),
                                        None => "killed by signal".to_owned(),
                                    },
                                    w.respawns,
                                );
                                if w.respawns < max_respawns {
                                    let delay = Duration::from_millis(
                                        backoff_ms.saturating_mul(1 << w.respawns.min(16)),
                                    );
                                    w.respawn_at = Some(Instant::now() + delay);
                                } else {
                                    w.outcome = WorkerOutcome::Dead;
                                    eprintln!(
                                        "worker {} exhausted its {} respawns — giving up on it \
                                         (its cells fall to the other workers)",
                                        w.id, max_respawns
                                    );
                                }
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("worker {}: wait failed: {e}", w.id);
                        w.child = None;
                        w.outcome = WorkerOutcome::Dead;
                    }
                }
            } else if w.respawn_at.is_some_and(|at| Instant::now() >= at) {
                w.respawn_at = None;
                w.respawns += 1;
                respawn_count += 1;
                match spawn_worker(&exe, cli, &cache_dir, w, worker_count, worker_threads) {
                    Ok(child) => {
                        println!("worker {} respawned (attempt {})", w.id, w.respawns + 1);
                        w.child = Some(child);
                    }
                    Err(e) => {
                        eprintln!("worker {} respawn failed: {e}", w.id);
                        w.outcome = WorkerOutcome::Dead;
                    }
                }
            }
        }
        if all_settled {
            break;
        }
        if Instant::now() >= next_stale_scan {
            next_stale_scan = Instant::now() + kill_after.max(Duration::from_millis(50));
            for (pid, age) in LeaseManager::stale_owners(&cache_root, kill_after) {
                let frozen = workers
                    .iter_mut()
                    .find(|w| w.child.as_ref().is_some_and(|c| c.id() == pid));
                if let Some(w) = frozen {
                    eprintln!(
                        "worker {} holds a lease silent for {age:?} — presumed frozen, killing it",
                        w.id
                    );
                    if let Some(child) = &mut w.child {
                        if child.kill().is_ok() {
                            stale_kills += 1;
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if fatal {
        for w in &mut workers {
            if let Some(c) = &mut w.child {
                let _ = c.kill();
            }
        }
        return 2;
    }

    if respawn_count + stale_kills > 0 {
        // The recovery marker CI greps for: the journal + lease layer
        // guarantee that respawned/stolen work re-ran only the cells the
        // dead worker had claimed but not journaled.
        println!(
            "crash recovery: recomputed only orphaned cells \
             ({respawn_count} worker respawn(s), {stale_kills} stale-lease kill(s))"
        );
    }

    // Merge: every completed worker ran the full battery over the shared
    // memo, so their outputs must agree byte-for-byte — this cross-check
    // is the sharded-mode determinism gate. Prefer clean workers; if none
    // survived clean (e.g. a quarantine run), merge the deterministic
    // failures so the report still shows every healthy cell.
    let clean: Vec<&Worker> = workers
        .iter()
        .filter(|w| w.outcome == WorkerOutcome::Clean)
        .collect();
    let failed: Vec<&Worker> = workers
        .iter()
        .filter(|w| w.outcome == WorkerOutcome::Failed)
        .collect();
    let any_failed = !failed.is_empty();
    let any_dead = workers.iter().any(|w| w.outcome == WorkerOutcome::Dead);
    for w in workers.iter().filter(|w| w.outcome != WorkerOutcome::Clean) {
        print_log_tail(w);
    }
    let sources = if !clean.is_empty() { &clean } else { &failed };
    if sources.is_empty() {
        eprintln!("BATTERY FAILED — no worker completed the battery");
        return 1;
    }
    let mut merge_mismatch = 0usize;
    if fs::create_dir_all(&out_dir).is_err() {
        eprintln!("cannot create {out_dir}/");
        return 2;
    }
    // In mine mode every worker produces the single deterministic mining
    // report; the battery produces one file per selected experiment.
    let merge_names: Vec<&str> = if cli.mine {
        vec!["mine"]
    } else {
        cli.selected.clone()
    };
    for name in &merge_names {
        let reference = fs::read(sources[0].out_dir.join(format!("{name}.txt")));
        let Ok(reference) = reference else {
            eprintln!(
                "MERGE MISSING {name}: worker {} produced no output",
                sources[0].id
            );
            merge_mismatch += 1;
            continue;
        };
        for other in &sources[1..] {
            match fs::read(other.out_dir.join(format!("{name}.txt"))) {
                Ok(bytes) if bytes == reference => {}
                Ok(_) => {
                    eprintln!(
                        "MERGE MISMATCH {name}: workers {} and {} disagree byte-for-byte",
                        sources[0].id, other.id
                    );
                    merge_mismatch += 1;
                }
                Err(_) => {
                    eprintln!(
                        "MERGE MISSING {name}: worker {} produced no output",
                        other.id
                    );
                    merge_mismatch += 1;
                }
            }
        }
        if fs::write(format!("{out_dir}/{name}.txt"), &reference).is_err() {
            eprintln!("cannot write {out_dir}/{name}.txt");
            merge_mismatch += 1;
        }
    }
    if merge_mismatch == 0 {
        println!(
            "merged {} result file(s) from {} worker(s) into {out_dir}/ (all byte-identical)",
            merge_names.len(),
            sources.len()
        );
    }

    // Quarantine report: poison cells that crashed every claimer. The
    // battery around them completed — that is the point — but the run
    // must not look green.
    let quarantined = LeaseManager::quarantine_reports(&cache_root);
    if !quarantined.is_empty() {
        eprintln!("\nQUARANTINED CELLS ({}):", quarantined.len());
        for q in &quarantined {
            eprintln!("  {} — {} crashed attempt(s)", q.cell, q.attempts);
            eprintln!("    repro: {}", q.repro);
        }
        eprintln!(
            "(each cell above crashed every worker that claimed it; the rest of the \
             battery completed. Remove {}/quarantine/ to retry.)",
            cache_dir
        );
    }

    let mut code = 0;
    if merge_mismatch > 0 {
        eprintln!("BATTERY FAILED — {merge_mismatch} merge mismatch(es)");
        code = 1;
    }
    if !quarantined.is_empty() || any_failed {
        code = 1;
    }
    if code == 0 {
        if let Some(golden_dir) = &cli.verify_golden {
            let drifted = verify_golden(&out_dir, golden_dir, &cli.selected);
            if drifted > 0 {
                eprintln!("golden verification FAILED: {drifted} file(s) drifted");
                code = 1;
            } else {
                println!("golden verification passed ({} files)", cli.selected.len());
            }
        }
    }
    match code {
        0 if any_dead => println!(
            "\nbattery done in {:.1?} (degraded: some workers died, all cells completed); \
             results under {out_dir}/",
            battery.elapsed()
        ),
        0 => println!(
            "\nbattery done in {:.1?} across {worker_count} workers (0 failed); \
             results under {out_dir}/",
            battery.elapsed()
        ),
        _ => println!(
            "\nbattery FAILED in {:.1?}; partial results under {out_dir}/",
            battery.elapsed()
        ),
    }
    code
}

/// Where results land when `--out-dir` is not given.
fn default_out_dir(cli: &Cli) -> String {
    if cli.mine {
        "results-mine".to_owned()
    } else if cli.sampled {
        "results-sampled".to_owned()
    } else {
        "results".to_owned()
    }
}

/// `MICROLIB_SEED`, accepting both decimal and the `0x`-prefixed hex the
/// cliff repro lines print.
fn env_seed() -> u64 {
    let Ok(raw) = std::env::var("MICROLIB_SEED") else {
        return 0xC0FFEE;
    };
    let raw = raw.trim();
    match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
    .unwrap_or(0xC0FFEE)
}

/// The `--mine` mode: runs the differential inconsistency miner (or a
/// single `--mine-cell` re-probe) instead of the experiment battery and
/// returns the process exit code. The report written to
/// `<out-dir>/mine.txt` is fully deterministic — cache and timing
/// counters go to stderr — so a warm re-run (and every parallel worker)
/// produces byte-identical output.
fn run_mine(cli: &Cli) -> i32 {
    // Mining probes dozens of cells x mechanisms x two tiers, so it
    // defaults to a much smaller window than the battery; the usual
    // environment overrides still apply (and the cliff repro lines
    // set them explicitly).
    let window = TraceWindow::new(
        env_u64("MICROLIB_SKIP", 2_000),
        env_u64("MICROLIB_SIM", 4_000),
    );
    let base_opts = SimOptions {
        seed: env_seed(),
        window,
        ..SimOptions::default()
    };
    let mut cfg = MineConfig::standard(base_opts);
    if let Some(n) = cli.mine_budget {
        cfg.budget = n;
    }
    if let Some(b) = cli.mine_bound {
        cfg.bound = b;
    }
    cfg.threads = std_threads();
    if let Some(spec) = &cli.shard {
        let s = microlib::ShardSpec::parse(spec).expect("selection() validated --shard");
        cfg.shard = Some((s.index, s.count));
    }
    let cx = Context::new();
    let store = cx.store();
    // Drop-time sweep: even a panicking mine run releases its leases and
    // syncs the journal (the explicit finish() calls below still cover
    // the exit() paths, which skip Drop).
    let _finish = store.finish_guard();
    if let Some(spec) = &cli.mine_cell {
        return match reprobe_cell(store, spec, &cfg) {
            Ok(text) => {
                print!("{text}");
                store.finish();
                0
            }
            Err(e) => {
                eprintln!("{e}");
                2
            }
        };
    }
    let out_dir = cli.out_dir.clone().unwrap_or_else(|| default_out_dir(cli));
    if fs::create_dir_all(&out_dir).is_err() {
        eprintln!("cannot create {out_dir}/");
        return 2;
    }
    let t = Instant::now();
    println!(
        ">>> mining {} cells (bound {:.4}, window skip={} sim={})",
        cfg.budget, cfg.bound, window.skip, window.simulate
    );
    let report = mine(store, &cfg);

    let mut out = String::new();
    out.push_str(&format!(
        "inconsistency mining: seed={:#x} skip={} sim={} budget={} bound={:.4} perturb={:.4}\n",
        cfg.base_opts.seed,
        window.skip,
        window.simulate,
        cfg.budget,
        cfg.bound,
        perturb_from_env(),
    ));
    out.push_str(&format!(
        "mechanisms: {}\n\n",
        cfg.mechanisms
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    let mut failed = 0usize;
    for cell in &report.cells {
        let verdict = match &cell.outcome {
            CellOutcome::Consistent => "consistent".to_owned(),
            CellOutcome::Cliff(r) => format!("cliff {:016x} ({})", r.id(), r.kind.label()),
            CellOutcome::Failed(e) => {
                failed += 1;
                format!("FAILED {e}")
            }
        };
        out.push_str(&format!(
            "cell {:3} {}:{} -> {verdict}\n",
            cell.index,
            cell.benchmark,
            cell.delta.key()
        ));
    }
    let cliffs = report.cliffs();
    for r in &cliffs {
        out.push('\n');
        out.push_str(&r.render());
    }
    out.push_str(&format!(
        "\nmined {} cells: {} cliffs, {} failed\n",
        report.cells.len(),
        cliffs.len(),
        failed
    ));
    let path = format!("{out_dir}/mine.txt");
    if fs::write(&path, &out).is_err() {
        eprintln!("cannot write {path}");
        return 2;
    }
    println!("    -> {path} ({:.1?})", t.elapsed());
    if let Some(export) = &cli.mine_export {
        if fs::create_dir_all(export).is_err() {
            eprintln!("cannot create {export}/");
            return 2;
        }
        for r in &cliffs {
            let p = format!("{export}/cliff-{:016x}.txt", r.id());
            if fs::write(&p, r.render()).is_err() {
                eprintln!("cannot write {p}");
                return 2;
            }
        }
        println!("exported {} cliff record(s) to {export}/", cliffs.len());
    }
    store.finish();
    // The CI smoke markers: cliff yield and incrementality.
    eprintln!(
        "miner: found and minimized {} cliff(s) across {} cells",
        cliffs.len(),
        report.cells.len()
    );
    eprintln!(
        "miner: recomputed {} mine cells, {} served from cache",
        report.computed, report.cached
    );
    if failed > 0 {
        eprintln!("MINING FAILED — {failed} cell(s) could not be probed (see {path})");
        return 1;
    }
    0
}

fn main() {
    let cli = match selection() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    };
    // `--sampled` must actually sample: override an unset or *disabling*
    // MICROLIB_SAMPLED (a stale `=0` in the shell would otherwise run the
    // whole battery in full mode while labeling the output sampled), but
    // respect an explicit sampling spec.
    if cli.sampled
        && matches!(
            std::env::var("MICROLIB_SAMPLED").as_deref(),
            Err(_) | Ok("" | "0" | "off" | "false")
        )
    {
        std::env::set_var("MICROLIB_SAMPLED", "1");
    }
    // The Context builds its store from the environment; publish the
    // resolved cache decision there (mirrors the --sampled handling).
    match &cli.cache_dir {
        Some(dir) => std::env::set_var("MICROLIB_CACHE_DIR", dir),
        None => std::env::set_var("MICROLIB_CACHE_DIR", "off"),
    }
    if let Some(n) = cli.workers {
        exit(coordinate(&cli, n));
    }
    if let Some(spec) = &cli.shard {
        std::env::set_var("MICROLIB_SHARD", spec);
    }
    // The worker-start fault point (after the cache/shard environment is
    // resolved, before any real work).
    let worker_id = std::env::var("MICROLIB_WORKER_ID").unwrap_or_default();
    microlib::fault::trigger("worker-start", &worker_id);
    if cli.mine {
        exit(run_mine(&cli));
    }
    let out_dir = cli.out_dir.clone().unwrap_or_else(|| default_out_dir(&cli));
    fs::create_dir_all(&out_dir).expect("results dir");
    let mut cx = Context::new();
    // Drop-time sweep for every path that unwinds or returns without
    // reaching the explicit finish() below: no exit leaves lease files
    // behind. (exit() skips Drop, but those paths finish() explicitly.)
    let _finish = cx.store().finish_guard();
    if let Some(spec) = &cli.shard {
        println!(
            ">>> worker{}: shard {spec}, cache {}",
            if worker_id.is_empty() {
                String::new()
            } else {
                format!(" {worker_id}")
            },
            cli.cache_dir.as_deref().unwrap_or("off"),
        );
    }
    let battery = Instant::now();
    let mut failed: Vec<&'static str> = Vec::new();
    let mut ran = 0usize;
    for (name, run) in experiments::ALL {
        if !cli.selected.contains(name) {
            continue;
        }
        ran += 1;
        // Quarantine repro commands name the experiment that was running
        // when the poison cell was claimed.
        microlib::set_run_scope(name);
        println!(">>> {name}");
        let t = Instant::now();
        let mut captured: Vec<u8> = Vec::new();
        // One failing experiment (a panicking sweep cell, say) must not
        // sink the rest of the battery: catch it, keep the partial
        // capture for diagnosis, move on — the old child-process
        // orchestrator's isolation, kept across the in-process port.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| run(&mut cx, &mut captured)));
        let path = format!("{out_dir}/{name}.txt");
        fs::write(&path, &captured).expect("write result");
        match outcome {
            Ok(Ok(())) => println!("    -> {path} ({:.1?})", t.elapsed()),
            Ok(Err(e)) => {
                failed.push(name);
                eprintln!("{name} FAILED writing output: {e} (partial capture in {path})");
            }
            Err(payload) => {
                failed.push(name);
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic");
                eprintln!("{name} FAILED: {msg} (partial capture in {path})");
            }
        }
        // Warm checkpoints only pay off within one experiment's sweeps
        // (different experiments warm different configurations); traces
        // and the cell memo keep earning across the battery and stay.
        // (The disk tier keeps its copies — a later experiment or process
        // with the same configuration re-hydrates from disk.)
        cx.store().clear_warm_states();
    }
    // Clean-exit sweep: release every lease this process still holds and
    // fsync the memo journal, before any of the exit paths below.
    cx.store().finish();
    let stats = cx.store().stats();
    eprintln!(
        "artifact store: traces {}/{} hits, warm states {}/{} hits, sampling plans {}/{} hits, cell memo {}/{} hits",
        stats.trace_hits,
        stats.trace_hits + stats.trace_misses,
        stats.warm_hits,
        stats.warm_hits + stats.warm_misses,
        stats.plan_hits,
        stats.plan_hits + stats.plan_misses,
        stats.memo_hits,
        stats.memo_hits + stats.memo_misses + stats.memo_disk_hits,
    );
    match cx.store().disk_cache() {
        Some(disk) => eprintln!(
            "disk cache ({}): {} memo hits, {} plan hits, {} warm hits; recomputed {} cells",
            disk.root().display(),
            stats.memo_disk_hits,
            stats.plan_disk_hits,
            stats.warm_disk_hits,
            stats.cells_recomputed(),
        ),
        None => eprintln!("disk cache: off"),
    }
    if stats.lease_claims + stats.lease_waits + stats.cells_quarantined > 0 {
        eprintln!(
            "lease layer: claimed {} cells, waited out {} held elsewhere, {} quarantined",
            stats.lease_claims, stats.lease_waits, stats.cells_quarantined,
        );
    }

    // A partially failed battery must never look green: summarize every
    // failed experiment — and every failed campaign cell — then exit 1.
    let cell_failures = cx.cell_failures();
    if !failed.is_empty() || !cell_failures.is_empty() {
        eprintln!("\nBATTERY FAILED — {} experiment(s):", failed.len());
        for name in &failed {
            eprintln!("  {name}");
        }
        if !cell_failures.is_empty() {
            eprintln!("failed campaign cells:");
            for line in &cell_failures {
                eprintln!("  {line}");
            }
        }
        println!(
            "\n{ran} experiments attempted in {:.1?} ({} failed); results under {out_dir}/",
            battery.elapsed(),
            failed.len()
        );
        exit(1);
    }
    // The golden gate runs before the success banner: a drifting run
    // must never print "done (0 failed)" and then exit 1.
    if let Some(golden_dir) = &cli.verify_golden {
        let drifted = verify_golden(&out_dir, golden_dir, &cli.selected);
        if drifted > 0 {
            eprintln!("golden verification FAILED: {drifted} file(s) drifted");
            exit(1);
        }
        println!("golden verification passed ({} files)", cli.selected.len());
    }
    println!(
        "\nall {ran} experiments done in {:.1?} (0 failed); results under {out_dir}/",
        battery.elapsed()
    );
}
