//! Runs the complete experiment battery (every figure and table) and
//! captures each harness's output under `results/`.

use std::fs;
use std::process::Command;

const EXPERIMENTS: [&str; 14] = [
    "ablation_fidelity",
    "tab01_config",
    "fig01_model_validation",
    "fig02_reveng_error",
    "fig03_dbcp_fix",
    "fig04_speedup",
    "fig05_power_cost",
    "tab05_prior_comparisons",
    "tab06_subset_winners",
    "tab07_selection_ranking",
    "fig06_benchmark_sensitivity",
    "fig07_sensitivity_selection",
    "fig08_memory_model",
    "fig09_mshr",
];

// fig10/fig11 are slow (per-benchmark resimulation); they run last so a
// partial battery still covers the headline results.
const SLOW_EXPERIMENTS: [&str; 2] = ["fig10_second_guessing", "fig11_trace_selection"];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    fs::create_dir_all("results").expect("results dir");

    let all: Vec<&str> = EXPERIMENTS
        .iter()
        .chain(SLOW_EXPERIMENTS.iter())
        .copied()
        .collect();
    for name in all {
        let bin = exe_dir.join(name);
        if !bin.exists() {
            eprintln!("skipping {name}: binary not built (cargo build --release -p microlib-bench)");
            continue;
        }
        println!(">>> {name}");
        let t = std::time::Instant::now();
        let out = Command::new(&bin).output().expect("experiment runs");
        let path = format!("results/{name}.txt");
        fs::write(&path, &out.stdout).expect("write result");
        if !out.status.success() {
            eprintln!("{name} FAILED:\n{}", String::from_utf8_lossy(&out.stderr));
        } else {
            println!("    -> {path} ({:.1?})", t.elapsed());
        }
    }
    println!("\nall results under results/");
}
